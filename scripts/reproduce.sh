#!/usr/bin/env bash
# Regenerate every paper table/figure and the ablations.
# Usage: scripts/reproduce.sh [build-dir]
set -euo pipefail
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo
    echo "########## $(basename "$b")"
    "$b"
done
