#!/usr/bin/env bash
# Regenerate every paper table/figure and the ablations.
# Usage: scripts/reproduce.sh [build-dir]
#
# The cycle-level sweeps (Figure 6, the ucache/latency/cache ablations)
# run through liquid-lab: sharded across every core, written as
# machine-readable BENCH_*.json under $BUILD/results/, and rendered as
# the paper tables. The remaining benches are single-shot analyses and
# run directly.
set -euo pipefail
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure

echo
echo "########## liquid-lab run --all"
"$BUILD"/tools/liquid-lab run --all --render --out "$BUILD"/results

for b in "$BUILD"/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    case "$(basename "$b")" in
        # Covered by the lab campaigns above.
        bench_fig6_speedup|bench_ucache_sweep|\
        bench_latency_sweep|bench_cache_sweep) continue ;;
    esac
    echo
    echo "########## $(basename "$b")"
    "$b"
done

echo
echo "Results: $BUILD/results/BENCH_*.json"
