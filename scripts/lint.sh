#!/usr/bin/env bash
# Lint gate: clang-format (diff check) + clang-tidy over the C++ tree.
#
#   scripts/lint.sh             # check formatting and run clang-tidy
#   scripts/lint.sh --fix       # reformat in place instead of checking
#   scripts/lint.sh --format-only
#
# clang-tidy needs a compile database; the script configures
# build-lint/ with CMAKE_EXPORT_COMPILE_COMMANDS if none exists.
# Missing tools are reported and skipped (exit 0) so the script is
# usable in minimal containers; CI installs both.

set -u
cd "$(dirname "$0")/.."

fix=0
format_only=0
for arg in "$@"; do
    case "$arg" in
      --fix) fix=1 ;;
      --format-only) format_only=1 ;;
      *) echo "usage: $0 [--fix] [--format-only]" >&2; exit 2 ;;
    esac
done

mapfile -t sources < <(git ls-files '*.cc' '*.hh')
if [ "${#sources[@]}" -eq 0 ]; then
    echo "lint: no C++ sources found" >&2
    exit 2
fi

status=0

if command -v clang-format > /dev/null; then
    if [ "$fix" -eq 1 ]; then
        clang-format -i "${sources[@]}"
    else
        if ! clang-format --dry-run -Werror "${sources[@]}"; then
            echo "lint: formatting differs; run scripts/lint.sh --fix" >&2
            status=1
        fi
    fi
else
    echo "lint: clang-format not found, skipping format check" >&2
fi

if [ "$format_only" -eq 1 ]; then
    exit "$status"
fi

if command -v clang-tidy > /dev/null; then
    db=build-lint
    if [ ! -f "$db/compile_commands.json" ]; then
        cmake -B "$db" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
            > /dev/null || exit 1
    fi
    # Headers are covered through the translation units that include
    # them (HeaderFilterRegex in .clang-tidy). The whole tree is held
    # to the strict bar — every tidy warning is an error. The tier
    # started with the layers that claim correctness for other code
    # (verifier, prover, chaos oracle, translator, cpu model,
    # functional tier, lab harness, common/ plumbing, the CI-facing
    # tools/) and now covers the rest as well: the asm/isa front end
    # feeds every one of those layers, memory/sim are the machine the
    # cycle numbers come from, the scalarizer emits the code under
    # test, and workloads define what "the suite passes" means.
    mapfile -t strict_tus < <(git ls-files 'src/*.cc' 'tools/*.cc')
    if ! clang-tidy -p "$db" --quiet --warnings-as-errors='*' \
            "${strict_tus[@]}"; then
        status=1
    fi
else
    echo "lint: clang-tidy not found, skipping static analysis" >&2
fi

exit "$status"
