/**
 * @file
 * Determinism contract of the serve load generator: same seed + spec
 * produce a byte-identical request trace and a byte-identical latency
 * report — across repeat runs AND across --jobs thread counts. Plus
 * the report schema, the lab-results rendering that CI diffs, and the
 * sweep's p99 gate.
 */

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "lab/results.hh"
#include "serve/loadgen.hh"

using namespace liquid;
using namespace liquid::serve;

namespace
{

/** Small but exercising every class; wall cost a few hundred ms. */
LoadSpec
smallSpec()
{
    LoadSpec spec;
    spec.seed = 42;
    spec.qps = 2000.0;
    spec.requests = 24;
    spec.workloads = {"fir"};
    spec.widths = {4};
    return spec;
}

} // namespace

TEST(ServeLoadgen, TraceIsDeterministic)
{
    const LoadSpec spec = smallSpec();
    const std::vector<Request> a = generateTrace(spec);
    const std::vector<Request> b = generateTrace(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key(), b[i].key()) << i;
        EXPECT_EQ(a[i].arrivalUs, b[i].arrivalUs) << i;
        EXPECT_EQ(a[i].deadlineUs, b[i].deadlineUs) << i;
        EXPECT_EQ(a[i].id, b[i].id) << i;
    }
    EXPECT_EQ(traceHash(a), traceHash(b));
}

TEST(ServeLoadgen, TraceRespondsToSeed)
{
    LoadSpec spec = smallSpec();
    const std::uint64_t base = traceHash(generateTrace(spec));
    spec.seed = 43;
    EXPECT_NE(traceHash(generateTrace(spec)), base);
}

TEST(ServeLoadgen, TraceIsOpenLoopAndOrdered)
{
    const std::vector<Request> trace = generateTrace(smallSpec());
    ASSERT_FALSE(trace.empty());
    std::uint64_t prev = 0;
    for (const Request &r : trace) {
        EXPECT_GE(r.arrivalUs, prev);
        prev = r.arrivalUs;
        EXPECT_EQ(r.job.experiment, "serve");
    }
}

TEST(ServeLoadgen, ReportBytesIdenticalAcrossRunsAndJobs)
{
    const LoadSpec spec = smallSpec();
    // The tentpole determinism claim, verified at the byte level: the
    // full JSON latency report — p50/p95/p99 included — is a pure
    // function of (seed, spec). The thread count only changes how fast
    // the wall clock gets there.
    const std::string serial = runLoad(spec, 1).toJson(true).toString();
    const std::string repeat = runLoad(spec, 1).toJson(true).toString();
    const std::string wide = runLoad(spec, 8).toJson(true).toString();
    EXPECT_EQ(serial, repeat);
    EXPECT_EQ(serial, wide);
}

TEST(ServeLoadgen, ReportCarriesSchemaHeader)
{
    const LoadReport report = runLoad(smallSpec(), 0);
    const json::Value v = report.toJson();
    EXPECT_EQ(v.at("schema").asString(), serveSchema);
    EXPECT_EQ(v.at("toolVersion").asString(), serveVersion);
    EXPECT_EQ(v.at("kind").asString(), "loadgen");
    // Every submitted request is accounted for, whatever its fate.
    const ClassStats &all = report.all;
    EXPECT_EQ(all.submitted, report.spec.requests);
    EXPECT_EQ(all.ok + all.cancelled + all.rejected + all.failed,
              all.submitted);
    EXPECT_GT(report.distinctKeys, 0u);
}

TEST(ServeLoadgen, LabResultsRoundTripThroughSchema)
{
    const LoadReport report = runLoad(smallSpec(), 0);
    const lab::ResultSet rendered = toLabResults(report);
    // Reparse through the strict lab fromJson (key validation, absent
    // cycle fields on the functional tier) — what CI's diff gate does.
    const lab::ResultSet reread =
        lab::ResultSet::fromJson(json::parse(rendered.writeString()));
    ASSERT_EQ(reread.size(), rendered.size());
    const lab::JobResult &all = reread.at("serve/all/scalar/fun");
    EXPECT_FALSE(all.outcome.hasCycles);
    EXPECT_EQ(all.outcome.counters.at("serve.count"),
              report.all.submitted);
    EXPECT_EQ(all.outcome.counters.at("serve.p99us"),
              report.all.latency.quantile(0.99));
}

TEST(ServeLoadgen, HotCacheAndCoalescingShapeTheRun)
{
    // 24 requests over at most 5 distinct keys (one workload, one
    // width, five classes): repeats must come from the hot tier or an
    // in-flight leader, never a second execution.
    const LoadReport report = runLoad(smallSpec(), 0);
    EXPECT_LE(report.distinctKeys, 5u);
    EXPECT_EQ(report.all.executed, report.distinctKeys);
    EXPECT_EQ(report.all.hotHits + report.all.coalesced +
                  report.all.executed,
              report.all.ok);
    EXPECT_EQ(report.cache.hits, report.all.hotHits);
}

TEST(ServeLoadgen, SweepGatesOnTheTailContract)
{
    const LoadSpec spec = smallSpec();
    // An absurdly tight 1us target: nothing can pass (every execution
    // costs at least overheadUs), so the sweep reports no operating
    // point and the fail-side sentinel.
    const SweepReport tight =
        runSweep(spec, {1000.0, 2000.0}, 1, 0);
    EXPECT_FALSE(tight.anyPass());
    EXPECT_EQ(tight.qpsAtTarget, 0.0);
    EXPECT_EQ(tight.usPerOpAtTarget, usPerOpFailSentinel);

    // A generous 10s target: every point passes and the certified
    // operating point is the fastest offered rate.
    const SweepReport loose =
        runSweep(spec, {1000.0, 2000.0}, 10000000, 0);
    EXPECT_TRUE(loose.anyPass());
    EXPECT_EQ(loose.qpsAtTarget, 2000.0);
    EXPECT_EQ(loose.usPerOpAtTarget, 500u);
    ASSERT_EQ(loose.points.size(), 2u);
    EXPECT_TRUE(loose.points[0].pass);
    EXPECT_TRUE(loose.points[1].pass);

    const json::Value v = loose.toJson();
    EXPECT_EQ(v.at("schema").asString(), serveSchema);
    EXPECT_EQ(v.at("kind").asString(), "sweep");
}

TEST(ServeLoadgen, DeadlinesCancelQueuedWork)
{
    LoadSpec spec = smallSpec();
    // One virtual server, a flood, and a 50us budget: queued requests
    // must cancel rather than execute late — and the books must still
    // balance.
    spec.qps = 100000.0;
    spec.virtualServers = 1;
    spec.deadlineUs = 50;
    spec.hotCacheEntries = 0;
    const LoadReport report = runLoad(spec, 0);
    EXPECT_GT(report.all.cancelled, 0u);
    EXPECT_EQ(report.all.ok + report.all.cancelled +
                  report.all.rejected + report.all.failed,
              report.all.submitted);
    // A determinism spot-check on the stressed path too.
    const std::string once = report.toJson().toString();
    EXPECT_EQ(once, runLoad(spec, 4).toJson().toString());
}
