/**
 * @file
 * Differential fuzz: the translation-validation prover vs the
 * execution oracle on randomly generated kernels.
 *
 * For every random legal kernel (tests/random_kernels.hh) the prover
 * and the chaos oracle must agree:
 *
 *   - Proved at width w  => the fault-free Liquid run at w is
 *     architecturally equal to the scalar baseline;
 *   - Refuted at width w => the counterexample is concrete, memory-
 *     realizable, and its chaos-oracle replay confirms the divergence;
 *   - Unknown is tolerated (budget honesty) but counted, and the run
 *     fails if the prover gives up on more than a small fraction.
 *
 * Environment knobs (the nightly CI job turns these up):
 *   LIQUID_PROOF_TRIALS   kernels to generate (default 10)
 *   LIQUID_PROOF_SEED     base RNG seed (default 1)
 *   LIQUID_PROOF_DUMP_DIR write a .s disassembly-style dump for every
 *                         prover/oracle divergence (default: off)
 */

#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "chaos/oracle.hh"
#include "verifier/proof.hh"

#include "random_kernels.hh"

using namespace liquid;

namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *v = std::getenv(name);
    return v ? static_cast<unsigned>(std::stoul(v)) : fallback;
}

/** Persist a divergent program for offline diagnosis. */
void
dumpDivergence(const std::string &dir, unsigned trial, unsigned width,
               const Program &prog, const std::string &why)
{
    if (dir.empty())
        return;
    const std::string path = dir + "/proof_fuzz_t" +
                             std::to_string(trial) + "_w" +
                             std::to_string(width) + ".txt";
    std::ofstream out(path);
    out << "; prover/oracle divergence: " << why << '\n';
    const auto &code = prog.code();
    for (std::size_t i = 0; i < code.size(); ++i)
        out << i << ":\t" << code[i].toString() << '\n';
}

} // namespace

TEST(ProofFuzz, ProverAgreesWithExecutionOracle)
{
    const unsigned trials = envUnsigned("LIQUID_PROOF_TRIALS", 10);
    const unsigned seed = envUnsigned("LIQUID_PROOF_SEED", 1);
    const char *dumpEnv = std::getenv("LIQUID_PROOF_DUMP_DIR");
    const std::string dumpDir = dumpEnv ? dumpEnv : "";

    ProofOptions popts;  // widths {2, 4, 8, 16}, replay on

    unsigned proved = 0, refuted = 0, unknown = 0, untranslated = 0;
    for (unsigned t = 0; t < trials; ++t) {
        Rng krng(seed + 1000ull * t);
        Rng drng(seed + 1000ull * t + 7);
        const GeneratedKernel g = generateKernel(krng, t);
        const Program prog = buildGeneratedProgram(
            g, drng, EmitOptions::Mode::Scalarized, 16);

        const ProgramProof pp = proveProgram(prog, popts);
        ASSERT_EQ(pp.regions.size(), 1u) << "trial " << t;
        const RegionProof &rp = pp.regions[0];

        for (const WidthProof &wp : rp.widths) {
            switch (wp.verdict) {
              case ProofVerdict::Proved: {
                ++proved;
                // The oracle must see fault-free architectural
                // equality at the proved width.
                const ChaosReference ref =
                    makeReference(prog, wp.boundWidth);
                const ChaosReport rep = checkSchedule(
                    ref, prog, wp.boundWidth, FaultSchedule{});
                if (!rep.equal) {
                    dumpDivergence(dumpDir, t, wp.width, prog,
                                   "proved but oracle diverges");
                }
                ASSERT_TRUE(rep.equal)
                    << "trial " << t << " w" << wp.width
                    << ": proved, but the execution oracle diverges: "
                    << (rep.mismatches.empty()
                            ? std::string("(no detail)")
                            : rep.mismatches.front());
                break;
              }
              case ProofVerdict::Refuted: {
                ++refuted;
                // Random legal kernels must never refute — that is a
                // prover or translator bug by construction.
                if (wp.ce) {
                    dumpDivergence(dumpDir, t, wp.width, prog,
                                   "legal kernel refuted: " +
                                       wp.ce->obligation);
                }
                FAIL() << "trial " << t << " w" << wp.width
                       << ": legal kernel refuted: " << wp.summary;
                break;
              }
              case ProofVerdict::Unknown:
                ++unknown;
                break;
              case ProofVerdict::NoTranslation:
                ++untranslated;
                break;
            }
        }
    }

    // Honesty bound: the enumeration tiers are sized so random legal
    // kernels essentially always close; a surge of Unknowns means the
    // discharge strategy regressed.
    EXPECT_LE(unknown, (proved + unknown) / 10 + 1)
        << proved << " proved vs " << unknown << " unknown";
    EXPECT_GT(proved, 0u);
}
