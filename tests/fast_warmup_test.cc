/**
 * @file
 * Fast-forward warmup tests: running the first N retires on the
 * functional tier and handing architectural state to the cycle core
 * must land on exactly the final state a pure cycle run reaches —
 * registers, compare flags, memory image, call-log shape, total
 * retires — while retire-keyed fault events split cleanly around the
 * checkpoint.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "asm/program.hh"
#include "chaos/fault_schedule.hh"
#include "cpu/core.hh"
#include "fast/warmup.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid::fast
{
namespace
{

struct FinalState
{
    std::uint64_t retired = 0;
    int pc = 0;
    int cmp = 0;
    bool halted = false;
    std::vector<Word> dataImage;
    std::vector<Word> scalars;
    std::vector<std::pair<Addr, std::size_t>> callShape;
};

// Core::adoptArchState carries the checkpoint into instsRetired(), so
// the core's count is already the absolute retire position.
FinalState
capture(const System &sys)
{
    FinalState s;
    s.retired = sys.core().instsRetired();
    s.pc = sys.core().pc();
    s.cmp = sys.core().regs().cmpState();
    s.halted = sys.core().halted();
    for (Addr a = Program::dataBase; a + 4 <= sys.memory().size();
         a += 4) {
        s.dataImage.push_back(sys.memory().readWord(a));
    }
    for (unsigned i = 0; i < regsPerClass; ++i) {
        s.scalars.push_back(
            sys.core().regs().read(RegId(RegClass::Int, i)));
        s.scalars.push_back(
            sys.core().regs().read(RegId(RegClass::Flt, i)));
    }
    for (const auto &[target, stamps] : sys.core().callLog())
        s.callShape.emplace_back(target, stamps.size());
    return s;
}

void
expectSameFinalState(const FinalState &warm, const FinalState &pure,
                     const std::string &what)
{
    EXPECT_EQ(warm.retired, pure.retired) << what;
    EXPECT_EQ(warm.pc, pure.pc) << what;
    EXPECT_EQ(warm.cmp, pure.cmp) << what;
    EXPECT_EQ(warm.halted, pure.halted) << what;
    EXPECT_EQ(warm.scalars, pure.scalars) << what;
    EXPECT_EQ(warm.dataImage, pure.dataImage) << what;
    EXPECT_EQ(warm.callShape, pure.callShape) << what;
}

const Workload *
suiteWorkload(const std::vector<std::unique_ptr<Workload>> &suite,
              const std::string &name)
{
    for (const auto &wl : suite) {
        if (wl->name() == name)
            return wl.get();
    }
    return nullptr;
}

TEST(FastWarmup, HandoffMatchesPureCycleRun)
{
    const auto suite = makeSuite();
    for (const auto &[name, mode, emit, width] :
         {std::tuple{"fir", ExecMode::ScalarBaseline,
                     EmitOptions::Mode::Scalarized, 0u},
          std::tuple{"fir", ExecMode::NativeSimd,
                     EmitOptions::Mode::Native, 8u},
          std::tuple{"fft", ExecMode::NativeSimd,
                     EmitOptions::Mode::Native, 8u}}) {
        const Workload *wl = suiteWorkload(suite, name);
        ASSERT_NE(wl, nullptr);
        const auto build = wl->build(emit, width ? width : 8);
        const SystemConfig config = SystemConfig::make(mode, width);

        System pure(config, build.prog);
        pure.run();
        const FinalState pureState = capture(pure);

        System warm(config, build.prog);
        const WarmupResult w = fastForward(warm, 1000);
        EXPECT_EQ(w.retired, 1000u) << name;
        EXPECT_FALSE(w.halted) << name;
        warm.run();
        const FinalState warmState = capture(warm);
        expectSameFinalState(warmState, pureState, name);

        // The whole point: cycle statistics cover the remainder only.
        EXPECT_LT(warm.cycles(), pure.cycles()) << name;
        EXPECT_EQ(warm.core().stats().get("insts") + w.retired,
                  pure.core().instsRetired())
            << name;
    }
}

TEST(FastWarmup, CheckpointPastHaltRunsEverythingFunctionally)
{
    const auto suite = makeSuite();
    const Workload *wl = suiteWorkload(suite, "fir");
    ASSERT_NE(wl, nullptr);
    const auto build = wl->build(EmitOptions::Mode::Scalarized, 8);
    const SystemConfig config =
        SystemConfig::make(ExecMode::ScalarBaseline, 0);

    System pure(config, build.prog);
    pure.run();
    const FinalState pureState = capture(pure);

    System warm(config, build.prog);
    const WarmupResult w =
        fastForward(warm, 1'000'000'000ull);
    EXPECT_TRUE(w.halted);
    EXPECT_EQ(w.retired, pureState.retired);
    warm.run();
    expectSameFinalState(capture(warm), pureState,
                         "past-halt");
    // The cycle core executed nothing itself.
    EXPECT_EQ(warm.core().stats().get("insts"), 0u);
}

TEST(FastWarmup, FaultEventsSplitAroundCheckpoint)
{
    const auto suite = makeSuite();
    const Workload *wl = suiteWorkload(suite, "fir");
    ASSERT_NE(wl, nullptr);
    const auto build = wl->build(EmitOptions::Mode::Scalarized, 8);
    SystemConfig config =
        SystemConfig::make(ExecMode::ScalarBaseline, 0);
    config.core.faults = FaultSchedule::parse("int@50+int@5000");

    System pure(config, build.prog);
    pure.run();
    const FinalState pureState = capture(pure);

    // int@50 fires during the functional prefix; int@5000 must fire
    // in the cycle core after the handoff.
    System warm(config, build.prog);
    const WarmupResult w = fastForward(warm, 1000);
    EXPECT_EQ(w.retired, 1000u);
    warm.run();
    expectSameFinalState(capture(warm), pureState,
                         "fault-split");
    EXPECT_EQ(warm.core().stats().get("faults.int"), 1u);
    EXPECT_EQ(pure.core().stats().get("faults.int"), 2u);
}

TEST(FastWarmup, PeriodicInterruptScheduleRejected)
{
    const auto suite = makeSuite();
    const Workload *wl = suiteWorkload(suite, "fir");
    ASSERT_NE(wl, nullptr);
    const auto build = wl->build(EmitOptions::Mode::Scalarized, 8);
    SystemConfig config =
        SystemConfig::make(ExecMode::ScalarBaseline, 0);
    config.core.faults = FaultSchedule::periodic(100);
    System sys(config, build.prog);
    EXPECT_THROW(fastForward(sys, 100), FatalError);
}

} // namespace
} // namespace liquid::fast
