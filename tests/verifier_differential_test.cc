/**
 * @file
 * Differential checking of the static verifier against the dynamic
 * translator (via the offline translator, which drives the identical
 * rule automaton): over every workload-suite kernel and 200+
 * randomized vir::Kernels,
 *
 *   static Ok    => dynamic translation commits, with the predicted
 *                   width, microcode size and constant-vector count;
 *   static Error => dynamic translation aborts with the same reason
 *                   (and therefore the same reason class);
 *   static Warn  => permitted either way, but the diagnostic must
 *                   name the runtime condition.
 */

#include <gtest/gtest.h>

#include <set>

#include "random_kernels.hh"
#include "translator/offline.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

struct Tally
{
    unsigned ok = 0;
    unsigned warn = 0;
    unsigned error = 0;
};

void
checkRegion(const Program &prog, int entry, unsigned width,
            unsigned hint, Tally &tally)
{
    VerifyOptions opts;
    opts.config.simdWidth = width;
    opts.widthFallback = false;  // predict a single offline attempt
    const RegionReport r = verifyRegion(prog, entry, opts, hint);
    const OfflineResult off = translateOffline(prog, entry, width, hint);

    switch (r.verdict) {
      case Severity::Ok:
        ++tally.ok;
        ASSERT_TRUE(off.ok) << "static Ok but dynamic aborted with "
                            << off.abortReason;
        EXPECT_EQ(r.predictedWidth, off.entry.simdWidth);
        EXPECT_EQ(r.predictedUcode, off.entry.insts.size());
        EXPECT_EQ(r.predictedCvecs, off.entry.cvecs.size());
        break;
      case Severity::Error:
        ++tally.error;
        if (r.depMiscompile) {
            // The one Error that predicts a COMMIT: the dynamic
            // dependence check cannot see the pair depcheck found, so
            // translation goes through and the committed microcode
            // diverges (the oracle test proves the divergence).
            ASSERT_TRUE(off.ok)
                << "depMiscompile predicts a commit but dynamic "
                << "aborted with " << off.abortReason;
            EXPECT_EQ(r.reason, AbortReason::MemoryDependence);
            break;
        }
        ASSERT_FALSE(off.ok) << "static Error (" <<
            abortReasonName(r.reason) << ") but dynamic committed";
        EXPECT_EQ(abortReasonClass(r.reason),
                  abortReasonClass(off.reason))
            << "static " << abortReasonName(r.reason) << " vs dynamic "
            << off.abortReason;
        // The rule mirror is exact, not just class-exact.
        EXPECT_EQ(r.reason, off.reason)
            << "static " << abortReasonName(r.reason) << " vs dynamic "
            << off.abortReason;
        break;
      case Severity::Warn: {
        ++tally.warn;
        bool named = false;
        for (const Diagnostic &d : r.diags) {
            if (d.severity == Severity::Warn && !d.message.empty())
                named = true;
        }
        EXPECT_TRUE(named) << "Warn verdict without a named condition";
        break;
      }
    }
}

TEST(VerifierDifferential, SuiteKernelsAgree)
{
    Tally tally;
    for (const auto &wl : makeSuite()) {
        const Workload::Build build =
            wl->build(EmitOptions::Mode::Scalarized, 8, true);
        std::set<int> seen;
        for (const HintedCall &call : build.prog.hintedCalls()) {
            if (!seen.insert(call.target).second)
                continue;
            for (unsigned width : {2u, 4u, 8u, 16u}) {
                SCOPED_TRACE(wl->name() + " region@" +
                             std::to_string(call.target) + " w=" +
                             std::to_string(width));
                checkRegion(build.prog, call.target, width,
                            call.widthHint, tally);
            }
        }
    }
    // The suite is fully static: data images, trip counts and offset
    // tables are all known, so nothing should be runtime-dependent,
    // and the suite must exercise both verdicts.
    EXPECT_GT(tally.ok, 0u);
    EXPECT_EQ(tally.warn, 0u);
}

TEST(VerifierDifferential, RandomKernelsAgree)
{
    Tally tally;
    unsigned kernels = 0;
    for (const unsigned seed : {101u, 202u, 303u, 404u, 505u}) {
        Rng rng(seed);
        for (unsigned trial = 0; trial < 55; ++trial) {
            const GeneratedKernel g = generateKernel(rng, trial);
            Rng d(seed * 131 + trial);
            Program prog;
            try {
                prog = buildGeneratedProgram(
                    g, d, EmitOptions::Mode::Scalarized, 8);
            } catch (const PanicError &) {
                // The generator occasionally exceeds a scalarizer
                // limit (register pressure / staging aliasing); such
                // kernels never reach the translator at all.
                continue;
            } catch (const FatalError &) {
                continue;
            }
            ++kernels;
            const int entry = prog.labelIndex(g.kernel.name());
            // Width 8 is the common case; width 2 forces the width-
            // class aborts (shuffles/masks wider than the machine).
            for (unsigned width : {2u, 8u}) {
                SCOPED_TRACE("seed=" + std::to_string(seed) +
                             " trial=" + std::to_string(trial) +
                             " w=" + std::to_string(width));
                checkRegion(prog, entry, width, g.kernel.maxWidth(),
                            tally);
            }
        }
    }
    EXPECT_GE(kernels, 200u);
    EXPECT_GT(tally.ok, 0u);
    EXPECT_GT(tally.error, 0u);
    EXPECT_EQ(tally.warn, 0u);
}

TEST(VerifierDifferential, SabotagedKernelsAbortIdentically)
{
    using Sabotage = EmitOptions::Sabotage;
    const struct
    {
        Sabotage kind;
        AbortReason reason;
    } table[] = {
        {Sabotage::UntranslatableOp,
         AbortReason::UntranslatableOpcode},
        {Sabotage::NestedCall, AbortReason::NestedCall},
        {Sabotage::ForwardBranch, AbortReason::ForwardBranch},
        {Sabotage::IvArithmetic, AbortReason::IvArithmetic},
        {Sabotage::ScalarStore, AbortReason::StoreScalarData},
        // Load-then-store into one array: the translator's interval
        // test fires, and the mirror predicts the same abort.
        {Sabotage::OverlapStoreAfterLoad,
         AbortReason::MemoryDependence},
    };

    Rng rng(5150);
    for (unsigned trial = 0; trial < 10; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        for (const auto &t : table) {
            SCOPED_TRACE("trial=" + std::to_string(trial) + " " +
                         abortReasonName(t.reason));
            Rng d(trial);
            const Program prog = buildGeneratedProgram(
                g, d, EmitOptions::Mode::Scalarized, 8, t.kind);
            const int entry = prog.labelIndex(g.kernel.name());

            VerifyOptions opts;
            opts.widthFallback = false;
            const RegionReport r =
                verifyRegion(prog, entry, opts, g.kernel.maxWidth());
            EXPECT_EQ(r.verdict, Severity::Error);
            EXPECT_EQ(r.reason, t.reason);

            const OfflineResult off =
                translateOffline(prog, entry, 8, g.kernel.maxWidth());
            EXPECT_FALSE(off.ok);
            EXPECT_EQ(off.reason, t.reason);
        }
    }
}

TEST(VerifierDifferential, SilentMiscompilesCommitOnBothSides)
{
    // Overlap shapes the translator's interval test cannot see: the
    // dynamic side commits, and the verifier must call the commit out
    // as a dependence miscompile rather than predicting an abort.
    using Sabotage = EmitOptions::Sabotage;
    Rng rng(6160);
    for (unsigned trial = 0; trial < 4; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        for (const Sabotage kind : {Sabotage::OverlapStoreStore,
                                    Sabotage::OverlapLoadAhead}) {
            SCOPED_TRACE("trial=" + std::to_string(trial) + " kind=" +
                         std::to_string(static_cast<int>(kind)));
            Rng d(trial * 7 + 1);
            const Program prog = buildGeneratedProgram(
                g, d, EmitOptions::Mode::Scalarized, 8, kind, 1);
            const int entry = prog.labelIndex(g.kernel.name());

            VerifyOptions opts;
            opts.widthFallback = false;
            const RegionReport r =
                verifyRegion(prog, entry, opts, g.kernel.maxWidth());
            EXPECT_EQ(r.verdict, Severity::Error);
            EXPECT_EQ(r.reason, AbortReason::MemoryDependence);
            EXPECT_TRUE(r.depMiscompile);

            const OfflineResult off =
                translateOffline(prog, entry, 8, g.kernel.maxWidth());
            EXPECT_TRUE(off.ok) << off.abortReason;
        }
    }
}

} // namespace
} // namespace liquid
