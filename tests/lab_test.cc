/**
 * @file
 * Lab orchestration subsystem tests: matrix expansion, parallel
 * determinism (byte-identical JSON at 1 vs 8 workers), the on-disk
 * result cache (second run performs zero simulations), the regression
 * gate, and the StatGroup single-owner contract.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <type_traits>

#include "common/stats.hh"
#include "lab/diff.hh"
#include "lab/experiments.hh"
#include "lab/result_cache.hh"
#include "lab/runner.hh"
#include "lab/spec.hh"

namespace liquid::lab
{
namespace
{

// StatGroups are owned by exactly one component of one System; the
// move-only type is what lets the runner simulate Systems on many
// threads without aliased counters.
static_assert(!std::is_copy_constructible_v<StatGroup>,
              "StatGroup must not be copyable (single-System-owned)");
static_assert(!std::is_copy_assignable_v<StatGroup>,
              "StatGroup must not be copy-assignable");
static_assert(std::is_move_constructible_v<StatGroup>,
              "StatGroup ownership must be transferable");

/** A small, fast matrix exercising every job axis. */
std::vector<Job>
smallMatrix()
{
    ExperimentSpec spec;
    spec.name = "labtest";
    spec.workloads = {"fir", "lu", "fft"};
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    spec.widths = {2, 8};
    spec.repsList = {2};
    spec.includeIdeal = true;
    spec.idealWidth = 8;
    return spec.expand();
}

struct TempDir
{
    std::filesystem::path path;

    explicit TempDir(const std::string &name)
        : path(std::filesystem::temp_directory_path() / name)
    {
        std::filesystem::remove_all(path);
    }

    ~TempDir() { std::filesystem::remove_all(path); }
};

TEST(LabSpec, SuiteExpansionAndKeys)
{
    ExperimentSpec spec;
    spec.name = "x";
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    spec.widths = {2, 4, 8, 16};
    const auto jobs = spec.expand();

    // Empty workload list means the whole 15-benchmark suite; the
    // scalar baseline has no width axis, so each workload yields one
    // scalar job plus four Liquid jobs.
    ASSERT_EQ(suiteWorkloadNames().size(), 15u);
    EXPECT_EQ(jobs.size(), 15u * (1 + 4));

    std::set<std::string> keys;
    unsigned scalar = 0;
    for (const auto &job : jobs) {
        EXPECT_TRUE(keys.insert(job.key()).second)
            << "duplicate key " << job.key();
        if (job.mode == ExecMode::ScalarBaseline) {
            ++scalar;
            EXPECT_EQ(job.width, 0u) << job.key();
        }
    }
    EXPECT_EQ(scalar, 15u);
}

TEST(LabSpec, KeyFormatAndSeeds)
{
    Job job;
    job.experiment = "fig6";
    job.workload = "fir";
    job.mode = ExecMode::Liquid;
    job.width = 8;
    EXPECT_EQ(job.key(), "fig6/fir/liquid/w8");

    job.warmStart = true;
    EXPECT_EQ(job.key(), "fig6/fir/liquid/w8/ideal");

    job.warmStart = false;
    job.over.ucodeEntries = 4;
    job.repsOverride = 128;
    EXPECT_EQ(job.key(), "fig6/fir/liquid/w8/e4/reps128");

    // Distinct keys must give distinct deterministic seeds.
    Job other = job;
    other.width = 16;
    EXPECT_NE(job.rngSeed(), other.rngSeed());
    EXPECT_EQ(job.rngSeed(), fnv1a(job.key()));
}

TEST(LabSpec, OverridesApplyAndDedup)
{
    Job job;
    job.experiment = "x";
    job.workload = "fir";
    job.mode = ExecMode::Liquid;
    job.width = 8;
    job.over.ucodeEntries = 2;
    job.over.dcacheSizeBytes = 4096;
    job.over.dcacheAssoc = 64;
    const SystemConfig config = job.config();
    EXPECT_EQ(config.ucodeCache.entries, 2u);
    EXPECT_EQ(config.core.dcache.sizeBytes, 4096u);
    EXPECT_EQ(config.core.dcache.assoc, 64u);

    // Two specs covering the same point collapse to one job.
    ExperimentSpec a, b;
    a.name = b.name = "x";
    a.workloads = b.workloads = {"fir"};
    a.modes = b.modes = {ExecMode::Liquid};
    a.widths = b.widths = {8};
    ExperimentMatrix matrix;
    matrix.specs = {a, b};
    EXPECT_EQ(matrix.expand().size(), 1u);
}

TEST(LabSpec, ModeNamesRoundTrip)
{
    for (ExecMode mode : {ExecMode::ScalarBaseline, ExecMode::Liquid,
                          ExecMode::NativeSimd})
        EXPECT_EQ(modeFromName(modeName(mode)), mode);
}

TEST(LabRunner, ParallelRunsAreByteIdentical)
{
    const auto jobs = smallMatrix();
    RunnerStats serialStats, parallelStats;
    const ResultSet serial = Runner(1).run(jobs, nullptr, &serialStats);
    const ResultSet parallel =
        Runner(8).run(jobs, nullptr, &parallelStats);

    EXPECT_EQ(serialStats.jobs, jobs.size());
    EXPECT_EQ(parallelStats.jobs, jobs.size());
    EXPECT_EQ(serialStats.simulations, jobs.size());
    EXPECT_EQ(parallelStats.simulations, jobs.size());

    // The headline requirement: the serialized results are
    // byte-identical no matter how many workers ran the matrix.
    EXPECT_EQ(serial.writeString(), parallel.writeString());
}

TEST(LabRunner, ResultCacheSecondRunSimulatesNothing)
{
    const auto jobs = smallMatrix();
    TempDir dir("liquid-lab-test-cache");
    const ResultCache cache(dir.path.string());

    RunnerStats cold;
    const ResultSet first = Runner(2).run(jobs, &cache, &cold);
    EXPECT_EQ(cold.simulations, jobs.size());
    EXPECT_EQ(cold.cacheHits, 0u);

    RunnerStats warm;
    const ResultSet second = Runner(2).run(jobs, &cache, &warm);
    EXPECT_EQ(warm.simulations, 0u);
    EXPECT_EQ(warm.cacheHits, jobs.size());

    // Cached results serialize identically to fresh ones.
    EXPECT_EQ(first.writeString(), second.writeString());
}

TEST(LabRunner, CacheKeySeparatesConfigurations)
{
    Job job;
    job.experiment = "x";
    job.workload = "fir";
    job.mode = ExecMode::Liquid;
    job.width = 8;
    job.repsOverride = 2;
    const auto build = buildJob(job);
    const std::string base = contentHash(job, build, job.config());

    SystemConfig tweaked = job.config();
    tweaked.translator.latencyPerInst += 1;
    EXPECT_NE(contentHash(job, build, tweaked), base);

    Job ideal = job;
    ideal.warmStart = true;
    EXPECT_NE(contentHash(ideal, build, ideal.config()), base);
}

TEST(LabResults, JsonRoundTrip)
{
    ExperimentSpec spec;
    spec.name = "rt";
    spec.workloads = {"fir"};
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    spec.widths = {4};
    spec.repsList = {2};
    const ResultSet results = Runner(1).run(spec.expand());
    ASSERT_EQ(results.size(), 2u);

    const std::string text = results.writeString();
    const ResultSet back = ResultSet::fromJson(json::parse(text));
    EXPECT_EQ(back.writeString(), text);

    const JobResult &liquid = back.at("rt/fir/liquid/w4/reps2");
    EXPECT_GT(liquid.outcome.cycles, 0u);
    EXPECT_GT(liquid.outcome.translations, 0u);
    EXPECT_GT(liquid.outcome.counters.at("core.insts"), 0u);
    EXPECT_FALSE(liquid.outcome.callLog.empty());
    EXPECT_LT(liquid.outcome.cycles,
              back.cycles("rt/fir/scalar/reps2"));
}

TEST(LabDiff, GateCatchesInjectedRegression)
{
    ExperimentSpec spec;
    spec.name = "gate";
    spec.workloads = {"fir", "lu"};
    spec.modes = {ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = {2};
    const ResultSet baseline = Runner(1).run(spec.expand());

    // Identical results pass.
    EXPECT_TRUE(diffResults(baseline, baseline).ok());

    auto inflate = [&](double factor) {
        ResultSet tampered;
        for (JobResult r : baseline.results()) {
            if (r.job.workload == "fir")
                r.outcome.cycles = static_cast<Cycles>(
                    static_cast<double>(r.outcome.cycles) * factor);
            tampered.add(std::move(r));
        }
        tampered.sortByKey();
        return tampered;
    };

    // A 5% cycle regression trips the default 2% gate...
    const DiffReport bad = diffResults(baseline, inflate(1.05));
    EXPECT_FALSE(bad.ok());
    ASSERT_EQ(bad.regressions.size(), 1u);
    EXPECT_EQ(bad.regressions[0].metric, "cycles");
    EXPECT_NEAR(bad.regressions[0].relative, 0.05, 0.01);

    // ...a 1% wobble does not...
    EXPECT_TRUE(diffResults(baseline, inflate(1.01)).ok());

    // ...and a beyond-tolerance improvement is reported, not failed.
    const DiffReport better = diffResults(baseline, inflate(0.90));
    EXPECT_TRUE(better.ok());
    EXPECT_EQ(better.improvements.size(), 1u);

    // A job missing from the new results is always a failure.
    ResultSet partial;
    for (JobResult r : baseline.results())
        if (r.job.workload != "fir")
            partial.add(std::move(r));
    const DiffReport missing = diffResults(baseline, partial);
    EXPECT_FALSE(missing.ok());
    ASSERT_EQ(missing.regressions.size(), 1u);
    EXPECT_EQ(missing.regressions[0].metric, "missing");
}

TEST(LabCampaigns, SmokeMatrixShrinksButCoversTheSuite)
{
    for (const auto &campaign : standardCampaigns(/*smoke=*/true)) {
        const auto jobs = campaign.matrix.expand();
        EXPECT_FALSE(jobs.empty()) << campaign.name;
        std::set<std::string> workloads;
        for (const auto &job : jobs) {
            workloads.insert(job.workload);
            EXPECT_EQ(job.repsOverride, 2u) << job.key();
        }
        EXPECT_EQ(workloads.size(), 15u) << campaign.name;

        const auto full =
            campaignByName(campaign.name, /*smoke=*/false)
                .matrix.expand();
        EXPECT_GE(full.size(), jobs.size()) << campaign.name;
    }
}

TEST(LabChaos, FaultOverrideTagsTheJobKey)
{
    Job job;
    job.experiment = "chaos";
    job.workload = "fir";
    job.mode = ExecMode::Liquid;
    job.width = 8;
    job.over.faults = "int@40+flush@80";
    EXPECT_EQ(job.key(), "chaos/fir/liquid/w8/fint@40+flush@80");

    // The override reaches the core's fault schedule.
    const SystemConfig config = job.config();
    EXPECT_EQ(config.core.faults.key(), "int@40+flush@80");

    // Distinct schedules are distinct cache/config points.
    Job other = job;
    other.over.faults = "flush@80";
    EXPECT_NE(job.key(), other.key());
    EXPECT_NE(job.rngSeed(), other.rngSeed());
}

TEST(LabChaos, CampaignCoversEveryFaultKindPlusControl)
{
    const Campaign campaign = campaignByName("chaos", /*smoke=*/true);
    const std::vector<Job> jobs = campaign.matrix.expand();
    ASSERT_FALSE(jobs.empty());

    std::set<std::string> schedules;
    bool control = false;
    for (const Job &job : jobs) {
        EXPECT_EQ(job.mode, ExecMode::Liquid) << job.key();
        if (job.over.faults)
            schedules.insert(*job.over.faults);
        else
            control = true;
    }
    EXPECT_TRUE(control) << "chaos campaign lacks a fault-free control";
    // Every fault kind appears in at least one scheduled override.
    for (const char *tag : {"p", "int@", "flush@", "evict@", "smc@",
                            "dcache@"}) {
        bool found = false;
        for (const auto &key : schedules)
            found = found || key.rfind(tag, 0) == 0;
        EXPECT_TRUE(found) << "no schedule starts with " << tag;
    }
}

TEST(LabChaos, RetranslationsFlowIntoResultsJson)
{
    // An SMC store at retire 100 lands inside fir's first region
    // capture, aborts it, and forces a fresh translation on the next
    // call — a deterministic loss/re-translate cycle even at the
    // smoke trip counts.
    ExperimentSpec spec;
    spec.name = "chaosrt";
    spec.workloads = {"fir"};
    spec.modes = {ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = {2};
    ConfigOverrides over;
    over.faults = "smc@100";
    spec.overrides = {ConfigOverrides{}, over};
    const ResultSet results = Runner(1).run(spec.expand());
    ASSERT_EQ(results.size(), 2u);

    const std::string text = results.writeString();
    const ResultSet back = ResultSet::fromJson(json::parse(text));
    EXPECT_EQ(back.writeString(), text);

    const JobResult &faulted =
        back.at("chaosrt/fir/liquid/w8/fsmc@100/reps2");
    EXPECT_GE(faulted.outcome.retranslations, 1u);
    EXPECT_GE(faulted.outcome.counters.at("translator.retranslations"),
              1u);
    // Per-AbortReason attribution survives the JSON round trip.
    EXPECT_GE(faulted.outcome.counters.at(
                  "translator.retranslate.smcInvalidated"),
              1u);
    EXPECT_GE(faulted.outcome.counters.at("core.faults.smc"), 1u);

    const JobResult &control = back.at("chaosrt/fir/liquid/w8/reps2");
    EXPECT_EQ(control.outcome.retranslations, 0u);
    EXPECT_FALSE(control.job.over.faults.has_value());
}

TEST(LabChaos, LegacyInterruptPeriodOverrideStillParses)
{
    // Result files written before the chaos subsystem spelled a
    // periodic interrupt as a bare number, untagged in the job key.
    const char *legacy = R"({
      "schema": "liquid-lab-results-v1",
      "modelVersion": "liquid-sim-2026.08-1",
      "jobs": [{
        "key": "old/fir/liquid/w8",
        "experiment": "old", "workload": "fir",
        "mode": "liquid", "width": 8,
        "overrides": {"interruptPeriod": 700},
        "cycles": 123, "translations": 1, "aborts": 0,
        "ucodeDispatches": 1,
        "counters": {}, "callLog": {}
      }]
    })";
    const ResultSet back = ResultSet::fromJson(json::parse(legacy));
    const JobResult &r = back.results().front();
    ASSERT_TRUE(r.job.over.faults.has_value());
    EXPECT_EQ(*r.job.over.faults, "p700");
    EXPECT_EQ(r.job.config().core.faults.interruptPeriod, 700u);
    // Re-serializing writes the modern spelling and the modern key.
    EXPECT_NE(back.writeString().find("\"faults\": \"p700\""),
              std::string::npos);
}

TEST(LabStats, MergeAccumulatesCounters)
{
    StatGroup a("a"), b("b");
    a.inc("cycles", 10);
    a.inc("insts", 3);
    b.inc("cycles", 5);
    b.inc("misses", 7);
    a.merge(b);
    EXPECT_EQ(a.get("cycles"), 15u);
    EXPECT_EQ(a.get("insts"), 3u);
    EXPECT_EQ(a.get("misses"), 7u);
    EXPECT_EQ(b.get("cycles"), 5u);

    // Const-correct range iteration.
    const StatGroup &view = a;
    std::uint64_t total = 0;
    for (const auto &[stat, value] : view)
        total += value;
    EXPECT_EQ(total, 25u);
}

} // namespace
} // namespace liquid::lab
