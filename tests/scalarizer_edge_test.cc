/**
 * @file
 * Scalarizer edge cases: table interning, register pressure, values
 * crossing multiple stages, store-fused permutations with several
 * consumers, permutations of cross-stage values, byte/halfword element
 * types, and constant-table periodicity.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/main_memory.hh"
#include "scalarizer/scalarizer.hh"
#include "workloads/vir_interp.hh"

namespace liquid
{
namespace
{

using vir::Kernel;

Program
arraysProgram(unsigned n)
{
    Program prog;
    std::vector<Word> a(n + 16), b(n + 16);
    for (unsigned i = 0; i < a.size(); ++i) {
        a[i] = 3 * i + 1;
        b[i] = 1000 - i;
    }
    prog.allocWords("a", a);
    prog.allocWords("b", b);
    prog.allocData("c", (n + 16) * 4);
    prog.allocData("d", (n + 16) * 4);
    return prog;
}

/** Emit, run on a plain core, and compare against the interpreter. */
void
runAndCheck(Program &prog, const Kernel &kernel,
            std::initializer_list<const char *> outputs)
{
    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, kernel.name()));
    prog.addInst(Inst::halt());
    prog.resolveBranches();

    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();

    MainMemory golden = MainMemory::forProgram(prog);
    interpretKernel(kernel, prog, golden);
    for (const char *name : outputs) {
        for (unsigned i = 0; i < kernel.tripCount(); ++i) {
            const Addr addr = prog.symbol(name) + 4 * i;
            ASSERT_EQ(mem.readWord(addr), golden.readWord(addr))
                << name << "[" << i << "]";
        }
    }
}

TEST(ScalarizerEdge, RoTablesInternedByContent)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    // Two identical permutations and two identical masks: one offset
    // table and one mask table must be shared.
    const int p1 = k.perm(va, PermKind::Reverse, 4);
    const int vb = k.load("b");
    const int p2 = k.perm(vb, PermKind::Reverse, 4);
    const int m1 = k.mask(p1, 0x5, 4);
    const int m2 = k.mask(p2, 0x5, 4);
    k.store("c", k.bin(Opcode::Add, m1, m2));

    emitKernel(prog, k, EmitOptions{});
    EXPECT_TRUE(prog.hasSymbol("k_ro0"));
    EXPECT_TRUE(prog.hasSymbol("k_ro1"));
    EXPECT_FALSE(prog.hasSymbol("k_ro2"))
        << "identical tables must be interned";

    runAndCheck(prog, k, {"c"});
}

TEST(ScalarizerEdge, RegisterPressureIsDiagnosed)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    // Build far more simultaneously-live values than the pool holds:
    // every load is kept alive until a final combining tree.
    std::vector<int> vals;
    for (int i = 0; i < 14; ++i)
        vals.push_back(k.load(i % 2 ? "a" : "b", 4, false, false, i % 3));
    int sum = vals[0];
    for (std::size_t i = 1; i < vals.size(); ++i)
        sum = k.bin(Opcode::Add, sum, vals[i]);
    // Keep all loads live to the end by also combining in reverse.
    int alt = vals.back();
    for (std::size_t i = vals.size() - 1; i-- > 0;)
        alt = k.bin(Opcode::Eor, alt, vals[i]);
    k.store("c", k.bin(Opcode::Orr, sum, alt));
    EXPECT_THROW(emitKernel(prog, k, EmitOptions{}), FatalError);
}

TEST(ScalarizerEdge, ValueCrossingTwoStageBoundaries)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    const int base = k.bin(Opcode::Add, va, vb);  // used in stages 0,1,2
    const int p1 = k.perm(base, PermKind::SwapPairs, 2);
    const int s1 = k.bin(Opcode::Add, p1, base);        // stage 1
    const int p2 = k.perm(s1, PermKind::SwapHalves, 4);
    const int s2 = k.bin(Opcode::Sub, p2, base);        // stage 2
    k.store("c", s2);

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 3u);
    runAndCheck(prog, k, {"c"});
}

TEST(ScalarizerEdge, StoreFusedPermWithTwoStoreConsumers)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    const int sum = k.bin(Opcode::Add, va, vb);
    const int p = k.perm(sum, PermKind::RotUp, 4);
    k.store("c", p);
    k.store("d", p);  // both consumers are stores: still one stage

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 1u);
    runAndCheck(prog, k, {"c", "d"});
}

TEST(ScalarizerEdge, PermutationOfCrossStageValue)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    const int x = k.bin(Opcode::Add, va, vb);
    // First split: perm of a computed value with a non-store use.
    const int p1 = k.perm(x, PermKind::SwapHalves, 4);
    const int y = k.bin(Opcode::Eor, p1, vb);
    k.store("c", y);
    // x is now materialized in a tmp; a later permutation of x must
    // become an offset-indexed load of that tmp (no further split).
    const int p2 = k.perm(x, PermKind::Reverse, 4);
    k.store("d", k.bin(Opcode::Add, p2, p2));

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 2u)
        << "perm of a materialized value fuses with its tmp load";
    runAndCheck(prog, k, {"c", "d"});
}

TEST(ScalarizerEdge, ByteElementsRoundTrip)
{
    Program prog;
    prog.allocData("bytes", 32 + 16);
    prog.allocData("outb", 32 + 16);
    for (unsigned i = 0; i < 32; ++i)
        prog.initByte(prog.symbol("bytes") + i,
                      static_cast<std::uint8_t>(200 + i));

    Kernel k("k", 32);
    const int v = k.load("bytes", 1, false, false);  // zero-extended
    const int shifted = k.binImm(Opcode::Lsr, v, 1);
    k.store("outb", shifted);

    prog.defineLabel("main");
    emitKernel(prog, k,
               EmitOptions{EmitOptions::Mode::InlineScalar, 8, true,
                           "k"});
    prog.addInst(Inst::halt());
    prog.resolveBranches();

    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(mem.readByte(prog.symbol("outb") + i),
                  (200 + i) / 2 & 0xFF);
    }
}

TEST(ScalarizerEdge, ConstTablePeriodicityExpanded)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    k.store("c", k.binConst(Opcode::Add, va, {7, 8, 9, 10}));
    emitKernel(prog, k, EmitOptions{});

    // The table repeats the 4-lane pattern out to the trip count.
    const Addr tab = prog.symbol("k_ro0");
    ASSERT_TRUE(prog.isReadOnly(tab));
    MainMemory mem = MainMemory::forProgram(prog);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readWord(tab + 4 * i), 7 + i % 4);

    runAndCheck(prog, k, {"c"});
}

TEST(ScalarizerEdge, AccumulatorsSurviveFission)
{
    Program prog = arraysProgram(16);
    Kernel k("k", 16);
    const int acc = k.newAcc("sum", Opcode::Add, 5);
    const int va = k.load("a");
    k.reduce(acc, va);                     // stage 0
    const int p = k.perm(va, PermKind::SwapPairs, 2);
    const int y = k.bin(Opcode::Add, p, va);
    k.reduce(acc, y);                      // same register, later stage
    k.store("c", y);

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    ASSERT_EQ(r.accRegs.size(), 1u);

    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, "k"));
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();

    MainMemory golden = MainMemory::forProgram(prog);
    const auto accs = interpretKernel(k, prog, golden);
    EXPECT_EQ(core.regs().read(r.accRegs[0]), accs[0]);
}

} // namespace
} // namespace liquid
