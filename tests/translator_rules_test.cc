/**
 * @file
 * Dynamic-translator tests: one test per rule of paper Table 3, plus
 * legality/abort behaviour, hint gating, blacklist, translation
 * latency, and failure injection.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/system.hh"

namespace liquid
{
namespace
{

/** Assemble + run under Liquid mode; expose everything for inspection. */
struct LiquidRun
{
    Program prog;
    SystemConfig config;
    System sys;

    LiquidRun(const std::string &src, unsigned width = 8,
              std::function<void(SystemConfig &)> tweak = {})
        : prog(assemble(src)),
          config([&] {
              SystemConfig c = SystemConfig::make(ExecMode::Liquid, width);
              if (tweak)
                  tweak(c);
              return c;
          }()),
          sys(config, prog)
    {
        sys.run();
    }

    const UcodeEntry *
    ucodeFor(const std::string &fn)
    {
        return sys.ucodeCache().lookup(
            Program::instAddr(prog.labelIndex(fn)),
            sys.cycles() + 1'000'000);
    }

    std::uint64_t tstat(const std::string &s)
    {
        return sys.translator().stats().get(s);
    }
};

/** Scalar copy-and-add loop: rules 1, 2, 4, 10, 11. */
const char *copyLoop = R"(
    .words src 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
    .data dst 64
    fn:
        mov r0, #0
    top:
        ldw r1, [src + r0]
        add r1, r1, #100
        stw [dst + r0], r1
        add r0, r0, #1
        cmp r0, #16
        blt top
        ret
    main:
        bl.simd fn
        bl.simd fn
        bl.simd fn
        halt
)";

TEST(TranslatorRules, BasicLoopTranslates)
{
    LiquidRun r(copyLoop);
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_EQ(r.tstat("aborts"), 0u);

    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    // mov; vldw; vadd#; vstw; add#8; cmp; blt
    ASSERT_EQ(uc->insts.size(), 7u);
    EXPECT_EQ(uc->insts[0].op, Opcode::Mov);
    EXPECT_EQ(uc->insts[1].op, Opcode::Vldw);
    EXPECT_EQ(uc->insts[1].dst, RegId(RegClass::Vec, 1));
    EXPECT_EQ(uc->insts[2].op, Opcode::Vadd);
    EXPECT_TRUE(uc->insts[2].hasImm);
    EXPECT_EQ(uc->insts[2].imm, 100);
    EXPECT_EQ(uc->insts[3].op, Opcode::Vstw);
    EXPECT_EQ(uc->insts[4].op, Opcode::Add);
    EXPECT_EQ(uc->insts[4].imm, 8);  // rule 10: stride becomes W
    EXPECT_EQ(uc->insts[5].op, Opcode::Cmp);
    EXPECT_EQ(uc->insts[6].op, Opcode::B);
    EXPECT_EQ(uc->insts[6].target, 1);  // loop head past the mov
}

TEST(TranslatorRules, MicrocodeExecutesCorrectly)
{
    LiquidRun r(copyLoop);
    EXPECT_GE(r.sys.core().stats().get("ucodeDispatches"), 1u);
    // dst = src + 100 regardless of which calls ran as microcode.
    const Addr dst = r.prog.symbol("dst");
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.sys.memory().readWord(dst + 4 * i), i + 101);
}

TEST(TranslatorRules, Rule6TwoVectorOp)
{
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .words b 9 9 9 9 9 9 9 9
        .data c 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [b + r0]
            mul r3, r1, r2
            stw [c + r0], r3
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    EXPECT_EQ(uc->insts[3].op, Opcode::Vmul);
    EXPECT_EQ(uc->insts[3].src1, RegId(RegClass::Vec, 1));
    EXPECT_EQ(uc->insts[3].src2, RegId(RegClass::Vec, 2));
}

TEST(TranslatorRules, Rule9ReductionUcodeAndResult)
{
    LiquidRun r(R"(
        .words a 5 3 8 1 7 2 9 4
        .data res 64
        fn:
            mov r1, #1000
            mov r0, #0
        top:
            ldw r2, [a + r0]
            min r1, r1, r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            mov r10, #0
            bl.simd fn
            stw [res + r10], r1
            mov r10, #1
            bl.simd fn
            stw [res + r10], r1
            halt
    )",
                8,
                [](SystemConfig &c) { c.translator.latencyPerInst = 0; });
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool found = false;
    for (const auto &inst : uc->insts)
        found = found || inst.op == Opcode::Vredmin;
    EXPECT_TRUE(found);
    // Both the scalar (first) and microcode (second) call produce 1.
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("res")), 1u);
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("res") + 4), 1u);
    EXPECT_GE(r.sys.core().stats().get("ucodeDispatches"), 1u);
}

TEST(TranslatorRules, Rules3And8PermutationLoad)
{
    // Offsets +1,-1 per pair: the swap-pairs shuffle.
    LiquidRun r(R"(
        .rowords off 1 -1 1 -1 1 -1 1 -1
        .words a 10 11 12 13 14 15 16 17
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [off + r0]
            add r1, r0, r1
            ldw r2, [a + r1]
            stw [b + r0], r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )",
                8,
                [](SystemConfig &c) { (void)c; });
    ASSERT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    // The tentative vld of the offset array must be collapsed away.
    unsigned loads = 0;
    bool has_perm = false;
    for (const auto &inst : uc->insts) {
        loads += inst.op == Opcode::Vldw;
        if (inst.op == Opcode::Vperm) {
            has_perm = true;
            // At block 2, swap-pairs and swap-halves coincide; the CAM
            // may return either.
            EXPECT_TRUE(inst.permKind == PermKind::SwapPairs ||
                        inst.permKind == PermKind::SwapHalves);
            EXPECT_EQ(inst.permBlock, 2);
        }
    }
    EXPECT_EQ(loads, 1u) << "offset-array vld should be collapsed";
    EXPECT_TRUE(has_perm);
    EXPECT_GE(r.tstat("instsCollapsed"), 1u);
    // b = swap-pairs of a.
    const Addr b = r.prog.symbol("b");
    const Word expect[8] = {11, 10, 13, 12, 15, 14, 17, 16};
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(b + 4 * i), expect[i]);
}

TEST(TranslatorRules, Rule5PermutationStore)
{
    LiquidRun r(R"(
        .rowords off 4 4 4 4 -4 -4 -4 -4
        .words a 0 1 2 3 4 5 6 7
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r2, [a + r0]
            ldw r1, [off + r0]
            add r1, r0, r1
            stw [b + r1], r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    ASSERT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_perm = false;
    for (const auto &inst : uc->insts) {
        if (inst.op == Opcode::Vperm) {
            has_perm = true;
            EXPECT_EQ(inst.permKind, PermKind::SwapHalves);
        }
    }
    EXPECT_TRUE(has_perm);
    // b[i+off] = a[i]: halves swapped.
    const Addr b = r.prog.symbol("b");
    const Word expect[8] = {4, 5, 6, 7, 0, 1, 2, 3};
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(b + 4 * i), expect[i]);
}

TEST(TranslatorRules, Rule7LaneMaskFromConstantArray)
{
    LiquidRun r(R"(
        .rowords mask -1 -1 0 0 -1 -1 0 0
        .words a 7 7 7 7 7 7 7 7
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [mask + r0]
            and r3, r1, r2
            stw [b + r0], r3
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    ASSERT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_mask = false;
    for (const auto &inst : uc->insts) {
        if (inst.op == Opcode::Vmask) {
            has_mask = true;
            EXPECT_EQ(inst.maskBits, 0x3u);
            EXPECT_EQ(inst.maskBlock, 4);
        }
    }
    EXPECT_TRUE(has_mask);
    const Addr b = r.prog.symbol("b");
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(b + 4 * i),
                  (i % 4) < 2 ? 7u : 0u);
}

TEST(TranslatorRules, Rule7ConstantVectorOperand)
{
    LiquidRun r(R"(
        .rowords cnst 1 2 1 2 1 2 1 2
        .words a 10 10 10 10 10 10 10 10
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [cnst + r0]
            mul r3, r1, r2
            stw [b + r0], r3
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    ASSERT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_cvec = false;
    for (const auto &inst : uc->insts) {
        if (inst.op == Opcode::Vmul && inst.cvec != noCvec) {
            has_cvec = true;
            ASSERT_LT(inst.cvec, uc->cvecs.size());
            EXPECT_EQ(uc->cvecs[inst.cvec].lanes,
                      (std::vector<Word>{1, 2}));
        }
    }
    EXPECT_TRUE(has_cvec);
    const Addr b = r.prog.symbol("b");
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(b + 4 * i),
                  i % 2 ? 20u : 10u);
}

TEST(TranslatorRules, SaturationIdiomBecomesVqadd)
{
    LiquidRun r(R"(
        .words a 30000 -30000 100 200 30000 -30000 100 200
        .words b 10000 -10000 50 60 10000 -10000 50 60
        .data c 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [b + r0]
            add r3, r1, r2
            cmp r3, #32767
            movgt r3, #32767
            cmp r3, #-32768
            movlt r3, #-32768
            stw [c + r0], r3
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    ASSERT_EQ(r.tstat("translations"), 1u);
    EXPECT_EQ(r.tstat("idiomsRecognized"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_vqadd = false;
    for (const auto &inst : uc->insts)
        has_vqadd = has_vqadd || inst.op == Opcode::Vqadd;
    EXPECT_TRUE(has_vqadd);

    const Addr c = r.prog.symbol("c");
    EXPECT_EQ(r.sys.memory().readWord(c + 0), 32767u);
    EXPECT_EQ(static_cast<SWord>(r.sys.memory().readWord(c + 4)),
              -32768);
    EXPECT_EQ(r.sys.memory().readWord(c + 8), 150u);
}

// ---------------------------------------------------------------------------
// Legality / abort behaviour.
// ---------------------------------------------------------------------------

TEST(TranslatorAborts, TripCountWidthFallback)
{
    // A 12-iteration loop cannot bind on 8 lanes, but it can on 4: the
    // first call aborts and the second call re-captures at half width
    // (a W-lane accelerator executes narrower vectors).
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12
        .data b 48
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #12
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.tripCount"), 1u);
    EXPECT_EQ(r.tstat("widthFallbacks"), 1u);
    EXPECT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    EXPECT_EQ(uc->simdWidth, 4u);
    // Functionally correct throughout.
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 44), 12u);
}

TEST(TranslatorAborts, PrimeTripCountRevertsToScalar)
{
    // 13 iterations divide no width: fall back 8 -> 4 -> 2, then
    // blacklist; the region runs as scalar code forever.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12 13
        .data b 52
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #13
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.tripCount"), 3u);
    EXPECT_EQ(r.tstat("translations"), 0u);
    EXPECT_TRUE(r.sys.translator().isBlacklisted(
        Program::instAddr(r.prog.labelIndex("fn"))));
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 48), 13u);
}

TEST(TranslatorAborts, UnsupportedShuffle)
{
    // Offsets that no accelerator shuffle matches.
    LiquidRun r(R"(
        .rowords off 2 0 -1 -1 2 0 -1 -1
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [off + r0]
            add r1, r0, r1
            ldw r2, [a + r1]
            stw [b + r0], r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.unsupportedShuffle"), 1u);
    EXPECT_EQ(r.tstat("translations"), 0u);
}

TEST(TranslatorAborts, WideShuffleRefusedByNarrowAccelerator)
{
    // Block-8 butterfly on a 4-wide accelerator: CAM miss.
    LiquidRun r(R"(
        .rowords off 4 4 4 4 -4 -4 -4 -4
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [off + r0]
            add r1, r0, r1
            ldw r2, [a + r1]
            stw [b + r0], r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )",
                4);
    // The block-8 pattern is not even periodic in a 4-lane vector, so
    // lane verification rejects it before (or instead of) the CAM.
    EXPECT_EQ(r.tstat("abort.valueMismatch") +
                  r.tstat("abort.unsupportedShuffle"),
              1u);
    EXPECT_EQ(r.tstat("translations"), 0u);
}

TEST(TranslatorAborts, NestedCall)
{
    LiquidRun r(R"(
        inner:
            ret
        fn:
            mov r0, #0
            bl inner
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.nestedCall"), 1u);
}

TEST(TranslatorAborts, InductionVariableArithmeticEscapes)
{
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            add r5, r0, #4
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.ivArithmetic"), 1u);
}

TEST(TranslatorAborts, StoreOfScalarData)
{
    LiquidRun r(R"(
        .data b 32
        fn:
            mov r0, #0
            mov r1, #7
        top:
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.storeScalarData"), 1u);
}

TEST(TranslatorAborts, MicrocodeBufferOverflow)
{
    // A loop body longer than 64 instructions must abort (paper: the
    // compiler splits such loops instead).
    std::string body;
    for (int i = 0; i < 70; ++i)
        body += "            add r1, r1, #1\n";
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
)" + body + R"(
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.ucodeOverflow"), 1u);
    EXPECT_EQ(r.tstat("translations"), 0u);
}

TEST(TranslatorAborts, BlacklistPreventsRetranslation)
{
    // A structurally untranslatable region (nested call) is
    // blacklisted after the first attempt and never re-captured.
    LiquidRun r(R"(
        inner:
            ret
        fn:
            mov r0, #0
            bl inner
            ret
        main:
            bl.simd fn
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.nestedCall"), 1u);
    EXPECT_EQ(r.tstat("capturesStarted"), 1u)
        << "aborted region must be blacklisted, not retried";
    EXPECT_TRUE(r.sys.translator().isBlacklisted(
        Program::instAddr(r.prog.labelIndex("fn"))));
}

TEST(TranslatorAborts, CrossIterationMemoryDependence)
{
    // a[i+1] = f(a[i]): each scalar iteration feeds the next, which a
    // whole-vector load/store pair would break. The paper notes this
    // is the one case where a false-positive translation could
    // miscompute; our translator detects the overlapping streams and
    // aborts.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8 9
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            add r1, r1, #1
            stw [a + r0 + #1], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("abort.memoryDependence"), 1u);
    EXPECT_EQ(r.sys.core().stats().get("ucodeDispatches"), 0u);
    // Scalar execution carries the chain from a[0] on every call:
    // a[8] = a[0] + 8 = 9 (idempotent across calls).
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("a") + 32), 9u);
}

TEST(TranslatorRules, ReadThenWriteSameElementIsLegal)
{
    // a[i] = f(a[i]) in place: read-before-write within the iteration,
    // identical under vector order — must still translate.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            add r1, r1, #10
            stw [a + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_GE(r.sys.core().stats().get("ucodeDispatches"), 1u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("a") + 4 * i),
                  i + 21);
}

TEST(TranslatorRules, StoreBehindLoadIsLegal)
{
    // b[i] = a[i+1] with a distinct from b, plus a store behind the
    // load of the same array: no cross-iteration feeding.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8 9
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0 + #1]
            stw [a + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    // a becomes shifted left by one.
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("a")), 2u);
}

// ---------------------------------------------------------------------------
// Hints, latency, failure injection.
// ---------------------------------------------------------------------------

TEST(TranslatorGating, UnhintedCallsIgnoredWhenHintRequired)
{
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl fn
            bl fn
            halt
    )");
    EXPECT_EQ(r.tstat("capturesStarted"), 0u);
    EXPECT_EQ(r.tstat("translations"), 0u);
}

TEST(TranslatorGating, UnhintedCallsTranslateWithoutHintRequirement)
{
    // Paper Section 3.5: shape recognition without a marked bl. The
    // "false positive" case stays functionally correct.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl fn
            bl fn
            halt
    )",
                8,
                [](SystemConfig &c) { c.translator.requireHint = false; });
    EXPECT_EQ(r.tstat("translations"), 1u);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  i + 1);
}

TEST(TranslatorLatency, UcodeNotReadyImmediately)
{
    LiquidRun r(copyLoop, 8, [](SystemConfig &c) {
        c.translator.latencyPerInst = 100'000;  // effectively never ready
    });
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_EQ(r.sys.core().stats().get("ucodeDispatches"), 0u);
    // All calls executed as scalar code; results still correct.
    const Addr dst = r.prog.symbol("dst");
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.sys.memory().readWord(dst + 4 * i), i + 101);
}

TEST(TranslatorFailureInjection, InterruptsAbortButAllowRetry)
{
    LiquidRun r(copyLoop, 8, [](SystemConfig &c) {
        c.core.faults = FaultSchedule::periodic(40);  // interrupt mid-translation
    });
    EXPECT_GE(r.tstat("abort.interrupt"), 1u);
    // Interrupt aborts are transient: the region is not blacklisted.
    EXPECT_FALSE(r.sys.translator().isBlacklisted(
        Program::instAddr(r.prog.labelIndex("fn"))));
    // And the program result is still correct.
    const Addr dst = r.prog.symbol("dst");
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.sys.memory().readWord(dst + 4 * i), i + 101);
}

TEST(TranslatorState, CapturesOnlyWhileRegionActive)
{
    LiquidRun r(copyLoop);
    // After the run, the translator must be idle.
    EXPECT_FALSE(r.sys.translator().capturing());
}

} // namespace
} // namespace liquid
