/**
 * @file
 * The abort-reason taxonomy is a tool contract: canonical names must
 * round-trip through the parser, every legality check must report its
 * canonical reason through the offline translator's OfflineResult, and
 * the dynamic translator must key its statistic counters by the same
 * name ("abort.<name>").
 */

#include <gtest/gtest.h>

#include "abort_cases.hh"
#include "sim/system.hh"
#include "translator/offline.hh"

namespace liquid
{
namespace
{

TEST(AbortReason, CanonicalNamesRoundTrip)
{
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(AbortReason::NumReasons); ++i) {
        const auto reason = static_cast<AbortReason>(i);
        const char *name = abortReasonName(reason);
        ASSERT_NE(name, nullptr);
        EXPECT_FALSE(std::string(name).empty());
        EXPECT_EQ(parseAbortReason(name), reason) << name;
    }
    EXPECT_EQ(parseAbortReason("notAReason"), AbortReason::NumReasons);
    EXPECT_EQ(parseAbortReason(""), AbortReason::NumReasons);
}

TEST(AbortReason, EveryReasonHasAHumanDescription)
{
    // The single-source table pairs each reason with a one-line
    // description used by verifier diagnostics and the scan/verify
    // JSON; it must exist and must not just repeat the name.
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(AbortReason::NumReasons); ++i) {
        const auto reason = static_cast<AbortReason>(i);
        const char *desc = abortReasonDescription(reason);
        ASSERT_NE(desc, nullptr);
        EXPECT_FALSE(std::string(desc).empty());
        EXPECT_STRNE(desc, abortReasonName(reason));
    }
}

TEST(AbortReason, ClassGrouping)
{
    EXPECT_EQ(abortReasonClass(AbortReason::None), ReasonClass::None);
    EXPECT_EQ(abortReasonClass(AbortReason::NestedCall),
              ReasonClass::Structure);
    EXPECT_EQ(abortReasonClass(AbortReason::UnfinalizedPatches),
              ReasonClass::Structure);
    EXPECT_EQ(abortReasonClass(AbortReason::VectorOpcode),
              ReasonClass::Opcode);
    EXPECT_EQ(abortReasonClass(AbortReason::IvArithmetic),
              ReasonClass::Opcode);
    EXPECT_EQ(abortReasonClass(AbortReason::IdiomShape),
              ReasonClass::Idiom);
    EXPECT_EQ(abortReasonClass(AbortReason::MemoryDependence),
              ReasonClass::Dataflow);
    EXPECT_EQ(abortReasonClass(AbortReason::TripCount),
              ReasonClass::Width);
    EXPECT_EQ(abortReasonClass(AbortReason::UcodeOverflow),
              ReasonClass::Capacity);
    EXPECT_EQ(abortReasonClass(AbortReason::Interrupt),
              ReasonClass::Runtime);

    // Exactly the Width class is retried at narrower bindings.
    EXPECT_TRUE(abortIsWidthDependent(AbortReason::TripCount));
    EXPECT_TRUE(abortIsWidthDependent(AbortReason::UnsupportedShuffle));
    EXPECT_TRUE(abortIsWidthDependent(AbortReason::ValueMismatch));
    EXPECT_TRUE(abortIsWidthDependent(AbortReason::LanesIncomplete));
    EXPECT_FALSE(abortIsWidthDependent(AbortReason::MemoryDependence));
    EXPECT_FALSE(abortIsWidthDependent(AbortReason::UcodeOverflow));
}

/**
 * Table-driven: one curated region per legality check; the offline
 * translator must abort with exactly that check's canonical reason.
 */
TEST(AbortReason, EveryLegalityCheckReportsItsCanonicalReason)
{
    for (const AbortCase &c : abortCases()) {
        SCOPED_TRACE(c.name);
        EXPECT_STREQ(abortReasonName(c.reason), c.name);

        const Program prog = assemble(c.src);
        const OfflineResult off =
            translateOffline(prog, prog.labelIndex("fn"), c.width);
        EXPECT_FALSE(off.ok);
        EXPECT_EQ(off.reason, c.reason);
        EXPECT_EQ(off.abortReason, c.name);
    }
}

/** The hardware translator keys its abort counters by the same names. */
TEST(AbortReason, DynamicStatsKeyedByCanonicalName)
{
    for (const AbortCase &c : abortCases()) {
        SCOPED_TRACE(c.name);
        const Program prog = assemble(c.src);
        System sys(SystemConfig::make(ExecMode::Liquid, c.width), prog);
        sys.run();
        EXPECT_EQ(sys.translator().stats().get(std::string("abort.") +
                                               c.name),
                  1u);
        EXPECT_EQ(sys.translator().stats().get("translations"), 0u);
    }
}

} // namespace
} // namespace liquid
