/**
 * @file
 * Property and unit tests for the symbolic bitvector domain under the
 * translation-validation prover (verifier/symexec.hh).
 *
 * The load-bearing property: hash-consed normalization (polynomial
 * canonicalization, commutative sorting, constant folding, select and
 * extension rewrites) must preserve concrete semantics exactly. Every
 * random term is built twice in parallel — once through the pool's
 * normalizing constructors and once as a naive shadow evaluation using
 * the simulator's own evalScalarOp/evalCompare — and the two must
 * agree on 1000 random leaf assignments.
 */

#include <array>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "cpu/exec.hh"
#include "scalarizer/scalarizer.hh"
#include "verifier/symexec.hh"

using namespace liquid;
using namespace liquid::sym;

namespace
{

/** Shadow of TermPool::ext: keep the low bits, extend to 32. */
Word
extShadow(unsigned bits, bool is_signed, Word v)
{
    if (bits >= 32)
        return v;
    const Word mask = (1u << bits) - 1;
    Word low = v & mask;
    if (is_signed && ((low >> (bits - 1)) & 1u))
        low |= ~mask;
    return low;
}

} // namespace

TEST(TermPool, ConstantFolding)
{
    TermPool p;
    EXPECT_EQ(p.bin(Opcode::Mul, p.konst(6), p.konst(7), false),
              p.konst(42));
    EXPECT_EQ(p.bin(Opcode::Sub, p.konst(1), p.konst(3), false),
              p.konst(static_cast<Word>(-2)));
    EXPECT_EQ(p.ext(16, true, p.konst(0x8000)), p.konst(0xFFFF8000u));
    EXPECT_EQ(p.ext(8, false, p.konst(0x1FF)), p.konst(0xFF));
    EXPECT_EQ(p.cmp(p.konst(5), p.konst(3), false),
              p.konst(1));
}

TEST(TermPool, CommutativeOperandsIntern)
{
    TermPool p;
    const TermRef x = p.param("x");
    const TermRef y = p.param("y");
    for (const Opcode op : {Opcode::Add, Opcode::Mul, Opcode::And,
                            Opcode::Orr, Opcode::Eor, Opcode::Min,
                            Opcode::Max}) {
        EXPECT_EQ(p.bin(op, x, y, false), p.bin(op, y, x, false))
            << opName(op);
    }
}

TEST(TermPool, PolynomialNormalization)
{
    TermPool p;
    const TermRef x = p.param("x");
    const TermRef y = p.param("y");
    // (x + 1) + 2 == x + 3.
    EXPECT_EQ(p.bin(Opcode::Add,
                    p.bin(Opcode::Add, x, p.konst(1), false),
                    p.konst(2), false),
              p.bin(Opcode::Add, x, p.konst(3), false));
    // x - x == 0.
    EXPECT_EQ(p.bin(Opcode::Sub, x, x, false), p.konst(0));
    // x + (y - x) == y   (Rsb a b = b - a).
    EXPECT_EQ(p.bin(Opcode::Add, x, p.bin(Opcode::Rsb, x, y, false),
                    false),
              y);
    // x * 0 == 0.
    EXPECT_EQ(p.bin(Opcode::Mul, x, p.konst(0), false), p.konst(0));
}

TEST(TermPool, FloatIsNeverReassociated)
{
    TermPool p;
    const TermRef x = p.param("x");
    const TermRef y = p.param("y");
    const TermRef z = p.param("z");
    // Bit-exact float equivalence is structural: no commuting...
    EXPECT_NE(p.bin(Opcode::Add, x, y, true),
              p.bin(Opcode::Add, y, x, true));
    // ...and no reassociating.
    EXPECT_NE(p.bin(Opcode::Add, p.bin(Opcode::Add, x, y, true), z,
                    true),
              p.bin(Opcode::Add, x, p.bin(Opcode::Add, y, z, true),
                    true));
}

TEST(TermPool, CondHoldsSignTable)
{
    for (const int sign : {-1, 0, 1}) {
        EXPECT_TRUE(condHoldsSign(Cond::AL, sign));
        EXPECT_EQ(condHoldsSign(Cond::EQ, sign), sign == 0);
        EXPECT_EQ(condHoldsSign(Cond::NE, sign), sign != 0);
        EXPECT_EQ(condHoldsSign(Cond::LT, sign), sign < 0);
        EXPECT_EQ(condHoldsSign(Cond::LE, sign), sign <= 0);
        EXPECT_EQ(condHoldsSign(Cond::GT, sign), sign > 0);
        EXPECT_EQ(condHoldsSign(Cond::GE, sign), sign >= 0);
    }
}

TEST(TermPool, SelectFoldsOnConcreteSign)
{
    TermPool p;
    const TermRef a = p.param("a");
    const TermRef b = p.param("b");
    const TermRef gt = p.cmp(p.konst(5), p.konst(3), false);
    EXPECT_EQ(p.sel(Cond::GT, gt, a, b), a);
    EXPECT_EQ(p.sel(Cond::LT, gt, a, b), b);
    // Both branches identical: the select is the branch.
    const TermRef sym_sign = p.cmp(a, b, false);
    EXPECT_EQ(p.sel(Cond::GT, sym_sign, a, a), a);
}

TEST(TermPool, AffineDiffAndLaneIndexing)
{
    TermPool p;
    const TermRef mu = p.param("mu");      // IV value at lane 0
    const TermRef lane = p.param("lane");  // lane index
    const TermRef four = p.konst(4);
    // addr(l) = mu + 4*l, the canonical lane-indexed address shape.
    const TermRef addr0 =
        p.bin(Opcode::Add, mu, p.bin(Opcode::Mul, lane, four, false),
              false);
    const TermRef lane1 = p.bin(Opcode::Add, lane, p.konst(1), false);
    const TermRef addr1 =
        p.bin(Opcode::Add, mu, p.bin(Opcode::Mul, lane1, four, false),
              false);
    auto d = p.affineDiff(addr1, addr0);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(*d, 4);
    EXPECT_EQ(p.affineDiff(addr0, addr0).value_or(-1), 0);
    // Unrelated symbols do not difference to a constant.
    EXPECT_FALSE(p.affineDiff(addr0, p.param("other")).has_value());

    // Substituting the lane re-normalizes: addr(2) folds into mu + 8.
    std::unordered_map<TermRef, TermRef> s{{lane, p.konst(2)}};
    EXPECT_EQ(p.substitute(addr0, s),
              p.bin(Opcode::Add, mu, p.konst(8), false));
}

TEST(TermPool, LoadIsALeafButSubstituteRebuildsItsAddress)
{
    TermPool p;
    const TermRef mu = p.param("mu");
    const TermRef ld =
        p.load(p.bin(Opcode::Add, mu, p.konst(8), false), 4, false);

    // leaves() reports the Load itself, not its address symbols.
    const auto ls = p.leaves(ld);
    ASSERT_EQ(ls.size(), 1u);
    EXPECT_EQ(ls[0], ld);

    // eval() treats the Load as the env-assigned atom.
    std::unordered_map<TermRef, Word> env{{ld, 1234}};
    EXPECT_EQ(p.eval(ld, env), 1234u);

    // substitute() does descend into the address (this is what lets
    // the symbolic-N prover instantiate lane 0 as nu -> mu).
    std::unordered_map<TermRef, TermRef> s{{mu, p.konst(0x1000)}};
    const TermRef ld2 = p.substitute(ld, s);
    ASSERT_EQ(ld2->kind, TermKind::Load);
    EXPECT_EQ(ld2->args[0], p.konst(0x1008));
}

TEST(TermPool, RandomTermsNormalizationPreservesSemantics)
{
    // 100 random terms x 10 random assignments = 1000 checks that the
    // normalized term evaluates exactly like its naive shadow.
    constexpr unsigned numTerms = 100;
    constexpr unsigned numEnvs = 10;
    Rng rng(0xC0FFEE);

    static const Opcode binops[] = {
        Opcode::Add, Opcode::Sub, Opcode::Rsb, Opcode::Mul,
        Opcode::And, Opcode::Orr, Opcode::Eor, Opcode::Bic,
        Opcode::Lsl, Opcode::Lsr, Opcode::Asr, Opcode::Min,
        Opcode::Max, Opcode::Qadd, Opcode::Qsub,
    };
    static const Cond conds[] = {Cond::EQ, Cond::NE, Cond::LT,
                                 Cond::LE, Cond::GT, Cond::GE};

    for (unsigned t = 0; t < numTerms; ++t) {
        TermPool p;
        struct Node
        {
            TermRef term;
            std::array<Word, numEnvs> shadow;
        };
        std::vector<Node> nodes;
        std::vector<std::unordered_map<TermRef, Word>> envs(numEnvs);

        const unsigned numLeaves =
            static_cast<unsigned>(rng.range(3, 5));
        for (unsigned i = 0; i < numLeaves; ++i) {
            Node n;
            n.term = p.param("x" + std::to_string(i));
            for (unsigned k = 0; k < numEnvs; ++k) {
                // Mix small values (where rewrites like x*0, x-x and
                // saturation corners bite) with full-range words.
                const Word v =
                    rng.range(0, 1) ? static_cast<Word>(rng.range(-4, 4))
                                    : rng.next32();
                n.shadow[k] = v;
                envs[k][n.term] = v;
            }
            nodes.push_back(n);
        }
        {
            Node n;
            const Word c = static_cast<Word>(rng.range(-100, 100));
            n.term = p.konst(c);
            n.shadow.fill(c);
            nodes.push_back(n);
        }

        auto pick = [&]() -> const Node & {
            return nodes[static_cast<std::size_t>(
                rng.range(0, static_cast<int>(nodes.size()) - 1))];
        };

        const unsigned ops = static_cast<unsigned>(rng.range(6, 16));
        for (unsigned i = 0; i < ops; ++i) {
            Node n;
            switch (rng.range(0, 7)) {
              case 6: {  // extension
                const unsigned bits = rng.range(0, 1) ? 8 : 16;
                const bool sgn = rng.range(0, 1) != 0;
                const Node &a = pick();
                n.term = p.ext(bits, sgn, a.term);
                for (unsigned k = 0; k < numEnvs; ++k)
                    n.shadow[k] = extShadow(bits, sgn, a.shadow[k]);
                break;
              }
              case 7: {  // select on a symbolic compare
                const Node &a = pick();
                const Node &b = pick();
                const Node &tt = pick();
                const Node &ff = pick();
                const Cond cond = conds[rng.range(0, 5)];
                const TermRef sign = p.cmp(a.term, b.term, false);
                n.term = p.sel(cond, sign, tt.term, ff.term);
                for (unsigned k = 0; k < numEnvs; ++k) {
                    const int sv =
                        evalCompare(a.shadow[k], b.shadow[k], false);
                    n.shadow[k] = condHoldsSign(cond, sv) ? tt.shadow[k]
                                                          : ff.shadow[k];
                }
                break;
              }
              default: {  // integer data-processing op
                const Opcode op = binops[rng.range(0, 14)];
                const Node &a = pick();
                const Node &b = pick();
                n.term = p.bin(op, a.term, b.term, false);
                for (unsigned k = 0; k < numEnvs; ++k) {
                    n.shadow[k] = evalScalarOp(op, a.shadow[k],
                                               b.shadow[k], false);
                }
                break;
              }
            }
            nodes.push_back(n);
        }

        const Node &final_node = nodes.back();
        for (unsigned k = 0; k < numEnvs; ++k) {
            ASSERT_EQ(p.eval(final_node.term, envs[k]),
                      final_node.shadow[k])
                << "term " << t << " env " << k << ": "
                << p.str(final_node.term);
        }
    }
}

TEST(Perm, SourceLaneComposesWithItsInverse)
{
    for (const PermKind kind :
         {PermKind::SwapHalves, PermKind::SwapPairs, PermKind::Reverse,
          PermKind::RotUp, PermKind::RotDown}) {
        for (const unsigned block : {2u, 4u, 8u, 16u}) {
            const PermKind inv = permInverse(kind);
            for (unsigned l = 0; l < block; ++l) {
                // Applying kind then its inverse is the identity on
                // the lane mapping (the prover's permutation
                // obligations reduce to exactly this composition).
                EXPECT_EQ(permSourceLane(
                              kind, block,
                              permSourceLane(inv, block, l)),
                          l)
                    << "kind " << static_cast<int>(kind) << " block "
                    << block << " lane " << l;
            }
        }
    }
}

TEST(Perm, EvalPermInverseRoundTrips)
{
    for (const PermKind kind :
         {PermKind::SwapHalves, PermKind::SwapPairs, PermKind::Reverse,
          PermKind::RotUp, PermKind::RotDown}) {
        for (const unsigned block : {2u, 4u, 8u}) {
            VecValue v{};
            for (unsigned i = 0; i < 8; ++i)
                v[i] = i * 10 + 1;
            const VecValue once = evalPerm(v, kind, block, 8);
            const VecValue back =
                evalPerm(once, permInverse(kind), block, 8);
            for (unsigned i = 0; i < 8; ++i)
                EXPECT_EQ(back[i], v[i]);
        }
    }
}

TEST(SymMachine, ConcreteRegionBuildsTheExpectedStoreSet)
{
    // c[i] = a[i] + b[i] over 16 iterations: the concrete-mode machine
    // must produce one store cell per element whose value term is the
    // Add of the two initial-memory atoms.
    vir::Kernel k("sm_add", 16);
    k.store("sm_c", k.bin(Opcode::Add, k.load("sm_a"), k.load("sm_b")));

    Program prog;
    std::vector<Word> init(16 + 16);
    for (unsigned i = 0; i < init.size(); ++i)
        init[i] = i + 1;
    prog.allocWords("sm_a", init);
    prog.allocWords("sm_b", init);
    prog.allocData("sm_c", init.size() * 4);
    EmitOptions opts;
    opts.mode = EmitOptions::Mode::Scalarized;
    opts.nativeWidth = 8;
    emitKernel(prog, k, opts);
    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, "sm_add", 8));
    prog.addInst(Inst::halt());
    prog.resolveBranches();

    ASSERT_EQ(prog.hintedCalls().size(), 1u);
    const int entry = prog.hintedCalls()[0].target;

    TermPool pool;
    SymMachine m(pool, prog, AddrMode::Concrete);
    m.initSharedEntry();
    const MachineResult res = m.runScalarRegion(entry, 1'000'000);
    ASSERT_TRUE(res.ok) << res.why;

    const Addr base_c = prog.symbol("sm_c");
    ASSERT_EQ(m.cells().size(), 16u);
    for (unsigned i = 0; i < 16; ++i) {
        const auto it = m.cells().find(base_c + 4 * i);
        ASSERT_NE(it, m.cells().end()) << "element " << i;
        const TermRef v = it->second.value;
        ASSERT_EQ(v->kind, TermKind::Bin);
        EXPECT_EQ(v->op, Opcode::Add);
        EXPECT_EQ(pool.leaves(v).size(), 2u);
    }
}
