/**
 * @file
 * Offline (static) binary translation tests: the offline path must
 * agree instruction-for-instruction with the hardware translator on
 * every workload kernel, install with zero runtime latency, and fall
 * back across widths the same way.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/system.hh"
#include "translator/offline.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

TEST(OfflineTranslator, AgreesWithHardwareTranslatorOnSuite)
{
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);

        // Hardware translation: run the system once.
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();

        for (unsigned k = 0; k < build.kernelEntries.size(); ++k) {
            const Addr entry = build.kernelEntries[k];
            const UcodeEntry *hw = sys.ucodeCache().lookup(
                entry, sys.cycles() + 1'000'000);

            const int entry_index =
                static_cast<int>((entry - Program::codeBase) / 4);
            const unsigned hint = wl->makeKernels()[k].maxWidth();
            // Mirror the dynamic width fallback.
            OfflineResult off;
            for (unsigned w = std::min(8u, hint); w >= 2; w /= 2) {
                off = translateOffline(build.prog, entry_index, w, hint);
                if (off.ok)
                    break;
            }

            ASSERT_EQ(hw != nullptr, off.ok)
                << wl->name() << " kernel " << k
                << (off.ok ? "" : " offline abort: " + off.abortReason);
            if (!hw)
                continue;
            EXPECT_EQ(off.entry.simdWidth, hw->simdWidth)
                << wl->name() << " kernel " << k;
            ASSERT_EQ(off.entry.insts.size(), hw->insts.size())
                << wl->name() << " kernel " << k;
            for (std::size_t i = 0; i < hw->insts.size(); ++i) {
                EXPECT_EQ(off.entry.insts[i], hw->insts[i])
                    << wl->name() << " kernel " << k << " microinst "
                    << i << ": offline '"
                    << off.entry.insts[i].toString() << "' vs hw '"
                    << hw->insts[i].toString() << "'";
            }
            ASSERT_EQ(off.entry.cvecs.size(), hw->cvecs.size());
            for (std::size_t c = 0; c < hw->cvecs.size(); ++c)
                EXPECT_EQ(off.entry.cvecs[c].lanes, hw->cvecs[c].lanes);
        }
    }
}

TEST(OfflineTranslator, PretranslatedSystemSkipsFirstCallPenalty)
{
    for (const auto &wl : makeSuite()) {
        if (wl->name() != "fir")
            continue;
        const auto build = wl->build(EmitOptions::Mode::Scalarized);

        SystemConfig runtime = SystemConfig::make(ExecMode::Liquid, 8);
        System dynamic(runtime, build.prog);
        dynamic.run();

        SystemConfig offline = runtime;
        offline.pretranslate = true;
        System pre(offline, build.prog);
        pre.run();

        // Offline binding removes the scalar first call entirely.
        EXPECT_LT(pre.cycles(), dynamic.cycles());
        EXPECT_EQ(pre.translator().stats().get("capturesStarted"), 0u)
            << "pretranslated regions must not be re-captured";
        EXPECT_GT(pre.core().stats().get("ucodeDispatches"),
                  dynamic.core().stats().get("ucodeDispatches"));

        // And the results agree.
        for (const auto &[name, words] : wl->allOutputs()) {
            EXPECT_EQ(Workload::readArray(build.prog, pre.memory(),
                                          name, words),
                      Workload::readArray(build.prog, dynamic.memory(),
                                          name, words))
                << name;
        }
    }
}

TEST(OfflineTranslator, ReportsAbortReasons)
{
    const Program prog = assemble(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12 13
        .data b 52
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #13
            blt top
            ret
        main:
            halt
    )");
    const OfflineResult r =
        translateOffline(prog, prog.labelIndex("fn"), 8);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.abortReason, "tripCount");
}

TEST(OfflineTranslator, WidthFallbackInPretranslation)
{
    const Program prog = assemble(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12
        .data b 48
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #12
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    UcodeCache cache(UcodeCacheConfig{});
    EXPECT_EQ(pretranslateProgram(prog, 8, cache), 1u);
    const UcodeEntry *uc = cache.lookup(
        Program::instAddr(prog.labelIndex("fn")), 0);
    ASSERT_NE(uc, nullptr);
    EXPECT_EQ(uc->simdWidth, 4u);  // 12 % 8 != 0, binds at 4
}

TEST(OfflineTranslator, HonoursCompiledWidthHint)
{
    const Program prog = assemble(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        .data b 64
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #16
            blt top
            ret
        main:
            bl.simd4 fn
            halt
    )");
    UcodeCache cache(UcodeCacheConfig{});
    EXPECT_EQ(pretranslateProgram(prog, 16, cache), 1u);
    const UcodeEntry *uc = cache.lookup(
        Program::instAddr(prog.labelIndex("fn")), 0);
    ASSERT_NE(uc, nullptr);
    EXPECT_EQ(uc->simdWidth, 4u)
        << "data is only aligned to the compiled width";
}

} // namespace
} // namespace liquid
