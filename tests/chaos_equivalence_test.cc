/**
 * @file
 * Chaos-injection equivalence tests (metamorphic property).
 *
 * The paper's transparency claim — Liquid SIMD execution survives any
 * external event with architectural results identical to the scalar
 * loop — is checked here as a metamorphic property: for random legal
 * kernels under random fault schedules, the Liquid-with-faults final
 * state must equal the fault-free scalar reference (memory image and
 * call-log shape; see src/chaos/oracle.hh for why registers belong to
 * the determinism contract instead).
 *
 * The randomized section scales with LIQUID_CHAOS_TRIALS and derives
 * its generator seed from LIQUID_CHAOS_SEED, so the nightly CI chaos
 * job can run a long sweep on a date-derived seed without a rebuild.
 * Any failing trial dumps its program listing and schedule key to
 * $LIQUID_CHAOS_DUMP_DIR (default chaos_failures/) for replay.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "chaos/oracle.hh"
#include "common/logging.hh"
#include "fast/reference.hh"
#include "random_kernels.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

/**
 * Scalar ground truth. The functional tier computes it at a fraction
 * of the cycle model's cost (fast_lockstep_test proves the two
 * references bit-identical across the suite), which is what lets the
 * default trial count rise while wall-clock stays flat. Set
 * LIQUID_CHAOS_REFERENCE=cycle to restore the cycle-core reference.
 */
ChaosReference
reference(const Program &prog, unsigned width)
{
    const char *v = std::getenv("LIQUID_CHAOS_REFERENCE");
    if (v && std::string(v) == "cycle")
        return makeReference(prog, width);
    return fast::makeFunctionalReference(prog, width);
}

void
dumpFailure(const Program &prog, const std::string &name,
            const std::string &schedule_key)
{
    const char *dir_env = std::getenv("LIQUID_CHAOS_DUMP_DIR");
    const std::filesystem::path dir =
        dir_env && *dir_env ? dir_env : "chaos_failures";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(dir / (name + ".s"));
    out << "; failing fault schedule: " << schedule_key << "\n"
        << prog.listing();
}

/** Build the named suite workload, Scalarized at @p width. */
Workload::Build
buildSuiteWorkload(const std::string &name, unsigned width)
{
    for (const auto &wl : makeSuite()) {
        if (wl->name() == name)
            return wl->build(EmitOptions::Mode::Scalarized, width);
    }
    ADD_FAILURE() << "no suite workload named " << name;
    return {};
}

// --- Schedule-key grammar -------------------------------------------

TEST(FaultScheduleKey, RoundTripsThroughParse)
{
    const std::vector<std::string> keys = {
        "none",
        "p700",
        "int@40",
        "flush@80",
        "evict@60:4160",
        "smc@100:4608",
        "dcache@50",
        "p250+int@40+flush@80+smc@100:4608",
    };
    for (const auto &key : keys) {
        const FaultSchedule sched = FaultSchedule::parse(key);
        EXPECT_EQ(sched.key(), key) << "key " << key;
        EXPECT_EQ(FaultSchedule::parse(sched.key()), sched);
    }
}

TEST(FaultScheduleKey, NormalizeSortsEventsByRetireIndex)
{
    FaultSchedule sched;
    sched.add(FaultKind::SmcStore, 100);
    sched.add(FaultKind::Interrupt, 40);
    sched.add(FaultKind::UcodeFlush, 80);
    EXPECT_EQ(sched.key(), "int@40+flush@80+smc@100");
}

TEST(FaultScheduleKey, RandomSchedulesAlwaysRoundTrip)
{
    Rng rng(7);
    const std::vector<Addr> regions = {0x1000, 0x1400};
    for (unsigned i = 0; i < 200; ++i) {
        const FaultSchedule sched =
            FaultSchedule::random(rng, 500, regions);
        EXPECT_FALSE(sched.empty());
        EXPECT_EQ(FaultSchedule::parse(sched.key()), sched)
            << "key " << sched.key();
    }
}

// --- Suite smoke: every fault kind, oracle-equal --------------------

/**
 * Tier-1 coverage guarantee: every fault event type fires at least
 * once against a real suite workload, and each preserves state.
 */
TEST(ChaosOracle, EveryFaultKindPreservesStateOnFir)
{
    const Workload::Build build = buildSuiteWorkload("fir", 8);
    const ChaosReference ref = reference(build.prog, 8);
    const std::vector<std::string> keys = {
        "p700", "int@40", "flush@80", "evict@60", "smc@100", "dcache@50",
    };
    for (const auto &key : keys) {
        SCOPED_TRACE(key);
        const ChaosReport report = checkSchedule(
            ref, build.prog, 8, FaultSchedule::parse(key));
        EXPECT_TRUE(report.equal) << "schedule " << key;
        for (const auto &m : report.mismatches)
            ADD_FAILURE() << "  " << m;
        EXPECT_GE(report.faultsFired, 1u) << "schedule " << key
                                          << " never fired";
    }
}

/** Composed multi-kind schedules force the loss -> re-translate path. */
TEST(ChaosOracle, ComposedScheduleRetranslatesAndStaysEqual)
{
    const Workload::Build build = buildSuiteWorkload("fir", 8);
    const ChaosReference ref = reference(build.prog, 8);
    const ChaosReport report = checkSchedule(
        ref, build.prog, 8,
        FaultSchedule::parse("int@40+flush@80+smc@100"));
    EXPECT_TRUE(report.equal);
    for (const auto &m : report.mismatches)
        ADD_FAILURE() << "  " << m;
    EXPECT_GE(report.faultsFired, 3u);
    EXPECT_GE(report.retranslations, 1u)
        << "flush/smc should force at least one re-translation";
}

// --- Determinism contract -------------------------------------------

/**
 * The same (program, width, schedule) triple must reproduce the full
 * final state — including scratch-register residue — bit for bit.
 */
TEST(ChaosOracle, SameScheduleReproducesIdenticalFinalState)
{
    const Workload::Build build = buildSuiteWorkload("fft", 8);
    const ChaosReference ref = reference(build.prog, 8);
    const FaultSchedule sched =
        FaultSchedule::parse("p250+evict@60+smc@100");
    const ChaosReport a = checkSchedule(ref, build.prog, 8, sched);
    const ChaosReport b = checkSchedule(ref, build.prog, 8, sched);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.faultsFired, b.faultsFired);
    EXPECT_EQ(a.retranslations, b.retranslations);
    EXPECT_TRUE(a.finalState == b.finalState)
        << "replay diverged from first run";
}

// --- Sabotage: the oracle must catch a broken fallback --------------

/**
 * The deliberately broken core model (abandon in-flight microcode on
 * interrupt instead of completing it) violates the paper's precise
 * fault model. Sweeping the interrupt across retire indices must make
 * the oracle catch the divergence at least once — proof the oracle
 * detects real fallback bugs rather than vacuously passing.
 */
TEST(ChaosOracle, CatchesSabotagedInterruptFallback)
{
    // A generated kernel keeps each run small enough to sweep every
    // retire index; the sabotage only bites when the interrupt lands
    // while microcode is executing, so the sweep must be dense.
    Rng rng(11);
    Rng data_rng(12);
    const GeneratedKernel g = generateKernel(rng, 0);
    const Program prog = buildGeneratedProgram(
        g, data_rng, EmitOptions::Mode::Scalarized, 8);
    const ChaosReference ref = reference(prog, 8);

    unsigned caught = 0;
    const std::uint64_t sweep =
        std::min<std::uint64_t>(ref.instsRetired, 1500);
    for (std::uint64_t at = 1; at <= sweep; ++at) {
        FaultSchedule sched;
        sched.add(FaultKind::Interrupt, at);
        const ChaosReport report =
            checkSchedule(ref, prog, 8, sched, /*sabotage=*/true);
        if (!report.equal)
            ++caught;
    }
    EXPECT_GE(caught, 1u)
        << "oracle never caught the sabotaged interrupt fallback";
}

/** Without an interrupt the sabotage knob must be inert. */
TEST(ChaosOracle, SabotageWithoutInterruptIsInert)
{
    const Workload::Build build = buildSuiteWorkload("fir", 8);
    const ChaosReference ref = reference(build.prog, 8);
    const ChaosReport report = checkSchedule(
        ref, build.prog, 8, FaultSchedule{}, /*sabotage=*/true);
    EXPECT_TRUE(report.equal);
    for (const auto &m : report.mismatches)
        ADD_FAILURE() << "  " << m;
}

// --- Metamorphic property: random kernels x random schedules --------

/**
 * The ISSUE's headline property: >= 200 random (kernel, schedule)
 * pairs, each equal to the fault-free scalar reference. Trials and
 * seed come from LIQUID_CHAOS_TRIALS / LIQUID_CHAOS_SEED.
 */
TEST(ChaosProperty, RandomKernelsUnderRandomSchedules)
{
    const unsigned trials = envUnsigned("LIQUID_CHAOS_TRIALS", 300);
    const unsigned seed = envUnsigned("LIQUID_CHAOS_SEED", 1);
    Rng rng(seed);
    Rng data_rng(seed ^ 0x9e3779b9u);

    for (unsigned done = 0, t = 0; done < trials; ++t) {
        ASSERT_LT(t, 4 * trials) << "generator keeps hitting register "
                                    "pressure; loosen the skip path";
        const GeneratedKernel g = generateKernel(rng, t);
        const unsigned width = rng.chance(0.5) ? 8 : 4;
        Program prog;
        try {
            prog = buildGeneratedProgram(
                g, data_rng, EmitOptions::Mode::Scalarized, width);
        } catch (const FatalError &) {
            // Rare: the generator exceeded the scalar register pool
            // (many accumulators). Not a chaos-relevant kernel; draw
            // another without burning a trial.
            continue;
        }
        ++done;

        const ChaosReference ref = reference(prog, width);
        const FaultSchedule sched = FaultSchedule::random(
            rng, std::max<std::uint64_t>(ref.instsRetired, 1),
            ref.regions);
        SCOPED_TRACE("trial " + std::to_string(t) + " width=" +
                     std::to_string(width) + " schedule=" +
                     sched.key());

        const ChaosReport report =
            checkSchedule(ref, prog, width, sched);
        EXPECT_TRUE(report.equal);
        for (const auto &m : report.mismatches)
            ADD_FAILURE() << "  " << m;
        if (!report.equal)
            dumpFailure(prog, "chaos_trial" + std::to_string(t),
                        sched.key());
    }
}

/**
 * Explorer sanity on a generated kernel: exhaustive window plus
 * random trials, no failures, and every kind covered.
 */
TEST(ChaosProperty, ExplorerCoversEveryKindWithoutFailures)
{
    Rng rng(42);
    Rng data_rng(43);
    const GeneratedKernel g = generateKernel(rng, 0);
    const Program prog = buildGeneratedProgram(
        g, data_rng, EmitOptions::Mode::Scalarized, 8);

    ExploreOptions opts;
    opts.window = 8;
    opts.trials = 8;
    opts.seed = 5;
    const ExploreSummary summary = exploreSchedules(prog, 8, opts);

    EXPECT_TRUE(summary.ok());
    for (const auto &f : summary.failures)
        ADD_FAILURE() << f.scheduleKey;
    EXPECT_EQ(summary.schedulesRun,
              8 * static_cast<unsigned>(FaultKind::NumKinds) + 8);
    for (const char *kind : {"int", "flush", "evict", "smc", "dcache"})
        EXPECT_GE(summary.kindCoverage.at(kind), 8u) << kind;
    EXPECT_GE(summary.faultsFired, 1u);
}

} // namespace
} // namespace liquid
