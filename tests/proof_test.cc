/**
 * @file
 * Acceptance gates for the translation-validation prover (proof.hh).
 *
 *  - every suite workload must prove at every width of the fallback
 *    ladder (no Unknowns, no refutations);
 *  - the width-polymorphic mode must close the elementwise suite
 *    kernels with a single width-generic proof;
 *  - every sabotage scenario must be caught: abort-class modes as
 *    NoTranslation, miscompile-class modes and microcode mutations as
 *    Refuted with a chaos-replay-confirmed counterexample;
 *  - a depcheck-Unknown verdict that the prover closes must upgrade
 *    the static verifier's Warn to Ok (and carry the proof).
 */

#include <string>

#include <gtest/gtest.h>

#include "scalarizer/scalarizer.hh"
#include "verifier/proof.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

ProgramProof
proveWorkload(const Workload &wl, const ProofOptions &opts)
{
    const Workload::Build build =
        wl.build(EmitOptions::Mode::Scalarized, 16, /*hinted=*/true);
    return proveProgram(build.prog, opts);
}

} // namespace

TEST(Proof, SuiteProvesAtEveryWidth)
{
    ProofOptions opts;  // widths {2, 4, 8, 16}
    unsigned regions = 0;
    for (const auto &wl : makeSuite()) {
        const ProgramProof pp = proveWorkload(*wl, opts);
        ASSERT_FALSE(pp.regions.empty()) << wl->name();
        for (const RegionProof &rp : pp.regions) {
            ++regions;
            // Some widths legitimately don't translate (e.g. a
            // constant-vector period above the width) — those are
            // vacuous. Every width that commits must prove, and every
            // region must prove at least once.
            unsigned provedWidths = 0;
            for (const WidthProof &wp : rp.widths) {
                EXPECT_NE(wp.verdict, ProofVerdict::Refuted)
                    << wl->name() << " " << rp.entryLabel << " w"
                    << wp.width << ": " << wp.summary;
                EXPECT_NE(wp.verdict, ProofVerdict::Unknown)
                    << wl->name() << " " << rp.entryLabel << " w"
                    << wp.width << ": " << wp.summary;
                if (wp.verdict == ProofVerdict::Proved) {
                    ++provedWidths;
                    EXPECT_EQ(wp.unknownObligations, 0u)
                        << wl->name() << " " << rp.entryLabel;
                }
            }
            EXPECT_GE(provedWidths, 1u)
                << wl->name() << " " << rp.entryLabel;
            EXPECT_EQ(rp.overall(), ProofVerdict::Proved)
                << wl->name() << " " << rp.entryLabel;
        }
    }
    // The paper suite outlines a nontrivial number of regions; a
    // collapse here would make the gate vacuous.
    EXPECT_GE(regions, 20u);
}

TEST(Proof, SymbolicNClosesElementwiseKernelsWidthGenerically)
{
    ProofOptions opts;
    opts.symbolicN = true;
    unsigned widthGeneric = 0;
    unsigned proved = 0;
    for (const auto &wl : makeSuite()) {
        const ProgramProof pp = proveWorkload(*wl, opts);
        for (const RegionProof &rp : pp.regions) {
            EXPECT_NE(rp.overall(), ProofVerdict::Refuted)
                << wl->name() << " " << rp.entryLabel;
            EXPECT_NE(rp.overall(), ProofVerdict::Unknown)
                << wl->name() << " " << rp.entryLabel;
            if (rp.symbolicN.proved) {
                ++widthGeneric;
                // One symbolic proof covers every committed width.
                for (const WidthProof &wp : rp.widths) {
                    if (wp.verdict == ProofVerdict::Proved)
                        EXPECT_TRUE(wp.widthGeneric)
                            << wl->name() << " " << rp.entryLabel
                            << " w" << wp.width;
                }
            }
            ++proved;
        }
    }
    // The elementwise kernels (saxpy, add-style loops, ...) must close
    // width-generically; reductions and permutations legitimately fall
    // back to per-width proofs.
    EXPECT_GE(widthGeneric, 10u);
}

TEST(Proof, SabotageSuiteIsFullyCaught)
{
    ProofOptions opts;
    const auto outcomes = runSabotageSuite(opts);
    ASSERT_GE(outcomes.size(), 14u);
    unsigned refutedClass = 0;
    for (const SabotageOutcome &o : outcomes) {
        EXPECT_TRUE(o.pass) << o.name << ": " << o.detail;
        if (o.expect == "refuted") {
            ++refutedClass;
            EXPECT_EQ(o.verdict, ProofVerdict::Refuted) << o.name;
            EXPECT_TRUE(o.replayConfirmed)
                << o.name << ": counterexample did not replay";
        } else {
            EXPECT_EQ(o.verdict, ProofVerdict::NoTranslation) << o.name;
        }
    }
    // Both miscompile sabotages and all six microcode mutations.
    EXPECT_GE(refutedClass, 8u);
}

TEST(Proof, ProverUpgradesDepcheckUnknownWarnToOk)
{
    // Starve depcheck's pair-test budget so every width degrades to
    // Unknown on a perfectly safe elementwise kernel. Without the
    // prover that is a Warn; with it, the translation proof closes the
    // width and the verdict upgrades to Ok with the proof attached.
    vir::Kernel k("up_add", 16);
    k.store("up_c",
            k.bin(Opcode::Add, k.load("up_a"), k.load("up_b")));

    Program prog;
    std::vector<Word> init(16 + 16);
    for (unsigned i = 0; i < init.size(); ++i)
        init[i] = 3 * i + 1;
    prog.allocWords("up_a", init);
    prog.allocWords("up_b", init);
    prog.allocData("up_c", init.size() * 4);
    EmitOptions eopts;
    eopts.mode = EmitOptions::Mode::Scalarized;
    eopts.nativeWidth = 8;
    emitKernel(prog, k, eopts);
    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, "up_add", 8));
    prog.addInst(Inst::halt());
    prog.resolveBranches();

    ASSERT_EQ(prog.hintedCalls().size(), 1u);
    const int entry = prog.hintedCalls()[0].target;

    VerifyOptions base;
    base.config.simdWidth = 8;
    base.dep.pairBudget = 0;  // every width: Unknown
    const RegionReport plain = verifyRegion(prog, entry, base, 8);
    EXPECT_EQ(plain.verdict, Severity::Warn);
    EXPECT_TRUE(plain.proofVerdict.empty());

    VerifyOptions proving = base;
    proving.prove = true;
    const RegionReport proven = verifyRegion(prog, entry, proving, 8);
    EXPECT_EQ(proven.verdict, Severity::Ok) << proven.proofSummary;
    EXPECT_EQ(proven.proofVerdict, "proved");
    EXPECT_FALSE(proven.proofSummary.empty());
    EXPECT_EQ(proven.predictedWidth, 8u);
    EXPECT_GT(proven.predictedSpeedup, 0.0);
}

TEST(Proof, VerdictOrdering)
{
    EXPECT_EQ(worseProofVerdict(ProofVerdict::Proved,
                                ProofVerdict::Unknown),
              ProofVerdict::Unknown);
    EXPECT_EQ(worseProofVerdict(ProofVerdict::Unknown,
                                ProofVerdict::Refuted),
              ProofVerdict::Refuted);
    EXPECT_EQ(worseProofVerdict(ProofVerdict::NoTranslation,
                                ProofVerdict::Proved),
              ProofVerdict::Proved);
    EXPECT_STREQ(proofVerdictName(ProofVerdict::Proved), "proved");
    EXPECT_STREQ(proofVerdictName(ProofVerdict::Refuted), "refuted");
}
