/** @file Microcode cache tests (8 x 64-instruction entries, LRU). */

#include <gtest/gtest.h>

#include "memory/ucode_cache.hh"

namespace liquid
{
namespace
{

UcodeEntry
entry(Addr addr, Cycles ready_at = 0, unsigned insts = 4)
{
    UcodeEntry e;
    e.entryAddr = addr;
    e.insts.resize(insts, Inst::nop());
    e.simdWidth = 8;
    e.readyAt = ready_at;
    return e;
}

TEST(UcodeCache, HitAfterInsert)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    EXPECT_NE(cache.lookup(0x1000, 100), nullptr);
    EXPECT_EQ(cache.lookup(0x2000, 100), nullptr);
}

TEST(UcodeCache, NotReadyUntilTranslationLatencyElapses)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, /*ready_at=*/500));
    EXPECT_EQ(cache.lookup(0x1000, 499), nullptr);
    EXPECT_NE(cache.lookup(0x1000, 500), nullptr);
    EXPECT_EQ(cache.stats().get("notReadyMisses"), 1u);
}

TEST(UcodeCache, LruEvictionAtCapacity)
{
    UcodeCacheConfig config;
    config.entries = 2;
    UcodeCache cache(config);
    cache.insert(entry(0x1000));
    cache.insert(entry(0x2000));
    // Touch 0x1000 so 0x2000 becomes LRU.
    EXPECT_NE(cache.lookup(0x1000, 0), nullptr);
    cache.insert(entry(0x3000));
    EXPECT_NE(cache.lookup(0x1000, 0), nullptr);
    EXPECT_EQ(cache.lookup(0x2000, 0), nullptr);
    EXPECT_NE(cache.lookup(0x3000, 0), nullptr);
    EXPECT_EQ(cache.stats().get("evictions"), 1u);
}

TEST(UcodeCache, ReplacesStaleTranslationOfSameRegion)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, 0, 4));
    cache.insert(entry(0x1000, 0, 6));
    const UcodeEntry *e = cache.lookup(0x1000, 0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->insts.size(), 6u);
    EXPECT_EQ(cache.stats().get("replacements"), 1u);
}

TEST(UcodeCache, ContainsIgnoresReadiness)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, 10'000));
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(UcodeCache, FlushEmpties)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(UcodeCacheDeath, OversizedEntryPanics)
{
    UcodeCache cache(UcodeCacheConfig{});
    EXPECT_THROW(cache.insert(entry(0x1000, 0, 65)), PanicError);
}

} // namespace
} // namespace liquid
