/** @file Microcode cache tests (8 x 64-instruction entries, LRU). */

#include <gtest/gtest.h>

#include "chaos/fault_schedule.hh"
#include "memory/ucode_cache.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

UcodeEntry
entry(Addr addr, Cycles ready_at = 0, unsigned insts = 4)
{
    UcodeEntry e;
    e.entryAddr = addr;
    e.insts.resize(insts, Inst::nop());
    e.simdWidth = 8;
    e.readyAt = ready_at;
    return e;
}

TEST(UcodeCache, HitAfterInsert)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    EXPECT_NE(cache.lookup(0x1000, 100), nullptr);
    EXPECT_EQ(cache.lookup(0x2000, 100), nullptr);
}

TEST(UcodeCache, NotReadyUntilTranslationLatencyElapses)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, /*ready_at=*/500));
    EXPECT_EQ(cache.lookup(0x1000, 499), nullptr);
    EXPECT_NE(cache.lookup(0x1000, 500), nullptr);
    EXPECT_EQ(cache.stats().get("notReadyMisses"), 1u);
}

TEST(UcodeCache, LruEvictionAtCapacity)
{
    UcodeCacheConfig config;
    config.entries = 2;
    UcodeCache cache(config);
    cache.insert(entry(0x1000));
    cache.insert(entry(0x2000));
    // Touch 0x1000 so 0x2000 becomes LRU.
    EXPECT_NE(cache.lookup(0x1000, 0), nullptr);
    cache.insert(entry(0x3000));
    EXPECT_NE(cache.lookup(0x1000, 0), nullptr);
    EXPECT_EQ(cache.lookup(0x2000, 0), nullptr);
    EXPECT_NE(cache.lookup(0x3000, 0), nullptr);
    EXPECT_EQ(cache.stats().get("evictions"), 1u);
}

TEST(UcodeCache, ReplacesStaleTranslationOfSameRegion)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, 0, 4));
    cache.insert(entry(0x1000, 0, 6));
    const UcodeEntry *e = cache.lookup(0x1000, 0);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->insts.size(), 6u);
    EXPECT_EQ(cache.stats().get("replacements"), 1u);
}

TEST(UcodeCache, ContainsIgnoresReadiness)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, 10'000));
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(UcodeCache, FlushEmpties)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(UcodeCache, FlushCountsDroppedEntries)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    cache.insert(entry(0x2000));
    cache.insert(entry(0x3000));
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
    EXPECT_FALSE(cache.contains(0x3000));
    EXPECT_EQ(cache.stats().get("flushes"), 1u);
    EXPECT_EQ(cache.stats().get("flushedEntries"), 3u);
    // A second flush drops nothing further.
    cache.flush();
    EXPECT_EQ(cache.stats().get("flushes"), 2u);
    EXPECT_EQ(cache.stats().get("flushedEntries"), 3u);
}

TEST(UcodeCache, InvalidateWhileResidentDropsOnlyTheTarget)
{
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    cache.insert(entry(0x2000));
    EXPECT_TRUE(cache.invalidate(0x1000));
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_TRUE(cache.contains(0x2000));
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
    // Invalidating an absent entry is a no-op, not an error.
    EXPECT_FALSE(cache.invalidate(0x1000));
    EXPECT_EQ(cache.stats().get("invalidations"), 1u);
}

TEST(UcodeCache, InvalidateRangeUsesTranslatedCodeRange)
{
    UcodeCache cache(UcodeCacheConfig{});
    UcodeEntry e = entry(0x1000);
    e.codeEnd = 0x1020;  // translated from [0x1000, 0x1020)
    cache.insert(e);

    // Ranges outside the translated code leave the entry alone.
    EXPECT_TRUE(cache.invalidateRange(0x0ff0, 0x1000).empty());
    EXPECT_TRUE(cache.invalidateRange(0x1020, 0x1030).empty());
    EXPECT_TRUE(cache.contains(0x1000));

    // A store into the last translated instruction invalidates.
    const std::vector<Addr> removed =
        cache.invalidateRange(0x101c, 0x1020);
    ASSERT_EQ(removed.size(), 1u);
    EXPECT_EQ(removed[0], 0x1000u);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(UcodeCache, InvalidateRangeFallsBackToEntryInstruction)
{
    // Entries with unknown codeEnd match on the entry word alone.
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000));
    EXPECT_TRUE(cache.invalidateRange(0x1004, 0x1020).empty());
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.invalidateRange(0x1000, 0x1004).size(), 1u);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(UcodeCache, EntryAddrsTrackMruOrder)
{
    UcodeCache cache(UcodeCacheConfig{});
    EXPECT_EQ(cache.lruEntryAddr(), invalidAddr);
    EXPECT_EQ(cache.mruEntryAddr(), invalidAddr);
    cache.insert(entry(0x1000));
    cache.insert(entry(0x2000));
    cache.insert(entry(0x3000));
    EXPECT_EQ(cache.entryAddrs(),
              (std::vector<Addr>{0x3000, 0x2000, 0x1000}));
    EXPECT_EQ(cache.mruEntryAddr(), 0x3000u);
    EXPECT_EQ(cache.lruEntryAddr(), 0x1000u);
    // A hit refreshes LRU order.
    EXPECT_NE(cache.lookup(0x1000, 0), nullptr);
    EXPECT_EQ(cache.mruEntryAddr(), 0x1000u);
    EXPECT_EQ(cache.lruEntryAddr(), 0x2000u);
}

TEST(UcodeCache, EvictionUnderExecutionLeavesLatchedCopyIntact)
{
    // The core latches the dispatched entry by value (its microcode
    // execution buffer); flushing or evicting the cache mid-region
    // must not perturb the instructions already being executed.
    UcodeCache cache(UcodeCacheConfig{});
    cache.insert(entry(0x1000, 0, 8));
    const UcodeEntry latched = *cache.lookup(0x1000, 0);
    cache.flush();
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_EQ(latched.entryAddr, 0x1000u);
    EXPECT_EQ(latched.insts.size(), 8u);
}

TEST(UcodeCacheDeath, OversizedEntryPanics)
{
    UcodeCache cache(UcodeCacheConfig{});
    EXPECT_THROW(cache.insert(entry(0x1000, 0, 65)), PanicError);
}

TEST(UcodeCacheSystem, FlushedRegionIsRetranslatedOnNextCall)
{
    // End-to-end loss/recovery: a mid-run microcode-cache flush costs
    // the resident translation, and the translator's post-retirement
    // pipeline re-translates the region on its next scalar execution,
    // attributing the repeat to the flush.
    for (const auto &wl : makeSuite()) {
        if (wl->name() != "fir")
            continue;
        const Workload::Build build =
            wl->build(EmitOptions::Mode::Scalarized, 8);
        // The flush only costs a translation once one is resident, so
        // probe successively later retire indices until the loss is
        // observed; the recovery assertions then apply to that run.
        for (const std::uint64_t at :
             {2'000u, 5'000u, 10'000u, 20'000u, 40'000u}) {
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, 8);
            config.core.faults = FaultSchedule::parse(
                "flush@" + std::to_string(at));
            System sys(config, build.prog);
            sys.run();

            const StatGroup &ts = sys.translator().stats();
            EXPECT_GE(sys.core().stats().get("faults.flush"), 1u);
            if (ts.get("translationsLost") == 0)
                continue;
            EXPECT_GE(ts.get("lost.ucodeFlushed"), 1u);
            EXPECT_GE(ts.get("retranslations"), 1u);
            EXPECT_GE(ts.get("retranslate.ucodeFlushed"), 1u);
            return;
        }
        FAIL() << "no probed flush index ever caught a resident "
                  "translation";
    }
    FAIL() << "fir missing from suite";
}

} // namespace
} // namespace liquid
