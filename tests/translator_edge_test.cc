/**
 * @file
 * Translator edge cases beyond the rule-by-rule tests: multi-loop
 * regions, constant-verification aborts, general constant operands,
 * reduction variants, idiom failure shapes, microcode cache pressure.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/system.hh"

namespace liquid
{
namespace
{

struct LiquidRun
{
    Program prog;
    SystemConfig config;
    System sys;

    LiquidRun(const std::string &src, unsigned width = 8,
              std::function<void(SystemConfig &)> tweak = {})
        : prog(assemble(src)),
          config([&] {
              SystemConfig c = SystemConfig::make(ExecMode::Liquid, width);
              c.translator.latencyPerInst = 0;
              if (tweak)
                  tweak(c);
              return c;
          }()),
          sys(config, prog)
    {
        sys.run();
    }

    const UcodeEntry *
    ucodeFor(const std::string &fn)
    {
        return sys.ucodeCache().lookup(
            Program::instAddr(prog.labelIndex(fn)),
            sys.cycles() + 1'000'000);
    }

    std::uint64_t tstat(const std::string &s)
    {
        return sys.translator().stats().get(s);
    }
};

TEST(TranslatorEdge, FissionedTwoLoopRegion)
{
    // One outlined function containing two sequential loops (the
    // paper's Figure 4(B) shape): both must translate into one
    // microcode region with two strided loops.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data t 32
        .data b 32
        fn:
            mov r0, #0
        top1:
            ldw r1, [a + r0]
            add r1, r1, #1
            stw [t + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top1
            mov r0, #0
        top2:
            ldw r2, [t + r0]
            mul r2, r2, #2
            stw [b + r0], r2
            add r0, r0, #1
            cmp r0, #8
            blt top2
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_EQ(r.tstat("loopsVerified"), 2u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    unsigned strides = 0;
    unsigned backedges = 0;
    for (const auto &inst : uc->insts) {
        strides += inst.op == Opcode::Add && inst.hasImm &&
                   inst.imm == 8 && inst.dst == inst.src1;
        backedges += inst.op == Opcode::B;
    }
    EXPECT_EQ(strides, 2u);
    EXPECT_EQ(backedges, 2u);
    // b = 2*(a+1) after microcode execution too.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  2 * (i + 2));
}

TEST(TranslatorEdge, NonPeriodicRoDataAborts)
{
    // A "constant" array that is not W-periodic cannot become a vector
    // constant; lane verification rejects it during iterations > W.
    LiquidRun r(R"(
        .rowords cnst 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        .words a 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1
        .data b 64
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [cnst + r0]
            add r3, r1, r2
            stw [b + r0], r3
            add r0, r0, #1
            cmp r0, #16
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            bl.simd fn
            bl.simd fn
            halt
    )",
                8);
    // Width 8 capture collects lanes 1..8, then sees lane 9 != lane 1.
    EXPECT_GE(r.tstat("abort.valueMismatch"), 1u);
    // Still numerically correct via scalar execution (or a narrower
    // binding if the fallback found one — here 16 periodic? no).
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  i + 2);
}

TEST(TranslatorEdge, GeneralConstantVectorNotJustMasks)
{
    // Periodic constants that are not 0/~0 masks become cvec operands.
    LiquidRun r(R"(
        .rowords cnst 5 -3 5 -3 5 -3 5 -3
        .words a 10 10 10 10 10 10 10 10
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            ldw r2, [cnst + r0]
            add r3, r1, r2
            stw [b + r0], r3
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_cvec = false;
    for (const auto &inst : uc->insts) {
        if (inst.cvec != noCvec) {
            has_cvec = true;
            EXPECT_EQ(uc->cvecs[inst.cvec].lanes,
                      (std::vector<Word>{5, static_cast<Word>(-3)}));
        }
    }
    EXPECT_TRUE(has_cvec);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  i % 2 ? 7u : 15u);
}

TEST(TranslatorEdge, AddReductionAndCountAccumulator)
{
    // Sum reduction plus a count accumulator (add #1 in a non-IV role:
    // translated as add #W, which is exactly a per-vector count).
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data res 16
        fn:
            mov r1, #0
            mov r2, #0
            mov r0, #0
        top:
            ldw r3, [a + r0]
            add r1, r1, r3
            add r2, r2, #1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            mov r10, #0
            bl.simd fn
            stw [res + r10], r1
            mov r10, #1
            bl.simd fn
            stw [res + r10], r1
            mov r10, #2
            stw [res + r10], r2
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_GE(r.sys.core().stats().get("ucodeDispatches"), 1u);
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("res")), 36u);
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("res") + 4), 36u);
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("res") + 8), 8u);
}

TEST(TranslatorEdge, BrokenIdiomAborts)
{
    // cmp on a vectorized register that is not the saturation idiom.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            cmp r1, #4
            movgt r1, #4
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    // cmp #4 is not the saturation bound: untranslatable vector cmp.
    EXPECT_EQ(r.tstat("abort.vectorCompare"), 1u);
    EXPECT_EQ(r.tstat("translations"), 0u);
    // Clamp semantics preserved by scalar execution.
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 28), 4u);
}

TEST(TranslatorEdge, MicrocodeCacheEvictionRetranslates)
{
    // With a 1-entry microcode cache, alternating two hot regions
    // forces eviction and retranslation — functionally transparent.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        .data c 32
        f1:
            mov r0, #0
        t1:
            ldw r1, [a + r0]
            add r1, r1, #1
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt t1
            ret
        f2:
            mov r0, #0
        t2:
            ldw r1, [a + r0]
            mul r1, r1, #2
            stw [c + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt t2
            ret
        main:
            bl.simd f1
            bl.simd f2
            bl.simd f1
            bl.simd f2
            bl.simd f1
            bl.simd f2
            halt
    )",
                8,
                [](SystemConfig &c) { c.ucodeCache.entries = 1; });
    EXPECT_GE(r.tstat("translations"), 3u)
        << "eviction must trigger retranslation";
    EXPECT_GE(r.sys.ucodeCache().stats().get("evictions"), 2u);
    for (unsigned i = 0; i < 8; ++i) {
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  i + 2);
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("c") + 4 * i),
                  2 * (i + 1));
    }
}

TEST(TranslatorEdge, HalfwordLoopTranslatesWithElementScaling)
{
    LiquidRun r(R"(
        .data h 64
        .data o 64
        init:
            mov r0, #0
        it:
            add r1, r0, #100
            sth [h + r0], r1
            add r0, r0, #1
            cmp r0, #16
            blt it
            ret
        fn:
            mov r0, #0
        top:
            ldsh r1, [h + r0]
            add r1, r1, #-50
            sth [o + r0], r1
            add r0, r0, #1
            cmp r0, #16
            blt top
            ret
        main:
            bl init
            bl.simd fn
            bl.simd fn
            halt
    )");
    EXPECT_EQ(r.tstat("translations"), 1u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    ASSERT_NE(uc, nullptr);
    bool has_vldsh = false;
    for (const auto &inst : uc->insts)
        has_vldsh = has_vldsh || inst.op == Opcode::Vldsh;
    EXPECT_TRUE(has_vldsh);
    EXPECT_EQ(r.sys.memory().readHalf(r.prog.symbol("o") + 2 * 15),
              100u + 15 - 50);
}

TEST(TranslatorEdge, RegionWithoutLoopCommitsNothingVectorish)
{
    // A hinted function that is just scalar glue: translation commits
    // a scalar-only microcode region (harmless) or the region simply
    // runs; either way results are exact and nothing vector appears.
    LiquidRun r(R"(
        .data out 16
        fn:
            mov r1, #7
            mov r2, #35
            add r3, r1, r2
            ret
        main:
            mov r10, #0
            bl.simd fn
            stw [out + r10], r3
            halt
    )");
    EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("out")), 42u);
    const UcodeEntry *uc = r.ucodeFor("fn");
    if (uc) {
        for (const auto &inst : uc->insts)
            EXPECT_FALSE(inst.info().isVector) << inst.toString();
    }
}

TEST(TranslatorEdge, ShuffleRepertoireGatesTranslation)
{
    // An accelerator generation without the butterfly opcode must
    // refuse a butterfly loop that a newer generation accepts — same
    // binary, same width (the paper's functionality-evolution axis).
    const char *src = R"(
        .rowords off 4 4 4 4 -4 -4 -4 -4
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [off + r0]
            add r1, r0, r1
            ldw r2, [a + r1]
            stw [b + r0], r2
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )";
    LiquidRun old_gen(src, 8, [](SystemConfig &c) {
        c.translator.permRepertoire = permSet({PermKind::SwapPairs});
        c.translator.widthFallback = false;
    });
    EXPECT_EQ(old_gen.tstat("translations"), 0u);
    EXPECT_EQ(old_gen.tstat("abort.unsupportedShuffle"), 1u);
    // Functionally identical via scalar execution.
    EXPECT_EQ(old_gen.sys.memory().readWord(
                  old_gen.prog.symbol("b")),
              5u);

    LiquidRun new_gen(src, 8);
    EXPECT_EQ(new_gen.tstat("translations"), 1u);
    EXPECT_EQ(new_gen.sys.memory().readWord(
                  new_gen.prog.symbol("b")),
              5u);
}

TEST(TranslatorEdge, RuntimeTripCountInRegister)
{
    // The loop bound lives in a register set by the caller (the
    // compiler still guarantees multiples of the compiled width). The
    // same microcode serves different trip counts across calls.
    LiquidRun r(R"(
        .words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        .data b 64
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            add r1, r1, #100
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, r9
            blt top
            ret
        main:
            mov r9, #8
            bl.simd fn
            mov r9, #16
            bl.simd fn
            halt
    )",
                8,
                [](SystemConfig &c) {
                    c.translator.latencyPerInst = 0;
                });
    EXPECT_EQ(r.tstat("translations"), 1u);
    EXPECT_GE(r.sys.core().stats().get("ucodeDispatches"), 1u);
    // The second call (N=16) ran as microcode with the register bound.
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.sys.memory().readWord(r.prog.symbol("b") + 4 * i),
                  i + 101);
}

} // namespace
} // namespace liquid
