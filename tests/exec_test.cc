/** @file ALU / vector-datapath semantics tests. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "cpu/exec.hh"

namespace liquid
{
namespace
{

TEST(ScalarOps, IntegerArithmetic)
{
    EXPECT_EQ(evalScalarOp(Opcode::Add, 3, 4, false), 7u);
    EXPECT_EQ(evalScalarOp(Opcode::Sub, 3, 4, false),
              static_cast<Word>(-1));
    EXPECT_EQ(evalScalarOp(Opcode::Rsb, 3, 4, false), 1u);
    EXPECT_EQ(evalScalarOp(Opcode::Mul, 7, 6, false), 42u);
    // Wraparound is defined.
    EXPECT_EQ(evalScalarOp(Opcode::Add, 0xFFFFFFFF, 1, false), 0u);
    EXPECT_EQ(evalScalarOp(Opcode::Mul, 0x10000, 0x10000, false), 0u);
}

TEST(ScalarOps, Bitwise)
{
    EXPECT_EQ(evalScalarOp(Opcode::And, 0xF0F0, 0xFF00, false), 0xF000u);
    EXPECT_EQ(evalScalarOp(Opcode::Orr, 0xF0F0, 0x0F0F, false), 0xFFFFu);
    EXPECT_EQ(evalScalarOp(Opcode::Eor, 0xFF, 0x0F, false), 0xF0u);
    EXPECT_EQ(evalScalarOp(Opcode::Bic, 0xFF, 0x0F, false), 0xF0u);
}

TEST(ScalarOps, Shifts)
{
    EXPECT_EQ(evalScalarOp(Opcode::Lsl, 1, 4, false), 16u);
    EXPECT_EQ(evalScalarOp(Opcode::Lsr, 0x80000000, 31, false), 1u);
    EXPECT_EQ(evalScalarOp(Opcode::Asr, 0x80000000, 31, false),
              0xFFFFFFFFu);
    EXPECT_EQ(evalScalarOp(Opcode::Lsl, 1, 32, false), 0u);
    EXPECT_EQ(evalScalarOp(Opcode::Lsr, 0xFF, 32, false), 0u);
}

TEST(ScalarOps, MinMaxSigned)
{
    const Word neg2 = static_cast<Word>(-2);
    EXPECT_EQ(evalScalarOp(Opcode::Min, neg2, 1, false), neg2);
    EXPECT_EQ(evalScalarOp(Opcode::Max, neg2, 1, false), 1u);
}

TEST(ScalarOps, SaturatingArithmetic)
{
    EXPECT_EQ(evalScalarOp(Opcode::Qadd, 32000, 10000, false),
              static_cast<Word>(satMax));
    EXPECT_EQ(evalScalarOp(Opcode::Qadd, 5, 6, false), 11u);
    EXPECT_EQ(evalScalarOp(Opcode::Qsub, static_cast<Word>(-32000),
                           10000, false),
              static_cast<Word>(satMin));
    EXPECT_EQ(evalScalarOp(Opcode::Qsub, 10, 4, false), 6u);
}

TEST(ScalarOps, FloatSemanticsByClass)
{
    const Word a = floatToBits(1.5f);
    const Word b = floatToBits(2.25f);
    EXPECT_EQ(bitsToFloat(evalScalarOp(Opcode::Add, a, b, true)), 3.75f);
    EXPECT_EQ(bitsToFloat(evalScalarOp(Opcode::Mul, a, b, true)), 3.375f);
    EXPECT_EQ(bitsToFloat(evalScalarOp(Opcode::Sub, a, b, true)), -0.75f);
    EXPECT_EQ(bitsToFloat(evalScalarOp(Opcode::Min, a, b, true)), 1.5f);
    // Bitwise ops stay raw even in float mode (masking float lanes,
    // as in the paper's FFT example).
    EXPECT_EQ(evalScalarOp(Opcode::And, a, 0, true), 0u);
    EXPECT_EQ(evalScalarOp(Opcode::And, a, 0xFFFFFFFF, true), a);
}

TEST(Compare, IntAndFloat)
{
    EXPECT_EQ(evalCompare(1, 2, false), -1);
    EXPECT_EQ(evalCompare(2, 2, false), 0);
    EXPECT_EQ(evalCompare(3, 2, false), 1);
    EXPECT_EQ(evalCompare(static_cast<Word>(-1), 1, false), -1);
    EXPECT_EQ(evalCompare(floatToBits(-0.5f), floatToBits(0.5f), true),
              -1);
    EXPECT_EQ(evalCompare(floatToBits(2.f), floatToBits(2.f), true), 0);
}

TEST(VectorOps, Elementwise)
{
    VecValue a{}, b{};
    for (unsigned i = 0; i < 8; ++i) {
        a[i] = i;
        b[i] = 10 * i;
    }
    const auto sum = evalVectorOp(Opcode::Vadd, a, b, 8, false);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sum[i], 11 * i);
    const auto mx = evalVectorOp(Opcode::Vmax, a, b, 8, false);
    EXPECT_EQ(mx[0], 0u);
    EXPECT_EQ(mx[3], 30u);
}

TEST(VectorOps, ConstOperandIsPeriodic)
{
    VecValue a{};
    a.fill(100);
    ConstVec cv{{1, 2}};
    const auto out = evalVectorConstOp(Opcode::Vadd, a, cv, 8, false);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], 100u + 1 + (i % 2));
}

TEST(VectorOps, ReductionFoldsAccumulator)
{
    VecValue v{};
    for (unsigned i = 0; i < 8; ++i)
        v[i] = i + 1;
    EXPECT_EQ(evalReduction(Opcode::Vredadd, 100, v, 8, false), 136u);
    EXPECT_EQ(evalReduction(Opcode::Vredmin, 3, v, 8, false), 1u);
    EXPECT_EQ(evalReduction(Opcode::Vredmax, 3, v, 8, false), 8u);
}

TEST(VectorOps, MaskZeroesUnselectedLanes)
{
    VecValue v{};
    v.fill(0xAAAA);
    const auto out = evalMask(v, 0xF0, 8, 8);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], i >= 4 ? 0xAAAAu : 0u);

    // Periodic mask: block 2 over 8 lanes keeps even lanes.
    const auto out2 = evalMask(v, 0x1, 2, 8);
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out2[i], i % 2 == 0 ? 0xAAAAu : 0u);
}

TEST(VectorOps, PermBlockRepeats)
{
    VecValue v{};
    for (unsigned i = 0; i < 8; ++i)
        v[i] = i;
    // SwapHalves block 4 over 8 lanes: [2,3,0,1, 6,7,4,5].
    const auto out = evalPerm(v, PermKind::SwapHalves, 4, 8);
    const Word expect[8] = {2, 3, 0, 1, 6, 7, 4, 5};
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(out[i], expect[i]);
}

} // namespace
} // namespace liquid
