/**
 * @file
 * Random legal vir::Kernel generation, shared by the property
 * round-trip test and the verifier differential test. Kernels are
 * drawn from the supported rule categories of paper Table 1; values
 * stay in small integer ranges so results are bit-exact across widths.
 */

#ifndef LIQUID_TESTS_RANDOM_KERNELS_HH
#define LIQUID_TESTS_RANDOM_KERNELS_HH

#include <string>
#include <vector>

#include "common/random.hh"
#include "scalarizer/scalarizer.hh"

namespace liquid
{

/** A generated kernel plus the context needed to build programs. */
struct GeneratedKernel
{
    vir::Kernel kernel;
    std::vector<std::string> inputs;   ///< initialized arrays
    std::vector<std::string> outputs;  ///< stored arrays to compare
};

/**
 * Generate a random legal kernel. Reductions use min/max/add on
 * integers; in/out arrays are disjoint so staging is always legal.
 */
inline GeneratedKernel
generateKernel(Rng &rng, unsigned index)
{
    const unsigned trip = 16u << rng.range(0, 2);  // 16/32/64
    GeneratedKernel g{vir::Kernel("prop" + std::to_string(index), trip),
                      {},
                      {}};
    vir::Kernel &k = g.kernel;

    const unsigned num_inputs = static_cast<unsigned>(rng.range(2, 4));
    for (unsigned i = 0; i < num_inputs; ++i)
        g.inputs.push_back("in" + std::to_string(index) + "_" +
                           std::to_string(i));

    // Live values the generator can consume.
    std::vector<int> live;
    for (unsigned i = 0; i < num_inputs; ++i) {
        live.push_back(k.load(g.inputs[i], 4, false, false,
                              static_cast<std::int32_t>(rng.range(0, 2))));
    }

    auto pick = [&]() -> int {
        return live[static_cast<std::size_t>(
            rng.range(0, static_cast<int>(live.size()) - 1))];
    };
    // Keep the working set small enough for the scalar register pool:
    // new values replace a random live one once pressure builds.
    auto defineValue = [&](int value) {
        if (live.size() >= 6) {
            live[static_cast<std::size_t>(rng.range(
                0, static_cast<int>(live.size()) - 1))] = value;
        } else {
            live.push_back(value);
        }
    };

    int accs = 0;
    const unsigned ops = static_cast<unsigned>(rng.range(4, 12));
    for (unsigned i = 0; i < ops; ++i) {
        switch (rng.range(0, 9)) {
          case 0:
          case 1:
          case 2: {
            static const Opcode binops[] = {
                Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                Opcode::Orr, Opcode::Eor, Opcode::Min, Opcode::Max,
                Opcode::Rsb, Opcode::Bic, Opcode::Qsub,
            };
            defineValue(k.bin(binops[rng.range(0, 10)], pick(),
                              pick()));
            break;
          }
          case 3: {
            static const Opcode immops[] = {Opcode::Add, Opcode::Lsl,
                                            Opcode::Lsr, Opcode::Asr};
            const Opcode op = immops[rng.range(0, 3)];
            const std::int32_t imm =
                op == Opcode::Add
                    ? static_cast<std::int32_t>(rng.range(-50, 50))
                    : static_cast<std::int32_t>(rng.range(0, 7));
            defineValue(k.binImm(op, pick(), imm));
            break;
          }
          case 4: {
            // Periodic constant within the representable range.
            const unsigned period = 1u << rng.range(0, 2);
            std::vector<Word> lanes(period);
            for (auto &lane : lanes) {
                lane = static_cast<Word>(
                    static_cast<std::int32_t>(rng.range(-100, 100)));
            }
            defineValue(
                k.binConst(Opcode::Add, pick(), std::move(lanes)));
            break;
          }
          case 5: {
            const unsigned block = 2u << rng.range(0, 2);  // 2/4/8
            const auto kind = static_cast<PermKind>(rng.range(
                0, static_cast<int>(PermKind::NumKinds) - 1));
            defineValue(k.perm(pick(), kind, block));
            break;
          }
          case 6: {
            const unsigned block = 2u << rng.range(0, 2);
            const std::uint32_t bits = static_cast<std::uint32_t>(
                rng.range(1, (1 << block) - 1));
            defineValue(k.mask(pick(), bits, block));
            break;
          }
          case 7: {
            static const Opcode redops[] = {Opcode::Add, Opcode::Min,
                                            Opcode::Max};
            const int acc = k.newAcc(
                "acc" + std::to_string(accs++), redops[rng.range(0, 2)],
                static_cast<Word>(rng.range(-5, 5)));
            k.reduce(acc, pick());
            break;
          }
          case 8:
            defineValue(k.bin(Opcode::Qadd, pick(), pick()));
            break;
          case 9: {
            const std::string out = "out" + std::to_string(index) +
                                    "_" +
                                    std::to_string(g.outputs.size());
            g.outputs.push_back(out);
            k.store(out, pick());
            break;
          }
        }
    }
    // Always at least one store so the kernel is observable.
    const std::string out = "out" + std::to_string(index) + "_" +
                            std::to_string(g.outputs.size());
    g.outputs.push_back(out);
    k.store(out, pick());
    return g;
}

/**
 * Build a runnable program around @p g: initialized inputs, output
 * arrays, the emitted kernel, and a main with three (hinted) calls.
 */
inline Program
buildGeneratedProgram(const GeneratedKernel &g, Rng &data_rng,
                      EmitOptions::Mode mode, unsigned width,
                      EmitOptions::Sabotage sabotage =
                          EmitOptions::Sabotage::None,
                      unsigned sabotage_distance = 1)
{
    Program prog;
    const unsigned n = g.kernel.tripCount() + 16;
    for (const auto &name : g.inputs) {
        std::vector<Word> words(n);
        for (auto &w : words) {
            w = static_cast<Word>(
                static_cast<std::int32_t>(data_rng.range(-500, 500)));
        }
        prog.allocWords(name, words);
    }
    for (const auto &name : g.outputs)
        prog.allocData(name, n * 4);

    EmitResult r;
    if (mode == EmitOptions::Mode::InlineScalar) {
        // Inline: the kernel body is emitted three times inside main,
        // matching the three calls of the outlined builds.
        prog.defineLabel("main");
        for (int call = 0; call < 3; ++call) {
            EmitOptions opts;
            opts.mode = mode;
            opts.fnName =
                g.kernel.name() + "_i" + std::to_string(call);
            r = emitKernel(prog, g.kernel, opts);
        }
    } else {
        EmitOptions opts;
        opts.mode = mode;
        opts.nativeWidth = width;
        opts.sabotage = sabotage;
        opts.sabotageDistance = sabotage_distance;
        r = emitKernel(prog, g.kernel, opts);
        prog.defineLabel("main");
        for (int call = 0; call < 3; ++call) {
            prog.addInst(Inst::call(-1, true, g.kernel.name(),
                                    g.kernel.maxWidth()));
        }
    }
    // Accumulators observable in memory.
    for (unsigned a = 0; a < r.accRegs.size(); ++a) {
        const std::string res =
            "accres" + std::to_string(a) + "_" + g.kernel.name();
        if (!prog.hasSymbol(res))
            prog.allocData(res, 4);
        MemRef m;
        m.base = prog.symbol(res);
        m.baseSym = res;
        prog.addInst(Inst::store(Opcode::Stw, r.accRegs[a], m));
    }
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    return prog;
}

} // namespace liquid

#endif // LIQUID_TESTS_RANDOM_KERNELS_HH
