/**
 * @file
 * Property-based round-trip tests: randomly generated vector-IR
 * kernels, drawn from the supported rule categories of paper Table 1,
 * must produce identical memory through every path:
 *
 *   vector IR --interpret--> golden memory
 *   vector IR --scalarize--> scalar binary --execute--> memory
 *   scalar binary --dynamic translation--> microcode --execute--> memory
 *   vector IR --native codegen--> SIMD binary --execute--> memory
 *
 * across accelerator widths {2, 4, 8, 16}. This exercises the
 * scalarizer's fission/fusion decisions, the translator's rule
 * automaton and collapse network, and the core's vector datapath
 * against each other on shapes no human wrote.
 */

#include <gtest/gtest.h>

#include "random_kernels.hh"
#include "sim/system.hh"
#include "translator/offline.hh"
#include "workloads/vir_interp.hh"

namespace liquid
{
namespace
{

Program
buildProgram(const GeneratedKernel &g, Rng &data_rng,
             EmitOptions::Mode mode, unsigned width)
{
    return buildGeneratedProgram(g, data_rng, mode, width);
}

std::vector<Word>
readOutputs(const GeneratedKernel &g, const Program &prog,
            const MainMemory &mem)
{
    std::vector<Word> all;
    for (const auto &name : g.outputs) {
        const Addr base = prog.symbol(name);
        for (unsigned i = 0; i < g.kernel.tripCount(); ++i)
            all.push_back(mem.readWord(base + 4 * i));
    }
    // Accumulator result slots.
    for (unsigned a = 0; a < g.kernel.accs().size(); ++a) {
        const std::string res =
            "accres" + std::to_string(a) + "_" + g.kernel.name();
        all.push_back(mem.readWord(prog.symbol(res)));
    }
    return all;
}

/** Golden: interpret the kernel three times (like the three calls). */
std::vector<Word>
goldenOutputs(const GeneratedKernel &g, const Program &prog)
{
    MainMemory mem = MainMemory::forProgram(prog);
    std::vector<Word> accs;
    for (int call = 0; call < 3; ++call)
        accs = interpretKernel(g.kernel, prog, mem);
    std::vector<Word> all;
    for (const auto &name : g.outputs) {
        const Addr base = prog.symbol(name);
        for (unsigned i = 0; i < g.kernel.tripCount(); ++i)
            all.push_back(mem.readWord(base + 4 * i));
    }
    for (const Word acc : accs)
        all.push_back(acc);
    return all;
}

class RoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RoundTrip, RandomKernelsAgreeEverywhere)
{
    const unsigned seed = GetParam();
    Rng rng(seed);

    for (unsigned trial = 0; trial < 12; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);

        // Inline scalar on a plain core is the structural reference
        // for the ISA path.
        Rng data_rng(seed * 977 + trial);
        Program inline_prog = buildProgram(
            g, data_rng, EmitOptions::Mode::InlineScalar, 8);
        // Re-seed so every build gets identical data.
        auto freshData = [&](EmitOptions::Mode mode, unsigned width) {
            Rng d(seed * 977 + trial);
            return buildProgram(g, d, mode, width);
        };

        const std::vector<Word> golden =
            goldenOutputs(g, inline_prog);

        {
            System sys(SystemConfig::make(ExecMode::ScalarBaseline),
                       inline_prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, inline_prog, sys.memory()), golden)
                << "inline scalar, seed=" << seed
                << " trial=" << trial;
        }

        for (unsigned width : {2u, 4u, 8u, 16u}) {
            Program prog =
                freshData(EmitOptions::Mode::Scalarized, width);
            System sys(SystemConfig::make(ExecMode::Liquid, width),
                       prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, prog, sys.memory()), golden)
                << "liquid W=" << width << ", seed=" << seed
                << " trial=" << trial << "\nkernel ops="
                << g.kernel.body().size();
        }

        // Native where the width can express every construct.
        for (unsigned width : {8u, 16u}) {
            bool ok = true;
            for (const auto &v : g.kernel.body()) {
                if (v.k == vir::OpK::Perm && v.permBlock > width)
                    ok = false;
                if (v.k == vir::OpK::Mask && v.maskBlock > width)
                    ok = false;
            }
            if (!ok || g.kernel.tripCount() % width != 0)
                continue;
            Program prog = freshData(EmitOptions::Mode::Native, width);
            System sys(SystemConfig::make(ExecMode::NativeSimd, width),
                       prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, prog, sys.memory()), golden)
                << "native W=" << width << ", seed=" << seed
                << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

/**
 * The offline (static) translator must agree with the hardware
 * translator on random kernels too, not just the curated suite.
 */
TEST(RoundTripOffline, StaticAndDynamicTranslationAgree)
{
    Rng rng(4242);
    for (unsigned trial = 0; trial < 20; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        Rng d(trial * 31 + 7);
        Program prog = buildProgram(g, d,
                                    EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        sys.run();
        const Addr entry =
            Program::instAddr(prog.labelIndex(g.kernel.name()));
        const UcodeEntry *hw =
            sys.ucodeCache().lookup(entry, sys.cycles() + 1'000'000);

        OfflineResult off;
        for (unsigned w = 8; w >= 2; w /= 2) {
            off = translateOffline(prog,
                                   prog.labelIndex(g.kernel.name()), w,
                                   g.kernel.maxWidth());
            if (off.ok)
                break;
        }
        ASSERT_EQ(hw != nullptr, off.ok) << "trial " << trial;
        if (!hw)
            continue;
        ASSERT_EQ(off.entry.insts.size(), hw->insts.size())
            << "trial " << trial;
        for (std::size_t i = 0; i < hw->insts.size(); ++i) {
            EXPECT_EQ(off.entry.insts[i], hw->insts[i])
                << "trial " << trial << " inst " << i;
        }
    }
}

/**
 * Translation coverage sanity: across all generated kernels at width 8
 * a healthy majority must actually translate (ensuring the round-trip
 * above exercises the microcode path, not just scalar fallback).
 */
TEST(RoundTripCoverage, MostGeneratedKernelsTranslate)
{
    Rng rng(99);
    unsigned translated = 0;
    unsigned total = 0;
    for (unsigned trial = 0; trial < 40; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        Rng d(trial);
        Program prog = buildProgram(g, d,
                                    EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        sys.run();
        translated += sys.translator().stats().get("translations") > 0;
        ++total;
    }
    EXPECT_GE(translated * 10, total * 6)
        << translated << "/" << total << " kernels translated";
}

} // namespace
} // namespace liquid
