/**
 * @file
 * Property-based round-trip tests: randomly generated vector-IR
 * kernels, drawn from the supported rule categories of paper Table 1,
 * must produce identical memory through every path:
 *
 *   vector IR --interpret--> golden memory
 *   vector IR --scalarize--> scalar binary --execute--> memory
 *   scalar binary --dynamic translation--> microcode --execute--> memory
 *   vector IR --native codegen--> SIMD binary --execute--> memory
 *
 * across accelerator widths {2, 4, 8, 16}. This exercises the
 * scalarizer's fission/fusion decisions, the translator's rule
 * automaton and collapse network, and the core's vector datapath
 * against each other on shapes no human wrote.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "scalarizer/scalarizer.hh"
#include "sim/system.hh"
#include "translator/offline.hh"
#include "workloads/vir_interp.hh"

namespace liquid
{
namespace
{

/** A generated kernel plus the context needed to build programs. */
struct GeneratedKernel
{
    vir::Kernel kernel;
    std::vector<std::string> inputs;   ///< initialized arrays
    std::vector<std::string> outputs;  ///< stored arrays to compare
};

/**
 * Generate a random legal kernel. Values are kept in small integer
 * ranges; reductions use min/max/add on integers (bit-exact across
 * widths); in/out arrays are disjoint so staging is always legal.
 */
GeneratedKernel
generateKernel(Rng &rng, unsigned index)
{
    const unsigned trip = 16u << rng.range(0, 2);  // 16/32/64
    GeneratedKernel g{vir::Kernel("prop" + std::to_string(index), trip),
                      {},
                      {}};
    vir::Kernel &k = g.kernel;

    const unsigned num_inputs = static_cast<unsigned>(rng.range(2, 4));
    for (unsigned i = 0; i < num_inputs; ++i)
        g.inputs.push_back("in" + std::to_string(index) + "_" +
                           std::to_string(i));

    // Live values the generator can consume.
    std::vector<int> live;
    for (unsigned i = 0; i < num_inputs; ++i) {
        live.push_back(k.load(g.inputs[i], 4, false, false,
                              static_cast<std::int32_t>(rng.range(0, 2))));
    }

    auto pick = [&]() -> int {
        return live[static_cast<std::size_t>(
            rng.range(0, static_cast<int>(live.size()) - 1))];
    };
    // Keep the working set small enough for the scalar register pool:
    // new values replace a random live one once pressure builds.
    auto defineValue = [&](int value) {
        if (live.size() >= 6) {
            live[static_cast<std::size_t>(rng.range(
                0, static_cast<int>(live.size()) - 1))] = value;
        } else {
            live.push_back(value);
        }
    };

    int accs = 0;
    const unsigned ops = static_cast<unsigned>(rng.range(4, 12));
    for (unsigned i = 0; i < ops; ++i) {
        switch (rng.range(0, 9)) {
          case 0:
          case 1:
          case 2: {
            static const Opcode binops[] = {
                Opcode::Add, Opcode::Sub, Opcode::Mul, Opcode::And,
                Opcode::Orr, Opcode::Eor, Opcode::Min, Opcode::Max,
                Opcode::Rsb, Opcode::Bic, Opcode::Qsub,
            };
            defineValue(k.bin(binops[rng.range(0, 10)], pick(),
                              pick()));
            break;
          }
          case 3: {
            static const Opcode immops[] = {Opcode::Add, Opcode::Lsl,
                                            Opcode::Lsr, Opcode::Asr};
            const Opcode op = immops[rng.range(0, 3)];
            const std::int32_t imm =
                op == Opcode::Add
                    ? static_cast<std::int32_t>(rng.range(-50, 50))
                    : static_cast<std::int32_t>(rng.range(0, 7));
            defineValue(k.binImm(op, pick(), imm));
            break;
          }
          case 4: {
            // Periodic constant within the representable range.
            const unsigned period = 1u << rng.range(0, 2);
            std::vector<Word> lanes(period);
            for (auto &lane : lanes) {
                lane = static_cast<Word>(
                    static_cast<std::int32_t>(rng.range(-100, 100)));
            }
            defineValue(
                k.binConst(Opcode::Add, pick(), std::move(lanes)));
            break;
          }
          case 5: {
            const unsigned block = 2u << rng.range(0, 2);  // 2/4/8
            const auto kind = static_cast<PermKind>(rng.range(
                0, static_cast<int>(PermKind::NumKinds) - 1));
            defineValue(k.perm(pick(), kind, block));
            break;
          }
          case 6: {
            const unsigned block = 2u << rng.range(0, 2);
            const std::uint32_t bits = static_cast<std::uint32_t>(
                rng.range(1, (1 << block) - 1));
            defineValue(k.mask(pick(), bits, block));
            break;
          }
          case 7: {
            static const Opcode redops[] = {Opcode::Add, Opcode::Min,
                                            Opcode::Max};
            const int acc = k.newAcc(
                "acc" + std::to_string(accs++), redops[rng.range(0, 2)],
                static_cast<Word>(rng.range(-5, 5)));
            k.reduce(acc, pick());
            break;
          }
          case 8:
            defineValue(k.bin(Opcode::Qadd, pick(), pick()));
            break;
          case 9: {
            const std::string out = "out" + std::to_string(index) +
                                    "_" +
                                    std::to_string(g.outputs.size());
            g.outputs.push_back(out);
            k.store(out, pick());
            break;
          }
        }
    }
    // Always at least one store so the kernel is observable.
    const std::string out = "out" + std::to_string(index) + "_" +
                            std::to_string(g.outputs.size());
    g.outputs.push_back(out);
    k.store(out, pick());
    return g;
}

Program
buildProgram(const GeneratedKernel &g, Rng &data_rng,
             EmitOptions::Mode mode, unsigned width)
{
    Program prog;
    const unsigned n = g.kernel.tripCount() + 16;
    for (const auto &name : g.inputs) {
        std::vector<Word> words(n);
        for (auto &w : words) {
            w = static_cast<Word>(
                static_cast<std::int32_t>(data_rng.range(-500, 500)));
        }
        prog.allocWords(name, words);
    }
    for (const auto &name : g.outputs)
        prog.allocData(name, n * 4);

    EmitResult r;
    if (mode == EmitOptions::Mode::InlineScalar) {
        // Inline: the kernel body is emitted three times inside main,
        // matching the three calls of the outlined builds.
        prog.defineLabel("main");
        for (int call = 0; call < 3; ++call) {
            EmitOptions opts;
            opts.mode = mode;
            opts.fnName =
                g.kernel.name() + "_i" + std::to_string(call);
            r = emitKernel(prog, g.kernel, opts);
        }
    } else {
        EmitOptions opts;
        opts.mode = mode;
        opts.nativeWidth = width;
        r = emitKernel(prog, g.kernel, opts);
        prog.defineLabel("main");
        for (int call = 0; call < 3; ++call) {
            prog.addInst(Inst::call(-1, true, g.kernel.name(),
                                    g.kernel.maxWidth()));
        }
    }
    // Accumulators observable in memory.
    for (unsigned a = 0; a < r.accRegs.size(); ++a) {
        const std::string res =
            "accres" + std::to_string(a) + "_" + g.kernel.name();
        if (!prog.hasSymbol(res))
            prog.allocData(res, 4);
        MemRef m;
        m.base = prog.symbol(res);
        m.baseSym = res;
        prog.addInst(Inst::store(Opcode::Stw, r.accRegs[a], m));
    }
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    return prog;
}

std::vector<Word>
readOutputs(const GeneratedKernel &g, const Program &prog,
            const MainMemory &mem)
{
    std::vector<Word> all;
    for (const auto &name : g.outputs) {
        const Addr base = prog.symbol(name);
        for (unsigned i = 0; i < g.kernel.tripCount(); ++i)
            all.push_back(mem.readWord(base + 4 * i));
    }
    // Accumulator result slots.
    for (unsigned a = 0; a < g.kernel.accs().size(); ++a) {
        const std::string res =
            "accres" + std::to_string(a) + "_" + g.kernel.name();
        all.push_back(mem.readWord(prog.symbol(res)));
    }
    return all;
}

/** Golden: interpret the kernel three times (like the three calls). */
std::vector<Word>
goldenOutputs(const GeneratedKernel &g, const Program &prog)
{
    MainMemory mem = MainMemory::forProgram(prog);
    std::vector<Word> accs;
    for (int call = 0; call < 3; ++call)
        accs = interpretKernel(g.kernel, prog, mem);
    std::vector<Word> all;
    for (const auto &name : g.outputs) {
        const Addr base = prog.symbol(name);
        for (unsigned i = 0; i < g.kernel.tripCount(); ++i)
            all.push_back(mem.readWord(base + 4 * i));
    }
    for (const Word acc : accs)
        all.push_back(acc);
    return all;
}

class RoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RoundTrip, RandomKernelsAgreeEverywhere)
{
    const unsigned seed = GetParam();
    Rng rng(seed);

    for (unsigned trial = 0; trial < 12; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);

        // Inline scalar on a plain core is the structural reference
        // for the ISA path.
        Rng data_rng(seed * 977 + trial);
        Program inline_prog = buildProgram(
            g, data_rng, EmitOptions::Mode::InlineScalar, 8);
        // Re-seed so every build gets identical data.
        auto freshData = [&](EmitOptions::Mode mode, unsigned width) {
            Rng d(seed * 977 + trial);
            return buildProgram(g, d, mode, width);
        };

        const std::vector<Word> golden =
            goldenOutputs(g, inline_prog);

        {
            System sys(SystemConfig::make(ExecMode::ScalarBaseline),
                       inline_prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, inline_prog, sys.memory()), golden)
                << "inline scalar, seed=" << seed
                << " trial=" << trial;
        }

        for (unsigned width : {2u, 4u, 8u, 16u}) {
            Program prog =
                freshData(EmitOptions::Mode::Scalarized, width);
            System sys(SystemConfig::make(ExecMode::Liquid, width),
                       prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, prog, sys.memory()), golden)
                << "liquid W=" << width << ", seed=" << seed
                << " trial=" << trial << "\nkernel ops="
                << g.kernel.body().size();
        }

        // Native where the width can express every construct.
        for (unsigned width : {8u, 16u}) {
            bool ok = true;
            for (const auto &v : g.kernel.body()) {
                if (v.k == vir::OpK::Perm && v.permBlock > width)
                    ok = false;
                if (v.k == vir::OpK::Mask && v.maskBlock > width)
                    ok = false;
            }
            if (!ok || g.kernel.tripCount() % width != 0)
                continue;
            Program prog = freshData(EmitOptions::Mode::Native, width);
            System sys(SystemConfig::make(ExecMode::NativeSimd, width),
                       prog);
            sys.run();
            EXPECT_EQ(readOutputs(g, prog, sys.memory()), golden)
                << "native W=" << width << ", seed=" << seed
                << " trial=" << trial;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u,
                                           8u));

/**
 * The offline (static) translator must agree with the hardware
 * translator on random kernels too, not just the curated suite.
 */
TEST(RoundTripOffline, StaticAndDynamicTranslationAgree)
{
    Rng rng(4242);
    for (unsigned trial = 0; trial < 20; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        Rng d(trial * 31 + 7);
        Program prog = buildProgram(g, d,
                                    EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        sys.run();
        const Addr entry =
            Program::instAddr(prog.labelIndex(g.kernel.name()));
        const UcodeEntry *hw =
            sys.ucodeCache().lookup(entry, sys.cycles() + 1'000'000);

        OfflineResult off;
        for (unsigned w = 8; w >= 2; w /= 2) {
            off = translateOffline(prog,
                                   prog.labelIndex(g.kernel.name()), w,
                                   g.kernel.maxWidth());
            if (off.ok)
                break;
        }
        ASSERT_EQ(hw != nullptr, off.ok) << "trial " << trial;
        if (!hw)
            continue;
        ASSERT_EQ(off.entry.insts.size(), hw->insts.size())
            << "trial " << trial;
        for (std::size_t i = 0; i < hw->insts.size(); ++i) {
            EXPECT_EQ(off.entry.insts[i], hw->insts[i])
                << "trial " << trial << " inst " << i;
        }
    }
}

/**
 * Translation coverage sanity: across all generated kernels at width 8
 * a healthy majority must actually translate (ensuring the round-trip
 * above exercises the microcode path, not just scalar fallback).
 */
TEST(RoundTripCoverage, MostGeneratedKernelsTranslate)
{
    Rng rng(99);
    unsigned translated = 0;
    unsigned total = 0;
    for (unsigned trial = 0; trial < 40; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        Rng d(trial);
        Program prog = buildProgram(g, d,
                                    EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        sys.run();
        translated += sys.translator().stats().get("translations") > 0;
        ++total;
    }
    EXPECT_GE(translated * 10, total * 6)
        << translated << "/" << total << " kernels translated";
}

} // namespace
} // namespace liquid
