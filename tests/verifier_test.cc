/**
 * @file
 * Static verifier tests: CFG reconstruction, Ok predictions (width,
 * microcode size) cross-checked against the offline translator, exact
 * abort-reason prediction over the curated legality table, Warn
 * verdicts on runtime-dependent regions, width fallback, and the
 * scalarizer's deliberate sabotage injections.
 */

#include <gtest/gtest.h>

#include "abort_cases.hh"
#include "random_kernels.hh"
#include "translator/offline.hh"
#include "verifier/cfg.hh"
#include "verifier/verifier.hh"

namespace liquid
{
namespace
{

const char *copyLoop = R"(
    .words src 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
    .data dst 64
    fn:
        mov r0, #0
    top:
        ldw r1, [src + r0]
        add r1, r1, #100
        stw [dst + r0], r1
        add r0, r0, #1
        cmp r0, #16
        blt top
        ret
    main:
        bl.simd fn
        halt
)";

TEST(VerifierCfg, CopyLoopStructure)
{
    const Program prog = assemble(copyLoop);
    const RegionCfg cfg = RegionCfg::build(prog, prog.labelIndex("fn"));

    // Blocks: entry mov | loop body | ret.
    EXPECT_EQ(cfg.blocks().size(), 3u);
    ASSERT_EQ(cfg.loops().size(), 1u);
    EXPECT_EQ(cfg.loops()[0].headBlock, 1);
    EXPECT_FALSE(cfg.fallsOffEnd());
    // All 8 region instructions reachable, none beyond.
    EXPECT_EQ(cfg.instructions().size(), 8u);
    EXPECT_TRUE(cfg.contains(prog.labelIndex("fn")));
    EXPECT_FALSE(cfg.contains(prog.labelIndex("main")));
}

TEST(Verifier, OkPredictionMatchesOfflineTranslation)
{
    const Program prog = assemble(copyLoop);
    VerifyOptions opts;
    opts.config.simdWidth = 8;

    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(r.verdict, Severity::Ok);
    EXPECT_EQ(r.predictedWidth, 8u);
    EXPECT_EQ(r.blockCount, 3u);
    EXPECT_EQ(r.loopCount, 1u);

    const OfflineResult off =
        translateOffline(prog, prog.labelIndex("fn"), 8);
    ASSERT_TRUE(off.ok);
    EXPECT_EQ(r.predictedUcode, off.entry.insts.size());
    EXPECT_EQ(r.predictedCvecs, off.entry.cvecs.size());
    EXPECT_EQ(off.entry.simdWidth, 8u);
}

TEST(Verifier, PredictsExactReasonForEveryLegalityCheck)
{
    for (const AbortCase &c : abortCases()) {
        SCOPED_TRACE(c.name);
        const Program prog = assemble(c.src);
        VerifyOptions opts;
        opts.config.simdWidth = c.width;
        opts.widthFallback = false;

        const RegionReport r =
            verifyRegion(prog, prog.labelIndex("fn"), opts);
        EXPECT_EQ(r.verdict, Severity::Error);
        EXPECT_EQ(r.reason, c.reason);
        // The Error diagnostic names the canonical reason and class.
        bool found = false;
        for (const Diagnostic &d : r.diags) {
            if (d.severity != Severity::Error)
                continue;
            found = true;
            EXPECT_NE(d.message.find(c.name), std::string::npos)
                << d.message;
            EXPECT_NE(d.message.find(reasonClassName(
                          abortReasonClass(c.reason))),
                      std::string::npos)
                << d.message;
        }
        EXPECT_TRUE(found);
    }
}

TEST(Verifier, WarnNamesTheRuntimeCondition)
{
    // The branch depends on an uninitialized register: the outcome is
    // runtime state the static analysis cannot see.
    const Program prog = assemble(withMain(R"(
        fn:
            mov r1, r2
            cmp r1, #0
            bgt skip
        skip:
            ret
    )"));
    VerifyOptions opts;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(r.verdict, Severity::Warn);
    ASSERT_FALSE(r.diags.empty());
    bool named = false;
    for (const Diagnostic &d : r.diags) {
        if (d.severity == Severity::Warn &&
            d.message.find("runtime") != std::string::npos)
            named = true;
    }
    EXPECT_TRUE(named);
}

TEST(Verifier, WidthFallbackRebindsNarrower)
{
    // Trip count 4 cannot bind 8 lanes but binds 4: with fallback the
    // verifier predicts the rebound width, keeping the width-8 Error
    // diagnostic in the trail.
    const AbortCase *trip = nullptr;
    for (const AbortCase &c : abortCases()) {
        if (c.reason == AbortReason::TripCount)
            trip = &c;
    }
    ASSERT_NE(trip, nullptr);
    const Program prog = assemble(trip->src);

    VerifyOptions opts;
    opts.config.simdWidth = 8;
    opts.widthFallback = true;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(r.verdict, Severity::Ok);
    EXPECT_EQ(r.predictedWidth, 4u);

    const OfflineResult off =
        translateOffline(prog, prog.labelIndex("fn"), 4);
    ASSERT_TRUE(off.ok);
    EXPECT_EQ(r.predictedUcode, off.entry.insts.size());

    bool width8_error = false;
    for (const Diagnostic &d : r.diags) {
        if (d.severity == Severity::Error &&
            d.message.find("width 8") != std::string::npos)
            width8_error = true;
    }
    EXPECT_TRUE(width8_error);
}

TEST(Verifier, HintCapsTheBindingWidth)
{
    const Program prog = assemble(copyLoop);
    VerifyOptions opts;
    opts.config.simdWidth = 8;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts, 4);
    EXPECT_EQ(r.verdict, Severity::Ok);
    EXPECT_EQ(r.predictedWidth, 4u);
}

TEST(Verifier, ProgramReportCoversEveryHintedRegion)
{
    const Program prog = assemble(copyLoop);
    VerifyOptions opts;
    const ProgramReport report = verifyProgram(prog, opts);
    ASSERT_EQ(report.regions.size(), 1u);
    EXPECT_EQ(report.regions[0].entryLabel, "fn");
    EXPECT_FALSE(report.anyError());
    EXPECT_FALSE(
        formatRegionReport(report.regions[0]).empty());
}

const char *copyLoop32 = R"(
    .words src32 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
    .data dst32 128
    fn:
        mov r0, #0
    top:
        ldw r1, [src32 + r0]
        add r1, r1, #100
        stw [dst32 + r0], r1
        add r0, r0, #1
        cmp r0, #32
        blt top
        ret
    main:
        bl.simd fn
        halt
)";

TEST(Verifier, WarnThenNarrowerOkReportsTheOkBinding)
{
    // Regression for the width-fallback Warn plumbing: a Warn on the
    // wide attempt must not hide a narrower width the verifier can
    // certify. Depcheck spends its pair budget in ascending width
    // order, so a budget that covers widths 2-8 but not 16 yields a
    // genuine width-dependent Warn at 16 and a proof at 8.
    const Program prog = assemble(copyLoop32);
    VerifyOptions opts;
    opts.config.simdWidth = 16;
    opts.widthFallback = true;
    opts.dep.pairBudget = 900;

    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(r.verdict, Severity::Ok);
    EXPECT_EQ(r.reason, AbortReason::None);
    EXPECT_EQ(r.predictedWidth, 8u);
    ASSERT_TRUE(r.depAnalyzed);
    EXPECT_EQ(r.dep.verdictAt(16).kind, WidthVerdict::Kind::Unknown);
    EXPECT_EQ(r.dep.verdictAt(8).kind, WidthVerdict::Kind::Safe);

    // The Warn trail survives in the diagnostics.
    bool warned = false;
    for (const Diagnostic &d : r.diags) {
        if (d.severity == Severity::Warn &&
            d.message.find("memoryDependence") != std::string::npos)
            warned = true;
    }
    EXPECT_TRUE(warned);

    // Without fallback the wide attempt's Warn is the verdict: the
    // single-translation prediction really is unknown.
    opts.widthFallback = false;
    const RegionReport single =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(single.verdict, Severity::Warn);
    EXPECT_EQ(single.predictedWidth, 0u);
}

TEST(Verifier, OkCarriesCostEstimate)
{
    const Program prog = assemble(copyLoop);
    VerifyOptions opts;
    opts.config.simdWidth = 8;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    ASSERT_EQ(r.verdict, Severity::Ok);
    EXPECT_GT(r.predictedScalarCycles, 0.0);
    EXPECT_GT(r.predictedSimdCycles, 0.0);
    // 16 iterations of a vectorizable loop at width 8 must predict a
    // speedup strictly between 1x and the lane count.
    EXPECT_GT(r.predictedSpeedup, 1.0);
    EXPECT_LE(r.predictedSpeedup, 8.0);
}

TEST(Verifier, SabotagedKernelsPredicted)
{
    using Sabotage = EmitOptions::Sabotage;
    const struct
    {
        Sabotage kind;
        AbortReason reason;
    } table[] = {
        {Sabotage::UntranslatableOp,
         AbortReason::UntranslatableOpcode},
        {Sabotage::NestedCall, AbortReason::NestedCall},
        {Sabotage::ForwardBranch, AbortReason::ForwardBranch},
        {Sabotage::IvArithmetic, AbortReason::IvArithmetic},
        {Sabotage::ScalarStore, AbortReason::StoreScalarData},
    };

    Rng rng(7);
    const GeneratedKernel g = generateKernel(rng, 0);
    for (const auto &t : table) {
        SCOPED_TRACE(abortReasonName(t.reason));
        Rng d(11);
        const Program prog = buildGeneratedProgram(
            g, d, EmitOptions::Mode::Scalarized, 8, t.kind);
        VerifyOptions opts;
        opts.widthFallback = false;
        const RegionReport r = verifyRegion(
            prog, prog.labelIndex(g.kernel.name()), opts,
            g.kernel.maxWidth());
        EXPECT_EQ(r.verdict, Severity::Error);
        EXPECT_EQ(r.reason, t.reason);
    }
}

} // namespace
} // namespace liquid
