/**
 * @file
 * Lockstep differential tests for the functional execution tier: the
 * interpreter must retire exactly the architectural state the cycle
 * core retires, instruction for instruction, across the whole workload
 * suite, randomized kernels, both dispatch loops and fault injection —
 * and the sabotage self-test proves the compare actually bites.
 *
 * Random-kernel count defaults to 200 and can be raised for fuzz runs
 * via LIQUID_LOCKSTEP_KERNELS.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "chaos/fault_schedule.hh"
#include "chaos/oracle.hh"
#include "common/random.hh"
#include "fast/lockstep.hh"
#include "fast/reference.hh"
#include "random_kernels.hh"
#include "workloads/workload.hh"

namespace liquid::fast
{
namespace
{

unsigned
envCount(const char *name, unsigned fallback)
{
    const char *v = std::getenv(name);
    return v ? static_cast<unsigned>(std::strtoul(v, nullptr, 10))
             : fallback;
}

std::string
firstDivergence(const LockstepResult &r)
{
    return r.divergences.empty() ? std::string("(none)")
                                 : r.divergences.front();
}

/** Every suite workload, scalar build, per-retire equal. */
TEST(FastLockstep, SuiteScalarBaseline)
{
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized, 8);
        const LockstepResult r =
            runLockstep(build.prog, ExecMode::ScalarBaseline, 0);
        EXPECT_TRUE(r.equal)
            << wl->name() << ": " << firstDivergence(r);
        EXPECT_GT(r.retires, 0u) << wl->name();
    }
}

/** Every suite workload, native SIMD build at width 8. */
TEST(FastLockstep, SuiteNativeSimd)
{
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Native, 8);
        const LockstepResult r =
            runLockstep(build.prog, ExecMode::NativeSimd, 8);
        EXPECT_TRUE(r.equal)
            << wl->name() << ": " << firstDivergence(r);
        EXPECT_GT(r.retires, 0u) << wl->name();
    }
}

/**
 * Randomized kernels (>= 200 by default), both modes per kernel. The
 * scalar side runs the Scalarized build so bl/ret and the call log
 * are in the retire stream too.
 */
TEST(FastLockstep, RandomKernels)
{
    const unsigned kernels = envCount("LIQUID_LOCKSTEP_KERNELS", 200);
    Rng rng(7);
    unsigned checked = 0;
    for (unsigned i = 0; i < kernels; ++i) {
        const GeneratedKernel g = generateKernel(rng, i);
        Program scalarProg;
        Program nativeProg;
        try {
            Rng rs(0x9e3779b97f4a7c15ull + i);
            scalarProg = buildGeneratedProgram(
                g, rs, EmitOptions::Mode::Scalarized, 8);
            Rng rn(0x9e3779b97f4a7c15ull + i);
            nativeProg = buildGeneratedProgram(
                g, rn, EmitOptions::Mode::Native, 8);
        } catch (const PanicError &) {
            // The generator occasionally exceeds a scalarizer limit
            // (register pressure / staging aliasing); such kernels
            // never run on either tier.
            continue;
        } catch (const FatalError &) {
            continue;
        }
        ++checked;
        const LockstepResult rs =
            runLockstep(scalarProg, ExecMode::ScalarBaseline, 0);
        EXPECT_TRUE(rs.equal)
            << g.kernel.name() << " (scalar): " << firstDivergence(rs);
        const LockstepResult rn =
            runLockstep(nativeProg, ExecMode::NativeSimd, 8);
        EXPECT_TRUE(rn.equal)
            << g.kernel.name() << " (native): " << firstDivergence(rn);
    }
    // The skip path must stay the exception, not the rule.
    EXPECT_GE(checked, kernels * 9 / 10);
}

/** The portable switch loop must agree wherever computed-goto does. */
TEST(FastLockstep, SwitchDispatchAgrees)
{
    LockstepOptions opts;
    opts.switchDispatch = true;
    for (const auto &wl : makeSuite()) {
        if (wl->name() != "fir" && wl->name() != "fft" &&
            wl->name() != "179.art") {
            continue;
        }
        const auto scalar = wl->build(EmitOptions::Mode::Scalarized, 8);
        const LockstepResult rs = runLockstep(
            scalar.prog, ExecMode::ScalarBaseline, 0, opts);
        EXPECT_TRUE(rs.equal)
            << wl->name() << ": " << firstDivergence(rs);
        const auto native = wl->build(EmitOptions::Mode::Native, 8);
        const LockstepResult rn =
            runLockstep(native.prog, ExecMode::NativeSimd, 8, opts);
        EXPECT_TRUE(rn.equal)
            << wl->name() << ": " << firstDivergence(rn);
    }
}

/**
 * Retire-keyed fault events deliver to both tiers; the dispatch-cache
 * invalidation they trigger on the functional side must never change
 * architectural results.
 */
TEST(FastLockstep, FaultEventsStayEqual)
{
    LockstepOptions opts;
    opts.faults =
        FaultSchedule::parse("dcache@77+int@50+smc@123+flush@199");
    for (const auto &wl : makeSuite()) {
        if (wl->name() != "fir" && wl->name() != "lu")
            continue;
        const auto scalar = wl->build(EmitOptions::Mode::Scalarized, 8);
        const LockstepResult rs = runLockstep(
            scalar.prog, ExecMode::ScalarBaseline, 0, opts);
        EXPECT_TRUE(rs.equal)
            << wl->name() << ": " << firstDivergence(rs);
        const auto native = wl->build(EmitOptions::Mode::Native, 8);
        const LockstepResult rn =
            runLockstep(native.prog, ExecMode::NativeSimd, 8, opts);
        EXPECT_TRUE(rn.equal)
            << wl->name() << ": " << firstDivergence(rn);
    }
}

/** Liquid mode interleaves microcode into the retire stream; the
 *  harness must refuse it rather than report spurious divergences. */
TEST(FastLockstep, LiquidModeRejected)
{
    const auto suite = makeSuite();
    const auto build =
        suite.front()->build(EmitOptions::Mode::Scalarized, 8);
    EXPECT_THROW(runLockstep(build.prog, ExecMode::Liquid, 8),
                 FatalError);
}

/**
 * Self-test: every seeded handler bug must surface as a divergence on
 * at least one of the two lockstep runs — a compare that misses a
 * known-wrong functional tier would also miss a real bug.
 */
TEST(FastLockstep, SabotageModesAllCaught)
{
    const auto suite = makeSuite();
    const Workload *fir = nullptr;
    for (const auto &wl : suite) {
        if (wl->name() == "fir")
            fir = wl.get();
    }
    ASSERT_NE(fir, nullptr);
    const auto scalar = fir->build(EmitOptions::Mode::Scalarized, 8);
    const auto native = fir->build(EmitOptions::Mode::Native, 8);

    for (Sabotage s :
         {Sabotage::WrongFlagUpdate, Sabotage::SkippedStore,
          Sabotage::StaleDecodeAfterSmc, Sabotage::OffByOneBlock}) {
        LockstepOptions opts;
        opts.sabotage = s;
        // The stale-decode mutation only bites when an SMC event
        // exercises the invalidation path it corrupts.
        if (s == Sabotage::StaleDecodeAfterSmc)
            opts.faults = FaultSchedule::parse("smc@40");
        const LockstepResult rs = runLockstep(
            scalar.prog, ExecMode::ScalarBaseline, 0, opts);
        const LockstepResult rn =
            runLockstep(native.prog, ExecMode::NativeSimd, 8, opts);
        EXPECT_FALSE(rs.equal && rn.equal)
            << "sabotage mode " << static_cast<int>(s)
            << " was not caught";
    }
}

/**
 * The functional reference must be bit-identical to the cycle-core
 * reference across the suite — this is what licenses the oracles'
 * trial-count raise to ride on the functional tier.
 */
TEST(FastLockstep, FunctionalReferenceMatchesCycleReference)
{
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized, 8);
        const ChaosReference cyc = makeReference(build.prog, 8);
        const ChaosReference fun =
            makeFunctionalReference(build.prog, 8);
        EXPECT_EQ(fun.instsRetired, cyc.instsRetired) << wl->name();
        EXPECT_EQ(fun.regions, cyc.regions) << wl->name();
        const bool same = fun.snapshot == cyc.snapshot;
        EXPECT_TRUE(same) << wl->name() << ": "
                          << (same ? std::string()
                                   : fun.snapshot.diff(cyc.snapshot)
                                         .front());
    }
}

} // namespace
} // namespace liquid::fast
