/**
 * @file
 * Scalarizer tests: Table 1 emission rules, loop fission, outlining,
 * rejection diagnostics, and scalar/native equivalence on a plain core.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "memory/main_memory.hh"
#include "scalarizer/scalarizer.hh"
#include "sim/system.hh"
#include "workloads/vir_interp.hh"

namespace liquid
{
namespace
{

using vir::Kernel;

/** Count instructions of each opcode in a program range. */
unsigned
countOp(const Program &prog, Opcode op)
{
    unsigned n = 0;
    for (const auto &inst : prog.code())
        n += inst.op == op;
    return n;
}

Program
progWithArrays(unsigned n)
{
    Program prog;
    std::vector<Word> a(n + 16), b(n + 16);
    for (unsigned i = 0; i < a.size(); ++i) {
        a[i] = i + 1;
        b[i] = 2 * i;
    }
    prog.allocWords("a", a);
    prog.allocWords("b", b);
    prog.allocData("c", (n + 16) * 4);
    prog.allocData("d", (n + 16) * 4);
    return prog;
}

void
finishMain(Program &prog, const std::string &fn)
{
    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, fn));
    prog.addInst(Inst::halt());
    prog.resolveBranches();
}

TEST(Scalarizer, ElementwiseKernelShape)
{
    Program prog = progWithArrays(32);
    Kernel k("k", 32);
    const int va = k.load("a");
    const int vb = k.load("b");
    k.store("c", k.bin(Opcode::Add, va, vb));

    EmitOptions opts;
    const EmitResult r = emitKernel(prog, k, opts);
    EXPECT_EQ(r.entryLabel, "k");
    EXPECT_EQ(r.numStages, 1u);
    // mov; ldw; ldw; add; stw; add; cmp; blt; ret
    EXPECT_EQ(r.instCount, 9u);
    EXPECT_EQ(countOp(prog, Opcode::Ret), 1u);

    finishMain(prog, "k");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    const Addr c = prog.symbol("c");
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(mem.readWord(c + 4 * i), (i + 1) + 2 * i);
}

TEST(Scalarizer, PermutationUsesOffsetArray)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int p = k.perm(va, PermKind::Reverse, 4);
    k.store("c", p);

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 1u);  // load-fused

    // A read-only offset table must exist holding the periodic offsets.
    ASSERT_TRUE(prog.hasSymbol("k_ro0"));
    EXPECT_TRUE(prog.isReadOnly(prog.symbol("k_ro0")));
    const Addr tab = prog.symbol("k_ro0") - Program::dataBase;
    const auto &img = prog.dataImage();
    const std::int32_t expect[4] = {3, 1, -1, -3};
    for (unsigned i = 0; i < 16; ++i) {
        const Word w = static_cast<Word>(img[tab + 4 * i]) |
                       (static_cast<Word>(img[tab + 4 * i + 1]) << 8) |
                       (static_cast<Word>(img[tab + 4 * i + 2]) << 16) |
                       (static_cast<Word>(img[tab + 4 * i + 3]) << 24);
        EXPECT_EQ(static_cast<std::int32_t>(w), expect[i % 4]);
    }

    finishMain(prog, "k");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    const Addr c = prog.symbol("c");
    for (unsigned i = 0; i < 16; ++i) {
        const unsigned src = (i / 4) * 4 + (3 - i % 4);
        EXPECT_EQ(mem.readWord(c + 4 * i), src + 1);
    }
}

TEST(Scalarizer, ComputedPermutationForcesFission)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    const int sum = k.bin(Opcode::Add, va, vb);           // computed
    const int p = k.perm(sum, PermKind::SwapHalves, 4);
    k.store("c", k.bin(Opcode::Orr, p, vb));              // non-store use

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 2u) << "unfusable permutation must split "
                                  "the loop (paper Section 3.4)";
    // Two loops -> two backward branches; tmp arrays allocated.
    EXPECT_EQ(countOp(prog, Opcode::B), 2u);
    EXPECT_TRUE(prog.hasSymbol("k_tmp0"));

    finishMain(prog, "k");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    // Check against the IR interpreter.
    MainMemory golden = MainMemory::forProgram(prog);
    interpretKernel(k, prog, golden);
    const Addr c = prog.symbol("c");
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readWord(c + 4 * i), golden.readWord(c + 4 * i));
}

TEST(Scalarizer, StoreFusedPermutationStaysSingleLoop)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    const int sum = k.bin(Opcode::Add, va, vb);
    const int p = k.perm(sum, PermKind::SwapPairs, 2);
    k.store("c", p);  // only consumer is a store -> fuse

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    EXPECT_EQ(r.numStages, 1u);

    finishMain(prog, "k");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    MainMemory golden = MainMemory::forProgram(prog);
    interpretKernel(k, prog, golden);
    const Addr c = prog.symbol("c");
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(mem.readWord(c + 4 * i), golden.readWord(c + 4 * i));
}

TEST(Scalarizer, SaturationIdiomEmitted)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int va = k.load("a");
    const int vb = k.load("b");
    k.store("c", k.bin(Opcode::Qadd, va, vb));

    emitKernel(prog, k, EmitOptions{});
    // No scalar qadd opcode: the cmp/conditional-mov idiom instead.
    EXPECT_EQ(countOp(prog, Opcode::Qadd), 0u);
    EXPECT_EQ(countOp(prog, Opcode::Cmp), 3u);  // 2 idiom + 1 loop
    unsigned cond_movs = 0;
    for (const auto &inst : prog.code())
        cond_movs += inst.op == Opcode::Mov && inst.cond != Cond::AL;
    EXPECT_EQ(cond_movs, 2u);
}

TEST(Scalarizer, ReductionUsesLoopCarriedRegister)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int acc = k.newAcc("mx", Opcode::Max,
                             static_cast<Word>(-2147483647));
    k.reduce(acc, k.load("a"));

    const EmitResult r = emitKernel(prog, k, EmitOptions{});
    ASSERT_EQ(r.accRegs.size(), 1u);
    EXPECT_EQ(countOp(prog, Opcode::Max), 1u);

    finishMain(prog, "k");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    EXPECT_EQ(core.regs().read(r.accRegs[0]), 16u);  // max of 1..16
}

TEST(Scalarizer, NativeEmissionUsesVectorIsa)
{
    Program prog = progWithArrays(32);
    Kernel k("k", 32);
    const int va = k.load("a");
    const int vb = k.load("b");
    k.store("c", k.bin(Opcode::Add, va, vb));

    EmitOptions opts;
    opts.mode = EmitOptions::Mode::Native;
    opts.nativeWidth = 8;
    const EmitResult r = emitKernel(prog, k, opts);
    EXPECT_EQ(countOp(prog, Opcode::Vldw), 2u);
    EXPECT_EQ(countOp(prog, Opcode::Vadd), 1u);
    EXPECT_EQ(countOp(prog, Opcode::Vstw), 1u);
    // Loop strides by the accelerator width.
    bool found_stride = false;
    for (const auto &inst : prog.code()) {
        if (inst.op == Opcode::Add && inst.hasImm && inst.imm == 8)
            found_stride = true;
    }
    EXPECT_TRUE(found_stride);
    (void)r;

    finishMain(prog, "k");
    CoreConfig config;
    config.simdWidth = 8;
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(config, prog, mem);
    core.run();
    const Addr c = prog.symbol("c");
    for (unsigned i = 0; i < 32; ++i)
        EXPECT_EQ(mem.readWord(c + 4 * i), (i + 1) + 2 * i);
}

TEST(Scalarizer, InlineModeHasNoCallBoundary)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    k.store("c", k.binImm(Opcode::Add, k.load("a"), 5));

    prog.defineLabel("main");
    EmitOptions opts;
    opts.mode = EmitOptions::Mode::InlineScalar;
    const EmitResult r = emitKernel(prog, k, opts);
    EXPECT_TRUE(r.entryLabel.empty());
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    EXPECT_EQ(countOp(prog, Opcode::Ret), 0u);
    EXPECT_EQ(countOp(prog, Opcode::Bl), 0u);

    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();
    EXPECT_EQ(mem.readWord(prog.symbol("c")), 6u);
}

// ---------------------------------------------------------------------------
// Rejection diagnostics (paper Section 3.3 limitations).
// ---------------------------------------------------------------------------

TEST(ScalarizerRejects, TableLookup)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int idx = k.load("a");
    const int tab = k.load("b");
    k.store("c", k.tableLookup(idx, tab));
    EXPECT_THROW(emitKernel(prog, k, EmitOptions{}), FatalError);
}

TEST(ScalarizerRejects, InterleavedAccess)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    k.store("c", k.interleavedLoad("a", 2));
    EXPECT_THROW(emitKernel(prog, k, EmitOptions{}), FatalError);
}

TEST(ScalarizerRejects, MisalignedTripCount)
{
    Program prog = progWithArrays(20);
    Kernel k("k", 20, 16);  // 20 % 16 != 0
    k.store("c", k.load("a"));
    EXPECT_THROW(emitKernel(prog, k, EmitOptions{}), FatalError);
}

TEST(ScalarizerRejects, StoreRunningAheadOfLoad)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    const int va = k.load("a");      // a[i]
    k.store("a", va, 1);             // a[i+1] — hazard
    EXPECT_THROW(emitKernel(prog, k, EmitOptions{}), FatalError);
}

TEST(ScalarizerRejects, NativeWidthBelowPermutationBlock)
{
    Program prog = progWithArrays(16);
    Kernel k("k", 16);
    k.store("c", k.perm(k.load("a"), PermKind::SwapHalves, 8));
    EmitOptions opts;
    opts.mode = EmitOptions::Mode::Native;
    opts.nativeWidth = 4;
    EXPECT_THROW(emitKernel(prog, k, opts), FatalError);
}

} // namespace
} // namespace liquid
