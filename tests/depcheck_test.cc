/**
 * @file
 * Unit tests for the static memory-dependence and stride analysis
 * (src/verifier/depcheck.*): access classification over the address
 * lattice, per-width safety verdicts, the scalarizer's Overlap*
 * sabotage kernels, and the verifyRegion() wiring (silent-miscompile
 * Error, conservative-abort note, pair-budget Warn).
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "scalarizer/scalarizer.hh"
#include "verifier/cfg.hh"
#include "verifier/depcheck.hh"
#include "verifier/verifier.hh"

namespace liquid
{
namespace
{

const char *copySrc = R"(
    .words src 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
    .data dst 64
    fn:
        mov r0, #0
    top:
        ldw r1, [src + r0]
        stw [dst + r0], r1
        add r0, r0, #1
        cmp r0, #16
        blt top
        ret
    main:
        bl.simd fn
        halt
)";

const char *gatherSrc = R"(
    .rowords bfly 4 4 4 4 -4 -4 -4 -4
    .words src 10 11 12 13 14 15 16 17
    .data dst 32
    fn:
        mov r0, #0
    top:
        ldw r1, [bfly + r0]
        add r1, r0, r1
        ldw r2, [src + r1]
        stw [dst + r0], r2
        add r0, r0, #1
        cmp r0, #8
        blt top
        ret
    main:
        bl.simd fn
        halt
)";

DepcheckResult
analyze(const Program &prog, const DepcheckOptions &opts = {},
        const char *label = "fn")
{
    const int entry = prog.labelIndex(label);
    const RegionCfg cfg = RegionCfg::build(prog, entry);
    return analyzeDeps(prog, entry, cfg, opts);
}

/** Minimal copy kernel for the sabotage-mode builds. */
Program
sabotagedProgram(EmitOptions::Sabotage kind, unsigned distance,
                 unsigned trip = 16)
{
    vir::Kernel k("dk", trip);
    k.store("dkout", k.load("dkin", 4, false, false, 0));

    Program prog;
    std::vector<Word> words(trip + 16);
    for (std::size_t i = 0; i < words.size(); ++i)
        words[i] = static_cast<Word>(10 + i);
    prog.allocWords("dkin", words);
    prog.allocData("dkout", (trip + 16) * 4);

    EmitOptions opts;
    opts.mode = EmitOptions::Mode::Scalarized;
    opts.sabotage = kind;
    opts.sabotageDistance = distance;
    emitKernel(prog, k, opts);
    prog.defineLabel("main");
    prog.addInst(Inst::call(-1, true, "dk", 0));
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    return prog;
}

TEST(Depcheck, UnitStrideCopyIsSafeAtEveryWidth)
{
    const Program prog = assemble(copySrc);
    const DepcheckResult dep = analyze(prog);
    ASSERT_TRUE(dep.analyzed);
    ASSERT_TRUE(dep.resolved);
    EXPECT_EQ(dep.loopsAnalyzed, 1u);
    EXPECT_EQ(dep.carriedPairs, 0u);

    ASSERT_EQ(dep.accesses.size(), 2u);
    for (const MemAccess &a : dep.accesses) {
        EXPECT_EQ(a.cls, AccessClass::UnitStride);
        EXPECT_EQ(a.strideBytes, 4);
        EXPECT_EQ(a.events, 16u);
    }
    EXPECT_EQ(dep.accesses[0].arrayName, "src");
    EXPECT_TRUE(dep.accesses[1].isStore);
    EXPECT_EQ(dep.accesses[1].arrayName, "dst");

    for (const unsigned w : DepcheckResult::widths)
        EXPECT_TRUE(dep.safeAt(w)) << "width " << w;
    EXPECT_FALSE(dep.proofSummary(8).empty());
}

TEST(Depcheck, OffsetTableLoadClassifiedAsGather)
{
    const Program prog = assemble(gatherSrc);
    const DepcheckResult dep = analyze(prog);
    ASSERT_TRUE(dep.resolved);

    bool gather = false;
    for (const MemAccess &a : dep.accesses) {
        if (a.arrayName == "src") {
            EXPECT_EQ(a.cls, AccessClass::GatherScatter);
            EXPECT_FALSE(a.isStore);
            gather = true;
        }
    }
    EXPECT_TRUE(gather);
    // Loads never conflict with each other; the one store is to a
    // disjoint array, so every width stays safe.
    for (const unsigned w : DepcheckResult::widths)
        EXPECT_TRUE(dep.safeAt(w)) << "width " << w;
}

TEST(Depcheck, RegionWithoutLoopsIsTriviallySafe)
{
    const Program prog = assemble(R"(
        .data flat 64
        fn:
            mov r0, #1
            ret
        main:
            bl.simd fn
            halt
    )");
    const DepcheckResult dep = analyze(prog);
    EXPECT_FALSE(dep.analyzed);
    for (const unsigned w : DepcheckResult::widths)
        EXPECT_TRUE(dep.safeAt(w));
}

TEST(Depcheck, OverlapStoreStoreUnsafeBelowDistance)
{
    const Program prog =
        sabotagedProgram(EmitOptions::Sabotage::OverlapStoreStore, 4);
    const DepcheckResult dep = analyze(prog, {}, "dk");
    ASSERT_TRUE(dep.resolved);
    EXPECT_GT(dep.carriedPairs, 0u);
    EXPECT_EQ(dep.minDistance, 4u);

    EXPECT_TRUE(dep.safeAt(2));
    EXPECT_TRUE(dep.safeAt(4));
    EXPECT_EQ(dep.verdictAt(8).kind, WidthVerdict::Kind::Unsafe);
    EXPECT_EQ(dep.verdictAt(16).kind, WidthVerdict::Kind::Unsafe);

    const DepPair &pair = dep.verdictAt(8).pair;
    EXPECT_TRUE(pair.otherIsStore);
    EXPECT_TRUE(pair.orderFlips);
    EXPECT_EQ(pair.distance, 4u);
}

TEST(Depcheck, OverlapLoadAheadUnsafeBelowDistance)
{
    const Program prog =
        sabotagedProgram(EmitOptions::Sabotage::OverlapLoadAhead, 2);
    const DepcheckResult dep = analyze(prog, {}, "dk");
    ASSERT_TRUE(dep.resolved);
    EXPECT_EQ(dep.minDistance, 2u);
    EXPECT_TRUE(dep.safeAt(2));
    EXPECT_EQ(dep.verdictAt(4).kind, WidthVerdict::Kind::Unsafe);
    EXPECT_FALSE(dep.verdictAt(4).pair.otherIsStore);
}

TEST(Depcheck, VerifierFlagsSilentMiscompile)
{
    const Program prog =
        sabotagedProgram(EmitOptions::Sabotage::OverlapStoreStore, 2);
    VerifyOptions opts;
    opts.config.simdWidth = 8;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("dk"), opts);

    EXPECT_EQ(r.verdict, Severity::Error);
    EXPECT_EQ(r.reason, AbortReason::MemoryDependence);
    EXPECT_TRUE(r.depMiscompile);
    // The translator still commits, so the predictions are filled in.
    EXPECT_EQ(r.predictedWidth, 8u);
    EXPECT_GT(r.predictedUcode, 0u);
    bool named = false;
    for (const Diagnostic &d : r.diags) {
        if (d.severity == Severity::Error &&
            d.message.find("silent miscompile") != std::string::npos)
            named = true;
    }
    EXPECT_TRUE(named);
}

TEST(Depcheck, VerifierUpgradesWhenDistanceCoversWidth)
{
    // Distance 8 at width 8: every carried pair lands in a different
    // vector group, so the commit is provably safe.
    const Program prog =
        sabotagedProgram(EmitOptions::Sabotage::OverlapStoreStore, 8);
    VerifyOptions opts;
    opts.config.simdWidth = 8;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("dk"), opts);
    EXPECT_EQ(r.verdict, Severity::Ok);
    EXPECT_EQ(r.predictedWidth, 8u);
    ASSERT_TRUE(r.depAnalyzed);
    EXPECT_EQ(r.dep.minDistance, 8u);
}

TEST(Depcheck, ConservativeAbortGetsAnExplanatoryNote)
{
    // Load then store +8 into one array: the translator's interval
    // test aborts at every width, but at width 8 the distance makes
    // the loop provably safe — the verifier keeps the Error verdict
    // (the hardware will abort) and documents the conservatism.
    const Program prog = sabotagedProgram(
        EmitOptions::Sabotage::OverlapStoreAfterLoad, 8, 32);
    VerifyOptions opts;
    opts.config.simdWidth = 8;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("dk"), opts);

    EXPECT_EQ(r.verdict, Severity::Error);
    EXPECT_EQ(r.reason, AbortReason::MemoryDependence);
    EXPECT_FALSE(r.depMiscompile);
    bool noted = false;
    for (const Diagnostic &d : r.diags) {
        if (d.message.find("conservative abort") != std::string::npos)
            noted = true;
    }
    EXPECT_TRUE(noted);
}

TEST(Depcheck, PairBudgetDegradesWideWidthsFirst)
{
    const Program prog = assemble(copySrc);
    DepcheckOptions opts;
    // Widths 2 and 4 cost 40 + 88 pair tests on this loop; width 8
    // needs 184 more, so a budget of 200 resolves the narrow widths
    // and leaves the wide ones unknown.
    opts.pairBudget = 200;
    const DepcheckResult dep = analyze(prog, opts);
    ASSERT_TRUE(dep.resolved);
    EXPECT_TRUE(dep.safeAt(2));
    EXPECT_TRUE(dep.safeAt(4));
    EXPECT_EQ(dep.verdictAt(8).kind, WidthVerdict::Kind::Unknown);
    EXPECT_EQ(dep.verdictAt(16).kind, WidthVerdict::Kind::Unknown);
    EXPECT_FALSE(dep.verdictAt(16).why.empty());
}

TEST(Depcheck, PredicatedMemoryAccessIsUnresolved)
{
    // A conditional store inside the loop: which iterations touch
    // memory depends on data, so the walk refuses to claim a verdict.
    const Program prog = assemble(R"(
        .words psrc 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
        .data pdst 64
        fn:
            mov r0, #0
        top:
            ldw r1, [psrc + r0]
            cmp r1, #8
            stwlt [pdst + r0], r1
            add r0, r0, #1
            cmp r0, #16
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    const DepcheckResult dep = analyze(prog);
    EXPECT_TRUE(dep.analyzed);
    EXPECT_FALSE(dep.resolved);
    for (const unsigned w : DepcheckResult::widths)
        EXPECT_EQ(dep.verdictAt(w).kind, WidthVerdict::Kind::Unknown);
    EXPECT_FALSE(dep.unresolvedWhy.empty());
}

} // namespace
} // namespace liquid
