/**
 * @file
 * Live async Server semantics: coalescing (N identical concurrent
 * requests -> one execution, N bit-identical responses, correct
 * counters), the hot tier, deadline cancellation that never poisons
 * the cache, queue backpressure, and graceful failure isolation.
 */

#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/backend.hh"
#include "serve/server.hh"

using namespace liquid;
using namespace liquid::serve;

namespace
{

Request
makeRequest(RequestClass cls, const std::string &workload,
            unsigned width)
{
    Request r;
    r.cls = cls;
    r.job.experiment = "serve";
    r.job.workload = workload;
    r.job.mode = ExecMode::Liquid;
    r.job.width = width;
    return r;
}

/** A request whose execution takes milliseconds of wall time — long
 *  enough that submissions made while it runs are ordered behind it
 *  on a single-worker server. */
Request
blockerRequest()
{
    return makeRequest(RequestClass::Simulate, "lu", 8);
}

} // namespace

TEST(Serve, BackendResponsesAreBitIdentical)
{
    // Two independent executions (separate Backend instances) of the
    // same key produce the same digest and work units: the referential
    // transparency that makes coalescing and caching sound.
    const Request req = makeRequest(RequestClass::Verify, "fir", 4);
    const Response a = Backend().execute(req);
    const Response b = Backend().execute(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NE(a.digest, 0u);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.workUnits, b.workUnits);
    EXPECT_EQ(a.summary, b.summary);
}

TEST(Serve, EveryClassExecutes)
{
    ServerConfig config;
    config.workers = 4;
    Server server(config);
    std::vector<std::future<Response>> futures;
    for (RequestClass cls : allRequestClasses)
        futures.push_back(
            server.submit(makeRequest(cls, "fir", 4)));
    for (auto &f : futures) {
        const Response resp = f.get();
        EXPECT_TRUE(resp.ok()) << resp.error;
        EXPECT_EQ(resp.source, ResponseSource::Executed);
        EXPECT_NE(resp.digest, 0u);
        EXPECT_GT(resp.workUnits, 0u);
    }
    server.stop();
    EXPECT_EQ(server.stats().executed, 5u);
    EXPECT_EQ(server.stats().completed, 5u);
}

TEST(Serve, IdenticalConcurrentRequestsCoalesce)
{
    ServerConfig config;
    config.workers = 1;
    Server server(config);

    // Occupy the single worker for milliseconds, then land N identical
    // requests behind it: the first becomes the queued leader, the
    // rest attach to it. Exactly one execution, N identical payloads.
    std::future<Response> blocker = server.submit(blockerRequest());
    constexpr int n = 6;
    const Request req = makeRequest(RequestClass::Scan, "fir", 4);
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < n; ++i)
        futures.push_back(server.submit(req));

    ASSERT_TRUE(blocker.get().ok());
    std::vector<Response> responses;
    for (auto &f : futures)
        responses.push_back(f.get());
    server.stop();

    for (const Response &resp : responses) {
        ASSERT_TRUE(resp.ok()) << resp.error;
        EXPECT_EQ(resp.digest, responses.front().digest);
        EXPECT_EQ(resp.workUnits, responses.front().workUnits);
        EXPECT_EQ(resp.summary, responses.front().summary);
    }

    const ServerStats stats = server.stats();
    // Blocker + one leader: the identical set executed exactly once.
    // (A follower that arrives after the leader completes becomes a
    // hot hit instead of coalescing — either way, never a second
    // execution.)
    EXPECT_EQ(stats.executed, 2u);
    EXPECT_EQ(stats.coalesced + stats.hotHits,
              static_cast<std::uint64_t>(n - 1));
    EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(n + 1));
    int coalescedSources = 0;
    for (const Response &resp : responses)
        coalescedSources += resp.source == ResponseSource::Coalesced;
    EXPECT_EQ(static_cast<std::uint64_t>(coalescedSources),
              stats.coalesced);
}

TEST(Serve, HotTierServesRepeats)
{
    ServerConfig config;
    config.workers = 2;
    Server server(config);
    const Request req = makeRequest(RequestClass::Proof, "fir", 4);

    const Response first = server.submit(req).get();
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.source, ResponseSource::Executed);

    const Response second = server.submit(req).get();
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.source, ResponseSource::HotCache);
    EXPECT_EQ(second.digest, first.digest);
    server.stop();

    EXPECT_EQ(server.stats().executed, 1u);
    EXPECT_EQ(server.stats().hotHits, 1u);
    EXPECT_EQ(server.hotCacheStats().hits, 1u);
    EXPECT_EQ(server.hotCacheStats().insertions, 1u);
}

TEST(Serve, DeadlineCancelsWithoutPoisoningTheCache)
{
    ServerConfig config;
    config.workers = 1;
    Server server(config);

    // The worker is busy for milliseconds; a 1us-budget request behind
    // it must be cancelled at dequeue, not executed late.
    std::future<Response> blocker = server.submit(blockerRequest());
    Request doomed = makeRequest(RequestClass::Verify, "fft", 8);
    doomed.deadlineUs = 1;
    const Response cancelled = server.submit(doomed).get();
    EXPECT_EQ(cancelled.status, ResponseStatus::Cancelled);
    EXPECT_EQ(cancelled.source, ResponseSource::None);
    EXPECT_EQ(cancelled.digest, 0u);
    ASSERT_TRUE(blocker.get().ok());

    // The cancelled key must not have been cached: resubmitting with
    // no deadline executes fresh and succeeds.
    Request retry = doomed;
    retry.deadlineUs = 0;
    const Response after = server.submit(retry).get();
    ASSERT_TRUE(after.ok()) << after.error;
    EXPECT_EQ(after.source, ResponseSource::Executed);
    server.stop();

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.cancelled, 1u);
    EXPECT_EQ(stats.hotHits, 0u);
    EXPECT_EQ(stats.executed, 2u);
}

TEST(Serve, QueueCapacityRejectsOverflow)
{
    ServerConfig config;
    config.workers = 1;
    config.queueCapacity = 1;
    Server server(config);

    std::future<Response> blocker = server.submit(blockerRequest());
    // Wait for the worker to dequeue the blocker (it then executes
    // for milliseconds) so the capacity probe sees an empty queue.
    while (server.queueDepth() > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(50));
    // One slot in the queue...
    std::future<Response> queued =
        server.submit(makeRequest(RequestClass::Scan, "fir", 4));
    // ...and the next distinct key bounces at the door.
    const Response rejected =
        server.submit(makeRequest(RequestClass::Scan, "fft", 4)).get();
    EXPECT_EQ(rejected.status, ResponseStatus::Rejected);
    EXPECT_EQ(rejected.digest, 0u);

    ASSERT_TRUE(blocker.get().ok());
    ASSERT_TRUE(queued.get().ok());
    server.stop();
    EXPECT_EQ(server.stats().rejected, 1u);
    EXPECT_EQ(server.stats().maxQueueDepth, 1u);
}

TEST(Serve, BackendFailureIsIsolatedAndUncached)
{
    ServerConfig config;
    config.workers = 1;
    Server server(config);
    // Unknown workload: the backend raises, the server answers Failed
    // and stays up; the failure is never cached.
    const Request bad =
        makeRequest(RequestClass::Simulate, "no-such-workload", 4);
    const Response first = server.submit(bad).get();
    EXPECT_EQ(first.status, ResponseStatus::Failed);
    EXPECT_FALSE(first.error.empty());
    const Response second = server.submit(bad).get();
    EXPECT_EQ(second.status, ResponseStatus::Failed);

    // And a good request still goes through afterwards.
    const Response good =
        server.submit(makeRequest(RequestClass::Scan, "fir", 4)).get();
    EXPECT_TRUE(good.ok()) << good.error;
    server.stop();
    EXPECT_EQ(server.stats().failed, 2u);
    EXPECT_EQ(server.hotCacheStats().insertions, 1u);
}

TEST(Serve, StopDrainsAcceptedWork)
{
    ServerConfig config;
    config.workers = 1;
    Server server(config);
    std::vector<std::future<Response>> futures;
    futures.push_back(server.submit(blockerRequest()));
    futures.push_back(
        server.submit(makeRequest(RequestClass::Verify, "fir", 4)));
    futures.push_back(
        server.submit(makeRequest(RequestClass::Scan, "lu", 8)));
    // Graceful stop: everything already accepted completes first.
    server.stop();
    for (auto &f : futures)
        EXPECT_TRUE(f.get().ok());
    // Post-stop submissions are rejected, not lost futures.
    const Response late =
        server.submit(makeRequest(RequestClass::Scan, "fir", 4)).get();
    EXPECT_EQ(late.status, ResponseStatus::Rejected);
}
