/**
 * @file
 * liquid-scan tests: whole-binary region discovery with no scalarizer
 * metadata, the region-boundary liveness contract, per-width
 * predictions (cross-checked against verifyRegion), the golden suite
 * rediscovery property, and the prediction-vs-measurement join with
 * the fig6 baseline (rank-order agreement — the ISSUE's acceptance
 * criterion).
 */

#include <gtest/gtest.h>

#include <set>

#include "asm/assembler.hh"
#include "lab/predict.hh"
#include "verifier/scan.hh"
#include "workloads/workload.hh"

#ifndef LIQUID_SOURCE_DIR
#define LIQUID_SOURCE_DIR "."
#endif

namespace liquid
{
namespace
{

using lab::aggregateScanSpeedups;
using lab::predictSuite;
using lab::validatePredictions;
using lab::ValidationSummary;
using lab::WorkloadPrediction;

const char *copyLoop = R"(
    .words src 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
    .data dst 64
    fn:
        mov r0, #0
    top:
        ldw r1, [src + r0]
        add r1, r1, #100
        stw [dst + r0], r1
        add r0, r0, #1
        cmp r0, #16
        blt top
        ret
    main:
        bl fn
        halt
)";

TEST(Scan, DiscoversUnhintedFunction)
{
    // A plain bl, no .simd hint: the scan must still find the region.
    const Program prog = assemble(copyLoop);
    EXPECT_TRUE(prog.hintedCalls().empty());

    const ScanReport rep = scanProgram(prog, ScanOptions{});
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    EXPECT_EQ(r.entryIndex, prog.labelIndex("fn"));
    EXPECT_EQ(r.entryLabel, "fn");
    EXPECT_EQ(r.callSites, 1u);
    EXPECT_FALSE(r.hinted);
    EXPECT_TRUE(r.hasLoop);
    EXPECT_TRUE(r.candidate);
    EXPECT_EQ(r.contractVerdict, Severity::Ok);
    EXPECT_TRUE(r.liveIn.empty());
    EXPECT_EQ(r.ivRegs.str(), "r0");
    EXPECT_EQ(r.overallVerdict(), Severity::Ok);
    EXPECT_EQ(rep.candidateCount(), 1u);
    EXPECT_FALSE(rep.anyError());
}

TEST(Scan, PredictionsMatchVerifyRegion)
{
    // The scan's per-width prediction is exactly a hint-less
    // verifyRegion call at that width.
    const Program prog = assemble(copyLoop);
    ScanOptions opts;
    opts.widths = {2, 8};
    const ScanReport rep = scanProgram(prog, opts);
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    ASSERT_EQ(r.predictions.size(), 2u);

    for (const WidthPrediction &p : r.predictions) {
        VerifyOptions vopts;
        vopts.config.simdWidth = p.requestedWidth;
        const RegionReport ref =
            verifyRegion(prog, r.entryIndex, vopts, 0);
        EXPECT_EQ(p.report.verdict, ref.verdict);
        EXPECT_EQ(p.report.predictedWidth, ref.predictedWidth);
        EXPECT_DOUBLE_EQ(p.report.predictedSpeedup,
                         ref.predictedSpeedup);
    }
    // Best = the widest committed width here.
    EXPECT_EQ(r.bestWidth, 8u);
    EXPECT_GT(r.bestSpeedup, 4.0);
}

TEST(Scan, ScalarLiveInWarnsNotSelfContained)
{
    const Program prog = assemble(R"(
        .words src 1 2 3 4 5 6 7 8
        .data dst 32
        fn:
            mov r0, #0
        top:
            ldw r1, [src + r0]
            add r1, r1, r7
            stw [dst + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl fn
            halt
    )");
    const ScanReport rep = scanProgram(prog, ScanOptions{});
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    EXPECT_TRUE(r.liveIn.contains(RegId(RegClass::Int, 7)));
    EXPECT_EQ(r.contractVerdict, Severity::Warn);
    EXPECT_TRUE(r.candidate);
    bool found = false;
    for (const Diagnostic &d : r.contractDiags) {
        if (d.message.find("not self-contained") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
}

TEST(Scan, LooplessFunctionIsWarnAnnotatedNonCandidate)
{
    const Program prog = assemble(R"(
        fn:
            mov r1, #1
            ret
        main:
            bl fn
            halt
    )");
    const ScanReport rep = scanProgram(prog, ScanOptions{});
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    EXPECT_FALSE(r.hasLoop);
    EXPECT_FALSE(r.candidate);
    EXPECT_EQ(r.overallVerdict(), Severity::Warn);
    EXPECT_TRUE(r.predictions.empty());
}

TEST(Scan, IrreducibleLoopIsError)
{
    const Program prog = assemble(R"(
        fn:
            cmp r1, #0
            beq inside
        head:
            nop
        inside:
            add r2, r2, #1
            cmp r2, #10
            blt head
            ret
        main:
            bl fn
            halt
    )");
    const ScanReport rep = scanProgram(prog, ScanOptions{});
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    EXPECT_TRUE(r.irreducible);
    EXPECT_EQ(r.contractVerdict, Severity::Error);
    EXPECT_FALSE(r.candidate);
    EXPECT_TRUE(rep.anyError());
}

TEST(Scan, SpillLikeTrafficInLoopBodyWarns)
{
    const Program prog = assemble(R"(
        .words src 1 2 3 4 5 6 7 8
        .data tmp 4
        fn:
            mov r0, #0
        top:
            ldw r1, [src + r0]
            stw [tmp], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl fn
            halt
    )");
    ScanOptions opts;
    opts.predict = false;
    const ScanReport rep = scanProgram(prog, opts);
    ASSERT_EQ(rep.regions.size(), 1u);
    bool found = false;
    for (const Diagnostic &d : rep.regions[0].contractDiags) {
        if (d.message.find("spill-like") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
    EXPECT_EQ(rep.regions[0].contractVerdict, Severity::Warn);
}

TEST(Scan, InductionVariableEscapeWarns)
{
    // The caller reads the IV r0 after the bl: the region leaks its
    // induction variable.
    const Program prog = assemble(R"(
        .words src 1 2 3 4 5 6 7 8
        .data out 4
        fn:
            mov r0, #0
        top:
            add r1, r1, r0
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl fn
            stw [out], r0
            halt
    )");
    const ScanReport rep = scanProgram(prog, ScanOptions{});
    ASSERT_EQ(rep.regions.size(), 1u);
    const ScanRegion &r = rep.regions[0];
    EXPECT_TRUE(r.liveOutDemanded.contains(RegId(RegClass::Int, 0)));
    bool found = false;
    for (const Diagnostic &d : r.contractDiags) {
        if (d.message.find("escapes the region") != std::string::npos)
            found = true;
    }
    EXPECT_TRUE(found);
}

// ---- golden suite rediscovery (acceptance criterion) -----------------

TEST(ScanGolden, SuiteRediscoversExactlyTheScalarizerRegions)
{
    for (const auto &wl : makeSuite()) {
        SCOPED_TRACE(wl->name());
        const Workload::Build hinted =
            wl->build(EmitOptions::Mode::Scalarized, 8, true);
        const Workload::Build plain =
            wl->build(EmitOptions::Mode::Scalarized, 8, false);

        // Identical layout, no metadata in the plain build.
        ASSERT_EQ(hinted.prog.code().size(), plain.prog.code().size());
        EXPECT_TRUE(plain.prog.hintedCalls().empty());

        std::set<int> expected;
        for (const HintedCall &call : hinted.prog.hintedCalls())
            expected.insert(call.target);
        ASSERT_FALSE(expected.empty());

        ScanOptions opts;
        opts.predict = false;
        const ScanReport rep = scanProgram(plain.prog, opts);

        std::set<int> candidates;
        for (const ScanRegion &r : rep.regions) {
            EXPECT_FALSE(r.hinted);
            if (r.candidate) {
                candidates.insert(r.entryIndex);
            } else {
                // Extra discoveries must be Warn-annotated, never
                // silently dropped and never fatal.
                EXPECT_EQ(r.overallVerdict(), Severity::Warn);
                EXPECT_FALSE(r.contractDiags.empty());
            }
        }

        // 100% rediscovery: every scalarizer region is a candidate...
        for (const int entry : expected)
            EXPECT_TRUE(candidates.count(entry))
                << "missed scalarizer region at inst " << entry;
        // ...and nothing else is.
        for (const int entry : candidates)
            EXPECT_TRUE(expected.count(entry))
                << "phantom candidate at inst " << entry;
    }
}

// ---- prediction aggregation and the lab join -------------------------

TEST(ScanPredict, AggregateSpeedupsSumCostOverRegions)
{
    ScanReport rep;
    auto mkRegion = [](double scalar, double simd, unsigned w) {
        ScanRegion r;
        r.candidate = true;
        WidthPrediction p;
        p.requestedWidth = w;
        p.report.verdict = Severity::Ok;
        p.report.predictedScalarCycles = scalar;
        p.report.predictedSimdCycles = simd;
        r.predictions.push_back(p);
        return r;
    };
    rep.regions.push_back(mkRegion(300, 100, 4));
    rep.regions.push_back(mkRegion(100, 100, 4));
    // Non-candidates never contribute.
    ScanRegion dud = mkRegion(1000, 1, 4);
    dud.candidate = false;
    rep.regions.push_back(dud);

    const auto agg = aggregateScanSpeedups(rep);
    ASSERT_EQ(agg.size(), 1u);
    EXPECT_DOUBLE_EQ(agg.at(4), 400.0 / 200.0);
}

lab::JobResult
makeResult(const std::string &wl, ExecMode mode, unsigned width,
           Cycles cycles)
{
    lab::JobResult r;
    r.job.experiment = "fig6";
    r.job.workload = wl;
    r.job.mode = mode;
    r.job.width = width;
    r.outcome.cycles = cycles;
    return r;
}

TEST(ScanPredict, ValidationJoinsAndScoresConcordance)
{
    lab::ResultSet measured;
    measured.add(makeResult("wl", ExecMode::ScalarBaseline, 0, 1000));
    measured.add(makeResult("wl", ExecMode::Liquid, 2, 500));
    measured.add(makeResult("wl", ExecMode::Liquid, 4, 250));

    WorkloadPrediction pred;
    pred.workload = "wl";
    pred.speedupByWidth = {{2, 2.1}, {4, 3.9}};

    const ValidationSummary ok = validatePredictions({pred}, measured);
    ASSERT_EQ(ok.rows.size(), 2u);
    EXPECT_DOUBLE_EQ(ok.rows[0].measured, 2.0);
    EXPECT_DOUBLE_EQ(ok.rows[1].measured, 4.0);
    EXPECT_EQ(ok.comparablePairs, 1u);
    EXPECT_EQ(ok.discordantPairs, 0u);
    EXPECT_TRUE(ok.rankAgreement());
    EXPECT_NEAR(ok.meanAbsError, 0.1, 1e-9);

    // Swap the prediction order: the one pair becomes discordant.
    pred.speedupByWidth = {{2, 3.9}, {4, 2.1}};
    const ValidationSummary bad =
        validatePredictions({pred}, measured);
    EXPECT_EQ(bad.discordantPairs, 1u);
    EXPECT_FALSE(bad.rankAgreement());

    // A measured tie never counts against agreement (width hints cap
    // the binding, so equal cycles across widths are routine).
    measured.results()[2].outcome.cycles = 500;
    const ValidationSummary tie =
        validatePredictions({pred}, measured);
    EXPECT_EQ(tie.discordantPairs, 0u);
}

TEST(ScanPredict, ValidationRejectsFunctionalTierRows)
{
    lab::ResultSet measured;
    measured.add(makeResult("wl", ExecMode::ScalarBaseline, 0, 1000));
    measured.add(makeResult("wl", ExecMode::Liquid, 2, 500));
    // A functional-tier row carries no cycle clock: joining it would
    // compare against an absent stat. It must be rejected loudly, not
    // silently skipped (and never divide by its zero cycles).
    lab::JobResult fun = makeResult("wl", ExecMode::Liquid, 4, 0);
    fun.job.tier = fast::ExecTier::Functional;
    measured.add(fun);

    WorkloadPrediction pred;
    pred.workload = "wl";
    pred.speedupByWidth = {{2, 2.1}, {4, 3.9}};

    const ValidationSummary s = validatePredictions({pred}, measured);
    EXPECT_EQ(s.rejectedFunctional, 1u);
    ASSERT_EQ(s.rejectedFunctionalKeys.size(), 1u);
    EXPECT_NE(s.rejectedFunctionalKeys[0].find("fun"),
              std::string::npos)
        << s.rejectedFunctionalKeys[0];
    // Only the cycle-tier width-2 row joins.
    ASSERT_EQ(s.rows.size(), 1u);
    EXPECT_EQ(s.rows[0].width, 2u);
    EXPECT_DOUBLE_EQ(s.rows[0].measured, 2.0);
}

TEST(ScanPredict, TagPredictionsRoundTripsThroughJson)
{
    lab::ResultSet set;
    set.add(makeResult("wl", ExecMode::ScalarBaseline, 0, 1000));
    set.add(makeResult("wl", ExecMode::Liquid, 8, 125));

    WorkloadPrediction pred;
    pred.workload = "wl";
    pred.speedupByWidth = {{8, 7.5}};
    EXPECT_EQ(lab::tagPredictions(set, {pred}), 1u);
    EXPECT_DOUBLE_EQ(set.results()[1].predictedSpeedup, 7.5);
    EXPECT_DOUBLE_EQ(set.results()[0].predictedSpeedup, 0.0);

    set.sortByKey();
    const lab::ResultSet back =
        lab::ResultSet::fromJson(json::parse(set.writeString()));
    const lab::JobResult *liquid =
        back.find("fig6/wl/liquid/w8");
    ASSERT_NE(liquid, nullptr);
    EXPECT_DOUBLE_EQ(liquid->predictedSpeedup, 7.5);
    const lab::JobResult *scalar = back.find("fig6/wl/scalar");
    ASSERT_NE(scalar, nullptr);
    EXPECT_DOUBLE_EQ(scalar->predictedSpeedup, 0.0);
}

// ---- the acceptance criterion: ranks agree with the fig6 baseline ----

TEST(ScanValidate, RankOrderAgreesWithMeasuredFig6Baseline)
{
    const lab::ResultSet measured = lab::ResultSet::readFile(
        std::string(LIQUID_SOURCE_DIR) +
        "/bench/baseline/BENCH_fig6.json");
    const std::vector<WorkloadPrediction> preds =
        predictSuite(ScanOptions{});
    EXPECT_EQ(preds.size(), lab::suiteWorkloadNames().size());

    const ValidationSummary v = validatePredictions(preds, measured);
    // 15 workloads x 4 widths joined, every same-workload pair ranked.
    EXPECT_EQ(v.rows.size(), 60u);
    EXPECT_EQ(v.comparablePairs, 90u);
    EXPECT_EQ(v.discordantPairs, 0u);
    EXPECT_TRUE(v.rankAgreement());
    // Absolute error is reported, not gated: predictions are
    // region-level, measurements program-level (Amdahl dilution).
    EXPECT_GT(v.meanAbsError, 0.0);

    const json::Value j = v.toJson();
    EXPECT_TRUE(j.at("rankAgreement").asBool());
    EXPECT_EQ(j.at("rows").items().size(), 60u);
}

} // namespace
} // namespace liquid
