/**
 * @file
 * Shared table of hand-built regions that each trip exactly one of the
 * translator's legality checks. The abort-reason test asserts the
 * dynamic translator reports the canonical reason; the verifier tests
 * assert the static analysis predicts the same reason without
 * executing anything; the differential test cross-checks both.
 *
 * Every case defines label `fn` as the region entry and a `main` with
 * hinted calls so the same source also runs under a full System.
 */

#ifndef LIQUID_TESTS_ABORT_CASES_HH
#define LIQUID_TESTS_ABORT_CASES_HH

#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "translator/abort_reason.hh"

namespace liquid
{

struct AbortCase
{
    /** Canonical reason name; doubles as the test label. */
    const char *name;
    AbortReason reason;
    unsigned width;       ///< capture width the abort manifests at
    std::string src;      ///< assembly; region entry is `fn`
};

inline std::string
withMain(const std::string &body)
{
    return body + R"(
    main:
        bl.simd fn
        halt
)";
}

/** >64 emitted microcode instructions: straight-line mov flood. */
inline std::string
ucodeOverflowSrc()
{
    std::string body = "    fn:\n";
    for (int i = 0; i < 70; ++i)
        body += "        mov r1, #" + std::to_string(i) + "\n";
    body += "        ret\n";
    return withMain(body);
}

inline const std::vector<AbortCase> &
abortCases()
{
    static const std::vector<AbortCase> cases = {
        // -- structure --------------------------------------------------
        {"nestedCall", AbortReason::NestedCall, 8, withMain(R"(
            fn:
                bl helper
                ret
            helper:
                ret
        )")},
        {"forwardBranch", AbortReason::ForwardBranch, 8, withMain(R"(
            fn:
                b skip
            skip:
                ret
        )")},
        {"retInsideLoop", AbortReason::RetInsideLoop, 8, withMain(R"(
            fn:
                mov r0, #0
            top:
                add r0, r0, #1
                cmp r0, #4
                bge out
                b top
            out:
                ret
        )")},
        {"backedgeTargetUnseen", AbortReason::BackedgeTargetUnseen, 8,
         withMain(R"(
            pre:
                halt
            fn:
                mov r0, #0
                cmp r0, #5
                blt pre
                ret
        )")},
        {"shapeMismatch", AbortReason::ShapeMismatch, 8, withMain(R"(
            fn:
                mov r0, #0
                mov r2, r3
            top:
                add r0, r0, #1
                cmp r0, #3
                beq skip
                mov r2, r3
            skip:
                cmp r0, #8
                blt top
                ret
        )")},
        {"vectorOutsideLoop", AbortReason::VectorOutsideLoop, 8,
         withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            .data b 32
            fn:
                mov r0, #0
                ldw r1, [a + r0]
                add r1, r1, #1
                stw [b + r0], r1
                ret
        )")},
        {"danglingBranch", AbortReason::DanglingBranch, 8, withMain(R"(
            fn:
                mov r0, #0
                cmp r0, #5
                bgt far
                ret
            far:
                halt
        )")},
        {"idiomIncomplete", AbortReason::IdiomIncomplete, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            .words b 1 1 1 1 1 1 1 1
            fn:
                mov r0, #0
                ldw r1, [a + r0]
                ldw r2, [b + r0]
                add r1, r1, r2
                cmp r1, #32767
                ret
        )")},
        {"unfinalizedPatches", AbortReason::UnfinalizedPatches, 8,
         withMain(R"(
            .rowords off 1 0 1 0 1 0 1 0
            .words a 1 2 3 4 5 6 7 8
            .data b 32
            fn:
                mov r0, #0
                ldw r1, [off + r0]
                add r2, r0, r1
                ldw r3, [a + r2]
                stw [b + r0], r3
                ret
        )")},

        // -- opcode -----------------------------------------------------
        {"vectorOpcode", AbortReason::VectorOpcode, 8, withMain(R"(
            fn:
                mov r0, #0
                cmp r0, #5
                vaddgt v1, v1, v1
                ret
        )")},
        {"untranslatableOpcode", AbortReason::UntranslatableOpcode, 8,
         withMain(R"(
            fn:
                nop
                ret
        )")},
        {"conditionalMov", AbortReason::ConditionalMov, 8, withMain(R"(
            fn:
                mov r1, #3
                cmp r1, #1
                movgt r2, #7
                ret
        )")},
        {"movFromNonScalar", AbortReason::MovFromNonScalar, 8,
         withMain(R"(
            fn:
                mov r0, #0
                mov r1, r0
                ret
        )")},
        {"loadWithoutIndex", AbortReason::LoadWithoutIndex, 8,
         withMain(R"(
            .words a 1 2
            fn:
                ldw r1, [a]
                ret
        )")},
        {"loadBadIndex", AbortReason::LoadBadIndex, 8, withMain(R"(
            .words a 1 2 3 4
            fn:
                mov r1, r2
                ldw r3, [a + r1]
                ret
        )")},
        {"storeWithoutIndex", AbortReason::StoreWithoutIndex, 8,
         withMain(R"(
            .data b 16
            fn:
                mov r1, #1
                stw [b], r1
                ret
        )")},
        {"storeScalarData", AbortReason::StoreScalarData, 8, withMain(R"(
            .data b 32
            fn:
                mov r0, #0
                mov r1, #7
                stw [b + r0], r1
                ret
        )")},
        {"storeBadIndex", AbortReason::StoreBadIndex, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            .data b 32
            fn:
                mov r0, #0
                ldw r2, [a + r0]
                mov r1, r3
                stw [b + r1], r2
                ret
        )")},
        {"vectorCompare", AbortReason::VectorCompare, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            fn:
                mov r0, #0
                ldw r1, [a + r0]
                cmp r1, #5
                ret
        )")},
        {"unsupportedReduction", AbortReason::UnsupportedReduction, 8,
         withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            fn:
                mov r0, #0
                ldw r2, [a + r0]
                mov r1, r3
                sub r1, r1, r2
                ret
        )")},
        {"vectorScalarMix", AbortReason::VectorScalarMix, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            fn:
                mov r0, #0
                ldw r2, [a + r0]
                mov r1, r3
                add r4, r2, r1
                ret
        )")},
        {"offsetsInArithmetic", AbortReason::OffsetsInArithmetic, 8,
         withMain(R"(
            .rowords off 1 0 1 0 1 0 1 0
            fn:
                mov r0, #0
                ldw r1, [off + r0]
                add r2, r0, r1
                add r3, r2, #1
                ret
        )")},
        {"ivArithmetic", AbortReason::IvArithmetic, 8, withMain(R"(
            fn:
                mov r0, #0
                add r1, r0, r0
                ret
        )")},

        // -- idiom ------------------------------------------------------
        {"idiomShape", AbortReason::IdiomShape, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            fn:
                mov r0, #0
                ldw r1, [a + r0]
                cmp r1, #32767
                mov r2, #5
                ret
        )")},
        {"idiomBadProducer", AbortReason::IdiomBadProducer, 8,
         withMain(R"(
            .words a 1 2 3 4 5 6 7 8
            fn:
                mov r0, #0
                ldw r1, [a + r0]
                cmp r1, #32767
                movgt r1, #32767
                cmp r1, #-32768
                movlt r1, #-32768
                ret
        )")},

        // -- dataflow ---------------------------------------------------
        {"valueTooWide", AbortReason::ValueTooWide, 8, withMain(R"(
            .rowords t 1 1000 2 3 4 5 6 7 8 9 10 11 12 13 14 15
            .words a 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1
            .data b 64
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                ldw r2, [t + r0]
                add r3, r1, r2
                stw [b + r0], r3
                add r0, r0, #1
                cmp r0, #16
                blt top
                ret
        )")},
        {"addressMismatch", AbortReason::AddressMismatch, 8, withMain(R"(
            .words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
            .data b 64
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                stw [b + r0], r1
                add r0, r0, #2
                cmp r0, #16
                blt top
                ret
        )")},
        {"ivMismatch", AbortReason::IvMismatch, 8, withMain(R"(
            fn:
                mov r0, #0
            top:
                add r0, r0, #1
                add r0, r0, #1
                cmp r0, #16
                blt top
                ret
        )")},
        {"memoryDependence", AbortReason::MemoryDependence, 8,
         withMain(R"(
            .words a 1 2 3 4 5 6 7 8 9
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                stw [a + r0 + #1], r1
                add r0, r0, #1
                cmp r0, #8
                blt top
                ret
        )")},

        // -- width ------------------------------------------------------
        {"tripCount", AbortReason::TripCount, 8, withMain(R"(
            .words a 1 2 3 4
            .data b 32
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                add r1, r1, #1
                stw [b + r0], r1
                add r0, r0, #1
                cmp r0, #4
                blt top
                ret
        )")},
        {"unsupportedShuffle", AbortReason::UnsupportedShuffle, 8,
         withMain(R"(
            .rowords off 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0
            .words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
            .data b 64
            fn:
                mov r0, #0
            top:
                ldw r1, [off + r0]
                add r2, r0, r1
                ldw r3, [a + r2]
                stw [b + r0], r3
                add r0, r0, #1
                cmp r0, #16
                blt top
                ret
        )")},
        {"valueMismatch", AbortReason::ValueMismatch, 8, withMain(R"(
            .rowords t 0 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15
            .words a 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1 1
            .data b 64
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                ldw r2, [t + r0]
                add r3, r1, r2
                stw [b + r0], r3
                add r0, r0, #1
                cmp r0, #16
                blt top
                ret
        )")},
        {"lanesIncomplete", AbortReason::LanesIncomplete, 8, withMain(R"(
            .rowords off 0 0 0 0 0 0 0 0
            .words a 1 2 3 4 5 6 7 8
            .words c 1 2 3 4 5 6 7 8
            .data b 64
            .data d 64
            fn:
                mov r0, #0
                ldw r1, [off + r0]
                add r2, r0, r1
                ldw r3, [a + r2]
                stw [b + r0], r3
            top:
                ldw r4, [c + r0]
                add r4, r4, #1
                stw [d + r0], r4
                add r0, r0, #1
                cmp r0, #8
                blt top
                ret
        )")},

        // -- capacity ---------------------------------------------------
        {"ucodeOverflow", AbortReason::UcodeOverflow, 8,
         ucodeOverflowSrc()},
    };
    return cases;
}

} // namespace liquid

#endif // LIQUID_TESTS_ABORT_CASES_HH
