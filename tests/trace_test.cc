/** @file Execution-trace tests: format and scalar/microcode marking. */

#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hh"
#include "sim/system.hh"

namespace liquid
{
namespace
{

TEST(Trace, ScalarAndMicrocodeLines)
{
    Program prog = assemble(R"(
        .words a 1 2 3 4 5 6 7 8
        .data b 32
        fn:
            mov r0, #0
        top:
            ldw r1, [a + r0]
            stw [b + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            bl.simd fn
            halt
    )");
    SystemConfig config = SystemConfig::make(ExecMode::Liquid, 8);
    config.translator.latencyPerInst = 0;
    System sys(config, prog);
    std::ostringstream trace;
    sys.core().setTrace(&trace);
    sys.run();

    const std::string text = trace.str();
    // Scalar first call traced with program indices.
    EXPECT_NE(text.find("ldw r1, [a + r0]"), std::string::npos);
    // Second call traced as microcode ('u' marker + vector opcodes).
    EXPECT_NE(text.find("  u"), std::string::npos);
    EXPECT_NE(text.find("vldw v1, [a + r0]"), std::string::npos);
    EXPECT_NE(text.find("add r0, r0, #8"), std::string::npos);
    EXPECT_NE(text.find("halt"), std::string::npos);

    // One line per retired instruction.
    const std::uint64_t insts = sys.core().stats().get("insts");
    std::uint64_t lines = 0;
    for (const char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, insts);
}

TEST(Trace, DisabledByDefault)
{
    Program prog = assemble(R"(
        main:
            mov r0, #1
            halt
    )");
    MainMemory mem = MainMemory::forProgram(prog);
    Core core(CoreConfig{}, prog, mem);
    core.run();  // must not crash without a trace sink
    EXPECT_TRUE(core.halted());
}

} // namespace
} // namespace liquid
