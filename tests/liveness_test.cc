/**
 * @file
 * Liveness-dataflow tests: per-instruction use/def effects, live-in /
 * live-out sets on hand-built CFG shapes (straight line, diamond,
 * nested loop), interprocedural callee summaries, dominators, and
 * irreducible-edge rejection.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "verifier/cfg.hh"
#include "verifier/liveness.hh"

namespace liquid
{
namespace
{

RegId
R(unsigned idx)
{
    return RegId(RegClass::Int, idx);
}

RegId
F(unsigned idx)
{
    return RegId(RegClass::Flt, idx);
}

RegSet
setOf(std::initializer_list<RegId> regs)
{
    RegSet s;
    for (const RegId r : regs)
        s.add(r);
    return s;
}

TEST(RegSetOps, BasicAlgebra)
{
    RegSet s = setOf({R(1), F(2)});
    EXPECT_TRUE(s.contains(R(1)));
    EXPECT_TRUE(s.contains(F(2)));
    EXPECT_FALSE(s.contains(R(2)));
    EXPECT_EQ(s.count(), 2u);
    EXPECT_FALSE(s.anyVector());

    s.add(RegId(RegClass::Vec, 3));
    EXPECT_TRUE(s.anyVector());
    EXPECT_EQ(s.ofClass(RegClass::Vec).count(), 1u);

    const RegSet scalarOnly = s.minus(s.ofClass(RegClass::Vec));
    EXPECT_EQ(scalarOnly, setOf({R(1), F(2)}));
    EXPECT_EQ(setOf({}).str(), "-");
    EXPECT_EQ(setOf({R(1)}).str(), "r1");
}

TEST(InstEffectsRules, UsesAndDefs)
{
    // add r1, r2, r3: uses r2 r3, defs r1.
    const InstEffects add =
        instEffects(Inst::dp(Opcode::Add, R(1), R(2), R(3)));
    EXPECT_EQ(add.uses, setOf({R(2), R(3)}));
    EXPECT_EQ(add.defs, setOf({R(1)}));

    // cmp writes only flags.
    const InstEffects cmp = instEffects(Inst::cmpReg(R(1), R(2)));
    EXPECT_EQ(cmp.uses, setOf({R(1), R(2)}));
    EXPECT_TRUE(cmp.defs.empty());

    // mov r1, #5 has no register inputs.
    const InstEffects movi = instEffects(Inst::movImm(R(1), 5));
    EXPECT_TRUE(movi.uses.empty());
    EXPECT_EQ(movi.defs, setOf({R(1)}));

    // A conditional mov merges with the old value: dst is also a use.
    const InstEffects cmov =
        instEffects(Inst::movReg(R(1), R(2), Cond::EQ));
    EXPECT_EQ(cmov.uses, setOf({R(1), R(2)}));
    EXPECT_EQ(cmov.defs, setOf({R(1)}));

    // Stores read data and index; loads read the index, write dst.
    MemRef m;
    m.base = 0x100000;
    m.index = R(0);
    const InstEffects st =
        instEffects(Inst::store(Opcode::Stw, R(3), m));
    EXPECT_EQ(st.uses, setOf({R(3), R(0)}));
    EXPECT_TRUE(st.defs.empty());
    const InstEffects ld = instEffects(Inst::load(Opcode::Ldw, R(3), m));
    EXPECT_EQ(ld.uses, setOf({R(0)}));
    EXPECT_EQ(ld.defs, setOf({R(3)}));

    // Branches and ret have no register effects (calls are summarized).
    EXPECT_TRUE(instEffects(Inst::ret()).uses.empty());
    EXPECT_TRUE(instEffects(Inst::branch(Cond::LT, 0)).uses.empty());
    EXPECT_TRUE(instEffects(Inst::call(0, false)).defs.empty());
}

TEST(LivenessDataflow, StraightLine)
{
    const Program prog = assemble(R"(
        fn:
            mov r1, #5
            add r2, r1, r3
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    const Liveness lv = Liveness::run(prog, cfg);

    // r3 is read before any write: the region's only live-in.
    EXPECT_EQ(lv.entryLiveIn(), setOf({R(3)}));
    EXPECT_EQ(lv.mayDef(), setOf({R(1), R(2)}));
    // After the mov, r1 is live up to its use.
    EXPECT_TRUE(lv.liveAfter(0).contains(R(1)));
    EXPECT_FALSE(lv.liveAfter(1).contains(R(1)));
}

TEST(LivenessDataflow, ExitLiveFlowsBackFromRet)
{
    const Program prog = assemble(R"(
        fn:
            mov r1, #5
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    const Liveness lv =
        Liveness::run(prog, cfg, {}, setOf({R(1), R(9)}));

    // The caller's demand r1 is satisfied inside; r9 flows through.
    EXPECT_EQ(lv.entryLiveIn(), setOf({R(9)}));
    EXPECT_EQ(lv.liveAfter(0), setOf({R(1), R(9)}));
}

TEST(LivenessDataflow, Diamond)
{
    // Both arms define r2; the join reads it. Arm sources r3/r4 are
    // live-in only up to their arm.
    const Program prog = assemble(R"(
        fn:
            cmp r1, #0
            beq right
            mov r2, r3
            b join
        right:
            mov r2, r4
        join:
            add r5, r2, #1
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    const Liveness lv = Liveness::run(prog, cfg);

    EXPECT_EQ(lv.entryLiveIn(), setOf({R(1), R(3), R(4)}));
    // At the join, only r2 is needed.
    const int join = prog.labelIndex("join");
    EXPECT_EQ(lv.liveBefore(join), setOf({R(2)}));
    // In the left arm, r4 is dead, r3 live.
    EXPECT_TRUE(lv.liveBefore(2).contains(R(3)));
    EXPECT_FALSE(lv.liveBefore(2).contains(R(4)));
}

TEST(LivenessDataflow, NestedLoop)
{
    // The accumulator r2 is never initialized: live into the region
    // and around both loops. r1 is redefined per outer iteration.
    const Program prog = assemble(R"(
        fn:
            mov r0, #0
        outer:
            mov r1, #0
        inner:
            add r2, r2, r1
            add r1, r1, #1
            cmp r1, #4
            blt inner
            add r0, r0, #1
            cmp r0, #3
            blt outer
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    EXPECT_EQ(cfg.loops().size(), 2u);

    const Liveness lv = Liveness::run(prog, cfg);
    EXPECT_EQ(lv.entryLiveIn(), setOf({R(2)}));
    // Around the inner back edge both counters and the accumulator
    // stay live.
    const int inner = prog.labelIndex("inner");
    EXPECT_EQ(lv.liveBefore(inner), setOf({R(0), R(1), R(2)}));

    // Both loops are reducible, and each has its own isolated IV.
    const auto dom = blockDominators(cfg);
    for (const CfgLoop &loop : cfg.loops())
        EXPECT_TRUE(loopIsReducible(cfg, loop, dom));
}

TEST(LivenessDataflow, CalleeSummaryTransfer)
{
    const Program prog = assemble(R"(
        fn:
            mov r1, #5
            bl helper
            add r3, r2, #1
            ret
        helper:
            add r2, r1, #1
            ret
    )");
    const int helper = prog.labelIndex("helper");
    const RegionCfg helperCfg = RegionCfg::build(prog, helper);
    const Liveness helperLv = Liveness::run(prog, helperCfg);
    EXPECT_EQ(helperLv.entryLiveIn(), setOf({R(1)}));
    EXPECT_EQ(helperLv.mayDef(), setOf({R(2)}));

    std::map<int, FnSummary> callees;
    callees[helper] = helperLv.summary();

    const RegionCfg cfg = RegionCfg::build(prog, 0);
    const Liveness lv = Liveness::run(prog, cfg, callees);
    // The bl kills r2 (callee mayDef) and demands r1 (callee liveIn);
    // r1 is produced by the mov, so the region is self-contained.
    EXPECT_TRUE(lv.entryLiveIn().empty());
    EXPECT_EQ(lv.liveBefore(1), setOf({R(1)}));
    EXPECT_TRUE(lv.liveAfter(1).contains(R(2)));
    EXPECT_TRUE(lv.mayDef().contains(R(2)));
}

TEST(LivenessDataflow, IrreducibleEdgeRejected)
{
    // The beq enters the loop body around its head: the back edge's
    // target does not dominate its source.
    const Program prog = assemble(R"(
        fn:
            cmp r1, #0
            beq inside
        head:
            nop
        inside:
            add r2, r2, #1
            cmp r2, #10
            blt head
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    ASSERT_EQ(cfg.loops().size(), 1u);
    const auto dom = blockDominators(cfg);
    EXPECT_FALSE(loopIsReducible(cfg, cfg.loops()[0], dom));
}

TEST(LivenessDataflow, DominatorsOnDiamond)
{
    const Program prog = assemble(R"(
        fn:
            cmp r1, #0
            beq right
            nop
            b join
        right:
            nop
        join:
            ret
    )");
    const RegionCfg cfg = RegionCfg::build(prog, 0);
    ASSERT_EQ(cfg.blocks().size(), 4u);
    const auto dom = blockDominators(cfg);
    const int entry = cfg.blockOf(0);
    const int join = cfg.blockOf(prog.labelIndex("join"));
    const int left = cfg.blockOf(2);
    // The entry dominates everything; neither arm dominates the join.
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b)
        EXPECT_TRUE(dom[b][static_cast<std::size_t>(entry)]);
    EXPECT_FALSE(dom[static_cast<std::size_t>(join)]
                    [static_cast<std::size_t>(left)]);
}

} // namespace
} // namespace liquid
