/**
 * @file
 * Functional-interpreter unit tests: dispatch-cache lifecycle (decode,
 * SMC/flush invalidation, re-decode correctness), retire-keyed fault
 * timing and the cycle-periodic rejection diagnostic, plus the lab
 * integration — tier-tagged job keys, matrix expansion rules, and the
 * results contract that functional runs carry NO cycle counts (absent,
 * never zero).
 */

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>

#include "chaos/fault_schedule.hh"
#include "fast/fast.hh"
#include "fast/tier.hh"
#include "lab/results.hh"
#include "lab/runner.hh"
#include "lab/spec.hh"
#include "workloads/workload.hh"

namespace liquid::fast
{
namespace
{

/** The suite's FIR workload, built in the requested mode. */
Workload::Build
firBuild(EmitOptions::Mode mode, unsigned width)
{
    for (const auto &wl : makeSuite()) {
        if (wl->name() == "fir")
            return wl->build(mode, width);
    }
    ADD_FAILURE() << "suite lost the fir workload";
    std::abort();
}

/** Fresh interpreter over its own memory image. */
struct Rig
{
    Program prog;
    MainMemory mem;
    FastInterp interp;

    explicit Rig(const Workload::Build &build, FastConfig config = {})
        : prog(build.prog), mem(MainMemory::forProgram(prog)),
          interp(config, prog, mem)
    {
    }
};

TEST(FastDispatchCache, DecodeIsLazyAndPerBlock)
{
    const auto build = firBuild(EmitOptions::Mode::Scalarized, 8);
    Rig rig(build);
    EXPECT_EQ(rig.interp.blocksDecoded(), 0u);
    rig.interp.step();
    EXPECT_GT(rig.interp.blocksDecoded(), 0u);
    // The entry block is live; far-away code is still cold.
    EXPECT_TRUE(rig.interp.isDecoded(rig.interp.pc()));
    const int last = static_cast<int>(rig.prog.code().size()) - 1;
    const std::uint64_t decodedEarly = rig.interp.blocksDecoded();
    rig.interp.run();
    EXPECT_TRUE(rig.interp.halted());
    EXPECT_GE(rig.interp.blocksDecoded(), decodedEarly);
    (void)last;
}

TEST(FastDispatchCache, SmcInvalidationDropsCoveringBlockOnly)
{
    const auto build = firBuild(EmitOptions::Mode::Scalarized, 8);
    Rig rig(build);
    // Execute some instructions so the entry block is decoded.
    for (int i = 0; i < 8 && !rig.interp.halted(); ++i)
        rig.interp.step();
    ASSERT_TRUE(rig.interp.isDecoded(0));
    const std::uint64_t before = rig.interp.decodeInvalidations();

    // A store into instruction 0's address must drop its block.
    rig.interp.invalidateCodeRange(Program::instAddr(0),
                                   Program::instAddr(0) + 4);
    EXPECT_FALSE(rig.interp.isDecoded(0));
    EXPECT_EQ(rig.interp.decodeInvalidations(), before + 1);

    // Re-decode on demand and finish; the result must match a clean
    // uninterrupted run exactly.
    rig.interp.run();
    Rig clean(build);
    clean.interp.run();
    EXPECT_EQ(rig.interp.retired(), clean.interp.retired());
    EXPECT_EQ(rig.interp.scalars(), clean.interp.scalars());
    EXPECT_EQ(rig.interp.cmpState(), clean.interp.cmpState());
}

TEST(FastDispatchCache, FlushDropsEverything)
{
    const auto build = firBuild(EmitOptions::Mode::Native, 8);
    FastConfig config;
    config.simdWidth = 8;
    Rig rig(build, config);
    for (int i = 0; i < 8 && !rig.interp.halted(); ++i)
        rig.interp.step();
    ASSERT_GT(rig.interp.blocksDecoded(), 0u);
    rig.interp.flushDecodeCache();
    EXPECT_EQ(rig.interp.decodeFlushes(), 1u);
    for (std::size_t i = 0; i < rig.prog.code().size(); ++i)
        EXPECT_FALSE(rig.interp.isDecoded(static_cast<int>(i)));
    rig.interp.run();
    Rig clean(build, config);
    clean.interp.run();
    EXPECT_EQ(rig.interp.retired(), clean.interp.retired());
    EXPECT_EQ(rig.interp.scalars(), clean.interp.scalars());
}

TEST(FastDispatchCache, SmcFaultEventInvalidatesDuringRun)
{
    const auto build = firBuild(EmitOptions::Mode::Scalarized, 8);
    FastConfig config;
    config.faults = FaultSchedule::parse("smc@40");
    Rig rig(build, config);
    rig.interp.run();
    EXPECT_GE(rig.interp.decodeInvalidations(), 1u);
    // Invalidation machinery ran; architectural results unchanged.
    Rig clean(build);
    clean.interp.run();
    EXPECT_EQ(rig.interp.retired(), clean.interp.retired());
    EXPECT_EQ(rig.interp.scalars(), clean.interp.scalars());
}

TEST(FastFaults, CyclePeriodicInterruptRejectedAtConstruction)
{
    const auto build = firBuild(EmitOptions::Mode::Scalarized, 8);
    FastConfig config;
    config.faults = FaultSchedule::periodic(100);
    MainMemory mem = MainMemory::forProgram(build.prog);
    EXPECT_THROW(FastInterp(config, build.prog, mem), FatalError);
}

TEST(FastFaults, RetireKeyedEventsFireAtExactRetireCounts)
{
    const auto build = firBuild(EmitOptions::Mode::Scalarized, 8);
    FastConfig config;
    config.faults = FaultSchedule::parse("int@5");
    Rig rig(build, config);

    // Events with atRetire == target do NOT fire inside runUntil —
    // they belong to the step retiring target+1 (the warmup-handoff
    // contract: the cycle core fires them after adoption).
    rig.interp.runUntil(5);
    EXPECT_EQ(rig.interp.retired(), 5u);
    EXPECT_EQ(rig.interp.nextFaultIndex(), 0u);

    rig.interp.step();
    EXPECT_EQ(rig.interp.nextFaultIndex(), 1u);
    rig.interp.run();
    EXPECT_EQ(rig.interp.stats().get("faults.int"), 1u);
}

TEST(FastLabTier, FunctionalTagsTheJobKey)
{
    lab::Job job;
    job.experiment = "fast";
    job.workload = "fir";
    job.mode = ExecMode::NativeSimd;
    job.width = 8;
    job.tier = ExecTier::Functional;
    EXPECT_EQ(job.key(), "fast/fir/native/w8/fun");
    // The cycle tier stays untagged so pre-tier keys and committed
    // baselines remain valid.
    job.tier = ExecTier::Cycle;
    EXPECT_EQ(job.key(), "fast/fir/native/w8");
}

TEST(FastLabTier, ExpansionSkipsFunctionalLiquidPairs)
{
    lab::ExperimentSpec spec;
    spec.name = "tiertest";
    spec.workloads = {"fir"};
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = {2};
    spec.tiers = {ExecTier::Cycle, ExecTier::Functional};
    const auto jobs = spec.expand();
    unsigned functional = 0;
    for (const auto &job : jobs) {
        if (job.tier == ExecTier::Functional) {
            ++functional;
            // No translator on the functional tier.
            EXPECT_NE(job.mode, ExecMode::Liquid) << job.key();
        }
    }
    EXPECT_GT(functional, 0u);
}

TEST(FastLabTier, FunctionalResultsOmitCyclesAndRoundTrip)
{
    lab::ExperimentSpec spec;
    spec.name = "tiertest";
    spec.workloads = {"fir"};
    spec.modes = {ExecMode::ScalarBaseline};
    spec.widths = {8};
    spec.repsList = {2};
    spec.tiers = {ExecTier::Functional};

    lab::Runner runner(1);
    lab::ResultSet results = runner.run(spec.expand());
    ASSERT_EQ(results.size(), 1u);
    const lab::JobResult &jr = results.results().front();
    EXPECT_FALSE(jr.outcome.hasCycles);
    EXPECT_GT(jr.outcome.counters.at("fast.insts"), 0u);

    // Asking a functional result for cycles is a caller bug, not a
    // zero.
    EXPECT_THROW(results.cycles(jr.job.key()), FatalError);

    // Byte-identical JSON round trip, tier tag included.
    const std::string first = results.writeString();
    lab::ResultSet back =
        lab::ResultSet::fromJson(json::parse(first));
    EXPECT_EQ(back.writeString(), first);
    EXPECT_EQ(back.results().front().job.tier, ExecTier::Functional);

    // A functional record claiming a cycle count is corrupt.
    json::Value v = jr.toJson();
    v.set("cycles", 123);
    EXPECT_THROW(lab::JobResult::fromJson(v), FatalError);
}

} // namespace
} // namespace liquid::fast
