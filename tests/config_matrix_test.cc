/**
 * @file
 * Configuration-matrix robustness: the whole workload suite must match
 * the golden model under every unusual-but-legal configuration —
 * translation is an optimization layer and must never change results.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

struct ConfigCase
{
    const char *name;
    std::function<void(SystemConfig &)> tweak;
};

const ConfigCase cases[] = {
    {"tiny microcode cache",
     [](SystemConfig &c) { c.ucodeCache.entries = 1; }},
    {"collapse network disabled",
     [](SystemConfig &c) { c.translator.collapseEnabled = false; }},
    {"no width fallback",
     [](SystemConfig &c) { c.translator.widthFallback = false; }},
    {"no hints required",
     [](SystemConfig &c) { c.translator.requireHint = false; }},
    {"offline pretranslation",
     [](SystemConfig &c) { c.pretranslate = true; }},
    {"slow JIT translator",
     [](SystemConfig &c) { c.translator.latencyPerInst = 25; }},
    {"interrupt storm",
     [](SystemConfig &c) { c.core.faults = FaultSchedule::periodic(700); }},
    {"no blacklist (retry forever)",
     [](SystemConfig &c) { c.translator.blacklistOnAbort = false; }},
    {"tiny data cache",
     [](SystemConfig &c) {
         c.core.dcache.sizeBytes = 2048;
         c.core.dcache.assoc = 64;
     }},
    {"ancient shuffle repertoire",
     [](SystemConfig &c) {
         c.translator.permRepertoire =
             permSet({PermKind::SwapPairs});
     }},
};

TEST(ConfigMatrix, SuiteMatchesGoldenUnderEveryConfig)
{
    const auto suite = makeSuite();
    for (const auto &cc : cases) {
        for (const auto &wl : suite) {
            // 179.art is slow; the matrix uses the rest plus art once.
            if (wl->name() == "179.art" &&
                std::string(cc.name) != "tiny microcode cache")
                continue;
            const auto build = wl->build(EmitOptions::Mode::Scalarized);
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, 8);
            cc.tweak(config);
            System sys(config, build.prog);
            sys.run();

            MainMemory golden = MainMemory::forProgram(build.prog);
            wl->goldenRun(build, golden);
            for (const auto &[name, words] : wl->allOutputs()) {
                ASSERT_EQ(Workload::readArray(build.prog, sys.memory(),
                                              name, words),
                          Workload::readArray(build.prog, golden, name,
                                              words))
                    << wl->name() << " under '" << cc.name
                    << "' array " << name;
            }
        }
    }
}

TEST(ConfigMatrix, WidthTwoThroughSixteenTimesConfigs)
{
    // A smaller cross: fft (permutation-heavy) under every config at
    // every width.
    std::unique_ptr<Workload> fft;
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fft")
            fft = std::move(wl);
    }
    const auto build = fft->build(EmitOptions::Mode::Scalarized);
    MainMemory golden = MainMemory::forProgram(build.prog);
    fft->goldenRun(build, golden);

    for (const auto &cc : cases) {
        for (unsigned width : {2u, 4u, 8u, 16u}) {
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, width);
            cc.tweak(config);
            System sys(config, build.prog);
            sys.run();
            for (const auto &[name, words] : fft->allOutputs()) {
                ASSERT_EQ(Workload::readArray(build.prog, sys.memory(),
                                              name, words),
                          Workload::readArray(build.prog, golden, name,
                                              words))
                    << "fft W=" << width << " under '" << cc.name
                    << "' array " << name;
            }
        }
    }
}

} // namespace
} // namespace liquid
