/**
 * @file
 * Binary encoding round-trip tests: every instruction the assembler,
 * the scalarizer (all modes) and the dynamic translator produce must
 * survive encode/decode bit-exactly (modulo symbols), validating the
 * 32-bit-per-instruction microcode buffer accounting of paper Table 2.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/encoding.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

void
expectRoundTrip(const std::vector<Inst> &code, const std::string &what)
{
    const EncodedProgram enc = encodeProgram(code);
    const std::vector<Inst> back = decodeProgram(enc);
    ASSERT_EQ(back.size(), code.size()) << what;
    for (std::size_t i = 0; i < code.size(); ++i) {
        EXPECT_EQ(back[i], code[i])
            << what << " inst " << i << ": '" << code[i].toString()
            << "' decoded as '" << back[i].toString() << "'";
    }
}

TEST(Encoding, HandWrittenForms)
{
    const Program prog = assemble(R"(
        .data buf 256
        .rowords tab 1 -1 1 -1
        .cvec k 3 4
        main:
            mov r0, #0
            mov r1, #-200
            mov r2, #100000
            mov f3, r1
            movgt r4, #32767
            add r5, r1, r2
            mul r6, r5, #3
            cmp r6, #-32768
            ldw r7, [buf + r0]
            ldsh r8, [buf + r0 + #-2]
            stb [buf + r0 + #7], r8
            vldw v1, [buf + r0]
            vadd v2, v1, cv:k
            vqadd v3, v2, v1
            vperm.rev8 v4, v3
            vperm.rotu2 v5, v4
            vmask v6, v5, #0xF0F0/16
            vredadd r9, v6
            vstw [buf + r0], v6
            b main
            blt main
            bl main
            bl.simd main
            bl.simd16 main
            ret
            nop
            halt
    )");
    expectRoundTrip(prog.code(), "hand-written");
}

TEST(Encoding, AllWorkloadBinaries)
{
    for (const auto &wl : makeSuite()) {
        for (const auto mode : {EmitOptions::Mode::Scalarized,
                                EmitOptions::Mode::InlineScalar}) {
            const auto build = wl->build(mode);
            expectRoundTrip(build.prog.code(),
                            wl->name() + " scalar build");
        }
        // Native at width 8 where expressible.
        bool ok = true;
        for (const auto &k : wl->makeKernels()) {
            if (k.tripCount() % 8 != 0 || k.maxWidth() < 8)
                ok = false;
            for (const auto &v : k.body()) {
                if (v.k == vir::OpK::Perm && v.permBlock > 8)
                    ok = false;
            }
        }
        if (ok) {
            const auto build = wl->build(EmitOptions::Mode::Native, 8);
            expectRoundTrip(build.prog.code(),
                            wl->name() + " native build");
        }
    }
}

TEST(Encoding, TranslatedMicrocodeFitsOneWordPerInstruction)
{
    // Every microcode region the dynamic translator produces across
    // the suite must encode in 32 bits/instruction — the paper's
    // microcode buffer geometry (64 x 32 b).
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();
        for (const Addr entry : build.kernelEntries) {
            const UcodeEntry *uc =
                sys.ucodeCache().lookup(entry, sys.cycles() + 1'000'000);
            if (!uc)
                continue;
            expectRoundTrip(uc->insts, wl->name() + " microcode");
            const EncodedProgram enc = encodeProgram(uc->insts);
            EXPECT_EQ(enc.words.size(), uc->insts.size());
            EXPECT_LE(enc.words.size() * 4, 256u)
                << "region exceeds the 256-byte microcode entry";
        }
    }
}

TEST(Encoding, LiteralPoolInternsAndOverflows)
{
    LiteralPool pool;
    EXPECT_EQ(pool.intern(42), 0u);
    EXPECT_EQ(pool.intern(43), 1u);
    EXPECT_EQ(pool.intern(42), 0u);
    EXPECT_EQ(pool.get(1), 43u);
    for (Word v = 100; v < 162; ++v)
        pool.intern(v);
    EXPECT_THROW(pool.intern(9999), FatalError);
}

TEST(Encoding, WideImmediatesUseLiterals)
{
    LiteralPool pool;
    const Inst narrow = Inst::dpImm(Opcode::Add, RegId(RegClass::Int, 1),
                                    RegId(RegClass::Int, 2), 100);
    const Inst wide = Inst::dpImm(Opcode::Add, RegId(RegClass::Int, 1),
                                  RegId(RegClass::Int, 2), 1 << 20);
    encodeInst(narrow, pool);
    EXPECT_TRUE(pool.values().empty());
    const auto w = encodeInst(wide, pool);
    EXPECT_EQ(pool.values().size(), 1u);
    EXPECT_EQ(decodeInst(w, pool).imm, 1 << 20);
}

} // namespace
} // namespace liquid
