/**
 * @file
 * Edge-case coverage for the verifier's CFG reconstruction and the
 * dataflow walk built on it: instructions unreachable from the region
 * entry, single-block self-loop bodies (head == latch), and loops
 * whose back edge targets a block other than the region entry.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "asm/assembler.hh"
#include "verifier/cfg.hh"
#include "verifier/dataflow.hh"
#include "verifier/depcheck.hh"
#include "verifier/verifier.hh"

namespace liquid
{
namespace
{

RegionCfg
regionFor(const Program &prog, const char *label = "fn")
{
    return RegionCfg::build(prog, prog.labelIndex(label));
}

TEST(DataflowEdge, UnreachableInstructionsStayOutsideTheRegion)
{
    // The movs after the ret are dead text: between the region's exit
    // and main, reachable from neither.
    const Program prog = assemble(R"(
        fn:
            mov r0, #1
            ret
            mov r0, #99
            mov r1, #98
        main:
            bl.simd fn
            halt
    )");
    const RegionCfg cfg = regionFor(prog);

    const int dead = prog.labelIndex("fn") + 2;
    EXPECT_FALSE(cfg.contains(dead));
    EXPECT_EQ(cfg.blockOf(dead), -1);
    EXPECT_TRUE(cfg.contains(prog.labelIndex("fn")));
    EXPECT_FALSE(cfg.contains(prog.labelIndex("main")));
    for (const int i : cfg.instructions())
        EXPECT_NE(i, dead);

    // The skipped write is invisible to the walk: the region verifies
    // as a plain straight-line body.
    VerifyOptions opts;
    const RegionReport r =
        verifyRegion(prog, prog.labelIndex("fn"), opts);
    EXPECT_EQ(r.verdict, Severity::Ok);
}

TEST(DataflowEdge, SelfLoopBodyHasHeadEqualLatch)
{
    // The whole loop is one block whose terminator branches to its own
    // first instruction: head and latch coincide.
    const Program prog = assemble(R"(
        .words sl_src 1 2 3 4 5 6 7 8
        .data sl_dst 32
        fn:
            mov r0, #0
        top:
            ldw r1, [sl_src + r0]
            stw [sl_dst + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )");
    const RegionCfg cfg = regionFor(prog);

    ASSERT_EQ(cfg.loops().size(), 1u);
    const CfgLoop &loop = cfg.loops()[0];
    EXPECT_EQ(loop.headBlock, loop.latchBlock);
    const BasicBlock &body = cfg.blocks()[loop.headBlock];
    EXPECT_EQ(body.last, loop.backedgeIndex);
    // The self-loop block is its own predecessor and successor.
    EXPECT_NE(std::find(body.succs.begin(), body.succs.end(),
                        loop.headBlock),
              body.succs.end());
    EXPECT_NE(std::find(body.preds.begin(), body.preds.end(),
                        loop.headBlock),
              body.preds.end());

    // Depcheck walks the same shape and still resolves every address.
    const DepcheckResult dep =
        analyzeDeps(prog, prog.labelIndex("fn"), cfg);
    EXPECT_TRUE(dep.analyzed);
    EXPECT_TRUE(dep.resolved);
    EXPECT_EQ(dep.loopsAnalyzed, 1u);
}

TEST(DataflowEdge, BackEdgeTargetNeedNotBeTheEntryBlock)
{
    // Entry block (mov/mov) falls into the loop head: the back edge
    // targets block 1, not block 0.
    const Program prog = assemble(R"(
        .words be_src 1 2 3 4 5 6 7 8
        .data be_dst 32
        fn:
            mov r0, #0
            mov r2, #0
        top:
            ldw r1, [be_src + r0]
            add r2, r2, r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            stw [be_dst], r2
            ret
        main:
            bl.simd fn
            halt
    )");
    const RegionCfg cfg = regionFor(prog);

    ASSERT_EQ(cfg.loops().size(), 1u);
    const CfgLoop &loop = cfg.loops()[0];
    EXPECT_NE(loop.headBlock,
              cfg.blockOf(prog.labelIndex("fn")));
    EXPECT_EQ(cfg.blocks()[loop.headBlock].first,
              prog.labelIndex("top"));
    // The head has two predecessors: the entry block and the latch.
    EXPECT_EQ(cfg.blocks()[loop.headBlock].preds.size(), 2u);
}

TEST(DataflowEdge, MachineTracksConstantsThroughConditionalWrites)
{
    // Direct AbsMachine exercise: a decidable conditional write stays
    // Known, an undecidable one drops the destination to Top.
    const Program prog = assemble(R"(
        .words df_ro 7 8 9
        .data df_rw 12
        fn:
            mov r0, #5
            cmp r0, #3
            movgt r1, #11
            ldw r2, [df_rw]
            cmp r2, #0
            moveq r1, #22
            ret
        main:
            bl.simd fn
            halt
    )");
    AbsMachine m(prog);
    Taken taken = Taken::Unknown;
    const int base = prog.labelIndex("fn");
    for (int i = 0; i < 6; ++i)
        m.step(prog.code()[base + i], base + i, taken);

    // After movgt with flags from cmp #5,#3: r1 is Known(11). After
    // the cmp on the writable-memory load the flags are unknown, so
    // moveq forces r1 to Top.
    EXPECT_FALSE(m.flagsKnown());
    EXPECT_FALSE(m.reg(prog.code()[base + 2].dst).known);
}

TEST(DataflowEdge, ReadOnlyLoadClobberedByRegionStoreGoesTop)
{
    // A store through an unknown address poisons later constant-pool
    // loads: the machine must not keep quoting the initial image.
    const Program prog = assemble(R"(
        .rowords cp 41 42 43
        .data wild 16
        fn:
            ldw r1, [cp]
            stw [wild + r3], r1
            ldw r2, [cp + #1]
            ret
        main:
            bl.simd fn
            halt
    )");
    AbsMachine m(prog);
    Taken taken = Taken::Unknown;
    const int base = prog.labelIndex("fn");

    AbsRetire first = m.step(prog.code()[base], base, taken);
    EXPECT_TRUE(first.value.known);
    EXPECT_EQ(first.value.value, 41u);

    m.step(prog.code()[base + 1], base + 1, taken);  // unknown store
    AbsRetire second = m.step(prog.code()[base + 2], base + 2, taken);
    EXPECT_FALSE(second.value.known);
}

} // namespace
} // namespace liquid
