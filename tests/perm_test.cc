/** @file Permutation pattern and CAM tests. */

#include <gtest/gtest.h>

#include "cpu/exec.hh"
#include "isa/perm.hh"

namespace liquid
{
namespace
{

TEST(Perm, SwapHalvesOffsets)
{
    const auto offsets = permOffsets(PermKind::SwapHalves, 8);
    const std::vector<std::int32_t> expect{4, 4, 4, 4, -4, -4, -4, -4};
    EXPECT_EQ(offsets, expect);
}

TEST(Perm, SwapPairsOffsets)
{
    const auto offsets = permOffsets(PermKind::SwapPairs, 4);
    const std::vector<std::int32_t> expect{1, -1, 1, -1};
    EXPECT_EQ(offsets, expect);
}

TEST(Perm, ReverseOffsets)
{
    const auto offsets = permOffsets(PermKind::Reverse, 4);
    const std::vector<std::int32_t> expect{3, 1, -1, -3};
    EXPECT_EQ(offsets, expect);
}

TEST(Perm, RotationOffsets)
{
    const auto up = permOffsets(PermKind::RotUp, 4);
    EXPECT_EQ(up, (std::vector<std::int32_t>{1, 1, 1, -3}));
    const auto down = permOffsets(PermKind::RotDown, 4);
    EXPECT_EQ(down, (std::vector<std::int32_t>{3, -1, -1, -1}));
}

/** Every (kind, block) pattern must CAM back to itself (or an exact
 *  functional equivalent at a smaller block). */
TEST(Perm, CamRoundTripAllPatterns)
{
    for (unsigned width : {2u, 4u, 8u, 16u}) {
        for (unsigned block = 2; block <= width; block *= 2) {
            for (unsigned ki = 0;
                 ki < static_cast<unsigned>(PermKind::NumKinds); ++ki) {
                const auto kind = static_cast<PermKind>(ki);
                // Observed offsets over one full vector.
                std::vector<std::int32_t> offsets;
                const auto pattern = permOffsets(kind, block);
                for (unsigned i = 0; i < width; ++i)
                    offsets.push_back(pattern[i % block]);

                const auto match = permCamLookup(offsets, width);
                ASSERT_TRUE(match.has_value())
                    << permKindName(kind) << block << " @" << width;

                // The matched permutation must act identically.
                VecValue src{};
                for (unsigned i = 0; i < width; ++i)
                    src[i] = 100 + i;
                const auto a = evalPerm(src, kind, block, width);
                const auto b =
                    evalPerm(src, match->kind, match->block, width);
                for (unsigned i = 0; i < width; ++i)
                    EXPECT_EQ(a[i], b[i]);
            }
        }
    }
}

TEST(Perm, CamRejectsUnsupported)
{
    // A block-8 butterfly observed by a 4-wide translator: constant +4
    // offsets; no supported narrow shuffle matches.
    const std::vector<std::int32_t> wide_bfly{4, 4, 4, 4};
    EXPECT_FALSE(permCamLookup(wide_bfly, 4).has_value());

    // Garbage offsets.
    const std::vector<std::int32_t> junk{2, 0, -1, 3};
    EXPECT_FALSE(permCamLookup(junk, 4).has_value());

    EXPECT_FALSE(permCamLookup({}, 8).has_value());
}

TEST(Perm, InversePairs)
{
    EXPECT_EQ(permInverse(PermKind::SwapHalves), PermKind::SwapHalves);
    EXPECT_EQ(permInverse(PermKind::SwapPairs), PermKind::SwapPairs);
    EXPECT_EQ(permInverse(PermKind::Reverse), PermKind::Reverse);
    EXPECT_EQ(permInverse(PermKind::RotUp), PermKind::RotDown);
    EXPECT_EQ(permInverse(PermKind::RotDown), PermKind::RotUp);
}

/** perm(inverse(perm(x))) == x for every kind/block/width. */
TEST(Perm, InverseUndoes)
{
    for (unsigned width : {4u, 8u, 16u}) {
        for (unsigned block = 2; block <= width; block *= 2) {
            for (unsigned ki = 0;
                 ki < static_cast<unsigned>(PermKind::NumKinds); ++ki) {
                const auto kind = static_cast<PermKind>(ki);
                VecValue src{};
                for (unsigned i = 0; i < width; ++i)
                    src[i] = 7 * i + 3;
                const auto fwd = evalPerm(src, kind, block, width);
                const auto back =
                    evalPerm(fwd, permInverse(kind), block, width);
                for (unsigned i = 0; i < width; ++i)
                    EXPECT_EQ(back[i], src[i]);
            }
        }
    }
}

/** The offset array is exactly "source lane minus lane". */
TEST(Perm, OffsetsConsistentWithSourceLane)
{
    for (unsigned block : {2u, 4u, 8u, 16u}) {
        for (unsigned ki = 0;
             ki < static_cast<unsigned>(PermKind::NumKinds); ++ki) {
            const auto kind = static_cast<PermKind>(ki);
            const auto offsets = permOffsets(kind, block);
            for (unsigned i = 0; i < block; ++i) {
                EXPECT_EQ(
                    static_cast<int>(permSourceLane(kind, block, i)),
                    static_cast<int>(i) + offsets[i]);
            }
        }
    }
}

} // namespace
} // namespace liquid
