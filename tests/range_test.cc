/**
 * @file
 * Property tests for the liquid-range abstract domain: lattice laws of
 * the interval and congruence components, widening termination at the
 * int64 extremes, reduction idempotence of the product, and a
 * randomized differential check of every abstract operator against a
 * shadow concrete evaluator. A final section exercises the whole
 * interprocedural solver on the curated stress programs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "asm/assembler.hh"
#include "common/random.hh"
#include "verifier/range.hh"
#include "workloads/range_stress.hh"

namespace liquid
{
namespace
{

using I128 = __int128;

/** Values that historically break interval arithmetic. */
const std::vector<std::int64_t> &
cornerValues()
{
    static const std::vector<std::int64_t> vs = {
        INT64_MIN, INT64_MIN + 1, INT32_MIN, -4096, -7, -1, 0, 1, 7,
        4096, INT32_MAX, INT64_MAX - 1, INT64_MAX,
    };
    return vs;
}

std::int64_t
randomValue(Rng &rng)
{
    // Mix corners with uniform draws from a few magnitude bands so the
    // shadow evaluator sees both extremes and typical 32-bit data.
    switch (rng.range(0, 3)) {
      case 0:
        return cornerValues()[static_cast<std::size_t>(rng.range(
            0, static_cast<int>(cornerValues().size()) - 1))];
      case 1:
        return rng.range(-100, 100);
      case 2:
        return rng.range(INT32_MIN, INT32_MAX);
      default:
        return static_cast<std::int64_t>(rng.range(-1000, 1000)) << 32 |
               static_cast<std::uint32_t>(rng.range(0, INT32_MAX));
    }
}

Interval
randomInterval(Rng &rng)
{
    switch (rng.range(0, 5)) {
      case 0:
        return Interval::top();
      case 1:
        return Interval::bottom();
      case 2:
        return Interval::of(randomValue(rng));
      default: {
        const std::int64_t a = randomValue(rng);
        const std::int64_t b = randomValue(rng);
        return a <= b ? Interval::make(a, b) : Interval::make(b, a);
      }
    }
}

Congruence
randomCongruence(Rng &rng)
{
    switch (rng.range(0, 4)) {
      case 0:
        return Congruence::top();
      case 1:
        return Congruence::of(randomValue(rng));
      default: {
        static const std::uint64_t mods[] = {2, 3, 4, 5, 8, 12, 16,
                                             1u << 20, 1u << 31};
        const std::uint64_t m =
            mods[static_cast<std::size_t>(rng.range(0, 8))];
        return Congruence::make(
            m, rng.range(0, static_cast<int>(
                                std::min<std::uint64_t>(m - 1, 1 << 30))));
      }
    }
}

/** A concrete member of @p iv, when one exists. */
bool
sampleMember(const Interval &iv, Rng &rng, std::int64_t &out)
{
    if (iv.empty())
        return false;
    if (iv.singleton()) {
        out = iv.lo;
        return true;
    }
    switch (rng.range(0, 2)) {
      case 0:
        out = iv.lo;
        return true;
      case 1:
        out = iv.hi;
        return true;
      default: {
        const I128 span = static_cast<I128>(iv.hi) - iv.lo;
        const I128 off = span <= 0
                             ? 0
                             : static_cast<I128>(static_cast<std::uint64_t>(
                                   rng.range(0, INT32_MAX))) %
                                   (span + 1);
        out = static_cast<std::int64_t>(iv.lo + off);
        return true;
      }
    }
}

// ---- interval lattice laws -------------------------------------------------

TEST(RangeDomain, IntervalJoinIsLeastUpperBoundish)
{
    Rng rng(101);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const Interval a = randomInterval(rng);
        const Interval b = randomInterval(rng);
        const Interval j = a.join(b);
        EXPECT_TRUE(j.containsAll(a)) << a.str() << " " << j.str();
        EXPECT_TRUE(j.containsAll(b)) << b.str() << " " << j.str();
        EXPECT_EQ(j, b.join(a));
        EXPECT_EQ(a.join(a), a);
        const Interval c = randomInterval(rng);
        EXPECT_EQ(a.join(b).join(c), a.join(b.join(c)));
    }
}

TEST(RangeDomain, IntervalMeetIsGreatestLowerBoundish)
{
    Rng rng(202);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const Interval a = randomInterval(rng);
        const Interval b = randomInterval(rng);
        const Interval m = a.meet(b);
        EXPECT_TRUE(a.containsAll(m));
        EXPECT_TRUE(b.containsAll(m));
        EXPECT_EQ(m, b.meet(a));
        std::int64_t v;
        if (sampleMember(a, rng, v) && b.contains(v)) {
            EXPECT_TRUE(m.contains(v)) << "meet dropped " << v;
        }
    }
}

TEST(RangeDomain, IntervalAbsorptionAndUnits)
{
    Rng rng(303);
    for (unsigned trial = 0; trial < 500; ++trial) {
        const Interval a = randomInterval(rng);
        EXPECT_EQ(a.join(Interval::bottom()), a);
        EXPECT_EQ(a.meet(Interval::top()), a);
        EXPECT_TRUE(a.join(Interval::top()).isTop());
        EXPECT_TRUE(a.meet(Interval::bottom()).empty());
        EXPECT_EQ(a.join(a.meet(randomInterval(rng))).join(a), a.join(a));
    }
}

// ---- widening / narrowing --------------------------------------------------

TEST(RangeDomain, WideningTerminatesFromAnySequence)
{
    Rng rng(404);
    for (unsigned trial = 0; trial < 1000; ++trial) {
        Interval w = randomInterval(rng);
        unsigned changes = 0;
        for (unsigned step = 0; step < 64; ++step) {
            const Interval next = w.join(randomInterval(rng));
            const Interval wd = w.widen(next);
            EXPECT_TRUE(wd.containsAll(next));
            if (!(wd == w))
                ++changes;
            w = wd;
        }
        // Each bound can escape at most once (to the extreme), plus
        // one bottom -> non-bottom transition: the chain must settle.
        EXPECT_LE(changes, 3u) << "widening chain did not stabilize";
    }
}

TEST(RangeDomain, WideningAtInt64Extremes)
{
    const Interval full{INT64_MIN, INT64_MAX};
    EXPECT_EQ(full.widen(full), full);
    EXPECT_EQ(Interval::of(INT64_MAX).widen(full), full);
    EXPECT_EQ(Interval::of(INT64_MIN).widen(full), full);
    // Saturating arithmetic at the rim must not wrap (UB-free and
    // still an over-approximation).
    const Interval hi = Interval::of(INT64_MAX);
    EXPECT_TRUE(hi.add(Interval::of(1)).contains(INT64_MAX));
    const Interval lo = Interval::of(INT64_MIN);
    EXPECT_TRUE(lo.sub(Interval::of(1)).contains(INT64_MIN));
    EXPECT_TRUE(lo.neg().contains(INT64_MAX));
    EXPECT_TRUE(full.mul(full).containsAll(full));
}

TEST(RangeDomain, NarrowingRefinesWithoutLosingMembers)
{
    Rng rng(505);
    for (unsigned trial = 0; trial < 1000; ++trial) {
        const Interval x = randomInterval(rng);
        const Interval y = x.meet(randomInterval(rng));  // y <= x
        const Interval n = x.narrow(y);
        EXPECT_TRUE(x.containsAll(n)) << "narrowing must descend";
        EXPECT_TRUE(n.containsAll(y)) << "narrowing must stay above y";
    }
}

// ---- congruence laws -------------------------------------------------------

TEST(RangeDomain, CongruenceJoinContainsBothOperands)
{
    Rng rng(606);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const Congruence a = randomCongruence(rng);
        const Congruence b = randomCongruence(rng);
        const Congruence j = a.join(b);
        // Sample members of each side: rem, rem +/- mod multiples.
        for (const Congruence *side : {&a, &b}) {
            std::int64_t v = side->rem;
            EXPECT_TRUE(j.contains(v))
                << a.str() << " join " << b.str() << " = " << j.str()
                << " missing " << v;
            if (!side->isConst() && !side->isTop()) {
                v = side->rem +
                    static_cast<std::int64_t>(side->mod) * 3;
                EXPECT_TRUE(side->contains(v));
                EXPECT_TRUE(j.contains(v));
            }
        }
    }
}

TEST(RangeDomain, CongruenceMeetOverapproximatesIntersection)
{
    Rng rng(707);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const Congruence a = randomCongruence(rng);
        const Congruence b = randomCongruence(rng);
        const Congruence m = a.meet(b);
        const std::int64_t v = randomValue(rng);
        if (a.contains(v) && b.contains(v)) {
            EXPECT_TRUE(m.contains(v))
                << a.str() << " meet " << b.str() << " dropped " << v;
        }
    }
}

TEST(RangeDomain, CongruencePow2CoarsensSoundly)
{
    Rng rng(808);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const Congruence a = randomCongruence(rng);
        const Congruence p = a.pow2();
        // pow2 must keep every member and its modulus must divide 2^32
        // (that is what lets the fact survive 32-bit wraparound).
        if (!p.isConst()) {
            EXPECT_TRUE(p.isTop() ||
                        (p.mod != 0 && (p.mod & (p.mod - 1)) == 0))
                << p.str();
            EXPECT_LE(p.mod, 1ull << 31);
        }
        std::int64_t v = a.rem;
        EXPECT_TRUE(p.contains(v)) << a.str() << " -> " << p.str();
        if (!a.isConst() && !a.isTop()) {
            v = a.rem + static_cast<std::int64_t>(a.mod) * 5;
            EXPECT_TRUE(p.contains(v)) << a.str() << " -> " << p.str();
        }
    }
}

// ---- reduced product -------------------------------------------------------

TEST(RangeDomain, ReduceIsIdempotentAndSound)
{
    Rng rng(909);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const RangeVal v{randomInterval(rng), randomCongruence(rng)};
        const RangeVal r = v.reduce();
        EXPECT_EQ(r.reduce(), r) << "reduce(reduce(x)) != reduce(x) for "
                                 << v.str();
        // Reduction may only tighten: every concrete member of the
        // product survives.
        std::int64_t c;
        if (sampleMember(v.iv, rng, c) && v.cg.contains(c)) {
            EXPECT_TRUE(r.contains(c))
                << v.str() << " reduced to " << r.str() << " lost " << c;
        }
    }
}

TEST(RangeDomain, ProductJoinAndWidenAreSound)
{
    Rng rng(111);
    for (unsigned trial = 0; trial < 2000; ++trial) {
        const RangeVal a{randomInterval(rng), randomCongruence(rng)};
        const RangeVal b{randomInterval(rng), randomCongruence(rng)};
        std::int64_t v;
        if (sampleMember(a.iv, rng, v) && a.cg.contains(v)) {
            EXPECT_TRUE(a.join(b).contains(v));
            EXPECT_TRUE(a.widen(a.join(b)).contains(v));
        }
        if (sampleMember(b.iv, rng, v) && b.cg.contains(v)) {
            EXPECT_TRUE(a.join(b).contains(v));
        }
    }
}

// ---- shadow concrete evaluator ---------------------------------------------

/**
 * The differential heart: abstract op(A, B) must contain op(a, b) for
 * every sampled a in A, b in B. Arithmetic is checked in 128 bits; a
 * concrete result outside int64 cannot be a member of any interval, so
 * those draws only assert the op does not crash.
 */
TEST(RangeDomain, AbstractOpsContainConcreteResults)
{
    Rng rng(222);
    unsigned checked = 0;
    for (unsigned trial = 0; trial < 4000; ++trial) {
        const Interval A = randomInterval(rng);
        const Interval B = randomInterval(rng);
        std::int64_t a, b;
        if (!sampleMember(A, rng, a) || !sampleMember(B, rng, b))
            continue;

        struct OpCase
        {
            const char *name;
            Interval abs;
            I128 con;
        };
        const OpCase cases[] = {
            {"add", A.add(B), static_cast<I128>(a) + b},
            {"sub", A.sub(B), static_cast<I128>(a) - b},
            {"neg", A.neg(), -static_cast<I128>(a)},
            {"mul", A.mul(B), static_cast<I128>(a) * b},
        };
        for (const OpCase &c : cases) {
            if (c.con < INT64_MIN || c.con > INT64_MAX)
                continue;  // not an int64 value; saturation covers it
            ++checked;
            EXPECT_TRUE(c.abs.contains(static_cast<std::int64_t>(c.con)))
                << c.name << "(" << A.str() << ", " << B.str() << ") = "
                << c.abs.str() << " missing " << a << " op " << b;
        }

        const Congruence CA = Congruence::of(a);
        const Congruence CB = Congruence::of(b);
        const Congruence sum = CA.add(CB);
        const Congruence dif = CA.sub(CB);
        const Congruence prd = CA.mul(CB);
        const I128 s = static_cast<I128>(a) + b;
        const I128 d = static_cast<I128>(a) - b;
        const I128 p = static_cast<I128>(a) * b;
        if (s >= INT64_MIN && s <= INT64_MAX) {
            EXPECT_TRUE(sum.contains(static_cast<std::int64_t>(s)));
        }
        if (d >= INT64_MIN && d <= INT64_MAX) {
            EXPECT_TRUE(dif.contains(static_cast<std::int64_t>(d)));
        }
        if (p >= INT64_MIN && p <= INT64_MAX) {
            EXPECT_TRUE(prd.contains(static_cast<std::int64_t>(p)));
        }
    }
    EXPECT_GE(checked, 1000u) << "shadow evaluator starved of samples";
}

// ---- whole-solver properties -----------------------------------------------

TEST(RangeSolver, StressCasesSolveSoundly)
{
    for (const RangeStressCase &c : rangeStressCases()) {
        SCOPED_TRACE(c.name);
        const Program prog = assemble(c.src);
        const ProgramRanges pr = solveProgramRanges(prog);
        EXPECT_TRUE(pr.sound);
        EXPECT_GT(pr.rounds, 0u);
    }
}

TEST(RangeSolver, LiveInBoundProvesEntryConstantAndTrip)
{
    const RangeStressCase &c = rangeStressCases()[0];
    ASSERT_STREQ(c.name, "rs_livein_bound");
    const Program prog = assemble(c.src);
    const ProgramRanges pr = solveProgramRanges(prog);
    ASSERT_TRUE(pr.sound);
    const int entry = prog.labelIndex("fn");
    const Interval trip = pr.tripBound(entry);
    EXPECT_EQ(trip, Interval::of(64)) << trip.str();

    RangeFacts facts(prog, pr, entry);
    Word v = 0;
    std::string why;
    ASSERT_TRUE(facts.entryReg(RegId(RegClass::Int, 5), v, why));
    EXPECT_EQ(v, 64u);
    EXPECT_NE(why.find("r5"), std::string::npos);
}

TEST(RangeSolver, JoinedCallSitesRefuseFalseConstants)
{
    const Program prog = assemble(rangeStressCases()[3].src);
    const ProgramRanges pr = solveProgramRanges(prog);
    ASSERT_TRUE(pr.sound);
    const int entry = prog.labelIndex("fn");
    // Two call sites pass 64 and 32: the entry fact must be the join,
    // never either constant.
    RangeFacts facts(prog, pr, entry);
    Word v = 0;
    std::string why;
    EXPECT_FALSE(facts.entryReg(RegId(RegClass::Int, 5), v, why));
    const Interval trip = pr.tripBound(entry);
    EXPECT_TRUE(trip.contains(32));
    EXPECT_TRUE(trip.contains(64));
}

} // namespace
} // namespace liquid
