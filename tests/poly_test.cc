/**
 * @file
 * Width-polymorphic verifier (liquid-poly) tests: the differential
 * exactness contract against the concrete verifier, the sabotage
 * self-test, validity-set rendering, and the liquid-verify-v3 JSON
 * back-compat guarantee for v2 consumers.
 */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "verifier/poly.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

#include "random_kernels.hh"

using namespace liquid;

namespace
{

/** Mixed element sizes (ldh vs stw) give overlapping carried pairs at
 *  non-uniform distances — the dep-scan stressor. */
const char *kernMixedSrc =
    "        .data c 128\n"
    "kern_mixed:\n"
    "        mov r0, #0\n"
    "        mov r5, #5\n"
    "top:\n"
    "        ldh r1, [c + r5]\n"
    "        add r2, r1, #1\n"
    "        stw [c + r0], r2\n"
    "        add r5, r5, #1\n"
    "        add r0, r0, #1\n"
    "        cmp r0, #16\n"
    "        blt top\n"
    "        ret\n"
    "main:\n"
    "        bl.simd kern_mixed\n"
    "        halt\n";

/** Trip count 24: not a multiple of 16, so the ladder's widest width
 *  aborts while 2/4/8 commit. */
const char *kernTrip24Src =
    "        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18"
    " 19 20 21 22 23 24\n"
    "        .data a 96\n"
    "kern_trip24:\n"
    "        mov r0, #0\n"
    "top:\n"
    "        ldw r1, [x + r0]\n"
    "        add r2, r1, #1\n"
    "        stw [a + r0], r2\n"
    "        add r0, r0, #1\n"
    "        cmp r0, #24\n"
    "        blt top\n"
    "        ret\n"
    "main:\n"
    "        bl.simd kern_trip24\n"
    "        halt\n";

/** Period-2 read-only constant stream: the stream check binds N to
 *  the congruence 2 | N. */
const char *kernStreamSrc =
    "        .rowords kco 5 7 5 7 5 7 5 7 5 7 5 7 5 7 5 7\n"
    "        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16\n"
    "        .data a 64\n"
    "kern_stream:\n"
    "        mov r0, #0\n"
    "top:\n"
    "        ldw r1, [kco + r0]\n"
    "        ldw r2, [x + r0]\n"
    "        add r3, r2, r1\n"
    "        stw [a + r0], r3\n"
    "        add r0, r0, #1\n"
    "        cmp r0, #16\n"
    "        blt top\n"
    "        ret\n"
    "main:\n"
    "        bl.simd kern_stream\n"
    "        halt\n";

const char *saxpySrc =
    "        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18"
    " 19 20 21 22 23 24 25 26 27 28 29 30 31 32\n"
    "        .data a 128\n"
    "saxpy:\n"
    "        mov r0, #0\n"
    "top:\n"
    "        ldw r1, [x + r0]\n"
    "        mul r1, r1, #3\n"
    "        add r1, r1, #100\n"
    "        stw [a + r0], r1\n"
    "        add r0, r0, #1\n"
    "        cmp r0, #32\n"
    "        blt top\n"
    "        ret\n"
    "main:\n"
    "        bl.simd saxpy\n"
    "        halt\n";

std::vector<PolyDiff>
diffSource(const char *src, unsigned sabotage = 0)
{
    const Program prog = assemble(src);
    const TranslatorConfig config;
    return diffProgram(prog, config, sabotage);
}

unsigned
mismatchCount(const std::vector<PolyDiff> &diffs)
{
    unsigned n = 0;
    for (const PolyDiff &d : diffs)
        n += static_cast<unsigned>(d.mismatches.size());
    return n;
}

PolyRegion
analyzeSource(const char *src)
{
    const Program prog = assemble(src);
    const TranslatorConfig config;
    const auto calls = prog.hintedCalls();
    EXPECT_FALSE(calls.empty());
    return analyzePoly(prog, calls.front().target, config);
}

TEST(Poly, MiniKernelsDifferentialClean)
{
    for (const char *src : {kernMixedSrc, kernTrip24Src, kernStreamSrc,
                            saxpySrc})
        EXPECT_EQ(mismatchCount(diffSource(src)), 0u);
}

TEST(Poly, SuiteDifferentialClean)
{
    const TranslatorConfig config;
    for (const auto &wl : makeSuite()) {
        const Workload::Build build =
            wl->build(EmitOptions::Mode::Scalarized, 8, true);
        const auto diffs = diffProgram(build.prog, config);
        EXPECT_EQ(mismatchCount(diffs), 0u) << wl->name();
    }
}

TEST(Poly, EverySabotageMutationDiverges)
{
    for (unsigned bit = 0; bit < polySabotageCount; ++bit) {
        unsigned total = 0;
        for (const char *src :
             {kernMixedSrc, kernTrip24Src, kernStreamSrc})
            total += mismatchCount(diffSource(src, 1u << bit));
        EXPECT_GT(total, 0u)
            << "mutation not caught: "
            << polySabotageName(static_cast<PolySabotage>(1u << bit));
    }
}

TEST(Poly, MixedElementSizesAreDepMiscompile)
{
    const PolyRegion r = analyzeSource(kernMixedSrc);
    // Overlapping ldh/stw with distance 1 breaks at every width.
    EXPECT_TRUE(r.validity.okWidths.empty());
    const PolyWidthOutcome o = r.instantiate(8);
    EXPECT_EQ(o.verdict, Severity::Error);
    EXPECT_TRUE(o.depMiscompile);
    EXPECT_EQ(o.reason, AbortReason::MemoryDependence);
    EXPECT_EQ(o.pair.distance, 1u);
    EXPECT_NE(r.validity.summary.find("error for all N"),
              std::string::npos)
        << r.validity.summary;
}

TEST(Poly, StreamPeriodBecomesCongruence)
{
    const PolyRegion r = analyzeSource(kernStreamSrc);
    EXPECT_TRUE(r.validity.structuralUnbounded);
    ASSERT_FALSE(r.validity.constraints.empty());
    bool period = false;
    for (const NConstraint &c : r.validity.constraints)
        period = period ||
                 c.render().find("2 | N") != std::string::npos;
    EXPECT_TRUE(period) << r.validity.summary;
    // Trip 16 with a period-2 stream: exactly the even divisors.
    EXPECT_EQ(r.validity.okWidths,
              (std::vector<unsigned>{2, 4, 8, 16}));
    // An odd width breaks the stream congruence (or divisibility).
    EXPECT_EQ(r.instantiate(3).verdict, Severity::Error);
}

TEST(Poly, TripDivisorsBoundTheValiditySet)
{
    const PolyRegion r = analyzeSource(kernTrip24Src);
    // Divisors of 24 at least 2.
    EXPECT_EQ(r.validity.okWidths,
              (std::vector<unsigned>{2, 3, 4, 6, 8, 12, 24}));
    EXPECT_TRUE(r.validity.okAt(12));
    EXPECT_FALSE(r.validity.okAt(16));
    const PolyWidthOutcome o = r.instantiate(16);
    EXPECT_EQ(o.verdict, Severity::Error);
    EXPECT_EQ(o.reason, AbortReason::TripCount);
    // The tail beyond the horizon is a constant trip-count error.
    EXPECT_EQ(r.validity.tail.verdict, Severity::Error);
    EXPECT_TRUE(r.validity.tailExact);
}

TEST(Poly, ElementwiseRegionIsStructurallyUnbounded)
{
    const PolyRegion r = analyzeSource(saxpySrc);
    EXPECT_TRUE(r.validity.structuralUnbounded);
    EXPECT_NE(r.validity.summary.find("safe for all N"),
              std::string::npos)
        << r.validity.summary;
}

TEST(Poly, OkAtAgreesWithInstantiate)
{
    for (const char *src : {kernTrip24Src, kernStreamSrc, saxpySrc}) {
        const PolyRegion r = analyzeSource(src);
        for (unsigned n = 2; n <= r.validity.horizon + 4; ++n) {
            EXPECT_EQ(r.validity.okAt(n),
                      r.instantiate(n).verdict == Severity::Ok)
                << "width " << n;
        }
    }
}

TEST(Poly, VerifyRegionAttachesValiditySet)
{
    const Program prog = assemble(saxpySrc);
    VerifyOptions opts;
    opts.poly = true;
    const ProgramReport rep = verifyProgram(prog, opts);
    ASSERT_EQ(rep.regions.size(), 1u);
    const RegionReport &r = rep.regions.front();
    EXPECT_TRUE(r.polyAnalyzed);
    EXPECT_TRUE(r.polyUnbounded);
    EXPECT_FALSE(r.polySummary.empty());
    EXPECT_FALSE(r.polyOkWidths.empty());
}

TEST(Poly, RandomKernelsDifferentialClean)
{
    Rng rng(0xC0FFEEull);
    Rng dataRng(0xF00Dull);
    const TranslatorConfig config;
    for (unsigned i = 0; i < 25; ++i) {
        const GeneratedKernel g = generateKernel(rng, i);
        Program prog;
        try {
            prog = buildGeneratedProgram(
                g, dataRng, EmitOptions::Mode::Scalarized, 8);
        } catch (const FatalError &) {
            // Register pressure: no verdict to compare.
            continue;
        } catch (const PanicError &) {
            // Staging aliasing: same generator limit.
            continue;
        }
        const auto diffs = diffProgram(prog, config);
        for (const PolyDiff &d : diffs) {
            for (const PolyMismatch &m : d.mismatches) {
                ADD_FAILURE()
                    << "kernel " << i << " region " << d.entryLabel
                    << " w" << m.width << " " << m.field
                    << ": concrete=" << m.expect << " poly=" << m.got;
            }
        }
    }
}

/**
 * liquid-verify-v3 is additive over v2: a consumer written against the
 * v2 layout must parse a v3 document without changes. This exercises a
 * strict v2 reader over a v3-shaped report (the layout regionJson in
 * tools/liquid_verify.cc emits, including the new validity object the
 * v2 reader must tolerate and ignore).
 */
TEST(Poly, VerifyV3JsonStaysParseableByV2Consumers)
{
    const char *v3doc = R"json({
      "schema": "liquid-verify-v3",
      "toolVersion": "3.0",
      "regions": [{
        "program": "saxpy.s",
        "entryLabel": "saxpy",
        "entryIndex": 0,
        "requestedWidth": 8,
        "widthHint": 0,
        "verdict": "ok",
        "predicted": {"width": 8, "ucodeInsts": 8, "cvecs": 0},
        "dep": {
          "analyzed": true,
          "resolved": true,
          "carriedPairs": 0,
          "minDistance": 0,
          "accesses": [],
          "byWidth": {"8": {"verdict": "safe"}}
        },
        "validity": {
          "summary": "safe for all N (observed trip: N | 32)",
          "structuralUnbounded": true,
          "okWidths": [2, 4, 8, 16],
          "constraints": []
        },
        "diags": []
      }],
      "summary": {"ok": 1, "warn": 0, "error": 0}
    })json";
    const json::Value root = json::parse(v3doc);

    // A v2 consumer reads exactly these fields, by these names.
    ASSERT_NE(root.find("schema"), nullptr);
    ASSERT_NE(root.find("regions"), nullptr);
    const json::Value &regions = *root.find("regions");
    ASSERT_EQ(regions.items().size(), 1u);
    const json::Value &region = regions.items().front();
    for (const char *field :
         {"program", "entryLabel", "entryIndex", "requestedWidth",
          "verdict", "predicted", "dep", "diags"})
        EXPECT_NE(region.find(field), nullptr) << field;
    EXPECT_EQ(region.find("verdict")->asString(), "ok");
    const json::Value &dep = *region.find("dep");
    EXPECT_NE(dep.find("byWidth"), nullptr);
    const json::Value &summary = *root.find("summary");
    EXPECT_NE(summary.find("ok"), nullptr);
    // And the v3 addition is present for consumers that want it.
    const json::Value *validity = region.find("validity");
    ASSERT_NE(validity, nullptr);
    EXPECT_NE(validity->find("summary"), nullptr);
    EXPECT_NE(validity->find("okWidths"), nullptr);
}

} // namespace
