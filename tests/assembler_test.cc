/** @file Assembler and Program tests. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/bitfield.hh"

namespace liquid
{
namespace
{

TEST(Assembler, BasicProgram)
{
    const Program prog = assemble(R"(
        .words arr 1 2 3 4
        main:
            mov r0, #0
            ldw r1, [arr + r0]
            add r1, r1, #5
            halt
    )");
    ASSERT_EQ(prog.code().size(), 4u);
    EXPECT_EQ(prog.labelIndex("main"), 0);
    EXPECT_EQ(prog.code()[0].op, Opcode::Mov);
    EXPECT_TRUE(prog.code()[0].hasImm);
    EXPECT_EQ(prog.code()[1].op, Opcode::Ldw);
    EXPECT_EQ(prog.code()[1].mem.base, prog.symbol("arr"));
    EXPECT_EQ(prog.code()[1].mem.index, RegId(RegClass::Int, 0));
    EXPECT_EQ(prog.code()[3].op, Opcode::Halt);
}

TEST(Assembler, ConditionSuffixes)
{
    const Program prog = assemble(R"(
        movgt r1, #255
        movlt r1, #-4
        cmp r1, #0
    )");
    EXPECT_EQ(prog.code()[0].cond, Cond::GT);
    EXPECT_EQ(prog.code()[1].cond, Cond::LT);
    EXPECT_EQ(prog.code()[1].imm, -4);
    EXPECT_EQ(prog.code()[2].op, Opcode::Cmp);
}

TEST(Assembler, BranchesResolve)
{
    const Program prog = assemble(R"(
        main:
            mov r0, #0
        top:
            add r0, r0, #1
            cmp r0, #8
            blt top
            b main
    )");
    EXPECT_EQ(prog.code()[3].op, Opcode::B);
    EXPECT_EQ(prog.code()[3].cond, Cond::LT);
    EXPECT_EQ(prog.code()[3].target, 1);
    EXPECT_EQ(prog.code()[4].target, 0);
}

TEST(Assembler, HintedCallAndRet)
{
    const Program prog = assemble(R"(
        fn:
            ret
        main:
            bl.simd fn
            bl fn
            halt
    )");
    EXPECT_TRUE(prog.code()[1].hinted);
    EXPECT_FALSE(prog.code()[2].hinted);
    EXPECT_EQ(prog.code()[1].target, 0);
}

TEST(Assembler, StoreSyntaxMemoryFirst)
{
    const Program prog = assemble(R"(
        .data buf 64
        stw [buf + r2], f3
        sth [buf + r2 + #4], r1
    )");
    EXPECT_EQ(prog.code()[0].op, Opcode::Stw);
    EXPECT_EQ(prog.code()[0].src1, RegId(RegClass::Flt, 3));
    EXPECT_EQ(prog.code()[1].mem.disp, 4);
}

TEST(Assembler, VectorInstructions)
{
    const Program prog = assemble(R"(
        .data buf 256
        .cvec k 1 2 3 4
        vldw v1, [buf + r0]
        vperm.bfly8 vf0, vf1
        vmask vf3, vf3, #0xF0/8
        vadd v1, v2, cv:k
        vredmin r1, v2
        vstw [buf + r0], v1
    )");
    EXPECT_EQ(prog.code()[0].op, Opcode::Vldw);
    EXPECT_EQ(prog.code()[1].op, Opcode::Vperm);
    EXPECT_EQ(prog.code()[1].permKind, PermKind::SwapHalves);
    EXPECT_EQ(prog.code()[1].permBlock, 8);
    EXPECT_EQ(prog.code()[2].maskBits, 0xF0u);
    EXPECT_EQ(prog.code()[2].maskBlock, 8);
    EXPECT_EQ(prog.code()[3].cvec, 0u);
    EXPECT_EQ(prog.cvec(0).lanes,
              (std::vector<Word>{1, 2, 3, 4}));
    EXPECT_EQ(prog.code()[4].op, Opcode::Vredmin);
    EXPECT_EQ(prog.code()[4].src1, prog.code()[4].dst);
    EXPECT_EQ(prog.code()[5].op, Opcode::Vstw);
}

TEST(Assembler, DataDirectives)
{
    const Program prog = assemble(R"(
        .data zeroed 16 8
        .words init 10 -20 0x30
    )");
    EXPECT_TRUE(prog.hasSymbol("zeroed"));
    const Addr a = prog.symbol("init");
    const auto &img = prog.dataImage();
    const std::size_t off = a - Program::dataBase;
    EXPECT_EQ(img[off], 10);
    EXPECT_EQ(img[off + 4], 0xEC);  // -20 little-endian
    EXPECT_EQ(img[off + 8], 0x30);
}

TEST(Assembler, FloatsDirective)
{
    const Program prog = assemble(R"(
        .floats fa 1.5 -2.25 0.0
    )");
    const Addr a = prog.symbol("fa") - Program::dataBase;
    const auto &img = prog.dataImage();
    auto word = [&](std::size_t off) {
        return static_cast<Word>(img[a + off]) |
               (static_cast<Word>(img[a + off + 1]) << 8) |
               (static_cast<Word>(img[a + off + 2]) << 16) |
               (static_cast<Word>(img[a + off + 3]) << 24);
    };
    EXPECT_EQ(bitsToFloat(word(0)), 1.5f);
    EXPECT_EQ(bitsToFloat(word(4)), -2.25f);
    EXPECT_EQ(bitsToFloat(word(8)), 0.0f);
    EXPECT_THROW(assemble(".floats x 1.0e"), FatalError);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program prog = assemble(R"(
        ; full line comment
        mov r0, #1   ; trailing comment

        halt
    )");
    EXPECT_EQ(prog.code().size(), 2u);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus r0, r1"), FatalError);
    EXPECT_THROW(assemble("mov r99, #0"), FatalError);
    EXPECT_THROW(assemble("ldw r1, [nosuch + r0]"), FatalError);
    EXPECT_THROW(assemble("blt nowhere"), FatalError);
    EXPECT_THROW(assemble("mov r0"), FatalError);
    EXPECT_THROW(assemble(".data x"), FatalError);
    EXPECT_THROW(assemble("x: x: halt"), FatalError);
}

TEST(Program, ListingRoundTripMentionsLabels)
{
    Program prog = assemble(R"(
        main:
            mov r0, #0
        loop:
            add r0, r0, #1
            cmp r0, #4
            blt loop
            halt
    )");
    const std::string listing = prog.listing();
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find("loop:"), std::string::npos);
    EXPECT_NE(listing.find("blt"), std::string::npos);
}

TEST(Program, ReadOnlyRanges)
{
    Program prog;
    const Addr rw = prog.allocData("rw", 64);
    const Addr ro = prog.allocRoWords("ro", {1, 2, 3, 4});
    EXPECT_FALSE(prog.isReadOnly(rw));
    EXPECT_TRUE(prog.isReadOnly(ro));
    EXPECT_TRUE(prog.isReadOnly(ro + 15));
    EXPECT_FALSE(prog.isReadOnly(ro + 16));
}

TEST(Program, CvecInterning)
{
    Program prog;
    const auto a = prog.addCvec(ConstVec{{1, 2}});
    const auto b = prog.addCvec(ConstVec{{1, 2}});
    const auto c = prog.addCvec(ConstVec{{1, 3}});
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

} // namespace
} // namespace liquid
