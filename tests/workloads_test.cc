/**
 * @file
 * End-to-end workload verification: for every benchmark in the suite
 * and every accelerator width, the scalar baseline, the Liquid SIMD
 * binary (dynamically translated) and the native SIMD binary must all
 * leave output arrays byte-identical to the vector-IR golden
 * interpreter.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

/** Run one build under one config; returns the finished system. */
std::unique_ptr<System>
runBuild(const Workload::Build &build, const SystemConfig &config)
{
    auto sys = std::make_unique<System>(config, build.prog);
    sys->run();
    return sys;
}

void
expectOutputsMatchGolden(const Workload &wl, const Workload::Build &build,
                         const MainMemory &mem, const std::string &what)
{
    // Golden: fresh memory, interpreter semantics.
    MainMemory golden_mem = MainMemory::forProgram(build.prog);
    wl.goldenRun(build, golden_mem);

    for (const auto &[name, words] : wl.allOutputs()) {
        const auto got =
            Workload::readArray(build.prog, mem, name, words);
        const auto want =
            Workload::readArray(build.prog, golden_mem, name, words);
        ASSERT_EQ(got.size(), want.size());
        for (unsigned i = 0; i < words; ++i) {
            ASSERT_EQ(got[i], want[i])
                << wl.name() << " [" << what << "] array '" << name
                << "' element " << i;
        }
    }
}

class WorkloadSuite : public ::testing::TestWithParam<unsigned>
{
};

TEST(WorkloadBaseline, MatchesGolden)
{
    for (const auto &wl : makeSuite()) {
        const auto build =
            wl->build(EmitOptions::Mode::InlineScalar);
        auto sys = runBuild(
            build, SystemConfig::make(ExecMode::ScalarBaseline));
        expectOutputsMatchGolden(*wl, build, sys->memory(), "baseline");
    }
}

TEST(WorkloadScalarized, MatchesGoldenWithoutAccelerator)
{
    // Scalarized binaries must run correctly on a plain scalar core
    // (the paper's "no translator present" portability claim).
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        auto sys = runBuild(
            build, SystemConfig::make(ExecMode::ScalarBaseline));
        expectOutputsMatchGolden(*wl, build, sys->memory(),
                                 "scalarized-noaccel");
    }
}

TEST_P(WorkloadSuite, LiquidMatchesGolden)
{
    const unsigned width = GetParam();
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        auto sys = runBuild(
            build, SystemConfig::make(ExecMode::Liquid, width));
        expectOutputsMatchGolden(*wl, build, sys->memory(),
                                 "liquid-w" + std::to_string(width));
    }
}

TEST_P(WorkloadSuite, NativeMatchesGolden)
{
    const unsigned width = GetParam();
    for (const auto &wl : makeSuite()) {
        // Native code is only emittable when the width can express
        // every kernel (permutation blocks etc.); skip others.
        bool emittable = true;
        for (const auto &k : wl->makeKernels()) {
            if (width > k.maxWidth())
                emittable = false;
            for (const auto &v : k.body()) {
                if (v.k == vir::OpK::Perm && v.permBlock > width)
                    emittable = false;
                if (v.k == vir::OpK::Mask && v.maskBlock > width)
                    emittable = false;
                if (v.k == vir::OpK::BinConst &&
                    v.lanes.size() > width)
                    emittable = false;
            }
            if (k.tripCount() % width != 0)
                emittable = false;
        }
        if (!emittable)
            continue;
        const auto build =
            wl->build(EmitOptions::Mode::Native, width);
        auto sys = runBuild(
            build, SystemConfig::make(ExecMode::NativeSimd, width));
        expectOutputsMatchGolden(*wl, build, sys->memory(),
                                 "native-w" + std::to_string(width));
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, WorkloadSuite,
                         ::testing::Values(2u, 4u, 8u, 16u));

TEST(WorkloadSuiteMeta, FifteenBenchmarks)
{
    const auto suite = makeSuite();
    EXPECT_EQ(suite.size(), 15u);
}

TEST(WorkloadTranslation, HotLoopsActuallyTranslate)
{
    // At width 8, most of the suite's kernels must translate (this is
    // the paper's headline mechanism, not an optional fast path).
    unsigned translated = 0;
    unsigned total = 0;
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();
        translated +=
            sys.translator().stats().get("translations");
        total += wl->makeKernels().size();
    }
    EXPECT_GE(translated, total * 3 / 4)
        << "most kernels should translate at width 8";
}

} // namespace
} // namespace liquid
