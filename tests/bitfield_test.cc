/** @file Unit tests for bit utilities and the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "common/random.hh"
#include "common/stats.hh"

namespace liquid
{
namespace
{

TEST(Bitfield, BitsExtraction)
{
    EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
    EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bits(0xFF, 3, 3), 1u);
}

TEST(Bitfield, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xA), 0xA0u);
    EXPECT_EQ(insertBits(0xFFFFFFFF, 7, 4, 0), 0xFFFFFF0Fu);
    EXPECT_EQ(insertBits(0, 31, 0, 0x12345678), 0x12345678u);
}

TEST(Bitfield, SignExtend)
{
    EXPECT_EQ(sext(0xFF, 8), -1);
    EXPECT_EQ(sext(0x7F, 8), 127);
    EXPECT_EQ(sext(0x80, 8), -128);
    EXPECT_EQ(sext(0xFFFF, 16), -1);
    EXPECT_EQ(sext(5, 16), 5);
}

TEST(Bitfield, PowerOfTwoHelpers)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(64), 6u);
    EXPECT_EQ(roundUp(13, 8), 16u);
    EXPECT_EQ(roundUp(16, 8), 16u);
    EXPECT_EQ(divCeil(9, 4), 3u);
    EXPECT_EQ(divCeil(8, 4), 2u);
}

TEST(Bitfield, FloatBitcastRoundTrip)
{
    for (float f : {0.0f, 1.0f, -2.5f, 3.14159f, 1e-30f, -1e30f})
        EXPECT_EQ(bitsToFloat(floatToBits(f)), f);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        const auto va = a.next64();
        EXPECT_EQ(va, b.next64());
        (void)c.next64();
    }
    Rng a2(42), c2(43);
    EXPECT_NE(a2.next64(), c2.next64());
}

TEST(Rng, RangeBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
    for (int i = 0; i < 1000; ++i) {
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
    }
}

TEST(Stats, CountersAndDump)
{
    StatGroup g("test");
    EXPECT_EQ(g.get("missing"), 0u);
    g.inc("a");
    g.inc("a", 4);
    g.set("b", 10);
    EXPECT_EQ(g.get("a"), 5u);
    EXPECT_EQ(g.get("b"), 10u);
    g.reset();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_EQ(g.get("b"), 0u);
}

} // namespace
} // namespace liquid
