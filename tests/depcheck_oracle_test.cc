/**
 * @file
 * Differential execution oracle for the memory-dependence analysis.
 *
 * For each kernel (curated Overlap* sabotage shapes at known carried
 * distances, plus randomized kernels and layouts) the same scalarized
 * program is executed twice through src/sim/system — once on the
 * scalar baseline, once under the Liquid translator at a given width —
 * and the final data images are compared. The verifier's verdict must
 * exactly predict the comparison:
 *
 *   Ok                      -> translation commits, memories equal
 *   Error + depMiscompile   -> translation commits, memories DIFFER
 *   Error (anything else)   -> translation aborts (same reason),
 *                              scalar fallback keeps memories equal
 *
 * A false Ok (committed and diverged) is the one unacceptable outcome;
 * any oracle disagreement dumps the offending program listing to
 * $LIQUID_ORACLE_DUMP_DIR (default oracle_failures/) for triage.
 *
 * The randomized section scales with LIQUID_ORACLE_TRIALS and derives
 * its generator seed from LIQUID_ORACLE_SEED, so the nightly CI fuzz
 * job can run a 10x sweep on a date-derived seed without a rebuild.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "fast/fast.hh"
#include "random_kernels.hh"
#include "sim/system.hh"
#include "translator/offline.hh"
#include "verifier/verifier.hh"

namespace liquid
{
namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

void
dumpFailure(const Program &prog, const std::string &name)
{
    const char *dir_env = std::getenv("LIQUID_ORACLE_DUMP_DIR");
    const std::filesystem::path dir =
        dir_env && *dir_env ? dir_env : "oracle_failures";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    std::ofstream out(dir / (name + ".s"));
    out << prog.listing();
}

/** Run @p prog under @p mode and return its final data image. */
std::vector<Word>
runImage(const Program &prog, ExecMode mode, unsigned width)
{
    System sys(SystemConfig::make(mode, width), prog);
    sys.run();
    const std::size_t bytes = prog.dataImage().size();
    std::vector<Word> image;
    image.reserve(bytes / 4 + 1);
    for (std::size_t off = 0; off + 4 <= bytes; off += 4)
        image.push_back(sys.memory().readWord(Program::dataBase + off));
    return image;
}

/**
 * The scalar-baseline data image, computed on the functional tier (a
 * fraction of the cycle model's cost; fast_lockstep_test proves the
 * tiers architecturally identical) — this is what lets the default
 * trial count rise while wall-clock stays flat. Set
 * LIQUID_ORACLE_REFERENCE=cycle to restore the cycle-core reference.
 */
std::vector<Word>
scalarImage(const Program &prog, unsigned width)
{
    const char *v = std::getenv("LIQUID_ORACLE_REFERENCE");
    if (v && std::string(v) == "cycle")
        return runImage(prog, ExecMode::ScalarBaseline, width);
    MainMemory mem = MainMemory::forProgram(prog);
    fast::FastInterp interp(fast::FastConfig{}, prog, mem);
    interp.run();
    const std::size_t bytes = prog.dataImage().size();
    std::vector<Word> image;
    image.reserve(bytes / 4 + 1);
    for (std::size_t off = 0; off + 4 <= bytes; off += 4)
        image.push_back(mem.readWord(Program::dataBase + off));
    return image;
}

/**
 * The oracle proper: check that the verifier's single-width verdict
 * for @p entry exactly predicts commit/abort and memory equivalence.
 * Returns false (and dumps the program) on any disagreement.
 */
void
checkOracle(const Program &prog, const std::string &label,
            const std::string &trace, unsigned width, unsigned hint)
{
    SCOPED_TRACE(trace + " width=" + std::to_string(width));

    VerifyOptions vopts;
    vopts.config.simdWidth = width;
    vopts.widthFallback = false;
    const int entry = prog.labelIndex(label);
    const RegionReport r = verifyRegion(prog, entry, vopts, hint);

    const OfflineResult off =
        translateOffline(prog, entry, width, hint);
    const bool match = scalarImage(prog, width) ==
                       runImage(prog, ExecMode::Liquid, width);

    bool agreed = true;
    switch (r.verdict) {
      case Severity::Ok:
        // Ok promises commit AND semantic equivalence — a false Ok
        // here is the failure mode depcheck exists to rule out.
        EXPECT_TRUE(off.ok) << "verdict ok but translation aborts: "
                            << off.abortReason;
        EXPECT_TRUE(match) << "verdict ok but memories diverge";
        agreed = off.ok && match;
        break;
      case Severity::Error:
        if (r.depMiscompile) {
            EXPECT_TRUE(off.ok)
                << "depMiscompile predicts a commit, got abort: "
                << off.abortReason;
            EXPECT_FALSE(match)
                << "depMiscompile predicts divergence, memories equal";
            agreed = off.ok && !match;
        } else {
            EXPECT_FALSE(off.ok)
                << "error verdict but translation commits";
            if (!off.ok) {
                EXPECT_EQ(r.reason, off.reason)
                    << "predicted " << abortReasonName(r.reason)
                    << ", dynamic " << abortReasonName(off.reason);
            }
            EXPECT_TRUE(match)
                << "aborted region must fall back to scalar";
            agreed = !off.ok && match && r.reason == off.reason;
        }
        break;
      case Severity::Warn:
        // Runtime-dependent: the oracle cannot contradict the verdict
        // itself, but a dependence proof is still binding — if
        // depcheck certified this width safe and the translation
        // commits anyway, the memories must match.
        if (off.ok && r.depAnalyzed && r.dep.safeAt(width)) {
            EXPECT_TRUE(match)
                << "committed region with a safety proof diverged";
            agreed = match;
        }
        break;
    }
    if (!agreed)
        dumpFailure(prog, trace + "_w" + std::to_string(width));
}

TEST(DepcheckOracle, OverlapKernelsAtKnownDistances)
{
    using Sabotage = EmitOptions::Sabotage;
    const Sabotage modes[] = {
        Sabotage::OverlapStoreStore,
        Sabotage::OverlapLoadAhead,
        Sabotage::OverlapStoreAfterLoad,
    };

    Rng rng(515);
    const GeneratedKernel g = generateKernel(rng, 0);
    for (const Sabotage mode : modes) {
        for (const unsigned d : {1u, 2u, 3u, 4u, 8u, 16u}) {
            for (const unsigned width : {2u, 4u, 8u}) {
                Rng data(77);
                const Program prog = buildGeneratedProgram(
                    g, data, EmitOptions::Mode::Scalarized, width,
                    mode, d);
                checkOracle(prog, g.kernel.name(),
                            g.kernel.name() + "_m" +
                                std::to_string(static_cast<int>(mode)) +
                                "_d" + std::to_string(d),
                            width, g.kernel.maxWidth());
            }
        }
    }
}

TEST(DepcheckOracle, CleanKernelsNeverDiverge)
{
    Rng rng(626);
    for (unsigned trial = 0; trial < 6; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        for (const unsigned width : {2u, 8u}) {
            Rng data(trial * 13 + 5);
            const Program prog = buildGeneratedProgram(
                g, data, EmitOptions::Mode::Scalarized, width);
            checkOracle(prog, g.kernel.name(), g.kernel.name(),
                        width, g.kernel.maxWidth());
        }
    }
}

TEST(DepcheckOracle, RandomizedKernelsAndLayouts)
{
    using Sabotage = EmitOptions::Sabotage;
    const unsigned trials = envUnsigned("LIQUID_ORACLE_TRIALS", 15);
    const unsigned seed = envUnsigned("LIQUID_ORACLE_SEED", 811);

    Rng rng(seed);
    const Sabotage modes[] = {
        Sabotage::None,
        Sabotage::OverlapStoreStore,
        Sabotage::OverlapLoadAhead,
        Sabotage::OverlapStoreAfterLoad,
    };
    const unsigned distances[] = {1, 2, 3, 4, 8, 16};
    for (unsigned trial = 0; trial < trials; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        const Sabotage mode =
            modes[rng.range(0, 3)];
        const unsigned d =
            distances[rng.range(0, 5)];
        const unsigned width = 2u << rng.range(0, 2);  // 2/4/8

        Rng data(seed * 131 + trial);
        const Program prog = buildGeneratedProgram(
            g, data, EmitOptions::Mode::Scalarized, width, mode, d);
        checkOracle(prog, g.kernel.name(),
                    g.kernel.name() + "_r" + std::to_string(trial),
                    width, g.kernel.maxWidth());
    }
}

/**
 * Acceptance sweep: across the sabotage matrix no statically
 * resolvable kernel may be left at Warn(memoryDependence) — depcheck
 * must discharge every one to Ok or Error.
 */
TEST(DepcheckOracle, NoResidualMemoryDependenceWarns)
{
    using Sabotage = EmitOptions::Sabotage;
    Rng rng(717);
    unsigned checked = 0;
    for (unsigned trial = 0; trial < 8; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        for (const Sabotage mode :
             {Sabotage::None, Sabotage::OverlapStoreStore,
              Sabotage::OverlapLoadAhead,
              Sabotage::OverlapStoreAfterLoad}) {
            Rng data(trial);
            const Program prog = buildGeneratedProgram(
                g, data, EmitOptions::Mode::Scalarized, 8, mode, 3);
            VerifyOptions vopts;
            vopts.config.simdWidth = 8;
            const RegionReport r = verifyRegion(
                prog, prog.labelIndex(g.kernel.name()), vopts,
                g.kernel.maxWidth());
            if (!r.depAnalyzed || !r.dep.resolved)
                continue;
            ++checked;
            EXPECT_NE(r.verdict, Severity::Warn)
                << "resolvable kernel left at warn, trial " << trial;
        }
    }
    EXPECT_GT(checked, 0u);
}

} // namespace
} // namespace liquid
