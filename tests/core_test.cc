/** @file Pipeline/core model tests: semantics and timing behaviours. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "common/bitfield.hh"
#include "cpu/core.hh"
#include "memory/main_memory.hh"

namespace liquid
{
namespace
{

struct TestRun
{
    Program prog;
    MainMemory mem;
    Core core;

    TestRun(const std::string &src, CoreConfig config = CoreConfig{})
        : prog(assemble(src)), mem(MainMemory::forProgram(prog)),
          core(config, prog, mem)
    {
    }
};

TEST(Core, ArithmeticAndFlags)
{
    TestRun r(
      R"(
        main:
            mov r1, #10
            mov r2, #3
            sub r3, r1, r2
            mul r4, r3, r2
            cmp r4, #21
            moveq r5, #1
            movne r6, #1
            halt
    )");
    r.core.run();
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 3)), 7u);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 4)), 21u);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 5)), 1u);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 6)), 0u);
}

TEST(Core, LoopAndMemory)
{
    TestRun r(
      R"(
        .words src 5 6 7 8
        .data dst 16
        main:
            mov r0, #0
        top:
            ldw r1, [src + r0]
            add r1, r1, #100
            stw [dst + r0], r1
            add r0, r0, #1
            cmp r0, #4
            blt top
            halt
    )");
    r.core.run();
    const Addr dst = r.prog.symbol("dst");
    EXPECT_EQ(r.mem.readWord(dst + 0), 105u);
    EXPECT_EQ(r.mem.readWord(dst + 12), 108u);
}

TEST(Core, ElementScaledAddressing)
{
    TestRun r(
      R"(
        .data bytes 8
        .data halves 16
        main:
            mov r0, #2
            mov r1, #65
            stb [bytes + r0], r1
            sth [halves + r0], r1
            ldb r2, [bytes + r0]
            ldh r3, [halves + r0]
            halt
    )");
    r.core.run();
    // Byte 2 of bytes, halfword 2 (byte offset 4) of halves.
    EXPECT_EQ(r.mem.readByte(r.prog.symbol("bytes") + 2), 65u);
    EXPECT_EQ(r.mem.readHalf(r.prog.symbol("halves") + 4), 65u);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 2)), 65u);
}

TEST(Core, SignExtendingLoads)
{
    TestRun r(
      R"(
        .data b 4
        main:
            mov r1, #-1
            mov r0, #0
            stb [b + r0], r1
            ldb r2, [b + r0]
            ldsb r3, [b + r0]
            halt
    )");
    r.core.run();
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 2)), 0xFFu);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 3)), 0xFFFFFFFFu);
}

TEST(Core, FloatClassSemantics)
{
    TestRun r(
      R"(
        .words fa 0x3FC00000 ; 1.5f
        .words fb 0x40100000 ; 2.25f
        .data fout 4
        main:
            mov r0, #0
            ldw f0, [fa + r0]
            ldw f1, [fb + r0]
            mul f2, f0, f1
            stw [fout + r0], f2
            halt
    )");
    r.core.run();
    EXPECT_EQ(bitsToFloat(r.mem.readWord(r.prog.symbol("fout"))), 3.375f);
}

TEST(Core, CallAndReturn)
{
    TestRun r(
      R"(
        fn:
            add r1, r1, #1
            ret
        main:
            mov r1, #0
            bl fn
            bl fn
            halt
    )");
    r.core.run();
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 1)), 2u);
    EXPECT_EQ(r.core.stats().get("calls"), 2u);
}

TEST(Core, CallLogRecordsCycles)
{
    TestRun r(
      R"(
        fn:
            ret
        main:
            bl fn
            bl fn
            bl fn
            halt
    )");
    r.core.run();
    const Addr entry = Program::instAddr(0);
    ASSERT_TRUE(r.core.callLog().count(entry));
    const auto &log = r.core.callLog().at(entry);
    ASSERT_EQ(log.size(), 3u);
    EXPECT_LT(log[0], log[1]);
    EXPECT_LT(log[1], log[2]);
}

TEST(Core, VectorExecution)
{
    CoreConfig config;
    config.simdWidth = 4;
    TestRun r(
      R"(
        .words va 1 2 3 4
        .words vb 10 20 30 40
        .data vc 16
        main:
            mov r0, #0
            vldw v1, [va + r0]
            vldw v2, [vb + r0]
            vadd v3, v1, v2
            vstw [vc + r0], v3
            vredadd r5, v3
            halt
    )",
          config);
    r.core.run();
    const Addr vc = r.prog.symbol("vc");
    EXPECT_EQ(r.mem.readWord(vc + 0), 11u);
    EXPECT_EQ(r.mem.readWord(vc + 4), 22u);
    EXPECT_EQ(r.mem.readWord(vc + 12), 44u);
    EXPECT_EQ(r.core.regs().read(RegId(RegClass::Int, 5)), 110u);
}

TEST(Core, VectorWithoutAcceleratorIsFatal)
{
    TestRun r(
      R"(
        .data buf 64
        main:
            mov r0, #0
            vldw v1, [buf + r0]
            halt
    )");
    EXPECT_THROW(r.core.run(), FatalError);
}

TEST(CoreTiming, CacheMissesCost)
{
    // Two runs differing only in data footprint: streaming through
    // 32 KB (>16 KB cache) must cost much more than re-touching one
    // line.
    const char *src = R"(
        .data big 32768
        main:
            mov r0, #0
        top:
            ldw r1, [big + r0]
            add r0, r0, #8
            cmp r0, #8192
            blt top
            halt
    )";
    TestRun miss(src);
    miss.core.run();
    // Every load touches a fresh line (stride 8 words = 32 B).
    EXPECT_EQ(miss.core.dcache().stats().get("misses"), 1024u);
    EXPECT_GT(miss.core.cycles(), 1024 * 30);
}

TEST(CoreTiming, TakenBranchesCost)
{
    const char *loop = R"(
        main:
            mov r0, #0
        top:
            add r0, r0, #1
            cmp r0, #100
            blt top
            halt
    )";
    CoreConfig cheap;
    cheap.takenBranchPenalty = 0;
    CoreConfig dear;
    dear.takenBranchPenalty = 3;
    TestRun a(loop, cheap);
    TestRun b(loop, dear);
    a.core.run();
    b.core.run();
    EXPECT_EQ(b.core.cycles() - a.core.cycles(), 99u * 3u);
}

TEST(CoreTiming, LoadUseInterlock)
{
    // Dependent consumer right after the load pays one extra cycle.
    const char *dependent = R"(
        .words arr 1 2 3 4
        main:
            mov r0, #0
            ldw r1, [arr + r0]
            add r2, r1, #1
            halt
    )";
    const char *independent = R"(
        .words arr 1 2 3 4
        main:
            mov r0, #0
            ldw r1, [arr + r0]
            add r2, r0, #1
            halt
    )";
    TestRun a(dependent);
    TestRun b(independent);
    a.core.run();
    b.core.run();
    EXPECT_EQ(a.core.cycles() - b.core.cycles(), 1u);
    EXPECT_EQ(a.core.stats().get("loadUseStalls"), 1u);
}

TEST(CoreTiming, VectorMemoryBusOccupancy)
{
    // A 16-lane word load moves 64 B over the SIMD memory bus and
    // touches two 32 B lines instead of an 8-lane load's one: the
    // extra beats plus one extra cold miss.
    auto cyclesAtWidth = [](unsigned width) {
        CoreConfig config;
        config.simdWidth = width;
        TestRun r(
      R"(
            .data buf 256
            main:
                mov r0, #0
                vldw v1, [buf + r0]
                halt
        )",
              config);
        r.core.run();
        return r.core.cycles();
    };
    const CoreConfig config{};
    const auto beats = [&](unsigned bytes) {
        return (bytes + config.busBytesPerCycle - 1) /
               config.busBytesPerCycle;
    };
    EXPECT_EQ(cyclesAtWidth(16) - cyclesAtWidth(8),
              beats(64) - beats(32) + config.missPenalty);
}

TEST(Core, WatchdogPanicsOnRunaway)
{
    CoreConfig config;
    config.maxInsts = 100;
    TestRun r(
      R"(
        main:
        top:
            b top
    )",
          config);
    EXPECT_THROW(r.core.run(), PanicError);
}

} // namespace
} // namespace liquid
