/**
 * @file
 * The paper's running example, end to end (Figures 2-4, Table 4): the
 * FFT butterfly loop is scalarized into the two fissioned loops of
 * Figure 4(B), dynamically translated back, and the generated SIMD
 * microcode must contain the structures of Table 4 — shuffled loads
 * with butterflies, vmask with 0xF0, collapsed offset loads, and the
 * induction-variable stride rewritten to the accelerator width.
 */

#include <gtest/gtest.h>

#include "common/bitfield.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

std::unique_ptr<Workload>
fftWorkload()
{
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fft")
            return std::move(wl);
    }
    return nullptr;
}

TEST(FftWalkthrough, ScalarizedShapeMatchesFigure4B)
{
    auto wl = fftWorkload();
    ASSERT_NE(wl, nullptr);
    const auto build = wl->build(EmitOptions::Mode::Scalarized);

    // The bfly8 kernel is the paper's example: it must fission into
    // exactly two loops connected by tmp arrays.
    ASSERT_EQ(build.kernels.size(), 3u);
    EXPECT_EQ(build.kernels[2].numStages, 2u);
    EXPECT_TRUE(build.prog.hasSymbol("fft_k2_tmp0"));
    EXPECT_TRUE(build.prog.hasSymbol("fft_k2_tmp1"));

    // Outlined function sizes must be in the paper's Table 5 range.
    for (const auto &k : build.kernels) {
        EXPECT_GE(k.instCount, 5u);
        EXPECT_LE(k.instCount, 64u);
    }
}

TEST(FftWalkthrough, Table4MicrocodeStructures)
{
    auto wl = fftWorkload();
    const auto build = wl->build(EmitOptions::Mode::Scalarized);

    System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
    sys.run();

    // All three butterfly-stage kernels translate at width 8.
    EXPECT_EQ(sys.translator().stats().get("translations"), 3u);

    const UcodeEntry *uc =
        sys.ucodeCache().lookup(build.kernelEntries[2], sys.cycles());
    ASSERT_NE(uc, nullptr);

    unsigned vperms = 0;
    unsigned vmasks = 0;
    unsigned iv_strides = 0;
    unsigned vmuls = 0;
    for (const auto &inst : uc->insts) {
        if (inst.op == Opcode::Vperm) {
            ++vperms;
            EXPECT_EQ(inst.permKind, PermKind::SwapHalves);
            EXPECT_EQ(inst.permBlock, 8);
        }
        if (inst.op == Opcode::Vmask) {
            ++vmasks;
            EXPECT_EQ(inst.maskBits, 0xF0u);
            EXPECT_EQ(inst.maskBlock, 8);
        }
        if (inst.op == Opcode::Add && inst.hasImm && inst.dst.isValid() &&
            inst.dst == inst.src1 && inst.imm == 8)
            ++iv_strides;
        vmuls += inst.op == Opcode::Vmul;
    }
    // Table 4: butterflies on the two shuffled loads plus the
    // butterfly before the tmp0 store.
    EXPECT_EQ(vperms, 3u);
    // Table 4: two vmask instructions with constant 0xF0.
    EXPECT_EQ(vmasks, 2u);
    EXPECT_EQ(vmuls, 2u);
    // Both fissioned loops stride by the accelerator width.
    EXPECT_EQ(iv_strides, 2u);

    // The offset-array loads (bfly/mask) must have been collapsed out:
    // remaining vector loads are exactly the five float data loads of
    // loop 1 plus the two tmp reloads of loop 2.
    unsigned vloads = 0;
    for (const auto &inst : uc->insts)
        vloads += inst.info().isLoad && inst.info().isVector;
    EXPECT_EQ(vloads, 7u);
    EXPECT_GE(sys.translator().stats().get("instsCollapsed"), 3u);
}

TEST(FftWalkthrough, NumbersMatchScalarExecution)
{
    auto wl = fftWorkload();
    const auto build = wl->build(EmitOptions::Mode::Scalarized);

    // Liquid execution at width 8.
    System liquid(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
    liquid.run();
    ASSERT_GE(liquid.core().stats().get("ucodeDispatches"), 1u);

    // Pure scalar execution of the same binary.
    System scalar(SystemConfig::make(ExecMode::ScalarBaseline),
                  build.prog);
    scalar.run();

    for (const auto &[name, words] : wl->allOutputs()) {
        const auto a = Workload::readArray(build.prog, liquid.memory(),
                                           name, words);
        const auto b = Workload::readArray(build.prog, scalar.memory(),
                                           name, words);
        EXPECT_EQ(a, b) << name;
    }
}

TEST(FftWalkthrough, NarrowAcceleratorRefusesWideButterfly)
{
    auto wl = fftWorkload();
    const auto build = wl->build(EmitOptions::Mode::Scalarized);

    System sys(SystemConfig::make(ExecMode::Liquid, 2), build.prog);
    sys.run();
    // Only the pairwise stage translates at width 2; the block-4 and
    // block-8 butterflies are refused (CAM miss, or the lane
    // verification that notices the pattern is not 2-periodic).
    EXPECT_EQ(sys.translator().stats().get("translations"), 1u);
    EXPECT_EQ(sys.translator().stats().get("abort.unsupportedShuffle") +
                  sys.translator().stats().get("abort.valueMismatch"),
              2u);
}

TEST(FftWalkthrough, SpeedupOrderingAcrossWidths)
{
    auto wl = fftWorkload();
    const auto inline_build =
        wl->build(EmitOptions::Mode::InlineScalar);
    System base(SystemConfig::make(ExecMode::ScalarBaseline),
                inline_build.prog);
    base.run();

    const auto build = wl->build(EmitOptions::Mode::Scalarized);
    Cycles prev = base.cycles() + 1;
    for (unsigned width : {2u, 4u, 8u, 16u}) {
        // Zero translation latency isolates the steady-state speedup
        // from ready-time races on the second call of each region.
        SystemConfig config =
            SystemConfig::make(ExecMode::Liquid, width);
        config.translator.latencyPerInst = 0;
        System sys(config, build.prog);
        sys.run();
        EXPECT_LT(sys.cycles(), base.cycles())
            << "width " << width << " should beat scalar baseline";
        EXPECT_LE(sys.cycles(), prev)
            << "wider accelerators should not be slower";
        prev = sys.cycles();
    }
}

} // namespace
} // namespace liquid
