/**
 * @file
 * Differential soundness oracle for the liquid-range analysis.
 *
 * Every program — the curated stress set, the fifteen-benchmark
 * workload suite, and randomized scalarized kernels — is executed on
 * the scalar-baseline core with a RangeObserver on the retire bus.
 * Each retired scalar value and effective address must lie inside the
 * static fact the interprocedural solver proved for its instruction;
 * a single escape is a soundness bug in a transfer function.
 *
 * A second section seeds every --sabotage mutation (unsound join,
 * wrap clamping, skipped store havoc, over-tight branch refinement)
 * and requires the oracle to CATCH each one on the stress set: the
 * oracle itself is under test, not just the analysis.
 *
 * The randomized section scales with LIQUID_ORACLE_TRIALS and derives
 * its generator seed from LIQUID_ORACLE_SEED, so the nightly CI fuzz
 * job can run a wide sweep on a date-derived seed without a rebuild.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "asm/assembler.hh"
#include "random_kernels.hh"
#include "sim/system.hh"
#include "verifier/range.hh"
#include "workloads/range_stress.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return static_cast<unsigned>(std::strtoul(v, nullptr, 10));
}

struct OracleRun
{
    unsigned checked = 0;
    std::vector<std::string> violations;
};

/** Solve, execute on the scalar baseline, and collect violations. */
OracleRun
runOracle(const Program &prog, unsigned sabotage = SabNone)
{
    RangeSolveOptions ropt;
    ropt.sabotage = sabotage;
    const ProgramRanges pr = solveProgramRanges(prog, ropt);

    System sys(SystemConfig::make(ExecMode::ScalarBaseline), prog);
    RangeObserver obs(prog, pr);
    sys.core().setRetireSink(&obs);
    sys.run();

    OracleRun run;
    run.checked = obs.checkedRetires();
    run.violations = obs.violations();
    return run;
}

TEST(RangeOracle, StressCasesAreViolationFree)
{
    for (const RangeStressCase &c : rangeStressCases()) {
        SCOPED_TRACE(c.name);
        const OracleRun run = runOracle(assemble(c.src));
        EXPECT_GT(run.checked, 0u);
        EXPECT_TRUE(run.violations.empty())
            << run.violations.size() << " violation(s), first: "
            << run.violations.front();
    }
}

TEST(RangeOracle, WorkloadSuiteIsViolationFree)
{
    for (const auto &wl : makeSuite()) {
        SCOPED_TRACE(wl->name());
        const Workload::Build build =
            wl->build(EmitOptions::Mode::Scalarized, 8, true);
        const OracleRun run = runOracle(build.prog);
        EXPECT_GT(run.checked, 0u);
        EXPECT_TRUE(run.violations.empty())
            << run.violations.size() << " violation(s), first: "
            << run.violations.front();
    }
}

TEST(RangeOracle, RandomizedKernelsAreViolationFree)
{
    const unsigned trials = envUnsigned("LIQUID_ORACLE_TRIALS", 10);
    const unsigned seed = envUnsigned("LIQUID_ORACLE_SEED", 919);

    Rng rng(seed);
    unsigned totalChecked = 0;
    for (unsigned trial = 0; trial < trials; ++trial) {
        const GeneratedKernel g = generateKernel(rng, trial);
        Rng data(seed * 97 + trial);
        const Program prog = buildGeneratedProgram(
            g, data, EmitOptions::Mode::Scalarized, 8);
        SCOPED_TRACE(g.kernel.name() + "_r" + std::to_string(trial));
        const OracleRun run = runOracle(prog);
        totalChecked += run.checked;
        EXPECT_TRUE(run.violations.empty())
            << run.violations.size() << " violation(s), first: "
            << run.violations.front();
    }
    EXPECT_GT(totalChecked, 0u);
}

/**
 * Mutation coverage: each seeded unsoundness must produce at least one
 * observed violation somewhere in the stress set. If a mutation slips
 * past, either the oracle or the stress programs have gone stale.
 */
TEST(RangeOracle, SabotageMutationsAreCaught)
{
    const unsigned mutations[] = {SabUnsoundJoin, SabWrapClamp,
                                  SabStoreNoHavoc, SabEdgeTighten};
    const char *names[] = {"unsoundJoin", "wrapClamp", "storeNoHavoc",
                           "edgeTighten"};
    for (unsigned m = 0; m < 4; ++m) {
        SCOPED_TRACE(names[m]);
        bool caught = false;
        for (const RangeStressCase &c : rangeStressCases()) {
            const OracleRun run =
                runOracle(assemble(c.src), mutations[m]);
            if (!run.violations.empty()) {
                caught = true;
                break;
            }
        }
        EXPECT_TRUE(caught) << "mutation escaped the oracle";
    }
}

} // namespace
} // namespace liquid
