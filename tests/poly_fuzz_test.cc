/**
 * @file
 * Property test for the width-polymorphic verifier: over randomized
 * kernels, instantiating the symbolic verdict at every ladder width
 * must reproduce the concrete verifyRegion/depcheck verdict
 * bit-for-bit — verdict, AbortReason, diagnostic index, and the full
 * dependence verdict including DepReason codes (diffRegion compares
 * all of them).
 *
 * Trial count and seed come from the environment so the nightly
 * poly-fuzz CI job can date-seed a deeper run:
 *   LIQUID_POLY_TRIALS  number of kernels (default 300)
 *   LIQUID_POLY_SEED    base seed (default 0x9E3779B97F4A7C15)
 */

#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "translator/translator.hh"
#include "verifier/poly.hh"

#include "random_kernels.hh"

using namespace liquid;

namespace
{

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 0);
}

TEST(PolyFuzz, RandomKernelsMatchConcreteVerdicts)
{
    const std::uint64_t trials = envU64("LIQUID_POLY_TRIALS", 300);
    const std::uint64_t seed =
        envU64("LIQUID_POLY_SEED", 0x9E3779B97F4A7C15ull);
    Rng rng(seed);
    Rng dataRng(seed ^ 0xD1B54A32D192ED03ull);
    const TranslatorConfig config;

    std::uint64_t regions = 0;
    std::uint64_t skipped = 0;
    for (std::uint64_t i = 0; i < trials; ++i) {
        const GeneratedKernel g =
            generateKernel(rng, static_cast<unsigned>(i));
        Program prog;
        try {
            prog = buildGeneratedProgram(
                g, dataRng, EmitOptions::Mode::Scalarized, 8);
        } catch (const FatalError &) {
            // Register pressure: the kernel never scalarizes, so
            // there is no verdict to compare.
            ++skipped;
            continue;
        } catch (const PanicError &) {
            // Staging aliasing — same story (see the differential
            // verifier test for the generator limits).
            ++skipped;
            continue;
        }
        for (const PolyDiff &d : diffProgram(prog, config)) {
            ++regions;
            for (const PolyMismatch &m : d.mismatches) {
                ADD_FAILURE()
                    << "seed 0x" << std::hex << seed << std::dec
                    << " kernel " << i << " region " << d.entryLabel
                    << " width " << m.width << " field " << m.field
                    << ": concrete=" << m.expect
                    << " poly=" << m.got;
            }
        }
    }
    RecordProperty("trials", static_cast<int>(trials));
    RecordProperty("skipped", static_cast<int>(skipped));
    // The skip path must stay the exception, not the rule.
    EXPECT_LT(skipped * 10, trials);
    EXPECT_GT(regions, 0u);
}

} // namespace
