/** @file System wiring, execution modes and memory-model tests. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "sim/system.hh"
#include "workloads/vir_interp.hh"
#include "workloads/workload.hh"

namespace liquid
{
namespace
{

TEST(MainMemory, ByteHalfWordAccess)
{
    MainMemory mem(256);
    mem.writeWord(0x10, 0xAABBCCDD);
    EXPECT_EQ(mem.readByte(0x10), 0xDD);   // little endian
    EXPECT_EQ(mem.readByte(0x13), 0xAA);
    EXPECT_EQ(mem.readHalf(0x10), 0xCCDD);
    EXPECT_EQ(mem.readHalf(0x12), 0xAABB);
    EXPECT_EQ(mem.readWord(0x10), 0xAABBCCDDu);

    mem.writeHalf(0x20, 0x1234);
    EXPECT_EQ(mem.readElem(0x20, 2, false), 0x1234u);
    mem.writeByte(0x30, 0x80);
    EXPECT_EQ(mem.readElem(0x30, 1, false), 0x80u);
    EXPECT_EQ(mem.readElem(0x30, 1, true), 0xFFFFFF80u);
    mem.writeHalf(0x32, 0x8000);
    EXPECT_EQ(mem.readElem(0x32, 2, true), 0xFFFF8000u);
}

TEST(MainMemory, OutOfBoundsPanics)
{
    MainMemory mem(64);
    EXPECT_THROW(mem.readWord(62), PanicError);
    EXPECT_THROW(mem.writeByte(64, 0), PanicError);
    EXPECT_NO_THROW(mem.readWord(60));
}

TEST(MainMemory, LoadsProgramImage)
{
    Program prog;
    prog.allocWords("arr", {0x11223344, 0x55667788});
    MainMemory mem = MainMemory::forProgram(prog);
    EXPECT_EQ(mem.readWord(prog.symbol("arr")), 0x11223344u);
    EXPECT_EQ(mem.readWord(prog.symbol("arr") + 4), 0x55667788u);
}

TEST(SystemConfigs, ModeCoupling)
{
    const auto scalar = SystemConfig::make(ExecMode::ScalarBaseline);
    EXPECT_EQ(scalar.core.simdWidth, 0u);
    EXPECT_FALSE(scalar.core.translationEnabled);

    const auto liquid = SystemConfig::make(ExecMode::Liquid, 4);
    EXPECT_EQ(liquid.core.simdWidth, 4u);
    EXPECT_TRUE(liquid.core.translationEnabled);
    EXPECT_EQ(liquid.translator.simdWidth, 4u);

    const auto native = SystemConfig::make(ExecMode::NativeSimd, 16);
    EXPECT_EQ(native.core.simdWidth, 16u);
    EXPECT_FALSE(native.core.translationEnabled);
}

TEST(System, NativeModeNeverTranslates)
{
    // A native binary on a NativeSimd system must not touch the
    // translator path at all.
    std::unique_ptr<Workload> fir;
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fir")
            fir = std::move(wl);
    }
    const auto build = fir->build(EmitOptions::Mode::Native, 8);
    System sys(SystemConfig::make(ExecMode::NativeSimd, 8), build.prog);
    sys.run();
    EXPECT_EQ(sys.core().stats().get("ucodeDispatches"), 0u);
    EXPECT_GT(sys.core().stats().get("vectorInsts"), 0u);
}

TEST(System, LiquidIsDeterministic)
{
    std::unique_ptr<Workload> fft;
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fft")
            fft = std::move(wl);
    }
    const auto build = fft->build(EmitOptions::Mode::Scalarized);
    System a(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
    a.run();
    System b(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
    b.run();
    EXPECT_EQ(a.cycles(), b.cycles());
    EXPECT_EQ(a.core().stats().counters(), b.core().stats().counters());
}

TEST(System, WiderAcceleratorNeverLosesAtZeroLatency)
{
    // With readiness races removed, every workload must be at least as
    // fast at width 16 as at width 2 (monotone benefit of hardware).
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        SystemConfig narrow = SystemConfig::make(ExecMode::Liquid, 2);
        narrow.translator.latencyPerInst = 0;
        SystemConfig wide = SystemConfig::make(ExecMode::Liquid, 16);
        wide.translator.latencyPerInst = 0;
        System a(narrow, build.prog);
        a.run();
        System b(wide, build.prog);
        b.run();
        EXPECT_LE(b.cycles(), a.cycles()) << wl->name();
    }
}

TEST(System, ScalarizedBinaryBeatsNothingWithoutAccelerator)
{
    // Outlining costs only bl/ret: the scalarized binary on a plain
    // core must be within 2% of the inline baseline (the paper's
    // "<1% overhead" claim is about code size; the runtime cost of
    // outlining itself is similarly small).
    for (const auto &wl : makeSuite()) {
        const auto inline_build =
            wl->build(EmitOptions::Mode::InlineScalar);
        const auto outlined = wl->build(EmitOptions::Mode::Scalarized);
        System a(SystemConfig::make(ExecMode::ScalarBaseline),
                 inline_build.prog);
        a.run();
        System b(SystemConfig::make(ExecMode::ScalarBaseline),
                 outlined.prog);
        b.run();
        EXPECT_LT(static_cast<double>(b.cycles()),
                  static_cast<double>(a.cycles()) * 1.02)
            << wl->name();
    }
}

TEST(VirInterp, MatchesHandComputation)
{
    Program prog;
    prog.allocWords("ia", {1, 2, 3, 4, 5, 6, 7, 8,
                           9, 10, 11, 12, 13, 14, 15, 16});
    prog.allocData("ob", 64);

    vir::Kernel k("t", 16);
    const int acc = k.newAcc("sum", Opcode::Add, 100);
    const int a = k.load("ia");
    const int doubled = k.binImm(Opcode::Mul, a, 2);
    const int rev = k.perm(doubled, PermKind::Reverse, 4);
    k.store("ob", rev);
    k.reduce(acc, a);

    MainMemory mem = MainMemory::forProgram(prog);
    const auto accs = interpretKernel(k, prog, mem);
    ASSERT_EQ(accs.size(), 1u);
    EXPECT_EQ(accs[0], 100u + 136u);
    // Reversed blocks of 4, doubled.
    const Word expect[8] = {8, 6, 4, 2, 16, 14, 12, 10};
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(mem.readWord(prog.symbol("ob") + 4 * i), expect[i]);
}

TEST(WorkloadFramework, AccumulatorResultsRecorded)
{
    for (const auto &wl : makeSuite()) {
        if (wl->name() != "052.alvinn")
            continue;
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();
        // Dot products of fixed data: every rep records the same value.
        const auto res = Workload::readArray(
            build.prog, sys.memory(), wl->accResArray(0, 0),
            wl->reps());
        for (unsigned rep = 1; rep < wl->reps(); ++rep)
            EXPECT_EQ(res[rep], res[0]);
        EXPECT_NE(res[0], 0u);
    }
}

} // namespace
} // namespace liquid
