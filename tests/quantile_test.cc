/**
 * @file
 * The streaming quantile estimator's documented error contract:
 * p50/p95/p99 within 3.2% relative error of the exact sorted-sample
 * quantile on uniform, bimodal and heavy-tailed inputs (exact below
 * 32), and bucket-exact lossless merging.
 */

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "serve/quantile.hh"

using namespace liquid;
using serve::LatencyHistogram;

namespace
{

/** The estimator's rank convention on the raw samples. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    const double n = static_cast<double>(samples.size());
    const auto rank = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::min(n, q * n + 0.5)));
    return samples[rank - 1];
}

/** Documented bound plus one unit of integer slack. */
void
expectWithinBound(const LatencyHistogram &h,
                  const std::vector<std::uint64_t> &samples, double q)
{
    const std::uint64_t exact = exactQuantile(samples, q);
    const std::uint64_t est = h.quantile(q);
    const double tolerance =
        std::max(1.0, 0.032 * static_cast<double>(exact));
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(exact),
                tolerance)
        << "q=" << q;
}

const double kQuantiles[] = {0.0, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0};

void
expectAllQuantiles(const LatencyHistogram &h,
                   const std::vector<std::uint64_t> &samples)
{
    for (double q : kQuantiles)
        expectWithinBound(h, samples, q);
}

LatencyHistogram
recordAll(const std::vector<std::uint64_t> &samples)
{
    LatencyHistogram h;
    for (std::uint64_t v : samples)
        h.record(v);
    return h;
}

} // namespace

TEST(Quantile, ExactBelowSubBuckets)
{
    // Unit buckets below 32: the estimate IS the sample.
    std::vector<std::uint64_t> samples;
    for (std::uint64_t v = 0; v < 32; ++v)
        samples.push_back(v);
    const LatencyHistogram h = recordAll(samples);
    for (double q : kQuantiles)
        EXPECT_EQ(h.quantile(q), exactQuantile(samples, q)) << q;
}

TEST(Quantile, UniformWithinBound)
{
    Rng rng(7);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 10000; ++i)
        samples.push_back(
            static_cast<std::uint64_t>(rng.range(1, 1000000)));
    expectAllQuantiles(recordAll(samples), samples);
}

TEST(Quantile, BimodalWithinBound)
{
    // Fast hot-cache hits around 100us, slow executions around 800ms:
    // the regime where a mean is useless and the tail is the story.
    Rng rng(11);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 5000; ++i)
        samples.push_back(
            static_cast<std::uint64_t>(rng.range(80, 140)));
    for (int i = 0; i < 5000; ++i)
        samples.push_back(
            static_cast<std::uint64_t>(rng.range(700000, 900000)));
    expectAllQuantiles(recordAll(samples), samples);
}

TEST(Quantile, HeavyTailWithinBound)
{
    // Roughly log-uniform over five decades.
    Rng rng(13);
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 10000; ++i) {
        const unsigned scale =
            static_cast<unsigned>(rng.range(0, 16));
        samples.push_back(1 + (rng.next64() & ((1ull << scale) - 1)));
    }
    expectAllQuantiles(recordAll(samples), samples);
}

TEST(Quantile, MergeIsLossless)
{
    Rng rng(17);
    std::vector<std::uint64_t> a, b, both;
    for (int i = 0; i < 4000; ++i) {
        const auto v = static_cast<std::uint64_t>(rng.range(1, 500000));
        (i % 2 ? a : b).push_back(v);
        both.push_back(v);
    }
    LatencyHistogram merged = recordAll(a);
    merged.merge(recordAll(b));
    const LatencyHistogram oneShot = recordAll(both);

    // Bucket-exact: identical contents, hence identical statistics at
    // every quantile — not merely within tolerance.
    EXPECT_EQ(merged.count(), oneShot.count());
    EXPECT_EQ(merged.min(), oneShot.min());
    EXPECT_EQ(merged.max(), oneShot.max());
    EXPECT_EQ(merged.sum(), oneShot.sum());
    for (double q = 0.0; q <= 1.0; q += 0.01)
        EXPECT_EQ(merged.quantile(q), oneShot.quantile(q)) << q;
    EXPECT_EQ(merged.distributionJson().toString(),
              oneShot.distributionJson().toString());
}

TEST(Quantile, MergeEmptyIsNoop)
{
    const std::vector<std::uint64_t> samples{5, 900, 31000};
    LatencyHistogram h = recordAll(samples);
    h.merge(LatencyHistogram{});
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 31000u);

    LatencyHistogram fresh;
    fresh.merge(h);
    EXPECT_EQ(fresh.count(), 3u);
    EXPECT_EQ(fresh.min(), 5u);
    EXPECT_EQ(fresh.sum(), h.sum());
}

TEST(Quantile, EmptyAndSingle)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0u);
    EXPECT_EQ(h.quantile(0.99), 0u);

    h.record(12345);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 12345u);
    EXPECT_EQ(h.max(), 12345u);
    EXPECT_EQ(h.mean(), 12345u);
    // One sample: every quantile is that sample, clamped exactly.
    for (double q : kQuantiles)
        EXPECT_EQ(h.quantile(q), 12345u) << q;
}

TEST(Quantile, BucketGeometryRoundTrips)
{
    // Every bucket's low edge maps back to its own index, and the
    // relative bucket width stays within the documented 1/32 bound.
    for (std::uint64_t v : {0ull, 1ull, 31ull, 32ull, 33ull, 63ull,
                            64ull, 1000ull, 123456789ull,
                            (1ull << 40) + 17}) {
        const std::size_t idx = LatencyHistogram::bucketIndex(v);
        EXPECT_LE(LatencyHistogram::bucketLow(idx), v);
        EXPECT_EQ(LatencyHistogram::bucketIndex(
                      LatencyHistogram::bucketLow(idx)),
                  idx);
        if (v >= LatencyHistogram::subBuckets) {
            const std::uint64_t low = LatencyHistogram::bucketLow(idx);
            const std::uint64_t width =
                LatencyHistogram::bucketLow(idx + 1) - low;
            EXPECT_LE(static_cast<double>(width),
                      static_cast<double>(low) / 32.0 + 1.0)
                << v;
        }
    }
}
