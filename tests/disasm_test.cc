/** @file Disassembly, register naming and opcode metadata tests. */

#include <gtest/gtest.h>

#include "asm/assembler.hh"
#include "isa/instruction.hh"

namespace liquid
{
namespace
{

TEST(Registers, NamesRoundTrip)
{
    for (unsigned flat = 0; flat < 64; ++flat) {
        const RegId reg = RegId::fromFlat(flat);
        EXPECT_EQ(parseRegName(regName(reg)), reg);
        EXPECT_EQ(reg.flat(), flat);
    }
    EXPECT_EQ(regName(RegId(RegClass::Int, 3)), "r3");
    EXPECT_EQ(regName(RegId(RegClass::Flt, 0)), "f0");
    EXPECT_EQ(regName(RegId(RegClass::Vec, 15)), "v15");
    EXPECT_EQ(regName(RegId(RegClass::VFlt, 7)), "vf7");
    EXPECT_EQ(regName(RegId::invalid()), "--");
}

TEST(Registers, ParseRejectsJunk)
{
    EXPECT_FALSE(parseRegName("").isValid());
    EXPECT_FALSE(parseRegName("r").isValid());
    EXPECT_FALSE(parseRegName("r16").isValid());
    EXPECT_FALSE(parseRegName("x3").isValid());
    EXPECT_FALSE(parseRegName("vf16").isValid());
    EXPECT_FALSE(parseRegName("r1x").isValid());
}

TEST(Registers, ScalarVectorMapping)
{
    EXPECT_EQ(RegId(RegClass::Int, 5).toVector(),
              RegId(RegClass::Vec, 5));
    EXPECT_EQ(RegId(RegClass::Flt, 9).toVector(),
              RegId(RegClass::VFlt, 9));
    EXPECT_EQ(RegId(RegClass::Vec, 5).toScalar(),
              RegId(RegClass::Int, 5));
    EXPECT_EQ(RegId(RegClass::VFlt, 9).toScalar(),
              RegId(RegClass::Flt, 9));
    EXPECT_TRUE(RegId(RegClass::Flt, 1).isFloat());
    EXPECT_TRUE(RegId(RegClass::VFlt, 1).isFloat());
    EXPECT_FALSE(RegId(RegClass::Vec, 1).isFloat());
}

TEST(Opcodes, MetadataConsistency)
{
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes);
         ++i) {
        const auto op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        ASSERT_NE(info.name, nullptr);
        EXPECT_EQ(parseOpcodeName(info.name), op);

        // Scalar<->vector equivalences must be mutual.
        if (info.vectorEquiv != Opcode::Nop && !info.isLoad &&
            !info.isStore) {
            EXPECT_EQ(opInfo(info.vectorEquiv).scalarEquiv, op)
                << info.name;
        }
        if (info.isLoad || info.isStore) {
            const Opcode other =
                info.isVector ? info.scalarEquiv : info.vectorEquiv;
            ASSERT_NE(other, Opcode::Nop) << info.name;
            EXPECT_EQ(opInfo(other).memElemSize, info.memElemSize);
            EXPECT_EQ(opInfo(other).memSigned, info.memSigned);
        }
        if (info.isReduction) {
            EXPECT_TRUE(info.isVector) << info.name;
        }
    }
}

TEST(Disasm, PaperNotation)
{
    Program prog = assemble(R"(
        .data RealOut 64
        .rowords bfly 4 4 -4 -4
        main:
            mov r0, #0
            ldw r1, [bfly + r0]
            add r1, r0, r1
            ldw f0, [RealOut + r1]
            mul f2, f2, f0
            stw [RealOut + r0 + #1], f2
            movgt r1, #255
            cmp r0, #128
            blt main
            bl.simd8 main
            vperm.bfly8 vf0, vf0
            vmask vf3, vf3, #0xF0/8
            vredmin r1, v2
            halt
    )");
    const auto &c = prog.code();
    EXPECT_EQ(c[0].toString(), "mov r0, #0");
    EXPECT_EQ(c[1].toString(), "ldw r1, [bfly + r0]");
    EXPECT_EQ(c[2].toString(), "add r1, r0, r1");
    EXPECT_EQ(c[3].toString(), "ldw f0, [RealOut + r1]");
    EXPECT_EQ(c[4].toString(), "mul f2, f2, f0");
    EXPECT_EQ(c[5].toString(), "stw [RealOut + r0 + #1], f2");
    EXPECT_EQ(c[6].toString(), "movgt r1, #255");
    EXPECT_EQ(c[7].toString(), "cmp r0, #128");
    EXPECT_EQ(c[8].toString(), "blt main");
    EXPECT_EQ(c[9].toString(), "bl.simd8 main");
    EXPECT_EQ(c[10].toString(), "vperm.bfly8 vf0, vf0");
    EXPECT_EQ(c[11].toString(), "vmask vf3, vf3, #0xf0/8");
    EXPECT_EQ(c[12].toString(), "vredmin r1, v2");
    EXPECT_EQ(c[13].toString(), "halt");
}

TEST(Disasm, UnresolvedAndNumericTargets)
{
    Inst b = Inst::branch(Cond::AL, 7);
    EXPECT_EQ(b.toString(), "b 7");
    Inst cv = Inst::dpCvec(Opcode::Vadd, RegId(RegClass::Vec, 1),
                           RegId(RegClass::Vec, 2), 3);
    EXPECT_EQ(cv.toString(), "vadd v1, v2, cv#3");
}

TEST(InstEquality, IgnoresSymbolsComparesSemantics)
{
    Inst a = Inst::branch(Cond::LT, 5, "top");
    Inst b = Inst::branch(Cond::LT, 5, "different_name");
    EXPECT_EQ(a, b);
    Inst c = Inst::branch(Cond::LT, 6, "top");
    EXPECT_NE(a, c);
    Inst d = Inst::branch(Cond::LE, 5, "top");
    EXPECT_NE(a, d);

    Inst imm1 = Inst::movImm(RegId(RegClass::Int, 1), 4);
    Inst imm2 = Inst::movImm(RegId(RegClass::Int, 1), 4);
    Inst imm3 = Inst::movImm(RegId(RegClass::Int, 1), 5);
    EXPECT_EQ(imm1, imm2);
    EXPECT_NE(imm1, imm3);
}

TEST(Conditions, NamesAndParsing)
{
    for (Cond cond : {Cond::AL, Cond::EQ, Cond::NE, Cond::LT, Cond::LE,
                      Cond::GT, Cond::GE}) {
        Cond parsed;
        ASSERT_TRUE(parseCondName(condName(cond), parsed));
        EXPECT_EQ(parsed, cond);
    }
    Cond out;
    EXPECT_FALSE(parseCondName("zz", out));
}

} // namespace
} // namespace liquid
