/** @file Set-associative cache model tests. */

#include <gtest/gtest.h>

#include "memory/cache.hh"

namespace liquid
{
namespace
{

CacheConfig
smallCache()
{
    // 4 sets x 2 ways x 32 B lines = 256 B.
    CacheConfig config;
    config.sizeBytes = 256;
    config.assoc = 2;
    config.lineSize = 32;
    return config;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c("c", smallCache());
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x101F, false));   // same line
    EXPECT_FALSE(c.access(0x1020, false));  // next line
    EXPECT_EQ(c.stats().get("misses"), 2u);
    EXPECT_EQ(c.stats().get("hits"), 2u);
}

TEST(Cache, LruEviction)
{
    Cache c("c", smallCache());
    // Three lines mapping to set 0 (line addr multiples of 4*32=128).
    EXPECT_FALSE(c.access(0 * 128, false));
    EXPECT_FALSE(c.access(8 * 128, false));
    EXPECT_TRUE(c.access(0 * 128, false));   // refresh line A
    EXPECT_FALSE(c.access(16 * 128, false)); // evicts line B (LRU)
    EXPECT_TRUE(c.access(0 * 128, false));
    EXPECT_FALSE(c.access(8 * 128, false));  // B was evicted
    EXPECT_EQ(c.stats().get("evictions"), 2u);
}

TEST(Cache, WritebackTracking)
{
    Cache c("c", smallCache());
    c.access(0 * 128, true);   // dirty
    c.access(8 * 128, false);
    c.access(16 * 128, false); // evicts dirty line A
    c.access(24 * 128, false); // evicts clean line B
    EXPECT_EQ(c.stats().get("writebacks"), 1u);
}

TEST(Cache, RangeAccessCountsLines)
{
    Cache c("c", smallCache());
    // 64 bytes spanning exactly two lines.
    EXPECT_EQ(c.accessRange(0x1000, 64, false), 2u);
    EXPECT_EQ(c.accessRange(0x1000, 64, false), 0u);
    // Unaligned range straddling a third line.
    EXPECT_EQ(c.accessRange(0x1010, 64, false), 1u);
}

TEST(Cache, FlushDropsContents)
{
    Cache c("c", smallCache());
    c.access(0x2000, false);
    EXPECT_TRUE(c.access(0x2000, false));
    c.flush();
    EXPECT_FALSE(c.access(0x2000, false));
}

TEST(Cache, PaperConfiguration)
{
    // The ARM-926EJ-S caches: 16 KB, 64-way, 32 B lines -> 8 sets.
    CacheConfig config;
    Cache c("dcache", config);
    EXPECT_EQ(c.numSets(), 8u);
    // 64 distinct lines mapping to one set all fit (64 ways).
    for (unsigned i = 0; i < 64; ++i)
        c.access(i * 8 * 32, false);
    for (unsigned i = 0; i < 64; ++i)
        EXPECT_TRUE(c.access(i * 8 * 32, false)) << i;
}

} // namespace
} // namespace liquid
