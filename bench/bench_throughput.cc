/**
 * @file
 * google-benchmark microbenchmarks of the simulator infrastructure
 * itself: simulated instructions per second in each execution mode,
 * translator event throughput, and scalarizer compile speed. These are
 * host-performance benchmarks (not paper results) for keeping the
 * toolchain fast enough to run the sweeps.
 */

#include <benchmark/benchmark.h>

#include "asm/assembler.hh"
#include "scalarizer/scalarizer.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace
{

using namespace liquid;

const Workload &
firWorkload()
{
    static const auto suite = makeSuite();
    for (const auto &wl : suite) {
        if (wl->name() == "fir")
            return *wl;
    }
    std::abort();
}

void
BM_SimulateScalar(benchmark::State &state)
{
    const auto build =
        firWorkload().build(EmitOptions::Mode::InlineScalar);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        System sys(SystemConfig::make(ExecMode::ScalarBaseline),
                   build.prog);
        sys.run();
        insts += sys.core().stats().get("insts");
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateScalar);

void
BM_SimulateLiquid(benchmark::State &state)
{
    const auto build = firWorkload().build(EmitOptions::Mode::Scalarized);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();
        insts += sys.core().stats().get("insts") +
                 sys.core().stats().get("ucodeInsts");
    }
    state.counters["sim_insts_per_s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateLiquid);

void
BM_ScalarizeSuite(benchmark::State &state)
{
    const auto suite = makeSuite();
    for (auto _ : state) {
        for (const auto &wl : suite) {
            auto build = wl->build(EmitOptions::Mode::Scalarized);
            benchmark::DoNotOptimize(build.prog.code().size());
        }
    }
}
BENCHMARK(BM_ScalarizeSuite);

void
BM_Assemble(benchmark::State &state)
{
    const std::string src = R"(
        .words src 1 2 3 4 5 6 7 8
        .data dst 32
        fn:
            mov r0, #0
        top:
            ldw r1, [src + r0]
            add r1, r1, #100
            stw [dst + r0], r1
            add r0, r0, #1
            cmp r0, #8
            blt top
            ret
        main:
            bl.simd fn
            halt
    )";
    for (auto _ : state) {
        Program prog = assemble(src);
        benchmark::DoNotOptimize(prog.code().size());
    }
}
BENCHMARK(BM_Assemble);

} // namespace

BENCHMARK_MAIN();
