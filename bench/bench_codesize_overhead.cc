/**
 * @file
 * Reproduces the paper's code-size result (Section 5): compiling for
 * Liquid SIMD (outlining bl/ret, idioms, alignment) grows the binary
 * by under 1% — the paper's worst case was 104.hydro2d. We compare the
 * inline-scalar binary against the outlined Liquid binary, padding
 * both with the same representative application size: the hot loops
 * are a tiny fraction of a real benchmark's text (the reason the
 * paper's overhead is so small), so we report overhead both raw
 * (hot-loop-only programs) and scaled to the paper's text sizes.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Code size overhead of Liquid SIMD compilation "
                 "===\n\n";

    // The paper's benchmarks are full SPEC/MediaBench programs whose
    // text is dominated by non-hot code. Our drivers are only the hot
    // loops, so raw percentages are inflated; scale against a
    // representative 64 KB text segment as well.
    constexpr std::size_t representative_text = 64 * 1024;

    Table t({{"benchmark", -14}, {"inline B", 10}, {"liquid B", 10},
             {"delta B", 9}, {"raw %", 9}, {"app-scale %", 13}});
    t.header(std::cout);

    double worst_scaled = 0;
    for (const auto &wl : makeSuite()) {
        const auto inline_build =
            wl->build(EmitOptions::Mode::InlineScalar);
        const auto liquid_build =
            wl->build(EmitOptions::Mode::Scalarized);
        const std::size_t a = inline_build.prog.codeSizeBytes();
        const std::size_t b = liquid_build.prog.codeSizeBytes();
        const double raw =
            100.0 * (static_cast<double>(b) - static_cast<double>(a)) /
            static_cast<double>(a);
        const double scaled =
            100.0 * (static_cast<double>(b) - static_cast<double>(a)) /
            static_cast<double>(representative_text);
        worst_scaled = std::max(worst_scaled, scaled);
        t.row(std::cout, wl->name(), a, b,
              static_cast<long>(b) - static_cast<long>(a), fmt(raw),
              fmt(scaled, 3));
    }

    std::cout << "\nWorst app-scale overhead: " << fmt(worst_scaled, 3)
              << "% (paper: <1%, worst case 104.hydro2d)\n"
              << "Negative rows (MPEG2): outlining *shrinks* code when "
                 "a hot loop is invoked from several sites, since the "
                 "inline baseline duplicates the body.\n";
    return worst_scaled < 1.0 ? 0 : 1;
}
