/**
 * @file
 * Reproduces paper Table 2: synthesis results for the dynamic
 * translator, via the structural hardware cost model (we cannot run a
 * 90 nm standard-cell flow here — see DESIGN.md substitution 4).
 * Also prints the width/register-count scaling ablation supporting the
 * paper's claim that register state grows linearly with vector length.
 */

#include <iostream>

#include "bench/paper_data.hh"
#include "bench/bench_util.hh"
#include "translator/cost_model.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Table 2: synthesis results for the dynamic "
                 "translator ===\n\n";

    CostModelParams params;  // 8-wide, 16 registers: the paper's design
    const CostModelResult r = evalCostModel(params);

    Table t({{"metric", -28}, {"paper", 14}, {"model", 14}});
    t.header(std::cout);
    t.row(std::cout, "crit. path (gates)", paperTable2.critPathGates,
          r.critPathGates);
    t.row(std::cout, "delay (ns)", fmt(paperTable2.critPathNs),
          fmt(r.critPathNs));
    t.row(std::cout, "area (cells)", paperTable2.cells, r.totalCells);
    t.row(std::cout, "area (mm^2)",
          "<" + fmt(paperTable2.areaMm2UpperBound, 1), fmt(r.areaMm2, 3));
    t.row(std::cout, "reg state (bits/reg)", paperTable2.regStateBits,
          r.regStateBitsPerReg);
    t.row(std::cout, "reg state share",
          fmt(paperTable2.regStateShare * 100, 0) + "%",
          fmt(100.0 * static_cast<double>(r.regStateCells) /
                  static_cast<double>(r.totalCells - r.ucodeBufferCells),
              0) + "%");
    t.row(std::cout, "ucode buffer (cells)",
          paperTable2.ucodeBufferCells, r.ucodeBufferCells);
    t.row(std::cout, "freq (MHz)", ">650", fmt(r.freqMhz, 0));

    std::cout << "\n=== Ablation: scaling with accelerator width ===\n\n";
    Table s({{"width", 8}, {"bits/reg", 10}, {"cells", 10},
             {"mm^2", 8}, {"gates", 7}, {"ns", 7}});
    s.header(std::cout);
    for (unsigned width : {2u, 4u, 8u, 16u, 32u}) {
        CostModelParams p;
        p.simdWidth = width;
        const auto res = evalCostModel(p);
        s.row(std::cout, width, res.regStateBitsPerReg, res.totalCells,
              fmt(res.areaMm2, 3), res.critPathGates,
              fmt(res.critPathNs));
    }

    std::cout << "\n=== Ablation: scaling with architectural registers "
                 "(paper: 16-reg ARM keeps state small) ===\n\n";
    Table g({{"regs", 8}, {"state bits", 12}, {"cells", 10},
             {"mm^2", 8}});
    g.header(std::cout);
    for (unsigned regs : {16u, 32u, 64u}) {
        CostModelParams p;
        p.numRegs = regs;
        const auto res = evalCostModel(p);
        g.row(std::cout, regs, res.regStateBits, res.totalCells,
              fmt(res.areaMm2, 3));
    }
    return 0;
}
