/**
 * @file
 * The paper's second evolution axis: SIMD *functionality* growth.
 *
 * "The opcode repertoire is also commonly enhanced from generation to
 * generation ... the number of opcodes in the ARM SIMD instruction set
 * went from 60 to more than 120 in the change from Version 6 to 7."
 *
 * One Liquid SIMD binary is run on four accelerator generations that
 * differ in both width and shuffle repertoire. Loops using shuffles an
 * old generation lacks transparently stay scalar (permutation CAM
 * miss); newer hardware picks them up with no recompilation — the
 * forward-migration story the paper's introduction motivates.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

namespace
{

struct Generation
{
    const char *name;
    unsigned width;
    PermRepertoire perms;
};

const Generation generations[] = {
    {"gen1 (4-wide, pairs only)", 4,
     permSet({PermKind::SwapPairs})},
    {"gen2 (8-wide, +butterfly)", 8,
     permSet({PermKind::SwapPairs, PermKind::SwapHalves})},
    {"gen3 (8-wide, +reverse)", 8,
     permSet({PermKind::SwapPairs, PermKind::SwapHalves,
              PermKind::Reverse})},
    {"gen4 (16-wide, full)", 16, allPerms},
};

} // namespace

int
main()
{
    std::cout << "=== Forward migration across accelerator "
                 "generations (width AND opcode repertoire) ===\n\n";

    // fft uses all three shuffle kinds across its stages — the
    // sharpest probe of repertoire growth.
    std::unique_ptr<Workload> fft;
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fft")
            fft = std::move(wl);
    }
    const Cycles base = baselineCycles(*fft);
    const auto build = fft->build(EmitOptions::Mode::Scalarized);

    Table t({{"generation", -28}, {"cycles", 10}, {"speedup", 9},
             {"bound", 7}, {"refused", 9}});
    t.header(std::cout);

    for (const auto &gen : generations) {
        SystemConfig config =
            SystemConfig::make(ExecMode::Liquid, gen.width);
        config.translator.permRepertoire = gen.perms;
        config.translator.latencyPerInst = 0;
        System sys(config, build.prog);
        sys.run();
        const auto refused =
            sys.translator().stats().get("abort.unsupportedShuffle") +
            sys.translator().stats().get("abort.valueMismatch");
        t.row(std::cout, gen.name, sys.cycles(),
              fmt(static_cast<double>(base) /
                  static_cast<double>(sys.cycles())),
              sys.translator().stats().get("translations"), refused);
    }

    std::cout << "\nSame binary throughout; each generation binds "
                 "exactly the loops its hardware can express.\n";

    std::cout << "\n=== Suite totals per generation ===\n\n";
    Table s({{"generation", -28}, {"suite cycles", 14},
             {"suite speedup", 15}});
    s.header(std::cout);
    double base_total = 0;
    for (const auto &wl : makeSuite())
        base_total += static_cast<double>(baselineCycles(*wl));
    for (const auto &gen : generations) {
        double total = 0;
        for (const auto &wl : makeSuite()) {
            const auto b = wl->build(EmitOptions::Mode::Scalarized);
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, gen.width);
            config.translator.permRepertoire = gen.perms;
            config.translator.latencyPerInst = 0;
            System sys(config, b.prog);
            sys.run();
            total += static_cast<double>(sys.cycles());
        }
        s.row(std::cout, gen.name, static_cast<Cycles>(total),
              fmt(base_total / total));
    }
    return 0;
}
