/**
 * @file
 * Reproduces paper Figure 6: speedup of one Liquid SIMD binary per
 * benchmark on accelerators of width 2/4/8/16, relative to a scalar
 * processor without SIMD and without outlining. Also reproduces the
 * figure's callout: the delta between native-ISA SIMD and Liquid SIMD
 * (the virtualization overhead), which the paper measured at ~1e-3
 * speedup on FIR, its worst case.
 *
 * Expected shape (paper Section 5): FIR highest (hot loop ~94% of
 * runtime); 179.art lowest (cache misses dominate); the MPEG2 codecs
 * flat from width 8 to 16 (8-element loops); wider accelerators
 * otherwise monotonically better.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Figure 6: speedup vs scalar baseline (one Liquid "
                 "binary per benchmark) ===\n\n";

    Table t({{"benchmark", -14}, {"W=2", 8}, {"W=4", 8}, {"W=8", 8},
             {"W=16", 8}, {"ideal8", 9}, {"overhead", 10}});
    t.header(std::cout);

    double best_speedup = 0;
    std::string best_name;
    double worst_speedup = 1e9;
    std::string worst_name;
    double m2d_w8 = 0, m2d_w16 = 0;
    double max_overhead = 0;

    for (const auto &wl : makeSuite()) {
        const Cycles base = baselineCycles(*wl);
        const auto build = wl->build(EmitOptions::Mode::Scalarized);

        std::vector<std::string> cells;
        double w8 = 0, w16 = 0;
        for (unsigned width : {2u, 4u, 8u, 16u}) {
            const auto out = runOnce(
                build, SystemConfig::make(ExecMode::Liquid, width));
            const double speedup = static_cast<double>(base) /
                                   static_cast<double>(out.cycles);
            cells.push_back(fmt(speedup));
            if (width == 8)
                w8 = speedup;
            if (width == 16)
                w16 = speedup;
        }

        // The figure's callout: the same binary with built-in ISA
        // support, i.e. the outlined regions execute as SIMD from the
        // very first call (the paper modified its simulator to
        // "eliminate control generation"). We reproduce that by
        // warm-starting the microcode cache from a prior run.
        const SystemConfig liquid8 =
            SystemConfig::make(ExecMode::Liquid, 8);
        System warmup(liquid8, build.prog);
        warmup.run();
        System ideal(liquid8, build.prog);
        ideal.ucodeCache().warmStartFrom(warmup.ucodeCache());
        ideal.run();
        const double ideal8 = static_cast<double>(base) /
                              static_cast<double>(ideal.cycles());
        const double delta = ideal8 - w8;
        max_overhead = std::max(max_overhead, delta);

        t.row(std::cout, wl->name(), cells[0], cells[1], cells[2],
              cells[3], fmt(ideal8), fmt(delta, 4));

        if (w16 > best_speedup) {
            best_speedup = w16;
            best_name = wl->name();
        }
        if (w16 < worst_speedup) {
            worst_speedup = w16;
            worst_name = wl->name();
        }
        if (wl->name() == "mpeg2dec") {
            m2d_w8 = w8;
            m2d_w16 = w16;
        }
    }

    std::cout << "\nShape checks vs the paper:\n"
              << "  highest speedup: " << best_name
              << " (paper: fir)  -> "
              << (best_name == "fir" ? "match" : "MISMATCH") << '\n'
              << "  lowest speedup:  " << worst_name
              << " (paper: 179.art) -> "
              << (worst_name == "179.art" ? "match" : "MISMATCH") << '\n'
              << "  mpeg2dec flat 8->16 (paper: 8-element loops): "
              << fmt(m2d_w8) << " -> " << fmt(m2d_w16) << "  "
              << (m2d_w16 <= m2d_w8 * 1.05 ? "match" : "MISMATCH")
              << '\n'
              << "  per-run overhead columns above are bounded by "
                 "first-call amortization at our small rep counts\n";

    // The callout proper: the virtualization overhead is the one-time
    // scalar execution + translation of each region, so it vanishes as
    // the hot loop is called more often. The paper amortized over full
    // SPEC/MediaBench runs (~1e-3 on FIR, its worst case); we sweep
    // the call count and watch the overhead decay toward that.
    std::cout << "\n=== Callout: virtualization overhead vs hot-loop "
                 "call count (fir) ===\n\n";
    Table a({{"calls", 8}, {"liquid", 10}, {"ideal", 10},
             {"overhead", 10}});
    a.header(std::cout);
    for (unsigned reps : {24u, 128u, 512u, 2048u}) {
        std::unique_ptr<Workload> fir;
        for (auto &wl : makeSuite()) {
            if (wl->name() == "fir")
                fir = std::move(wl);
        }
        fir->setReps(reps);
        const Cycles base = baselineCycles(*fir);
        const auto build = fir->build(EmitOptions::Mode::Scalarized);
        const SystemConfig liquid8 =
            SystemConfig::make(ExecMode::Liquid, 8);
        System liquid(liquid8, build.prog);
        liquid.run();
        System warm(liquid8, build.prog);
        warm.ucodeCache().warmStartFrom(liquid.ucodeCache());
        warm.run();
        const double s_liquid = static_cast<double>(base) /
                                static_cast<double>(liquid.cycles());
        const double s_ideal = static_cast<double>(base) /
                               static_cast<double>(warm.cycles());
        a.row(std::cout, reps, fmt(s_liquid, 3), fmt(s_ideal, 3),
              fmt(s_ideal - s_liquid, 4));
    }
    std::cout << "\n(overhead ~ 1/calls; the paper's full-application "
                 "run corresponds to the bottom of this sweep)\n";
    (void)max_overhead;
    return 0;
}
