/**
 * @file
 * Reproduces paper Figure 6: speedup of one Liquid SIMD binary per
 * benchmark on accelerators of width 2/4/8/16, relative to a scalar
 * processor without SIMD and without outlining, plus the figure's
 * virtualization-overhead callout.
 *
 * Ported onto the lab subsystem: the sweep is the declarative "fig6"
 * campaign (see src/lab/experiments.cc), sharded across worker threads
 * by the lab Runner, and the table below is rendered from the same
 * structured results that `liquid-lab run` writes to BENCH_fig6.json.
 * Set LIQUID_LAB_JOBS to override the worker count.
 */

#include <cstdlib>
#include <iostream>

#include "lab/experiments.hh"
#include "lab/runner.hh"

using namespace liquid;
using namespace liquid::lab;

int
main()
{
    const char *env = std::getenv("LIQUID_LAB_JOBS");
    const unsigned jobs =
        env ? static_cast<unsigned>(std::strtoul(env, nullptr, 10)) : 0;

    const Campaign campaign = campaignByName("fig6", /*smoke=*/false);
    const ResultSet results =
        Runner(jobs).run(campaign.matrix.expand());
    renderFig6(std::cout, results);
    return 0;
}
