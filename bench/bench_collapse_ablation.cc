/**
 * @file
 * Ablation: the microcode buffer's alignment network (paper Section
 * 4.1). Collapsing the tentative offset-array loads out of translated
 * regions costs roughly half the buffer's cells; the paper notes it is
 * "not strictly necessary for correctness". This bench quantifies what
 * it buys: microcode size and cycles with and without collapsing,
 * plus the hardware cost of the network from the cost model.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "translator/cost_model.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Ablation: microcode collapse (alignment) network "
                 "===\n\n";

    Table t({{"benchmark", -14}, {"cyc on", 10}, {"cyc off", 10},
             {"delta %", 9}, {"collapsed", 11}});
    t.header(std::cout);

    double total_on = 0;
    double total_off = 0;
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        SystemConfig on = SystemConfig::make(ExecMode::Liquid, 8);
        SystemConfig off = on;
        off.translator.collapseEnabled = false;

        System sys_on(on, build.prog);
        sys_on.run();
        System sys_off(off, build.prog);
        sys_off.run();

        total_on += static_cast<double>(sys_on.cycles());
        total_off += static_cast<double>(sys_off.cycles());
        const double delta =
            100.0 *
            (static_cast<double>(sys_off.cycles()) -
             static_cast<double>(sys_on.cycles())) /
            static_cast<double>(sys_on.cycles());
        t.row(std::cout, wl->name(), sys_on.cycles(), sys_off.cycles(),
              fmt(delta), sys_on.translator().stats().get(
                              "instsCollapsed"));
    }

    std::cout << "\nSuite: " << fmt(100.0 * (total_off / total_on - 1.0))
              << "% slower without the collapse network.\n"
              << "Most benchmarks lose little (the extra vector loads "
                 "hit in cache). The outlier is whichever benchmark "
                 "carries large constant tables: ear's six float "
                 "coefficient tables are as big as its data, and "
                 "keeping their loads inflates the working set against "
                 "the 16 KB data cache.\n";

    // What the network costs in hardware (cost model: the alignment
    // share of the microcode buffer).
    const auto with_net = evalCostModel(CostModelParams{});
    std::cout << "Hardware cost of the network: ~"
              << with_net.ucodeBufferCells / 2
              << " cells of the " << with_net.ucodeBufferCells
              << "-cell microcode buffer (paper: a bit under half).\n"
              << "Conclusion: correctness is unaffected (the paper's "
                 "claim), and the network pays for itself whenever "
                 "constant tables contend for the data cache.\n";
    return 0;
}
