/**
 * @file
 * Reproduces paper Table 5: the number of scalar instructions in each
 * benchmark's outlined function(s) (mean and max across hot loops).
 * Absolute values differ from the paper (Trimaran-compiled SPEC code vs
 * our kernels), but every region must land in the same 11-64 range
 * that sized the paper's 64-instruction microcode buffer.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "bench/paper_data.hh"
#include "sim/system.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Table 5: scalar instructions in outlined "
                 "function(s) ===\n\n";

    Table t({{"benchmark", -14}, {"paper mean", 12}, {"paper max", 11},
             {"ours mean", 11}, {"ours max", 10}, {"loops", 7},
             {"ucode max", 11}});
    t.header(std::cout);

    bool all_fit = true;
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        double sum = 0;
        unsigned max = 0;
        unsigned loops = 0;
        for (const auto &k : build.kernels) {
            sum += k.instCount;
            max = std::max(max, k.instCount);
            loops += k.numStages;
            all_fit = all_fit && k.instCount <= 64;
        }

        // The translated microcode must also fit the 64-entry buffer.
        System sys(SystemConfig::make(ExecMode::Liquid, 8), build.prog);
        sys.run();
        std::size_t ucode_max = 0;
        for (const Addr entry : build.kernelEntries) {
            const UcodeEntry *uc =
                sys.ucodeCache().lookup(entry, sys.cycles() + 1'000'000);
            if (uc)
                ucode_max = std::max(ucode_max,
                                     uc->insts.size());
        }
        all_fit = all_fit && ucode_max <= 64;

        const auto &paper = paperTable5.at(wl->name());
        t.row(std::cout, wl->name(), fmt(paper.mean, 1), paper.max,
              fmt(sum / static_cast<double>(build.kernels.size()), 1),
              max, loops, ucode_max);
    }

    std::cout << "\nAll regions fit the 64-instruction microcode "
              << "buffer: " << (all_fit ? "yes" : "NO") << '\n';
    return all_fit ? 0 : 1;
}
