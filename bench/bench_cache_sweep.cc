/**
 * @file
 * Ablation: data-cache size vs Liquid SIMD speedup. The paper
 * attributes 179.art's low speedup to cache misses in its hot loops;
 * as the cache shrinks every benchmark converges toward memory-bound
 * behaviour where vectors cannot help, and as it grows 179.art
 * recovers toward the compute speedups of its peers.
 *
 * Ported onto the lab subsystem: declarative "cache" campaign, sharded
 * by the lab Runner, rendered from the structured results (same data
 * as `liquid-lab run`'s BENCH_cache.json).
 */

#include <cstdlib>
#include <iostream>

#include "lab/experiments.hh"
#include "lab/runner.hh"

using namespace liquid;
using namespace liquid::lab;

int
main()
{
    const char *env = std::getenv("LIQUID_LAB_JOBS");
    const unsigned jobs =
        env ? static_cast<unsigned>(std::strtoul(env, nullptr, 10)) : 0;

    const Campaign campaign = campaignByName("cache", /*smoke=*/false);
    const ResultSet results =
        Runner(jobs).run(campaign.matrix.expand());
    return renderCacheSweep(std::cout, results) ? 0 : 1;
}
