/**
 * @file
 * Ablation: data-cache size vs Liquid SIMD speedup. The paper
 * attributes 179.art's low speedup to cache misses in its hot loops;
 * this sweep shows the mechanism directly: as the cache shrinks every
 * benchmark converges toward memory-bound behaviour where vectors
 * cannot help, and as it grows 179.art recovers toward the compute
 * speedups of its peers.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Ablation: Liquid speedup (W=8) vs data cache "
                 "size ===\n\n";

    const std::size_t sizes[] = {4 * 1024, 16 * 1024, 64 * 1024,
                                 256 * 1024};

    Table t({{"benchmark", -14}, {"4KB", 8}, {"16KB", 8}, {"64KB", 8},
             {"256KB", 8}});
    t.header(std::cout);

    for (const auto &wl : makeSuite()) {
        std::vector<std::string> cells;
        for (const std::size_t bytes : sizes) {
            auto cacheCfg = [&](SystemConfig c) {
                c.core.dcache.sizeBytes = bytes;
                c.core.dcache.assoc = 64;
                return c;
            };
            const auto build = wl->build(EmitOptions::Mode::Scalarized);
            const auto inl = wl->build(EmitOptions::Mode::InlineScalar);
            System base(
                cacheCfg(SystemConfig::make(ExecMode::ScalarBaseline)),
                inl.prog);
            base.run();
            System liquid(
                cacheCfg(SystemConfig::make(ExecMode::Liquid, 8)),
                build.prog);
            liquid.run();
            cells.push_back(fmt(static_cast<double>(base.cycles()) /
                                static_cast<double>(liquid.cycles())));
        }
        t.row(std::cout, wl->name(), cells[0], cells[1], cells[2],
              cells[3]);
    }

    std::cout << "\n179.art's speedup tracks cache size (the paper's "
                 "explanation for its last place); compute-bound "
                 "benchmarks like fir barely move.\n";
    return 0;
}
