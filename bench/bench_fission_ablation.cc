/**
 * @file
 * Ablation: the inherent cost of the scalar representation's
 * memory-boundary permutations (paper Sections 3.2/3.3): element
 * reordering "must occur at scalar loop boundaries using a
 * memory-memory interface. This makes the code inherently less
 * efficient than standard SIMD instruction sets, which can perform
 * this operation in registers."
 *
 * We quantify that inherent gap on permutation-gradient kernels: the
 * same computation with 0, 1 and 2 unfusable permutations, lowered
 * both as native SIMD (permutes in registers, one loop) and as Liquid
 * SIMD (fissioned loops + tmp arrays + offset-indexed accesses),
 * executed at width 8 with translation warm.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "scalarizer/scalarizer.hh"

using namespace liquid;
using namespace liquid::bench;

namespace
{

constexpr unsigned n = 512;

/** A chain computation with `perms` unfusable permutations inside. */
vir::Kernel
gradientKernel(unsigned perms)
{
    vir::Kernel k("grad" + std::to_string(perms), n);
    const int a = k.load("ga");
    const int b = k.load("gb");
    int v = k.bin(Opcode::Add, a, b);           // computed value
    for (unsigned p = 0; p < perms; ++p) {
        const int shuffled = k.perm(v, PermKind::SwapHalves, 4);
        v = k.bin(Opcode::Eor, shuffled, b);    // non-store consumer
    }
    k.store("gc", v);
    return k;
}

Program
buildFor(const vir::Kernel &kernel, EmitOptions::Mode mode)
{
    Program prog;
    prog.allocWords("ga", randomWords("fiss.a", n + 16, -100, 100));
    prog.allocWords("gb", randomWords("fiss.b", n + 16, -100, 100));
    prog.allocData("gc", (n + 16) * 4);

    EmitOptions opts;
    opts.mode = mode;
    opts.nativeWidth = 8;
    emitKernel(prog, kernel, opts);

    prog.defineLabel("main");
    for (int i = 0; i < 6; ++i)
        prog.addInst(Inst::call(-1, true, kernel.name(), 16));
    prog.addInst(Inst::halt());
    prog.resolveBranches();
    return prog;
}

} // namespace

int
main()
{
    std::cout << "=== Ablation: cost of memory-boundary permutations "
                 "(loop fission) ===\n\n";

    Table t({{"perms", 7}, {"loops", 7}, {"native cyc", 12},
             {"liquid cyc", 12}, {"gap", 8}});
    t.header(std::cout);

    for (unsigned perms : {0u, 1u, 2u, 3u}) {
        const vir::Kernel kernel = gradientKernel(perms);

        Program native_prog =
            buildFor(kernel, EmitOptions::Mode::Native);
        System native(SystemConfig::make(ExecMode::NativeSimd, 8),
                      native_prog);
        native.run();

        Program liquid_prog =
            buildFor(kernel, EmitOptions::Mode::Scalarized);
        SystemConfig config = SystemConfig::make(ExecMode::Liquid, 8);
        config.pretranslate = true;  // isolate steady-state code quality
        System liquid(config, liquid_prog);
        liquid.run();

        // Count fissioned loops for the report.
        Program probe;
        probe.allocWords("ga", randomWords("fiss.a", n + 16, -1, 1));
        probe.allocWords("gb", randomWords("fiss.b", n + 16, -1, 1));
        probe.allocData("gc", (n + 16) * 4);
        EmitOptions opts;
        const EmitResult r = emitKernel(probe, kernel, opts);

        t.row(std::cout, perms, r.numStages, native.cycles(),
              liquid.cycles(),
              fmt(static_cast<double>(liquid.cycles()) /
                  static_cast<double>(native.cycles())) + "x");
    }

    std::cout << "\nEach unfusable permutation adds one loop fission: "
                 "a tmp-array round trip through memory plus "
                 "offset-indexed accesses. Native SIMD shuffles in "
                 "registers and is immune — the representation's "
                 "documented inefficiency (paper Section 3.2).\n";
    return 0;
}
