/**
 * @file
 * Reference numbers transcribed from the paper (Clark et al., HPCA'07)
 * so each benchmark binary can print paper-vs-measured side by side.
 */

#ifndef LIQUID_BENCH_PAPER_DATA_HH
#define LIQUID_BENCH_PAPER_DATA_HH

#include <map>
#include <string>

namespace liquid::bench
{

/** Paper Table 5: scalar instructions per outlined function. */
struct Table5Row
{
    double mean;
    unsigned max;
};

inline const std::map<std::string, Table5Row> paperTable5 = {
    {"052.alvinn", {12.5, 13}}, {"056.ear", {34.5, 36}},
    {"093.nasa7", {45.5, 59}},  {"101.tomcatv", {35.5, 61}},
    {"104.hydro2d", {27.2, 40}}, {"171.swim", {37.8, 51}},
    {"172.mgrid", {46.2, 62}},  {"179.art", {12.8, 19}},
    {"mpeg2dec", {12.5, 13}},   {"mpeg2enc", {14.5, 19}},
    {"gsmdec", {25.0, 25}},     {"gsmenc", {19.5, 28}},
    {"lu", {11.0, 11}},         {"fir", {11.0, 11}},
    {"fft", {31.3, 38}},
};

/** Paper Table 6: cycles between the first two calls of hot loops. */
struct Table6Row
{
    unsigned lt150;
    unsigned lt300;
    unsigned gt300;
    double mean;
};

inline const std::map<std::string, Table6Row> paperTable6 = {
    {"052.alvinn", {0, 0, 2, 19984}},   {"056.ear", {0, 0, 3, 96488}},
    {"093.nasa7", {0, 0, 12, 23876}},   {"101.tomcatv", {0, 0, 6, 16036}},
    {"104.hydro2d", {0, 0, 18, 24346}}, {"171.swim", {0, 0, 9, 33258}},
    {"172.mgrid", {0, 0, 13, 5218}},    {"179.art", {0, 0, 5, 2102224}},
    {"mpeg2dec", {0, 1, 1, 269}},       {"mpeg2enc", {0, 3, 1, 257}},
    {"gsmdec", {0, 0, 1, 358}},         {"gsmenc", {0, 0, 1, 538}},
    {"lu", {0, 0, 1, 15054}},           {"fir", {0, 0, 1, 13343}},
    {"fft", {0, 0, 3, 7716}},
};

/** Paper Table 2: synthesis of the 8-wide translator (90 nm). */
struct Table2Ref
{
    unsigned critPathGates = 16;
    double critPathNs = 1.51;
    unsigned long cells = 174117;
    double areaMm2UpperBound = 0.2;
    unsigned regStateBits = 56;   // per register
    double regStateShare = 0.55;  // of control-generator area
    unsigned ucodeBufferCells = 77000;
};

inline const Table2Ref paperTable2{};

} // namespace liquid::bench

#endif // LIQUID_BENCH_PAPER_DATA_HH
