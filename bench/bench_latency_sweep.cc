/**
 * @file
 * Ablation supporting the paper's claim (Sections 4/5) that
 * post-retirement translation is far off the critical path: sweeps the
 * translation cost per observed instruction and reports suite cycles.
 * The 1-cycle/instruction hardware design point must be within 0.5% of
 * a free translator.
 *
 * Ported onto the lab subsystem: declarative "latency" campaign,
 * sharded by the lab Runner, rendered from the structured results
 * (same data as `liquid-lab run`'s BENCH_latency.json).
 */

#include <cstdlib>
#include <iostream>

#include "lab/experiments.hh"
#include "lab/runner.hh"

using namespace liquid;
using namespace liquid::lab;

int
main()
{
    const char *env = std::getenv("LIQUID_LAB_JOBS");
    const unsigned jobs =
        env ? static_cast<unsigned>(std::strtoul(env, nullptr, 10)) : 0;

    const Campaign campaign =
        campaignByName("latency", /*smoke=*/false);
    const ResultSet results =
        Runner(jobs).run(campaign.matrix.expand());
    return renderLatencySweep(std::cout, results) ? 0 : 1;
}
