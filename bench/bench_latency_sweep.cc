/**
 * @file
 * Ablation supporting the paper's claim (Sections 4/5) that
 * post-retirement translation is far off the critical path: dynamic
 * translation "could have taken tens of cycles per scalar instruction
 * without affecting performance", because hundreds/thousands of cycles
 * pass before an outlined loop's second call (Table 6). Sweeps the
 * translation cost per observed instruction and reports suite cycles.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Ablation: translation latency per observed scalar "
                 "instruction ===\n\n";

    const Cycles latencies[] = {0, 1, 10, 50, 200};

    Table t({{"benchmark", -14}, {"lat=0", 10}, {"lat=1", 10},
             {"lat=10", 10}, {"lat=50", 10}, {"lat=200", 10}});
    t.header(std::cout);

    std::map<Cycles, double> total;
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        std::vector<std::string> cells;
        for (Cycles lat : latencies) {
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, 8);
            config.translator.latencyPerInst = lat;
            const auto out = runOnce(build, config);
            cells.push_back(std::to_string(out.cycles));
            total[lat] += static_cast<double>(out.cycles);
        }
        t.row(std::cout, wl->name(), cells[0], cells[1], cells[2],
              cells[3], cells[4]);
    }

    std::cout << "\nSuite totals:\n";
    for (Cycles lat : latencies) {
        std::cout << "  " << lat << " cycles/inst: "
                  << static_cast<Cycles>(total[lat]) << '\n';
    }
    // The paper's design point is a 1-cycle/instruction hardware
    // translator: it keeps pace with retirement, so microcode is ready
    // when the first execution returns and performance is identical to
    // a free translator. Slower (JIT-like) translators degrade only
    // through missed early calls, bounded by Table 6's call gaps.
    const double at1 = 100.0 * (total[1] / total[0] - 1.0);
    const double at10 = 100.0 * (total[10] / total[0] - 1.0);
    std::cout << "\nSlowdown vs free translation: "
              << fmt(at1, 3) << "% at 1 cycle/inst (paper's design: "
              << "negligible), " << fmt(at10, 2)
              << "% at 10 cycles/inst\n";
    return at1 < 0.5 ? 0 : 1;
}
