/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries: run a
 * workload under a mode/width, collect cycles and stats, and format
 * aligned tables.
 */

#ifndef LIQUID_BENCH_BENCH_UTIL_HH
#define LIQUID_BENCH_BENCH_UTIL_HH

#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "lab/lab.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

namespace liquid::bench
{

/**
 * Outcome of one simulated run. The lab subsystem's RunOutcome is a
 * superset (full counter snapshot); benches that only need the
 * headline numbers keep using this alias through runOnce below.
 */
using RunOutcome = lab::RunOutcome;

/**
 * Run @p build under @p config. Thin wrapper over lab::runOnce, which
 * moves the per-call log out of the finished Core instead of copying
 * one vector per call site.
 */
inline RunOutcome
runOnce(const Workload::Build &build, const SystemConfig &config)
{
    return lab::runOnce(build, config);
}

/** Cycles of the paper's baseline: inline scalar, no accelerator. */
inline Cycles
baselineCycles(const Workload &wl)
{
    const auto build = wl.build(EmitOptions::Mode::InlineScalar);
    return runOnce(build, SystemConfig::make(ExecMode::ScalarBaseline))
        .cycles;
}

/** Simple fixed-width table printer. */
class Table
{
  public:
    explicit Table(std::vector<std::pair<std::string, int>> columns)
        : columns_(std::move(columns))
    {
    }

    void
    header(std::ostream &os) const
    {
        std::size_t i = 0;
        std::size_t total = 0;
        for (const auto &[name, width] : columns_) {
            emitCell(os, i++, name);
            total += static_cast<std::size_t>(
                width < 0 ? -width : width);
        }
        os << '\n' << std::string(total, '-') << '\n';
    }

    template <typename... Cells>
    void
    row(std::ostream &os, const Cells &...cells) const
    {
        std::size_t i = 0;
        (emitCell(os, i++, cells), ...);
        os << '\n';
    }

  private:
    /** Negative widths left-align. */
    template <typename Cell>
    void
    emitCell(std::ostream &os, std::size_t i, const Cell &cell) const
    {
        const int width = columns_[i].second;
        if (width < 0)
            os << std::left << std::setw(-width) << cell << std::right;
        else
            os << std::setw(width) << cell;
    }

    std::vector<std::pair<std::string, int>> columns_;
};

/** Format a double with fixed precision. */
inline std::string
fmt(double value, int precision = 2)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace liquid::bench

#endif // LIQUID_BENCH_BENCH_UTIL_HH
