/**
 * @file
 * Reproduces paper Table 6: the number of cycles between the first two
 * consecutive calls to each outlined hot loop, bucketed at 150 and 300
 * cycles. The paper uses this to argue a hardware translator has
 * hundreds of cycles to finish before the microcode is first needed —
 * only the MPEG2 codecs call their tiny block loops back-to-back.
 */

#include <iostream>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/paper_data.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Table 6: cycles between first two consecutive "
                 "calls to outlined hot loops ===\n\n";

    Table t({{"benchmark", -14}, {"<150", 6}, {"<300", 6}, {">300", 6},
             {"mean", 10}, {"paper<300", 11}, {"paper mean", 12}});
    t.header(std::cout);

    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        // Width-8 Liquid system, as in the paper's evaluation.
        const auto out =
            runOnce(build, SystemConfig::make(ExecMode::Liquid, 8));

        unsigned lt150 = 0;
        unsigned lt300 = 0;
        unsigned gt300 = 0;
        double sum = 0;
        unsigned n = 0;
        for (const Addr entry : build.kernelEntries) {
            auto it = out.callLog.find(entry);
            if (it == out.callLog.end() || it->second.size() < 2)
                continue;
            const Cycles gap = it->second[1] - it->second[0];
            sum += static_cast<double>(gap);
            ++n;
            if (gap < 150)
                ++lt150;
            else if (gap < 300)
                ++lt300;
            else
                ++gt300;
        }
        const auto &paper = paperTable6.at(wl->name());
        t.row(std::cout, wl->name(), lt150, lt300, gt300,
              n ? fmt(sum / n, 0) : "-", paper.lt150 + paper.lt300,
              fmt(paper.mean, 0));
    }

    std::cout << "\nShape check: only the MPEG2 codecs should show "
                 "sub-300-cycle gaps; 179.art should show by far the "
                 "largest mean (cache-miss-bound first call).\n";
    return 0;
}
