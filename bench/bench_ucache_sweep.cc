/**
 * @file
 * Ablation supporting the paper's microcode-cache sizing (Section 5,
 * "Dynamic Translation Requirements"): 8 entries of 64 instructions
 * capture the working set of every benchmark; the suite-wide total
 * must flatten by 8 entries.
 *
 * Ported onto the lab subsystem: declarative "ucache" campaign,
 * sharded by the lab Runner, rendered from the structured results
 * (same data as `liquid-lab run`'s BENCH_ucache.json).
 */

#include <cstdlib>
#include <iostream>

#include "lab/experiments.hh"
#include "lab/runner.hh"

using namespace liquid;
using namespace liquid::lab;

int
main()
{
    const char *env = std::getenv("LIQUID_LAB_JOBS");
    const unsigned jobs =
        env ? static_cast<unsigned>(std::strtoul(env, nullptr, 10)) : 0;

    const Campaign campaign = campaignByName("ucache", /*smoke=*/false);
    const ResultSet results =
        Runner(jobs).run(campaign.matrix.expand());
    return renderUcacheSweep(std::cout, results) ? 0 : 1;
}
