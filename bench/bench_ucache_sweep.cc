/**
 * @file
 * Ablation supporting the paper's microcode-cache sizing (Section 5,
 * "Dynamic Translation Requirements"): 8 entries of 64 instructions
 * capture the working set of every benchmark. Sweeps the entry count
 * and reports cycles and microcode hit behaviour; the suite-wide
 * total must flatten by 8 entries.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace liquid;
using namespace liquid::bench;

int
main()
{
    std::cout << "=== Ablation: microcode cache capacity (paper: 8 "
                 "entries x 64 instructions = 2 KB) ===\n\n";

    const unsigned sizes[] = {1, 2, 4, 8, 16};

    Table t({{"benchmark", -14}, {"e=1", 10}, {"e=2", 10}, {"e=4", 10},
             {"e=8", 10}, {"e=16", 10}});
    t.header(std::cout);

    std::map<unsigned, double> total;
    for (const auto &wl : makeSuite()) {
        const auto build = wl->build(EmitOptions::Mode::Scalarized);
        std::vector<std::string> cells;
        for (unsigned entries : sizes) {
            SystemConfig config =
                SystemConfig::make(ExecMode::Liquid, 8);
            config.ucodeCache.entries = entries;
            const auto out = runOnce(build, config);
            cells.push_back(std::to_string(out.cycles));
            total[entries] += static_cast<double>(out.cycles);
        }
        t.row(std::cout, wl->name(), cells[0], cells[1], cells[2],
              cells[3], cells[4]);
    }

    std::cout << "\nSuite totals:\n";
    for (unsigned entries : sizes) {
        std::cout << "  " << entries << " entries: "
                  << static_cast<Cycles>(total[entries]) << " cycles\n";
    }
    const bool captured =
        total[8] <= total[16] * 1.001;  // no gain past 8 entries
    std::cout << "\n8 entries capture the working set (no gain at 16): "
              << (captured ? "yes" : "NO") << '\n';
    return captured ? 0 : 1;
}
