/**
 * @file
 * liquid-chaos: deterministic fault-schedule injection with an
 * architectural-state equivalence oracle.
 *
 * The paper's transparency claim is that Liquid SIMD execution
 * survives any external event — interrupts, microcode-cache flushes
 * and evictions, self-modifying code — with architectural results
 * bit-identical to the scalar loop. This tool checks that claim on the
 * 15-benchmark suite: every run executes a (workload, width, schedule)
 * triple twice, scalar reference vs Liquid-with-faults, and compares
 * final memory, scalar registers and call-log shape.
 *
 *   liquid-chaos smoke                      # suite x curated schedules
 *   liquid-chaos explore --window 16 --trials 8
 *                                           # exhaustive + randomized
 *   liquid-chaos run --schedule flush@80 --workload fir
 *                                           # replay one schedule key
 *
 * Common options: --width W (default 8), --workloads a,b,c, --json,
 * --seed S. Failing schedules print their canonical key, which feeds
 * straight back into `run --schedule`.
 *
 * The scalar reference side runs on the functional execution tier
 * (src/fast/) by default — it produces the identical architectural
 * snapshot at a fraction of the cost, which is what makes large
 * --trials sweeps affordable. --reference cycle restores the cycle
 * core as the ground-truth generator.
 *
 * Exit status: 0 when every schedule preserves architectural state;
 * 1 on any oracle mismatch; 2 on usage errors.
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "chaos/oracle.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "fast/reference.hh"
#include "fast/tier.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *chaosSchema = "liquid-chaos-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *chaosToolVersion = "1.0";

/**
 * Curated smoke schedules: at least one of every fault kind, at
 * retire indices that land inside every suite workload. Keep in sync
 * with the lab chaos campaign (src/lab/experiments.cc).
 */
const std::vector<std::string> smokeSchedules = {
    "p700",   "int@40",  "flush@80",
    "evict@60", "smc@100", "dcache@50",
    "int@40+flush@80+smc@100",  // kinds compose within one run
};

struct Options
{
    std::string command;
    unsigned width = 8;
    std::vector<std::string> workloads;  ///< empty = whole suite
    std::string schedule;                ///< run: schedule key
    std::uint64_t window = 16;           ///< explore: exhaustive part
    unsigned trials = 8;                 ///< explore: randomized part
    std::uint64_t seed = 1;
    bool json = false;
    /** Tier computing the scalar ground truth (functional = cheap). */
    fast::ExecTier reference = fast::ExecTier::Functional;
};

using RefMaker = ChaosReference (*)(const Program &, unsigned);

/** The reference maker matching --reference. */
RefMaker
referenceMaker(const Options &opts)
{
    return opts.reference == fast::ExecTier::Functional
               ? fast::makeFunctionalReference
               : makeReference;
}

void
usage()
{
    std::cout <<
        "usage: liquid-chaos smoke   [options]\n"
        "       liquid-chaos explore [options]\n"
        "       liquid-chaos run --schedule KEY [options]\n"
        "  --width W        SIMD width (default 8)\n"
        "  --workloads LIST comma-separated suite names"
        " (default: all)\n"
        "  --schedule KEY   fault schedule to replay, e.g."
        " 'int@40+flush@80'\n"
        "  --window N       explore: exhaustive single-event schedules\n"
        "                   for each kind at retire 1..N (default 16)\n"
        "  --trials N       explore: random multi-event schedules\n"
        "                   (default 8)\n"
        "  --seed S         explore: RNG seed (default 1)\n"
        "  --reference TIER scalar ground-truth generator:\n"
        "                   'functional' (default; fast interpreter)\n"
        "                   or 'cycle' (the timing core)\n"
        "  --json           machine-readable report on stdout\n";
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2)
        return false;
    opts.command = argv[1];
    if (opts.command != "smoke" && opts.command != "explore" &&
        opts.command != "run")
        return false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--width") {
            const char *v = next();
            if (!v)
                return false;
            opts.width = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
        } else if (arg == "--workloads") {
            const char *v = next();
            if (!v)
                return false;
            opts.workloads = splitList(v);
        } else if (arg == "--schedule") {
            const char *v = next();
            if (!v)
                return false;
            opts.schedule = v;
        } else if (arg == "--window") {
            const char *v = next();
            if (!v)
                return false;
            opts.window = std::strtoull(v, nullptr, 10);
        } else if (arg == "--trials") {
            const char *v = next();
            if (!v)
                return false;
            opts.trials = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--reference") {
            const char *v = next();
            if (!v)
                return false;
            const std::string t = v;
            if (t == "functional") {
                opts.reference = fast::ExecTier::Functional;
            } else if (t == "cycle") {
                opts.reference = fast::ExecTier::Cycle;
            } else {
                std::cerr << "unknown reference tier '" << t
                          << "' (expected 'functional' or 'cycle')\n";
                return false;
            }
        } else if (arg == "--json") {
            opts.json = true;
        } else {
            return false;
        }
    }
    if (opts.command == "run" && opts.schedule.empty())
        return false;
    return true;
}

/** The selected workloads, built Scalarized at the oracle width. */
std::vector<std::pair<std::string, Workload::Build>>
buildWorkloads(const Options &opts)
{
    std::vector<std::pair<std::string, Workload::Build>> builds;
    for (const auto &wl : makeSuite()) {
        if (!opts.workloads.empty()) {
            bool wanted = false;
            for (const auto &name : opts.workloads)
                wanted = wanted || name == wl->name();
            if (!wanted)
                continue;
        }
        builds.emplace_back(
            wl->name(),
            wl->build(EmitOptions::Mode::Scalarized, opts.width));
    }
    if (builds.empty())
        fatal("liquid-chaos: no matching workloads");
    return builds;
}

/** One (workload, schedule) oracle verdict for the report. */
struct CheckRecord
{
    std::string workload;
    std::string scheduleKey;
    ChaosReport report;
};

json::Value
recordJson(const CheckRecord &rec)
{
    json::Value v = json::Value::object();
    v.set("workload", rec.workload);
    v.set("schedule", rec.scheduleKey);
    v.set("equal", rec.report.equal);
    v.set("cycles", rec.report.cycles);
    v.set("faultsFired", rec.report.faultsFired);
    v.set("translations", rec.report.translations);
    v.set("retranslations", rec.report.retranslations);
    if (!rec.report.equal) {
        json::Value mm = json::Value::array();
        for (const auto &m : rec.report.mismatches)
            mm.push(json::Value(m));
        v.set("mismatches", std::move(mm));
    }
    return v;
}

void
printRecord(const CheckRecord &rec)
{
    std::cout << "  " << rec.workload << " x " << rec.scheduleKey
              << ": "
              << (rec.report.equal ? "equal" : "STATE MISMATCH")
              << " (faults " << rec.report.faultsFired
              << ", retranslations " << rec.report.retranslations
              << ")\n";
    for (const auto &m : rec.report.mismatches)
        std::cout << "      " << m << '\n';
}

int
emitReport(const Options &opts, const std::string &command,
           const std::vector<CheckRecord> &records)
{
    unsigned failures = 0;
    for (const auto &rec : records)
        failures += rec.report.equal ? 0 : 1;

    if (opts.json) {
        json::Value v = json::toolReport(chaosSchema, chaosToolVersion);
        v.set("command", command);
        v.set("width", opts.width);
        v.set("reference", fast::tierName(opts.reference));
        v.set("checks", static_cast<std::uint64_t>(records.size()));
        v.set("failures", failures);
        json::Value arr = json::Value::array();
        for (const auto &rec : records)
            arr.push(recordJson(rec));
        v.set("results", std::move(arr));
        std::cout << v.toString() << '\n';
    } else {
        std::cout << records.size() << " checks, " << failures
                  << " mismatches\n";
        if (failures) {
            std::cout << "replay any failure with: liquid-chaos run "
                         "--schedule KEY --workloads NAME\n";
        }
    }
    return failures ? 1 : 0;
}

int
runCurated(const Options &opts, const std::vector<std::string> &keys,
           const std::string &command)
{
    std::vector<CheckRecord> records;
    for (const auto &[name, build] : buildWorkloads(opts)) {
        const ChaosReference ref =
            referenceMaker(opts)(build.prog, opts.width);
        for (const auto &key : keys) {
            const FaultSchedule sched = FaultSchedule::parse(key);
            CheckRecord rec{name, key,
                            checkSchedule(ref, build.prog, opts.width,
                                          sched)};
            if (!opts.json && !rec.report.equal)
                printRecord(rec);
            records.push_back(std::move(rec));
        }
        if (!opts.json)
            std::cout << name << ": " << keys.size()
                      << " schedules checked\n";
    }
    return emitReport(opts, command, records);
}

int
runExplore(const Options &opts)
{
    std::vector<CheckRecord> records;
    std::map<std::string, unsigned> coverage;
    for (const auto &[name, build] : buildWorkloads(opts)) {
        ExploreOptions eopts;
        eopts.window = opts.window;
        eopts.trials = opts.trials;
        eopts.seed = opts.seed;
        eopts.refMaker = referenceMaker(opts);
        const ExploreSummary summary =
            exploreSchedules(build.prog, opts.width, eopts);
        for (const auto &[kind, count] : summary.kindCoverage)
            coverage[kind] += count;
        if (!opts.json) {
            std::cout << name << ": " << summary.schedulesRun
                      << " schedules, " << summary.faultsFired
                      << " faults, " << summary.retranslations
                      << " retranslations, "
                      << summary.failures.size() << " failures\n";
        }
        for (const auto &f : summary.failures) {
            CheckRecord rec{name, f.scheduleKey, ChaosReport{}};
            rec.report.equal = false;
            rec.report.mismatches = f.mismatches;
            if (!opts.json)
                printRecord(rec);
            records.push_back(std::move(rec));
        }
        // Successful explorations are summarized, not itemized: one
        // record keeps the JSON bounded while failures stay complete.
        CheckRecord ok{name,
                       "explored:" + std::to_string(summary.schedulesRun),
                       ChaosReport{}};
        ok.report.equal = summary.ok();
        ok.report.faultsFired = summary.faultsFired;
        ok.report.retranslations = summary.retranslations;
        if (summary.ok())
            records.push_back(std::move(ok));
    }
    if (!opts.json) {
        std::cout << "kind coverage:";
        for (const auto &[kind, count] : coverage)
            std::cout << ' ' << kind << '=' << count;
        std::cout << '\n';
    }
    return emitReport(opts, "explore", records);
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }

    try {
        if (opts.command == "smoke")
            return runCurated(opts, smokeSchedules, "smoke");
        if (opts.command == "run")
            return runCurated(opts, {opts.schedule}, "run");
        return runExplore(opts);
    } catch (const std::exception &e) {
        std::cerr << "liquid-chaos: " << e.what() << '\n';
        return 2;
    }
}
