/**
 * @file
 * liquid-proof: symbolic translation validation with counterexample
 * replay.
 *
 * Where liquid-verify predicts *whether* the dynamic translator
 * commits, liquid-proof checks that what it commits is *correct*: each
 * region is symbolically executed twice — once as the scalar loop, once
 * as the microcode the translator produces — and the two runs are
 * proven to agree on the store set and every demanded live-out, per
 * lane, at every requested width. Failed proofs extract a concrete
 * initial-memory counterexample and replay it through the chaos oracle
 * to confirm the divergence is architectural.
 *
 *   liquid-proof prog.s                   # prove at widths 2,4,8,16
 *   liquid-proof --widths 4,8 prog.s      # subset of widths
 *   liquid-proof --symbolic-n prog.s      # width-generic proof first
 *   liquid-proof --suite                  # prove the workload suite
 *   liquid-proof --sabotage               # adversarial self-test
 *   liquid-proof --json --suite           # machine-readable verdicts
 *
 * Exit status: 0 when nothing is Refuted (with --werror, nothing
 * Unknown either) and --sabotage scenarios all pass; 1 otherwise;
 * 2 on usage/assembly problems.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "verifier/proof.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *proofSchema = "liquid-proof-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *proofToolVersion = "1.0";

struct Options
{
    std::string file;
    bool suite = false;
    bool sabotage = false;
    bool json = false;
    bool werror = false;
    ProofOptions proof;
};

void
usage()
{
    std::cout <<
        "usage: liquid-proof [options] program.s\n"
        "       liquid-proof [options] --suite\n"
        "       liquid-proof [options] --sabotage\n"
        "  --widths A,B,..  widths to prove, from 2/4/8/16 (all)\n"
        "  --symbolic-n     attempt one width-generic proof before the\n"
        "                   per-width proofs\n"
        "  --no-replay      do not replay counterexamples through the\n"
        "                   chaos oracle\n"
        "  --werror         treat unknown verdicts as failures\n"
        "  --json           machine-readable report on stdout\n"
        "  --suite          prove every workload-suite kernel\n"
        "  --sabotage       adversarial self-test: every sabotage mode\n"
        "                   must be refuted or rejected\n";
}

bool
parseWidths(const std::string &arg, std::vector<unsigned> &out)
{
    out.clear();
    std::istringstream is(arg);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        const unsigned w =
            static_cast<unsigned>(std::strtoul(tok.c_str(), nullptr, 10));
        if (w != 2 && w != 4 && w != 8 && w != 16)
            return false;
        out.push_back(w);
    }
    return !out.empty();
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--widths") {
            if (i + 1 >= argc || !parseWidths(argv[++i], opt.proof.widths)) {
                std::cerr << "--widths takes a comma list of 2/4/8/16\n";
                return false;
            }
        } else if (arg == "--symbolic-n") {
            opt.proof.symbolicN = true;
        } else if (arg == "--no-replay") {
            opt.proof.replay = false;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--sabotage") {
            opt.sabotage = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    const int modes = (opt.file.empty() ? 0 : 1) + (opt.suite ? 1 : 0) +
                      (opt.sabotage ? 1 : 0);
    if (modes != 1) {
        usage();
        return false;
    }
    return true;
}

json::Value
ceJson(const Counterexample &ce)
{
    json::Value v = json::Value::object();
    v.set("obligation", ce.obligation);
    v.set("scalarValue", ce.scalarValue);
    v.set("simdValue", ce.simdValue);
    v.set("memOnly", ce.memOnly);
    json::Value assigns = json::Value::array();
    for (const CeAssignment &a : ce.assigns) {
        json::Value j = json::Value::object();
        j.set("sym", a.sym);
        j.set("value", a.value);
        if (a.isMem) {
            j.set("addr", a.addr);
            j.set("size", a.size);
        }
        assigns.push(std::move(j));
    }
    v.set("assigns", std::move(assigns));
    v.set("replayed", ce.replayed);
    v.set("replayConfirmed", ce.replayConfirmed);
    if (!ce.replayNote.empty())
        v.set("replayNote", ce.replayNote);
    if (!ce.replayMismatches.empty()) {
        json::Value m = json::Value::array();
        for (const std::string &s : ce.replayMismatches)
            m.push(json::Value(s));
        v.set("replayMismatches", std::move(m));
    }
    return v;
}

json::Value
widthJson(const WidthProof &wp)
{
    json::Value v = json::Value::object();
    v.set("width", wp.width);
    v.set("boundWidth", wp.boundWidth);
    v.set("verdict", proofVerdictName(wp.verdict));
    v.set("summary", wp.summary);
    v.set("obligations", wp.obligations);
    v.set("closedStructural", wp.closedStructural);
    v.set("closedEnum", wp.closedEnum);
    v.set("unknownObligations", wp.unknownObligations);
    v.set("enumPoints", wp.enumPoints);
    v.set("widthGeneric", wp.widthGeneric);
    if (wp.ce)
        v.set("counterexample", ceJson(*wp.ce));
    return v;
}

json::Value
regionJson(const std::string &program, const RegionProof &rp)
{
    json::Value v = json::Value::object();
    v.set("program", program);
    v.set("entryLabel", rp.entryLabel);
    v.set("entryIndex", rp.entryIndex);
    v.set("widthHint", rp.widthHint);
    v.set("demand", rp.demand.str());
    v.set("overall", proofVerdictName(rp.overall()));
    if (rp.symbolicN.attempted) {
        json::Value s = json::Value::object();
        s.set("proved", rp.symbolicN.proved);
        s.set("summary", rp.symbolicN.summary);
        s.set("obligations", rp.symbolicN.obligations);
        s.set("enumPoints", rp.symbolicN.enumPoints);
        if (!rp.symbolicN.polyValidity.empty()) {
            s.set("polyUnbounded", rp.symbolicN.polyUnbounded);
            s.set("polyValidity", rp.symbolicN.polyValidity);
        }
        v.set("symbolicN", std::move(s));
    }
    json::Value widths = json::Value::array();
    for (const WidthProof &wp : rp.widths)
        widths.push(widthJson(wp));
    v.set("widths", std::move(widths));
    return v;
}

void
printRegion(const std::string &program, const RegionProof &rp)
{
    std::cout << "region ";
    if (!rp.entryLabel.empty())
        std::cout << rp.entryLabel;
    else
        std::cout << "@" << rp.entryIndex;
    std::cout << " [" << program << "]: "
              << proofVerdictName(rp.overall());
    if (!rp.demand.empty())
        std::cout << "  liveOut=[" << rp.demand.str() << "]";
    std::cout << '\n';
    if (rp.symbolicN.attempted) {
        std::cout << "  symbolic-n: "
                  << (rp.symbolicN.proved ? "proved" : "fallback")
                  << " (" << rp.symbolicN.summary << ")\n";
    }
    for (const WidthProof &wp : rp.widths) {
        std::cout << "  w" << wp.width << ": "
                  << proofVerdictName(wp.verdict) << " — " << wp.summary
                  << '\n';
        if (wp.ce) {
            const Counterexample &ce = wp.ce.value();
            std::cout << "    counterexample (" << ce.obligation
                      << "): scalar=" << ce.scalarValue
                      << " simd=" << ce.simdValue << " under";
            for (const CeAssignment &a : ce.assigns)
                std::cout << ' ' << a.sym << '=' << a.value;
            std::cout << '\n';
            if (ce.replayed) {
                std::cout << "    replay: "
                          << (ce.replayConfirmed
                                  ? "confirmed (oracle diverges)"
                                  : "NOT confirmed")
                          << '\n';
            } else if (!ce.replayNote.empty()) {
                std::cout << "    replay: " << ce.replayNote << '\n';
            }
        }
    }
}

struct Tally
{
    unsigned regions = 0;
    unsigned proved = 0;
    unsigned refuted = 0;
    unsigned unknown = 0;
    unsigned noTranslation = 0;
    unsigned widthGeneric = 0;

    void
    add(const RegionProof &rp)
    {
        ++regions;
        switch (rp.overall()) {
          case ProofVerdict::Proved: ++proved; break;
          case ProofVerdict::Refuted: ++refuted; break;
          case ProofVerdict::Unknown: ++unknown; break;
          case ProofVerdict::NoTranslation: ++noTranslation; break;
        }
        if (rp.symbolicN.proved)
            ++widthGeneric;
    }
};

int
runProve(const Options &opt)
{
    std::vector<std::pair<std::string, RegionProof>> regions;

    if (opt.suite) {
        for (const auto &wl : makeSuite()) {
            const Workload::Build build =
                wl->build(EmitOptions::Mode::Scalarized, 16, true);
            ProgramProof pp = proveProgram(build.prog, opt.proof);
            for (RegionProof &rp : pp.regions)
                regions.emplace_back(wl->name(), std::move(rp));
        }
    } else {
        std::ifstream in(opt.file);
        if (!in) {
            std::cerr << "cannot open '" << opt.file << "'\n";
            return 2;
        }
        std::ostringstream source;
        source << in.rdbuf();
        const Program prog = assemble(source.str());
        ProgramProof pp = proveProgram(prog, opt.proof);
        if (pp.regions.empty() && !opt.json) {
            std::cout << "no hinted regions found\n";
            return 0;
        }
        for (RegionProof &rp : pp.regions)
            regions.emplace_back(opt.file, std::move(rp));
    }

    Tally tally;
    for (const auto &[name, rp] : regions)
        tally.add(rp);

    if (opt.json) {
        json::Value root =
            json::toolReport(proofSchema, proofToolVersion);
        root.set("command", "prove");
        json::Value widths = json::Value::array();
        for (const unsigned w : opt.proof.widths)
            widths.push(json::Value(w));
        root.set("widths", std::move(widths));
        root.set("symbolicN", opt.proof.symbolicN);
        json::Value arr = json::Value::array();
        for (const auto &[name, rp] : regions)
            arr.push(regionJson(name, rp));
        root.set("regions", std::move(arr));
        json::Value summary = json::Value::object();
        summary.set("regions", tally.regions);
        summary.set("proved", tally.proved);
        summary.set("refuted", tally.refuted);
        summary.set("unknown", tally.unknown);
        summary.set("noTranslation", tally.noTranslation);
        summary.set("widthGeneric", tally.widthGeneric);
        root.set("summary", std::move(summary));
        std::cout << root.toString() << '\n';
    } else {
        for (const auto &[name, rp] : regions)
            printRegion(name, rp);
        std::cout << tally.regions << " region(s): " << tally.proved
                  << " proved";
        if (tally.widthGeneric)
            std::cout << " (" << tally.widthGeneric << " width-generic)";
        std::cout << ", " << tally.refuted << " refuted, "
                  << tally.unknown << " unknown, " << tally.noTranslation
                  << " untranslated\n";
    }

    if (tally.refuted || (opt.werror && tally.unknown))
        return 1;
    return 0;
}

int
runSabotage(const Options &opt)
{
    const std::vector<SabotageOutcome> outcomes =
        runSabotageSuite(opt.proof);
    unsigned passed = 0;
    for (const SabotageOutcome &o : outcomes)
        passed += o.pass ? 1 : 0;

    if (opt.json) {
        json::Value root =
            json::toolReport(proofSchema, proofToolVersion);
        root.set("command", "sabotage");
        json::Value arr = json::Value::array();
        for (const SabotageOutcome &o : outcomes) {
            json::Value j = json::Value::object();
            j.set("name", o.name);
            j.set("expect", o.expect);
            j.set("verdict", proofVerdictName(o.verdict));
            j.set("replayConfirmed", o.replayConfirmed);
            j.set("pass", o.pass);
            j.set("detail", o.detail);
            arr.push(std::move(j));
        }
        root.set("scenarios", std::move(arr));
        json::Value summary = json::Value::object();
        summary.set("total", static_cast<unsigned>(outcomes.size()));
        summary.set("passed", passed);
        root.set("summary", std::move(summary));
        std::cout << root.toString() << '\n';
    } else {
        for (const SabotageOutcome &o : outcomes) {
            std::cout << (o.pass ? "PASS" : "FAIL") << "  " << o.name
                      << ": expect " << o.expect << ", got "
                      << proofVerdictName(o.verdict);
            if (o.expect == "refuted") {
                std::cout << (o.replayConfirmed ? " (replay confirmed)"
                                                : " (replay missing)");
            }
            if (!o.pass && !o.detail.empty())
                std::cout << " — " << o.detail;
            std::cout << '\n';
        }
        std::cout << passed << "/" << outcomes.size()
                  << " sabotage scenarios behaved as expected\n";
    }
    return passed == outcomes.size() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;
    try {
        return opt.sabotage ? runSabotage(opt) : runProve(opt);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
}
