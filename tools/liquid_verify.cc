/**
 * @file
 * liquid-verify: static Table-1 conformance verifier.
 *
 * Assembles a .s file and, without executing it on the simulator,
 * predicts what the dynamic translator will do with every outlined
 * region: commit (with the bound width, microcode size, and a
 * cost-model cycle estimate), abort (with the reason), or a
 * runtime-dependent outcome (warn). Commits additionally carry the
 * memory-dependence proof computed by depcheck.
 *
 *   liquid-verify prog.s                # verify at width 8
 *   liquid-verify -w 16 prog.s          # verify against 16 lanes
 *   liquid-verify --no-fallback prog.s  # single-width prediction
 *   liquid-verify --suite               # verify the workload suite
 *   liquid-verify --json prog.s         # machine-readable verdicts
 *
 * Exit status: 0 when no region has an Error verdict, 1 otherwise,
 * 2 on usage/assembly problems.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "verifier/range.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/**
 * JSON output format identifier; bump on breaking layout changes.
 * v2: byWidth entries became objects {verdict, reason, why, viaRange}
 * and regions gained range{facts, discharged} under --ranges.
 * v3: regions gained validity{summary, structuralUnbounded, okWidths,
 * constraints} under --poly. Purely additive over v2 — every v2 field
 * keeps its name and type, so v2 consumers parse v3 reports unchanged
 * (tests/poly_test.cc locks that in).
 */
constexpr const char *verifySchema = "liquid-verify-v3";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *verifyToolVersion = "3.0";

struct Options
{
    std::string file;
    unsigned width = 8;
    bool fallback = true;
    bool prove = false;
    bool ranges = false;
    bool poly = false;
    bool werror = false;
    bool suite = false;
    bool json = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-verify [options] program.s\n"
        "       liquid-verify [options] --suite\n"
        "  -w, --width N    SIMD lanes to verify against: 2/4/8/16 (8)\n"
        "  --no-fallback    do not retry failed regions at half width\n"
        "  --prove          settle depcheck-unknown widths (and audit\n"
        "                   commits) with the translation-validation\n"
        "                   prover\n"
        "  --ranges         seed the verifier with the interprocedural\n"
        "                   value-range analysis (liquid-range facts)\n"
        "  --poly           attach the width-polymorphic validity set\n"
        "                   (liquid-poly): for which N does the region\n"
        "                   verify?\n"
        "  --werror         treat warn verdicts as errors\n"
        "  --json           machine-readable per-region verdicts on"
        " stdout\n"
        "  --suite          verify every workload-suite kernel instead"
        " of a file\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-w" || arg == "--width") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return false;
            }
            opt.width = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--no-fallback") {
            opt.fallback = false;
        } else if (arg == "--prove") {
            opt.prove = true;
        } else if (arg == "--ranges") {
            opt.ranges = true;
        } else if (arg == "--poly") {
            opt.poly = true;
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.suite) {
        usage();
        return false;
    }
    if (!opt.file.empty() && opt.suite) {
        std::cerr << "--suite does not take an input file\n";
        return false;
    }
    return true;
}

const char *
widthVerdictName(WidthVerdict::Kind kind)
{
    switch (kind) {
      case WidthVerdict::Kind::Safe: return "safe";
      case WidthVerdict::Kind::Unsafe: return "unsafe";
      case WidthVerdict::Kind::Unknown: return "unknown";
    }
    return "?";
}

json::Value
regionJson(const std::string &program, const RegionReport &r)
{
    json::Value v = json::Value::object();
    v.set("program", program);
    v.set("entryLabel", r.entryLabel);
    v.set("entryIndex", r.entryIndex);
    v.set("requestedWidth", r.requestedWidth);
    v.set("widthHint", r.widthHint);
    v.set("verdict", severityName(r.verdict));
    if (r.verdict == Severity::Error) {
        v.set("reason", abortReasonName(r.reason));
        v.set("depMiscompile", r.depMiscompile);
    }
    if (r.predictedWidth) {
        json::Value p = json::Value::object();
        p.set("width", r.predictedWidth);
        p.set("ucodeInsts", r.predictedUcode);
        p.set("cvecs", r.predictedCvecs);
        v.set("predicted", std::move(p));
    }
    if (r.verdict == Severity::Ok && r.predictedSpeedup > 0) {
        json::Value c = json::Value::object();
        c.set("scalarCycles", r.predictedScalarCycles);
        c.set("simdCycles", r.predictedSimdCycles);
        c.set("speedup", r.predictedSpeedup);
        v.set("cost", std::move(c));
    }
    if (r.depAnalyzed) {
        const DepcheckResult &dep = r.dep;
        json::Value d = json::Value::object();
        d.set("analyzed", dep.analyzed);
        d.set("resolved", dep.resolved);
        if (!dep.resolved)
            d.set("unresolvedWhy", dep.unresolvedWhy);
        d.set("carriedPairs", dep.carriedPairs);
        d.set("minDistance", dep.minDistance);
        json::Value accs = json::Value::array();
        for (const MemAccess &a : dep.accesses) {
            json::Value j = json::Value::object();
            j.set("inst", a.instIndex);
            j.set("store", a.isStore);
            j.set("class", accessClassName(a.cls));
            j.set("strideBytes", a.strideBytes);
            j.set("array", a.arrayName);
            accs.push(std::move(j));
        }
        d.set("accesses", std::move(accs));
        json::Value bw = json::Value::object();
        for (std::size_t i = 0; i < DepcheckResult::widths.size(); ++i) {
            const WidthVerdict &wv = dep.byWidth[i];
            json::Value e = json::Value::object();
            e.set("verdict", widthVerdictName(wv.kind));
            if (wv.reason != DepReason::None)
                e.set("reason", depReasonName(wv.reason));
            if (!wv.why.empty())
                e.set("why", wv.why);
            if (wv.viaRange)
                e.set("viaRange", true);
            bw.set(std::to_string(DepcheckResult::widths[i]),
                   std::move(e));
        }
        d.set("byWidth", std::move(bw));
        if (r.verdict == Severity::Ok && r.predictedWidth)
            d.set("proof", dep.proofSummary(r.predictedWidth));
        v.set("dep", std::move(d));
    }
    if (!r.proofVerdict.empty()) {
        json::Value p = json::Value::object();
        p.set("verdict", r.proofVerdict);
        p.set("summary", r.proofSummary);
        v.set("translationProof", std::move(p));
    }
    if (r.polyAnalyzed) {
        json::Value p = json::Value::object();
        p.set("summary", r.polySummary);
        p.set("structuralUnbounded", r.polyUnbounded);
        json::Value ok = json::Value::array();
        for (const unsigned n : r.polyOkWidths)
            ok.push(n);
        p.set("okWidths", std::move(ok));
        json::Value cons = json::Value::array();
        for (const std::string &c : r.polyConstraints)
            cons.push(c);
        p.set("constraints", std::move(cons));
        v.set("validity", std::move(p));
    }
    if (!r.rangeFacts.empty() || r.rangeDischarged > 0) {
        json::Value rg = json::Value::object();
        rg.set("discharged", r.rangeDischarged);
        json::Value facts = json::Value::array();
        for (const std::string &f : r.rangeFacts)
            facts.push(f);
        rg.set("facts", std::move(facts));
        v.set("range", std::move(rg));
    }
    json::Value diags = json::Value::array();
    for (const Diagnostic &d : r.diags) {
        json::Value j = json::Value::object();
        j.set("severity", severityName(d.severity));
        if (d.severity == Severity::Error)
            j.set("reason", abortReasonName(d.reason));
        if (d.instIndex >= 0)
            j.set("inst", d.instIndex);
        j.set("message", d.message);
        diags.push(std::move(j));
    }
    v.set("diags", std::move(diags));
    return v;
}

/** Verify one program, appending its regions to the tallies. */
void
report(const Program &prog, const std::string &name, const Options &opt,
       std::vector<std::pair<std::string, RegionReport>> &regions)
{
    VerifyOptions vopts;
    vopts.config.simdWidth = opt.width;
    vopts.widthFallback = opt.fallback;
    vopts.prove = opt.prove;
    vopts.poly = opt.poly;

    std::optional<ProgramRanges> pr;
    if (opt.ranges) {
        pr.emplace(solveProgramRanges(prog));
        vopts.ranges = &*pr;
    }

    ProgramReport rep = verifyProgram(prog, vopts);
    for (RegionReport &r : rep.regions)
        regions.emplace_back(name, std::move(r));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    std::vector<std::pair<std::string, RegionReport>> regions;
    try {
        if (opt.suite) {
            for (const auto &wl : makeSuite()) {
                const Workload::Build build = wl->build(
                    EmitOptions::Mode::Scalarized, opt.width, true);
                report(build.prog, wl->name(), opt, regions);
            }
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            const Program prog = assemble(source.str());
            report(prog, opt.file, opt, regions);
            if (regions.empty() && !opt.json) {
                std::cout << "no hinted regions found\n";
                return 0;
            }
        }

        unsigned ok = 0, warn = 0, error = 0;
        for (const auto &[name, r] : regions) {
            switch (r.verdict) {
              case Severity::Ok: ++ok; break;
              case Severity::Warn: ++warn; break;
              case Severity::Error: ++error; break;
            }
        }

        if (opt.json) {
            json::Value root =
                json::toolReport(verifySchema, verifyToolVersion);
            json::Value arr = json::Value::array();
            for (const auto &[name, r] : regions)
                arr.push(regionJson(name, r));
            root.set("regions", std::move(arr));
            json::Value summary = json::Value::object();
            summary.set("ok", ok);
            summary.set("warn", warn);
            summary.set("error", error);
            root.set("summary", std::move(summary));
            std::cout << root.toString() << '\n';
        } else {
            std::string last_program;
            for (const auto &[name, r] : regions) {
                if (opt.suite && name != last_program) {
                    std::cout << "== " << name << '\n';
                    last_program = name;
                }
                std::cout << formatRegionReport(r);
            }
            std::cout << ok + warn + error << " region(s): " << ok
                      << " ok, " << warn << " warn, " << error
                      << " error\n";
        }
        if (error || (opt.werror && warn))
            return 1;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
