/**
 * @file
 * liquid-verify: static Table-1 conformance verifier.
 *
 * Assembles a .s file and, without executing it on the simulator,
 * predicts what the dynamic translator will do with every outlined
 * region: commit (with the bound width and microcode size), abort
 * (with the reason), or a runtime-dependent outcome (warn).
 *
 *   liquid-verify prog.s                # verify at width 8
 *   liquid-verify -w 16 prog.s          # verify against 16 lanes
 *   liquid-verify --no-fallback prog.s  # single-width prediction
 *   liquid-verify --suite               # verify the workload suite
 *
 * Exit status: 0 when no region has an Error verdict, 1 otherwise,
 * 2 on usage/assembly problems.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

struct Options
{
    std::string file;
    unsigned width = 8;
    bool fallback = true;
    bool werror = false;
    bool suite = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-verify [options] program.s\n"
        "       liquid-verify [options] --suite\n"
        "  -w, --width N    SIMD lanes to verify against: 2/4/8/16 (8)\n"
        "  --no-fallback    do not retry failed regions at half width\n"
        "  --werror         treat warn verdicts as errors\n"
        "  --suite          verify every workload-suite kernel instead"
        " of a file\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-w" || arg == "--width") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return false;
            }
            opt.width = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--no-fallback") {
            opt.fallback = false;
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.suite) {
        usage();
        return false;
    }
    if (!opt.file.empty() && opt.suite) {
        std::cerr << "--suite does not take an input file\n";
        return false;
    }
    return true;
}

/** Tally one program's report; returns false on an Error verdict. */
bool
report(const Program &prog, const Options &opt, unsigned &ok,
       unsigned &warn, unsigned &error)
{
    VerifyOptions vopts;
    vopts.config.simdWidth = opt.width;
    vopts.widthFallback = opt.fallback;

    const ProgramReport rep = verifyProgram(prog, vopts);
    for (const RegionReport &r : rep.regions) {
        std::cout << formatRegionReport(r);
        switch (r.verdict) {
          case Severity::Ok: ++ok; break;
          case Severity::Warn: ++warn; break;
          case Severity::Error: ++error; break;
        }
    }
    return !rep.regions.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    unsigned ok = 0, warn = 0, error = 0;
    try {
        if (opt.suite) {
            for (const auto &wl : makeSuite()) {
                std::cout << "== " << wl->name() << '\n';
                const Workload::Build build = wl->build(
                    EmitOptions::Mode::Scalarized, opt.width, true);
                report(build.prog, opt, ok, warn, error);
            }
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            const Program prog = assemble(source.str());
            if (!report(prog, opt, ok, warn, error)) {
                std::cout << "no hinted regions found\n";
                return 0;
            }
        }

        std::cout << ok + warn + error << " region(s): " << ok
                  << " ok, " << warn << " warn, " << error
                  << " error\n";
        if (error || (opt.werror && warn))
            return 1;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
