/**
 * @file
 * liquid-verify: static Table-1 conformance verifier.
 *
 * Assembles a .s file and, without executing it on the simulator,
 * predicts what the dynamic translator will do with every outlined
 * region: commit (with the bound width, microcode size, and a
 * cost-model cycle estimate), abort (with the reason), or a
 * runtime-dependent outcome (warn). Commits additionally carry the
 * memory-dependence proof computed by depcheck.
 *
 *   liquid-verify prog.s                # verify at width 8
 *   liquid-verify -w 16 prog.s          # verify against 16 lanes
 *   liquid-verify --no-fallback prog.s  # single-width prediction
 *   liquid-verify --suite               # verify the workload suite
 *   liquid-verify --json prog.s         # machine-readable verdicts
 *
 * Exit status: 0 when no region has an Error verdict, 1 otherwise,
 * 2 on usage/assembly problems.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "verifier/verifier.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *verifySchema = "liquid-verify-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *verifyToolVersion = "1.0";

struct Options
{
    std::string file;
    unsigned width = 8;
    bool fallback = true;
    bool werror = false;
    bool suite = false;
    bool json = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-verify [options] program.s\n"
        "       liquid-verify [options] --suite\n"
        "  -w, --width N    SIMD lanes to verify against: 2/4/8/16 (8)\n"
        "  --no-fallback    do not retry failed regions at half width\n"
        "  --werror         treat warn verdicts as errors\n"
        "  --json           machine-readable per-region verdicts on"
        " stdout\n"
        "  --suite          verify every workload-suite kernel instead"
        " of a file\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-w" || arg == "--width") {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return false;
            }
            opt.width = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (arg == "--no-fallback") {
            opt.fallback = false;
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.suite) {
        usage();
        return false;
    }
    if (!opt.file.empty() && opt.suite) {
        std::cerr << "--suite does not take an input file\n";
        return false;
    }
    return true;
}

std::string
jsonEscape(const std::string &s)
{
    std::ostringstream os;
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                os << "\\u" << std::hex << std::setw(4)
                   << std::setfill('0') << static_cast<int>(c)
                   << std::dec;
            } else {
                os << c;
            }
        }
    }
    return os.str();
}

const char *
widthVerdictName(WidthVerdict::Kind kind)
{
    switch (kind) {
      case WidthVerdict::Kind::Safe: return "safe";
      case WidthVerdict::Kind::Unsafe: return "unsafe";
      case WidthVerdict::Kind::Unknown: return "unknown";
    }
    return "?";
}

void
jsonRegion(std::ostream &os, const std::string &program,
           const RegionReport &r)
{
    os << "    {\n"
       << "      \"program\": \"" << jsonEscape(program) << "\",\n"
       << "      \"entryLabel\": \"" << jsonEscape(r.entryLabel)
       << "\",\n"
       << "      \"entryIndex\": " << r.entryIndex << ",\n"
       << "      \"requestedWidth\": " << r.requestedWidth << ",\n"
       << "      \"widthHint\": " << r.widthHint << ",\n"
       << "      \"verdict\": \"" << severityName(r.verdict) << "\"";
    if (r.verdict == Severity::Error) {
        os << ",\n      \"reason\": \"" << abortReasonName(r.reason)
           << "\",\n      \"depMiscompile\": "
           << (r.depMiscompile ? "true" : "false");
    }
    if (r.predictedWidth) {
        os << ",\n      \"predicted\": {\"width\": " << r.predictedWidth
           << ", \"ucodeInsts\": " << r.predictedUcode
           << ", \"cvecs\": " << r.predictedCvecs << "}";
    }
    if (r.verdict == Severity::Ok && r.predictedSpeedup > 0) {
        os << ",\n      \"cost\": {\"scalarCycles\": "
           << r.predictedScalarCycles << ", \"simdCycles\": "
           << r.predictedSimdCycles << ", \"speedup\": "
           << r.predictedSpeedup << "}";
    }
    if (r.depAnalyzed) {
        const DepcheckResult &dep = r.dep;
        os << ",\n      \"dep\": {\n"
           << "        \"analyzed\": "
           << (dep.analyzed ? "true" : "false")
           << ", \"resolved\": " << (dep.resolved ? "true" : "false");
        if (!dep.resolved) {
            os << ",\n        \"unresolvedWhy\": \""
               << jsonEscape(dep.unresolvedWhy) << "\"";
        }
        os << ",\n        \"carriedPairs\": " << dep.carriedPairs
           << ", \"minDistance\": " << dep.minDistance << ",\n"
           << "        \"accesses\": [";
        for (std::size_t i = 0; i < dep.accesses.size(); ++i) {
            const MemAccess &a = dep.accesses[i];
            os << (i ? ", " : "") << "{\"inst\": " << a.instIndex
               << ", \"store\": " << (a.isStore ? "true" : "false")
               << ", \"class\": \"" << accessClassName(a.cls)
               << "\", \"strideBytes\": " << a.strideBytes
               << ", \"array\": \"" << jsonEscape(a.arrayName)
               << "\"}";
        }
        os << "],\n        \"byWidth\": {";
        for (std::size_t i = 0; i < DepcheckResult::widths.size();
             ++i) {
            const WidthVerdict &wv = dep.byWidth[i];
            os << (i ? ", " : "") << "\""
               << DepcheckResult::widths[i] << "\": \""
               << widthVerdictName(wv.kind) << "\"";
        }
        os << "}";
        if (r.verdict == Severity::Ok && r.predictedWidth) {
            os << ",\n        \"proof\": \""
               << jsonEscape(dep.proofSummary(r.predictedWidth))
               << "\"";
        }
        os << "\n      }";
    }
    os << ",\n      \"diags\": [\n";
    for (std::size_t i = 0; i < r.diags.size(); ++i) {
        const Diagnostic &d = r.diags[i];
        os << "        {\"severity\": \"" << severityName(d.severity)
           << "\"";
        if (d.severity == Severity::Error)
            os << ", \"reason\": \"" << abortReasonName(d.reason)
               << "\"";
        if (d.instIndex >= 0)
            os << ", \"inst\": " << d.instIndex;
        os << ", \"message\": \"" << jsonEscape(d.message) << "\"}"
           << (i + 1 < r.diags.size() ? "," : "") << '\n';
    }
    os << "      ]\n    }";
}

/** Verify one program, appending its regions to the tallies. */
void
report(const Program &prog, const std::string &name, const Options &opt,
       std::vector<std::pair<std::string, RegionReport>> &regions)
{
    VerifyOptions vopts;
    vopts.config.simdWidth = opt.width;
    vopts.widthFallback = opt.fallback;

    ProgramReport rep = verifyProgram(prog, vopts);
    for (RegionReport &r : rep.regions)
        regions.emplace_back(name, std::move(r));
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    std::vector<std::pair<std::string, RegionReport>> regions;
    try {
        if (opt.suite) {
            for (const auto &wl : makeSuite()) {
                const Workload::Build build = wl->build(
                    EmitOptions::Mode::Scalarized, opt.width, true);
                report(build.prog, wl->name(), opt, regions);
            }
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            const Program prog = assemble(source.str());
            report(prog, opt.file, opt, regions);
            if (regions.empty() && !opt.json) {
                std::cout << "no hinted regions found\n";
                return 0;
            }
        }

        unsigned ok = 0, warn = 0, error = 0;
        for (const auto &[name, r] : regions) {
            switch (r.verdict) {
              case Severity::Ok: ++ok; break;
              case Severity::Warn: ++warn; break;
              case Severity::Error: ++error; break;
            }
        }

        if (opt.json) {
            std::cout << "{\n  \"schema\": \"" << verifySchema
                      << "\",\n  \"toolVersion\": \""
                      << verifyToolVersion << "\",\n"
                      << "  \"regions\": [\n";
            for (std::size_t i = 0; i < regions.size(); ++i) {
                jsonRegion(std::cout, regions[i].first,
                           regions[i].second);
                std::cout << (i + 1 < regions.size() ? "," : "")
                          << '\n';
            }
            std::cout << "  ],\n  \"summary\": {\"ok\": " << ok
                      << ", \"warn\": " << warn << ", \"error\": "
                      << error << "}\n}\n";
        } else {
            std::string last_program;
            for (const auto &[name, r] : regions) {
                if (opt.suite && name != last_program) {
                    std::cout << "== " << name << '\n';
                    last_program = name;
                }
                std::cout << formatRegionReport(r);
            }
            std::cout << ok + warn + error << " region(s): " << ok
                      << " ok, " << warn << " warn, " << error
                      << " error\n";
        }
        if (error || (opt.werror && warn))
            return 1;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
