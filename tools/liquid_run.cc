/**
 * @file
 * liquid-run: command-line driver for the Liquid SIMD simulator.
 *
 * Assembles a .s file (see src/asm/assembler.hh for the syntax) and
 * runs it on a configurable system.
 *
 *   liquid-run prog.s                      # Liquid mode, 8 lanes
 *   liquid-run --mode scalar prog.s        # no SIMD accelerator
 *   liquid-run --mode native -w 16 prog.s  # native vector ISA
 *   liquid-run --trace --ucode prog.s      # full visibility
 *   liquid-run --pretranslate prog.s       # offline binary translation
 *   liquid-run --sweep prog.s              # widths 2/4/8/16 summary
 *
 * Suite workloads can be run directly, without writing assembly:
 *
 *   liquid-run --list                      # suite benchmark names
 *   liquid-run --filter 'mpeg2.*'          # run matching benchmarks
 *   liquid-run --filter fir --sweep        # width sweep on one kernel
 *
 * The functional execution tier (src/fast/) runs the same program with
 * no cycle clock — architectural results and retire counts only:
 *
 *   liquid-run --tier functional prog.s    # threaded-dispatch interp
 *   liquid-run --warmup 10000 prog.s       # functional fast-forward,
 *                                          # then hand off to the
 *                                          # cycle core
 */

#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "fast/fast.hh"
#include "fast/tier.hh"
#include "fast/warmup.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

struct Options
{
    std::string file;
    ExecMode mode = ExecMode::Liquid;
    unsigned width = 8;
    bool trace = false;
    bool stats = false;
    bool ucode = false;
    bool listing = false;
    bool pretranslate = false;
    bool sweep = false;
    Cycles latency = 1;
    bool list = false;
    std::string filter;
    fast::ExecTier tier = fast::ExecTier::Cycle;
    /** Functional fast-forward checkpoint (retired insts); 0 = off. */
    std::uint64_t warmup = 0;
    /** --mode was given explicitly (functional defaults to scalar). */
    bool modeExplicit = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-run [options] program.s\n"
        "  --mode scalar|liquid|native   execution mode (liquid)\n"
        "  -w, --width N                 SIMD lanes: 2/4/8/16 (8)\n"
        "  --latency N                   translation cycles/inst (1)\n"
        "  --pretranslate                offline binary translation\n"
        "  --trace                       per-instruction trace\n"
        "  --stats                       dump all statistic counters\n"
        "  --ucode                       print translated microcode\n"
        "  --listing                     print the assembled program\n"
        "  --sweep                       run at widths 2/4/8/16\n"
        "  --list                        print suite workload names\n"
        "  --filter REGEX                run suite workloads matching\n"
        "                                REGEX instead of a .s file\n"
        "  --tier cycle|functional       execution tier (cycle); the\n"
        "                                functional tier has no cycle\n"
        "                                clock: cycle stats are absent\n"
        "                                and cycle-only flags error\n"
        "  --warmup N                    fast-forward the first N\n"
        "                                retires on the functional\n"
        "                                tier, then hand architectural\n"
        "                                state to the cycle core\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            const char *v = next();
            if (!v)
                return false;
            const std::string m = v;
            if (m == "scalar")
                opt.mode = ExecMode::ScalarBaseline;
            else if (m == "liquid")
                opt.mode = ExecMode::Liquid;
            else if (m == "native")
                opt.mode = ExecMode::NativeSimd;
            else {
                std::cerr << "unknown mode '" << m << "'\n";
                return false;
            }
            opt.modeExplicit = true;
        } else if (arg == "-w" || arg == "--width") {
            const char *v = next();
            if (!v)
                return false;
            opt.width = static_cast<unsigned>(std::stoul(v));
        } else if (arg == "--latency") {
            const char *v = next();
            if (!v)
                return false;
            opt.latency = std::stoull(v);
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--ucode") {
            opt.ucode = true;
        } else if (arg == "--listing") {
            opt.listing = true;
        } else if (arg == "--pretranslate") {
            opt.pretranslate = true;
        } else if (arg == "--sweep") {
            opt.sweep = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--tier") {
            const char *v = next();
            if (!v)
                return false;
            const std::string t = v;
            if (t == "cycle") {
                opt.tier = fast::ExecTier::Cycle;
            } else if (t == "functional") {
                opt.tier = fast::ExecTier::Functional;
            } else {
                std::cerr << "unknown tier '" << t
                          << "' (expected 'cycle' or 'functional')\n";
                return false;
            }
        } else if (arg == "--warmup") {
            const char *v = next();
            if (!v)
                return false;
            opt.warmup = std::stoull(v);
        } else if (arg == "--filter") {
            const char *v = next();
            if (!v)
                return false;
            opt.filter = v;
        } else if (arg.rfind("--filter=", 0) == 0) {
            opt.filter = arg.substr(9);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.list && opt.filter.empty()) {
        usage();
        return false;
    }
    if (opt.tier == fast::ExecTier::Functional) {
        // Anything that needs the cycle clock (or the translator) is a
        // hard error under the functional tier — the stats it would
        // report are absent there, not zero, so silently running would
        // mislead.
        const char *cycleOnly = nullptr;
        if (opt.sweep)
            cycleOnly = "--sweep";
        else if (opt.trace)
            cycleOnly = "--trace";
        else if (opt.ucode)
            cycleOnly = "--ucode";
        else if (opt.pretranslate)
            cycleOnly = "--pretranslate";
        else if (opt.warmup)
            cycleOnly = "--warmup";
        if (cycleOnly) {
            std::cerr << cycleOnly
                      << " requires the cycle tier: the functional "
                         "tier has no cycle clock, so the cycle-shaped "
                         "results it would report are absent (not "
                         "zero); drop "
                      << cycleOnly << " or use --tier cycle\n";
            return false;
        }
        if (opt.mode == ExecMode::Liquid) {
            if (!opt.modeExplicit) {
                // Liquid is only the default for the cycle tier; the
                // natural functional-tier default is the scalar ISA.
                opt.mode = ExecMode::ScalarBaseline;
            } else {
                std::cerr << "--tier functional cannot run liquid "
                             "mode (no translator or microcode "
                             "cache); use --mode scalar or --mode "
                             "native, or --tier cycle\n";
                return false;
            }
        }
    }
    return true;
}

/** Emission mode matching an execution mode. */
EmitOptions::Mode
emitModeFor(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ScalarBaseline:
        return EmitOptions::Mode::InlineScalar;
      case ExecMode::Liquid:
        return EmitOptions::Mode::Scalarized;
      case ExecMode::NativeSimd:
        return EmitOptions::Mode::Native;
    }
    panic("unknown ExecMode");
}

/**
 * Functional-tier run: the threaded-dispatch interpreter, architectural
 * results and retire counts only. Returns instructions retired.
 */
std::uint64_t
runFunctionalOnce(const Program &prog, const Options &opt,
                  ExecMode mode, unsigned width, bool verbose)
{
    fast::FastConfig fc;
    fc.simdWidth = mode == ExecMode::ScalarBaseline ? 0 : width;
    MainMemory mem = MainMemory::forProgram(prog);
    fast::FastInterp interp(fc, prog, mem);
    interp.run();
    if (verbose) {
        std::cout << "tier:   functional (no cycle clock; cycle stats "
                     "are absent, not zero)\n"
                  << "insts:  " << interp.retired() << '\n';
    }
    if (opt.stats)
        interp.stats().dump(std::cout);
    return interp.retired();
}

/** Run the suite workloads matching opt.filter (single-kernel
 *  investigation without editing source). */
int
runFiltered(const Options &opt)
{
    const std::regex re(opt.filter);
    bool matched = false;
    for (const auto &wl : makeSuite()) {
        if (!std::regex_search(wl->name(), re))
            continue;
        matched = true;
        std::cout << "== " << wl->name() << '\n';

        if (opt.tier == fast::ExecTier::Functional) {
            const auto build =
                wl->build(emitModeFor(opt.mode), opt.width);
            const std::uint64_t n = runFunctionalOnce(
                build.prog, opt, opt.mode, opt.width, false);
            std::cout << "  insts: " << n
                      << "  (functional tier; cycles absent)\n";
            continue;
        }

        auto cyclesFor = [&](ExecMode mode, unsigned width) {
            const auto build = wl->build(emitModeFor(mode), width);
            SystemConfig config = SystemConfig::make(mode, width);
            config.translator.latencyPerInst = opt.latency;
            config.pretranslate = opt.pretranslate;
            System sys(config, build.prog);
            if (opt.warmup) {
                const fast::WarmupResult w =
                    fast::fastForward(sys, opt.warmup);
                std::cout << "  warmup: " << w.retired
                          << " retire(s) fast-forwarded; cycle stats "
                             "cover the remainder only\n";
            }
            if (opt.trace)
                sys.core().setTrace(&std::cout);
            sys.run();
            if (opt.stats) {
                sys.core().stats().dump(std::cout);
                if (mode == ExecMode::Liquid)
                    sys.translator().stats().dump(std::cout);
            }
            return sys.cycles();
        };

        if (opt.sweep) {
            const Cycles base =
                cyclesFor(ExecMode::ScalarBaseline, 0);
            std::cout << "  scalar baseline: " << base << " cycles\n";
            for (unsigned width : {2u, 4u, 8u, 16u}) {
                const Cycles c = cyclesFor(ExecMode::Liquid, width);
                std::cout << "  liquid W=" << width << ":     " << c
                          << " cycles  ("
                          << static_cast<double>(base) /
                                 static_cast<double>(c)
                          << "x)\n";
            }
        } else {
            const Cycles c = cyclesFor(opt.mode, opt.width);
            std::cout << "  cycles: " << c << '\n';
        }
    }
    if (!matched) {
        std::cerr << "no suite workload matches '" << opt.filter
                  << "' (see --list)\n";
        return 1;
    }
    return 0;
}

Cycles
runOnce(const Program &prog, const Options &opt, ExecMode mode,
        unsigned width, bool verbose)
{
    SystemConfig config = SystemConfig::make(mode, width);
    config.translator.latencyPerInst = opt.latency;
    config.pretranslate = opt.pretranslate;
    System sys(config, prog);
    if (opt.warmup) {
        const fast::WarmupResult w = fast::fastForward(sys, opt.warmup);
        if (verbose) {
            std::cout << "warmup: fast-forwarded " << w.retired
                      << " retire(s) on the functional tier"
                      << (w.halted ? " (program halted during warmup)"
                                   : "")
                      << "; cycle stats cover the remainder only\n";
        }
    }
    if (opt.trace && verbose)
        sys.core().setTrace(&std::cout);
    sys.run();

    if (verbose) {
        std::cout << "cycles: " << sys.cycles() << '\n'
                  << "insts:  " << sys.core().stats().get("insts")
                  << '\n';
        if (mode == ExecMode::Liquid) {
            std::cout << "translations: "
                      << sys.translator().stats().get("translations")
                      << ", aborts: "
                      << sys.translator().stats().get("aborts")
                      << ", microcode dispatches: "
                      << sys.core().stats().get("ucodeDispatches")
                      << '\n';
        }
        if (opt.stats) {
            sys.core().stats().dump(std::cout);
            sys.core().icache().stats().dump(std::cout);
            sys.core().dcache().stats().dump(std::cout);
            if (mode == ExecMode::Liquid) {
                sys.translator().stats().dump(std::cout);
                sys.ucodeCache().stats().dump(std::cout);
            }
        }
        if (opt.ucode && mode == ExecMode::Liquid) {
            std::set<Addr> printed;
            for (const auto &inst : prog.code()) {
                if (inst.op != Opcode::Bl || inst.target < 0)
                    continue;
                if (!printed.insert(Program::instAddr(inst.target))
                         .second)
                    continue;
                const Addr entry = Program::instAddr(inst.target);
                const UcodeEntry *uc = sys.ucodeCache().lookup(
                    entry, sys.cycles() + 1'000'000);
                if (!uc)
                    continue;
                std::cout << "microcode for "
                          << (inst.targetSym.empty()
                                  ? std::to_string(inst.target)
                                  : inst.targetSym)
                          << " (width " << uc->simdWidth << "):\n";
                for (const auto &u : uc->insts)
                    std::cout << "    " << u.toString() << '\n';
            }
        }
    }
    return sys.cycles();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (opt.list) {
        for (const auto &wl : makeSuite())
            std::cout << wl->name() << '\n';
        return 0;
    }
    if (!opt.filter.empty()) {
        try {
            return runFiltered(opt);
        } catch (const FatalError &e) {
            std::cerr << e.what() << '\n';
            return 1;
        } catch (const PanicError &e) {
            std::cerr << e.what() << '\n';
            return 1;
        }
    }

    std::ifstream in(opt.file);
    if (!in) {
        std::cerr << "cannot open '" << opt.file << "'\n";
        return 2;
    }
    std::ostringstream source;
    source << in.rdbuf();

    try {
        Program prog = assemble(source.str());
        if (opt.listing)
            std::cout << prog.listing();

        if (opt.tier == fast::ExecTier::Functional) {
            runFunctionalOnce(prog, opt, opt.mode, opt.width, true);
            return 0;
        }

        if (opt.sweep) {
            const Cycles base = runOnce(prog, opt,
                                        ExecMode::ScalarBaseline, 0,
                                        false);
            std::cout << "scalar baseline: " << base << " cycles\n";
            for (unsigned width : {2u, 4u, 8u, 16u}) {
                const Cycles c =
                    runOnce(prog, opt, ExecMode::Liquid, width, false);
                std::cout << "liquid W=" << width << ":     " << c
                          << " cycles  ("
                          << static_cast<double>(base) /
                                 static_cast<double>(c)
                          << "x)\n";
            }
            return 0;
        }

        runOnce(prog, opt, opt.mode, opt.width, true);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    }
    return 0;
}
