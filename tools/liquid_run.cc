/**
 * @file
 * liquid-run: command-line driver for the Liquid SIMD simulator.
 *
 * Assembles a .s file (see src/asm/assembler.hh for the syntax) and
 * runs it on a configurable system.
 *
 *   liquid-run prog.s                      # Liquid mode, 8 lanes
 *   liquid-run --mode scalar prog.s        # no SIMD accelerator
 *   liquid-run --mode native -w 16 prog.s  # native vector ISA
 *   liquid-run --trace --ucode prog.s      # full visibility
 *   liquid-run --pretranslate prog.s       # offline binary translation
 *   liquid-run --sweep prog.s              # widths 2/4/8/16 summary
 *
 * Suite workloads can be run directly, without writing assembly:
 *
 *   liquid-run --list                      # suite benchmark names
 *   liquid-run --filter 'mpeg2.*'          # run matching benchmarks
 *   liquid-run --filter fir --sweep        # width sweep on one kernel
 */

#include <fstream>
#include <iostream>
#include <regex>
#include <set>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

struct Options
{
    std::string file;
    ExecMode mode = ExecMode::Liquid;
    unsigned width = 8;
    bool trace = false;
    bool stats = false;
    bool ucode = false;
    bool listing = false;
    bool pretranslate = false;
    bool sweep = false;
    Cycles latency = 1;
    bool list = false;
    std::string filter;
};

void
usage()
{
    std::cout <<
        "usage: liquid-run [options] program.s\n"
        "  --mode scalar|liquid|native   execution mode (liquid)\n"
        "  -w, --width N                 SIMD lanes: 2/4/8/16 (8)\n"
        "  --latency N                   translation cycles/inst (1)\n"
        "  --pretranslate                offline binary translation\n"
        "  --trace                       per-instruction trace\n"
        "  --stats                       dump all statistic counters\n"
        "  --ucode                       print translated microcode\n"
        "  --listing                     print the assembled program\n"
        "  --sweep                       run at widths 2/4/8/16\n"
        "  --list                        print suite workload names\n"
        "  --filter REGEX                run suite workloads matching\n"
        "                                REGEX instead of a .s file\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--mode") {
            const char *v = next();
            if (!v)
                return false;
            const std::string m = v;
            if (m == "scalar")
                opt.mode = ExecMode::ScalarBaseline;
            else if (m == "liquid")
                opt.mode = ExecMode::Liquid;
            else if (m == "native")
                opt.mode = ExecMode::NativeSimd;
            else {
                std::cerr << "unknown mode '" << m << "'\n";
                return false;
            }
        } else if (arg == "-w" || arg == "--width") {
            const char *v = next();
            if (!v)
                return false;
            opt.width = static_cast<unsigned>(std::stoul(v));
        } else if (arg == "--latency") {
            const char *v = next();
            if (!v)
                return false;
            opt.latency = std::stoull(v);
        } else if (arg == "--trace") {
            opt.trace = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--ucode") {
            opt.ucode = true;
        } else if (arg == "--listing") {
            opt.listing = true;
        } else if (arg == "--pretranslate") {
            opt.pretranslate = true;
        } else if (arg == "--sweep") {
            opt.sweep = true;
        } else if (arg == "--list") {
            opt.list = true;
        } else if (arg == "--filter") {
            const char *v = next();
            if (!v)
                return false;
            opt.filter = v;
        } else if (arg.rfind("--filter=", 0) == 0) {
            opt.filter = arg.substr(9);
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.list && opt.filter.empty()) {
        usage();
        return false;
    }
    return true;
}

/** Emission mode matching an execution mode. */
EmitOptions::Mode
emitModeFor(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ScalarBaseline:
        return EmitOptions::Mode::InlineScalar;
      case ExecMode::Liquid:
        return EmitOptions::Mode::Scalarized;
      case ExecMode::NativeSimd:
        return EmitOptions::Mode::Native;
    }
    panic("unknown ExecMode");
}

/** Run the suite workloads matching opt.filter (single-kernel
 *  investigation without editing source). */
int
runFiltered(const Options &opt)
{
    const std::regex re(opt.filter);
    bool matched = false;
    for (const auto &wl : makeSuite()) {
        if (!std::regex_search(wl->name(), re))
            continue;
        matched = true;
        std::cout << "== " << wl->name() << '\n';

        auto cyclesFor = [&](ExecMode mode, unsigned width) {
            const auto build = wl->build(emitModeFor(mode), width);
            SystemConfig config = SystemConfig::make(mode, width);
            config.translator.latencyPerInst = opt.latency;
            config.pretranslate = opt.pretranslate;
            System sys(config, build.prog);
            if (opt.trace)
                sys.core().setTrace(&std::cout);
            sys.run();
            if (opt.stats) {
                sys.core().stats().dump(std::cout);
                if (mode == ExecMode::Liquid)
                    sys.translator().stats().dump(std::cout);
            }
            return sys.cycles();
        };

        if (opt.sweep) {
            const Cycles base =
                cyclesFor(ExecMode::ScalarBaseline, 0);
            std::cout << "  scalar baseline: " << base << " cycles\n";
            for (unsigned width : {2u, 4u, 8u, 16u}) {
                const Cycles c = cyclesFor(ExecMode::Liquid, width);
                std::cout << "  liquid W=" << width << ":     " << c
                          << " cycles  ("
                          << static_cast<double>(base) /
                                 static_cast<double>(c)
                          << "x)\n";
            }
        } else {
            std::cout << "  cycles: "
                      << cyclesFor(opt.mode, opt.width) << '\n';
        }
    }
    if (!matched) {
        std::cerr << "no suite workload matches '" << opt.filter
                  << "' (see --list)\n";
        return 1;
    }
    return 0;
}

Cycles
runOnce(const Program &prog, const Options &opt, ExecMode mode,
        unsigned width, bool verbose)
{
    SystemConfig config = SystemConfig::make(mode, width);
    config.translator.latencyPerInst = opt.latency;
    config.pretranslate = opt.pretranslate;
    System sys(config, prog);
    if (opt.trace && verbose)
        sys.core().setTrace(&std::cout);
    sys.run();

    if (verbose) {
        std::cout << "cycles: " << sys.cycles() << '\n'
                  << "insts:  " << sys.core().stats().get("insts")
                  << '\n';
        if (mode == ExecMode::Liquid) {
            std::cout << "translations: "
                      << sys.translator().stats().get("translations")
                      << ", aborts: "
                      << sys.translator().stats().get("aborts")
                      << ", microcode dispatches: "
                      << sys.core().stats().get("ucodeDispatches")
                      << '\n';
        }
        if (opt.stats) {
            sys.core().stats().dump(std::cout);
            sys.core().icache().stats().dump(std::cout);
            sys.core().dcache().stats().dump(std::cout);
            if (mode == ExecMode::Liquid) {
                sys.translator().stats().dump(std::cout);
                sys.ucodeCache().stats().dump(std::cout);
            }
        }
        if (opt.ucode && mode == ExecMode::Liquid) {
            std::set<Addr> printed;
            for (const auto &inst : prog.code()) {
                if (inst.op != Opcode::Bl || inst.target < 0)
                    continue;
                if (!printed.insert(Program::instAddr(inst.target))
                         .second)
                    continue;
                const Addr entry = Program::instAddr(inst.target);
                const UcodeEntry *uc = sys.ucodeCache().lookup(
                    entry, sys.cycles() + 1'000'000);
                if (!uc)
                    continue;
                std::cout << "microcode for "
                          << (inst.targetSym.empty()
                                  ? std::to_string(inst.target)
                                  : inst.targetSym)
                          << " (width " << uc->simdWidth << "):\n";
                for (const auto &u : uc->insts)
                    std::cout << "    " << u.toString() << '\n';
            }
        }
    }
    return sys.cycles();
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (opt.list) {
        for (const auto &wl : makeSuite())
            std::cout << wl->name() << '\n';
        return 0;
    }
    if (!opt.filter.empty()) {
        try {
            return runFiltered(opt);
        } catch (const FatalError &e) {
            std::cerr << e.what() << '\n';
            return 1;
        } catch (const PanicError &e) {
            std::cerr << e.what() << '\n';
            return 1;
        }
    }

    std::ifstream in(opt.file);
    if (!in) {
        std::cerr << "cannot open '" << opt.file << "'\n";
        return 2;
    }
    std::ostringstream source;
    source << in.rdbuf();

    try {
        Program prog = assemble(source.str());
        if (opt.listing)
            std::cout << prog.listing();

        if (opt.sweep) {
            const Cycles base = runOnce(prog, opt,
                                        ExecMode::ScalarBaseline, 0,
                                        false);
            std::cout << "scalar baseline: " << base << " cycles\n";
            for (unsigned width : {2u, 4u, 8u, 16u}) {
                const Cycles c =
                    runOnce(prog, opt, ExecMode::Liquid, width, false);
                std::cout << "liquid W=" << width << ":     " << c
                          << " cycles  ("
                          << static_cast<double>(base) /
                                 static_cast<double>(c)
                          << "x)\n";
            }
            return 0;
        }

        runOnce(prog, opt, opt.mode, opt.width, true);
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    }
    return 0;
}
