/**
 * @file
 * liquid-serve: translation-as-a-service with a tail-latency contract.
 *
 * The serve subsystem (src/serve/) wraps the repo's analysis pipelines
 * — simulate, verify, scan, chaos, proof — behind a long-lived
 * in-process server with an async job queue, request coalescing, a hot
 * result cache and per-request deadlines. This tool drives it three
 * ways:
 *
 *   liquid-serve run                       # exercise the live async
 *                                          # server (threads, futures)
 *   liquid-serve loadgen --qps 200         # deterministic virtual-time
 *                                          # load run -> p50/p95/p99
 *   liquid-serve sweep --qps 100,200,400 --p99-target-us 4000
 *                                          # saturation sweep against
 *                                          # the tail-latency contract
 *
 * loadgen and sweep reports are byte-identical for a given seed and
 * spec at any --jobs count (see docs/SERVE.md for the virtual-time
 * methodology); --lab-out renders them through the lab results schema
 * so `liquid-lab diff` gates BENCH_serve.json in CI.
 *
 * Exit status: 0 on success; 1 when the p99 target is violated (or no
 * sweep point meets it, or a live-server request fails); 2 on usage
 * errors.
 */

#include <cstdlib>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "lab/results.hh"
#include "serve/loadgen.hh"
#include "serve/server.hh"

using namespace liquid;
using namespace liquid::serve;

namespace
{

struct Options
{
    std::string command;
    std::vector<std::string> workloads;     ///< empty = spec default
    std::vector<unsigned> widths;           ///< empty = spec default
    std::vector<RequestClass> classes;      ///< empty = all five
    unsigned jobs = 0;                      ///< 0 = hardware threads
    std::uint64_t seed = 1;
    std::vector<double> qpsList{200.0};
    std::uint64_t requests = 64;
    std::uint64_t deadlineUs = 0;
    unsigned servers = 4;
    std::size_t queueCapacity = 64;
    std::size_t hotCacheEntries = 256;
    std::string coldCacheDir;
    std::uint64_t hitCostUs = 5;
    std::uint64_t overheadUs = 20;
    std::uint64_t unitsPerUs = 1000;
    std::uint64_t p99TargetUs = 0;          ///< 0 = no gate (loadgen)
    unsigned repeat = 2;                    ///< run: submission rounds
    bool distribution = false;
    bool json = false;
    std::string out;
    std::string labOut;
};

void
usage()
{
    std::cout <<
        "usage: liquid-serve <run|loadgen|sweep> [options]\n"
        "common:\n"
        "  --workloads LIST    suite names (default: fir,lu,fft)\n"
        "  --widths LIST       SIMD widths (default: 4,8)\n"
        "  --classes LIST      simulate,verify,scan,chaos,proof\n"
        "                      (default: all five)\n"
        "  --jobs N            execution threads (default: hardware)\n"
        "  --json              machine-readable report on stdout\n"
        "  --out FILE          also write the report to FILE\n"
        "run (live async server):\n"
        "  --queue-capacity N  backpressure limit (default 64)\n"
        "  --hot-cache N       hot-tier entries (default 256)\n"
        "  --cold-cache DIR    on-disk cold tier for simulate\n"
        "  --repeat N          submission rounds over the request set\n"
        "                      (default 2; round 2 hits the hot tier)\n"
        "loadgen / sweep (deterministic virtual time):\n"
        "  --seed S            trace seed (default 1)\n"
        "  --qps LIST          offered load; one value for loadgen, a\n"
        "                      comma list of sweep points (default 200)\n"
        "  --requests N        trace length (default 64)\n"
        "  --deadline-us N     per-request budget; 0 = none\n"
        "  --servers N         virtual service slots (default 4)\n"
        "  --queue-capacity N  rejection threshold (default 64)\n"
        "  --hot-cache N       hot-tier entries (default 256)\n"
        "  --hit-cost-us N     hot-hit service time (default 5)\n"
        "  --overhead-us N     per-execution overhead (default 20)\n"
        "  --units-per-us N    work units per virtual us (default 1000)\n"
        "  --p99-target-us N   tail contract; loadgen exits 1 when the\n"
        "                      overall p99 exceeds it, sweep exits 1\n"
        "                      when no point meets it (sweep default\n"
        "                      4000)\n"
        "  --distribution      include per-class latency histograms\n"
        "  --lab-out FILE      write the lab-schema results file\n"
        "                      (BENCH_serve.json) for liquid-lab diff\n";
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    if (argc < 2) {
        return false;
    }
    opts.command = argv[1];
    if (opts.command == "-h" || opts.command == "--help") {
        usage();
        std::exit(0);
    }
    if (opts.command != "run" && opts.command != "loadgen" &&
        opts.command != "sweep") {
        std::cerr << "unknown command '" << opts.command << "'\n";
        return false;
    }
    if (opts.command == "sweep")
        opts.p99TargetUs = 4000;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        auto nextU64 = [&](std::uint64_t &out) {
            const char *v = next();
            if (!v)
                return false;
            out = std::strtoull(v, nullptr, 10);
            return true;
        };
        if (arg == "--workloads") {
            const char *v = next();
            if (!v)
                return false;
            opts.workloads = splitList(v);
        } else if (arg == "--widths") {
            const char *v = next();
            if (!v)
                return false;
            opts.widths.clear();
            for (const auto &w : splitList(v))
                opts.widths.push_back(static_cast<unsigned>(
                    std::strtoul(w.c_str(), nullptr, 10)));
        } else if (arg == "--classes") {
            const char *v = next();
            if (!v)
                return false;
            opts.classes.clear();
            for (const auto &c : splitList(v))
                opts.classes.push_back(classFromName(c));
        } else if (arg == "--jobs") {
            const char *v = next();
            if (!v)
                return false;
            opts.jobs = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--seed") {
            if (!nextU64(opts.seed))
                return false;
        } else if (arg == "--qps") {
            const char *v = next();
            if (!v)
                return false;
            opts.qpsList.clear();
            for (const auto &q : splitList(v))
                opts.qpsList.push_back(std::strtod(q.c_str(), nullptr));
        } else if (arg == "--requests") {
            if (!nextU64(opts.requests))
                return false;
        } else if (arg == "--deadline-us") {
            if (!nextU64(opts.deadlineUs))
                return false;
        } else if (arg == "--servers") {
            const char *v = next();
            if (!v)
                return false;
            opts.servers = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--queue-capacity") {
            std::uint64_t n = 0;
            if (!nextU64(n))
                return false;
            opts.queueCapacity = n;
        } else if (arg == "--hot-cache") {
            std::uint64_t n = 0;
            if (!nextU64(n))
                return false;
            opts.hotCacheEntries = n;
        } else if (arg == "--cold-cache") {
            const char *v = next();
            if (!v)
                return false;
            opts.coldCacheDir = v;
        } else if (arg == "--hit-cost-us") {
            if (!nextU64(opts.hitCostUs))
                return false;
        } else if (arg == "--overhead-us") {
            if (!nextU64(opts.overheadUs))
                return false;
        } else if (arg == "--units-per-us") {
            if (!nextU64(opts.unitsPerUs))
                return false;
        } else if (arg == "--p99-target-us") {
            if (!nextU64(opts.p99TargetUs))
                return false;
        } else if (arg == "--repeat") {
            const char *v = next();
            if (!v)
                return false;
            opts.repeat = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--distribution") {
            opts.distribution = true;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            opts.out = v;
        } else if (arg == "--lab-out") {
            const char *v = next();
            if (!v)
                return false;
            opts.labOut = v;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        }
    }
    return true;
}

LoadSpec
specFromOptions(const Options &opts)
{
    LoadSpec spec;
    spec.seed = opts.seed;
    spec.qps = opts.qpsList.front();
    spec.requests = opts.requests;
    spec.mix = opts.classes;
    spec.workloads = opts.workloads;
    spec.widths = opts.widths;
    spec.deadlineUs = opts.deadlineUs;
    spec.virtualServers = opts.servers;
    spec.queueCapacity = opts.queueCapacity;
    spec.hotCacheEntries = opts.hotCacheEntries;
    spec.hitCostUs = opts.hitCostUs;
    spec.overheadUs = opts.overheadUs;
    spec.unitsPerUs = opts.unitsPerUs;
    return spec;
}

void
emitReport(const Options &opts, const json::Value &report)
{
    if (opts.json)
        std::cout << report.toString() << '\n';
    if (!opts.out.empty()) {
        std::ofstream os(opts.out, std::ios::binary);
        if (!os)
            fatal("serve: cannot write '", opts.out, "'");
        os << report.toString();
    }
}

void
printClassTable(const LoadReport &report)
{
    auto row = [](const std::string &name, const ClassStats &cs) {
        std::cout << "  " << name << ": " << cs.submitted << " reqs, "
                  << cs.ok << " ok, " << cs.cancelled << " cancelled, "
                  << cs.rejected << " rejected, " << cs.hotHits
                  << " hot, " << cs.coalesced << " coalesced";
        if (cs.latency.count() > 0)
            std::cout << " | p50 " << cs.latency.quantile(0.50)
                      << "us p95 " << cs.latency.quantile(0.95)
                      << "us p99 " << cs.latency.quantile(0.99)
                      << "us";
        std::cout << '\n';
    };
    row("all", report.all);
    for (const auto &[name, cs] : report.classes)
        row(name, cs);
}

/** Build the live-server request set: one per class/workload/width. */
std::vector<Request>
liveRequestSet(const Options &opts)
{
    std::vector<RequestClass> classes(opts.classes);
    if (classes.empty())
        classes.assign(std::begin(allRequestClasses),
                       std::end(allRequestClasses));
    std::vector<std::string> workloads(opts.workloads);
    if (workloads.empty())
        workloads = {"fir", "lu", "fft"};
    std::vector<unsigned> widths(opts.widths);
    if (widths.empty())
        widths = {4, 8};

    std::vector<Request> set;
    for (RequestClass cls : classes) {
        for (const std::string &workload : workloads) {
            for (unsigned width : widths) {
                Request r;
                r.cls = cls;
                r.job.experiment = "serve";
                r.job.workload = workload;
                r.job.mode = ExecMode::Liquid;
                r.job.width = width;
                set.push_back(std::move(r));
            }
        }
    }
    return set;
}

int
cmdRun(const Options &opts)
{
    ServerConfig config;
    config.workers = opts.jobs ? opts.jobs : 4;
    config.queueCapacity = opts.queueCapacity;
    config.hotCacheEntries = opts.hotCacheEntries;
    config.coldCacheDir = opts.coldCacheDir;
    Server server(config);

    const std::vector<Request> set = liveRequestSet(opts);
    json::Value rounds = json::Value::array();
    bool anyFailed = false;

    for (unsigned round = 0; round < std::max(1u, opts.repeat);
         ++round) {
        std::vector<std::future<Response>> futures;
        futures.reserve(set.size());
        for (const Request &r : set)
            futures.push_back(server.submit(r));
        json::Value responses = json::Value::array();
        for (std::size_t i = 0; i < set.size(); ++i) {
            const Response resp = futures[i].get();
            anyFailed |= resp.status == ResponseStatus::Failed;
            json::Value rv = json::Value::object();
            rv.set("key", set[i].key());
            rv.set("status", statusName(resp.status));
            rv.set("source", sourceName(resp.source));
            rv.set("digest", resp.digest);
            rv.set("workUnits", resp.workUnits);
            rv.set("summary", resp.summary);
            if (!resp.error.empty())
                rv.set("error", resp.error);
            responses.push(std::move(rv));
            if (!opts.json)
                std::cout << set[i].key() << ": "
                          << statusName(resp.status) << " ("
                          << sourceName(resp.source) << ") "
                          << resp.summary << '\n';
        }
        rounds.push(std::move(responses));
    }
    server.stop();

    const ServerStats stats = server.stats();
    const HotCacheStats cacheStats = server.hotCacheStats();
    json::Value report = json::toolReport(serveSchema, serveVersion);
    report.set("kind", "run");
    report.set("rounds", std::move(rounds));
    json::Value sv = json::Value::object();
    sv.set("accepted", stats.accepted);
    sv.set("coalesced", stats.coalesced);
    sv.set("hotHits", stats.hotHits);
    sv.set("coldHits", stats.coldHits);
    sv.set("executed", stats.executed);
    sv.set("cancelled", stats.cancelled);
    sv.set("rejected", stats.rejected);
    sv.set("failed", stats.failed);
    sv.set("completed", stats.completed);
    sv.set("maxQueueDepth", stats.maxQueueDepth);
    report.set("stats", std::move(sv));
    json::Value cv = json::Value::object();
    cv.set("hits", cacheStats.hits);
    cv.set("misses", cacheStats.misses);
    cv.set("insertions", cacheStats.insertions);
    cv.set("evictions", cacheStats.evictions);
    report.set("cache", std::move(cv));
    emitReport(opts, report);

    if (!opts.json)
        std::cout << "server: " << stats.executed << " executed, "
                  << stats.hotHits << " hot hits, " << stats.coalesced
                  << " coalesced, " << stats.failed << " failed\n";
    return anyFailed ? 1 : 0;
}

int
cmdLoadgen(const Options &opts)
{
    if (opts.qpsList.size() != 1) {
        std::cerr << "loadgen takes a single --qps value "
                     "(use sweep for a list)\n";
        return 2;
    }
    const LoadReport report = runLoad(specFromOptions(opts), opts.jobs);
    emitReport(opts, report.toJson(opts.distribution));
    if (!opts.labOut.empty())
        toLabResults(report).writeFile(opts.labOut);
    if (!opts.json) {
        std::cout << "loadgen: " << report.spec.requests
                  << " requests at " << report.spec.qps
                  << " qps, makespan " << report.makespanUs
                  << "us, trace 0x" << std::hex << report.traceHash
                  << std::dec << '\n';
        printClassTable(report);
    }
    const std::uint64_t p99 = report.all.latency.count() > 0
                                  ? report.all.latency.quantile(0.99)
                                  : 0;
    if (opts.p99TargetUs != 0 && p99 > opts.p99TargetUs) {
        std::cerr << "serve: p99 " << p99 << "us exceeds the "
                  << opts.p99TargetUs << "us target\n";
        return 1;
    }
    return 0;
}

int
cmdSweep(const Options &opts)
{
    const SweepReport sweep = runSweep(specFromOptions(opts),
                                       opts.qpsList, opts.p99TargetUs,
                                       opts.jobs);
    emitReport(opts, sweep.toJson(opts.distribution));
    if (!opts.labOut.empty()) {
        // The lab-schema rendering carries the run at the highest
        // passing qps (the operating point the contract certifies),
        // or the first point when nothing passed.
        std::size_t best = 0;
        for (std::size_t i = 0; i < sweep.points.size(); ++i) {
            if (sweep.points[i].pass &&
                sweep.points[i].qps == sweep.qpsAtTarget)
                best = i;
        }
        toLabResults(sweep.runs[best], &sweep).writeFile(opts.labOut);
    }
    if (!opts.json) {
        for (const SweepPoint &p : sweep.points)
            std::cout << "  " << p.qps << " qps: p99 " << p.p99Us
                      << "us, " << p.ok << " ok, " << p.rejected
                      << " rejected, " << p.cancelled << " cancelled"
                      << (p.pass ? " [pass]" : " [FAIL]") << '\n';
        if (sweep.anyPass())
            std::cout << "sweep: " << sweep.qpsAtTarget
                      << " qps sustains p99 <= " << sweep.p99TargetUs
                      << "us (" << sweep.usPerOpAtTarget
                      << " us/op)\n";
        else
            std::cout << "sweep: NO operating point meets p99 <= "
                      << sweep.p99TargetUs << "us\n";
    }
    return sweep.anyPass() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }
    try {
        if (opts.command == "run")
            return cmdRun(opts);
        if (opts.command == "loadgen")
            return cmdLoadgen(opts);
        return cmdSweep(opts);
    } catch (const FatalError &e) {
        std::cerr << "liquid-serve: " << e.what() << '\n';
        return 2;
    }
}
