/**
 * @file
 * liquid-poly: width-polymorphic static verification front-end.
 *
 * One recording walk per region, a verdict that is a predicate on N:
 * the validity set (interval × congruence constraints over the
 * symbolic width) plus its exact instantiation at any concrete width.
 * Every run is backed by the differential gate — instantiating the
 * symbolic verdict at each ladder width (2/4/8/16) must reproduce the
 * concrete verifier's verdict bit-for-bit, including DepReason codes
 * and the full dependence pair.
 *
 *   liquid-poly prog.s             # validity set per hinted region
 *   liquid-poly --suite            # workload suite + mini-kernels,
 *                                  # differential gate enforced
 *   liquid-poly --random N         # N random kernels through the gate
 *   liquid-poly --sabotage        # seeded evaluator bugs must diverge
 *   liquid-poly --json             # machine-readable report
 *
 * --random honours LIQUID_POLY_TRIALS (count when N is omitted) and
 * LIQUID_POLY_SEED (generator seed).
 *
 * Exit status: 0 on success, 1 when a gate fails (any differential
 * mismatch, an uncaught sabotage mutation, no unbounded-N verdict in
 * --suite, or --werror with a Warn summary), 2 on usage/assembly
 * problems.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "common/random.hh"
#include "verifier/poly.hh"
#include "workloads/workload.hh"

#include "random_kernels.hh"

using namespace liquid;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *polySchema = "liquid-poly-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *polyToolVersion = "1.0";

struct Options
{
    std::string file;
    bool suite = false;
    bool sabotage = false;
    bool json = false;
    bool werror = false;
    unsigned random = 0;
    std::uint64_t seed = 0x9E3779B97F4A7C15ull;
};

void
usage()
{
    std::cout <<
        "usage: liquid-poly [options] program.s\n"
        "       liquid-poly [options] --suite\n"
        "       liquid-poly [options] --random [N]\n"
        "       liquid-poly [options] --sabotage\n"
        "  --suite          analyze the workload suite and the\n"
        "                   dependence mini-kernels; every region must\n"
        "                   pass the symbolic-vs-concrete differential\n"
        "                   and elementwise regions must verify with an\n"
        "                   unbounded-N verdict\n"
        "  --random [N]     run N random kernels through the\n"
        "                   differential gate (default "
        "LIQUID_POLY_TRIALS or 25)\n"
        "  --sabotage       seed each evaluator bug in turn; every\n"
        "                   mutation must diverge from the concrete\n"
        "                   verifier somewhere\n"
        "  --seed S         random-kernel seed (or LIQUID_POLY_SEED)\n"
        "  --werror         Warn-for-all-N summaries fail the run\n"
        "  --json           machine-readable report on stdout\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    if (const char *env = std::getenv("LIQUID_POLY_SEED"))
        opt.seed = std::strtoull(env, nullptr, 0);
    bool randomMode = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--sabotage") {
            opt.sabotage = true;
        } else if (arg == "--random") {
            randomMode = true;
            if (i + 1 < argc && argv[i + 1][0] != '-')
                opt.random = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
        } else if (arg == "--seed") {
            if (i + 1 >= argc) {
                std::cerr << "--seed needs a value\n";
                return false;
            }
            opt.seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (randomMode && opt.random == 0) {
        opt.random = 25;
        if (const char *env = std::getenv("LIQUID_POLY_TRIALS"))
            opt.random = static_cast<unsigned>(
                std::strtoul(env, nullptr, 10));
    }
    if (opt.file.empty() && !opt.suite && !opt.sabotage &&
        opt.random == 0) {
        usage();
        return false;
    }
    return true;
}

/**
 * Dependence mini-kernels with width-sensitive carried behaviour.
 * Random elementwise kernels have disjoint in/out arrays, so only
 * these exercise the group/order-flip scan — each sabotage mutation
 * is guaranteed to diverge on at least one of them.
 *
 * kern_mixed: ldh reads c+10+2j (element size 2) while stw writes
 * c+4i, giving overlapping pairs at non-uniform distances — the
 * group-collide and flip-ignore mutations pick a different first pair
 * than the honest scan at some ladder width.
 */
struct MiniKernel
{
    const char *name;
    const char *src;
};

const MiniKernel miniKernels[] = {
    {"kern_mixed",
     "        .data c 128\n"
     "kern_mixed:\n"
     "        mov r0, #0\n"
     "        mov r5, #5\n"
     "top:\n"
     "        ldh r1, [c + r5]\n"
     "        add r2, r1, #1\n"
     "        stw [c + r0], r2\n"
     "        add r5, r5, #1\n"
     "        add r0, r0, #1\n"
     "        cmp r0, #16\n"
     "        blt top\n"
     "        ret\n"
     "main:\n"
     "        bl.simd kern_mixed\n"
     "        halt\n"},
    {"kern_trip24",
     "        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18"
     " 19 20 21 22 23 24\n"
     "        .data a 96\n"
     "kern_trip24:\n"
     "        mov r0, #0\n"
     "top:\n"
     "        ldw r1, [x + r0]\n"
     "        add r2, r1, #1\n"
     "        stw [a + r0], r2\n"
     "        add r0, r0, #1\n"
     "        cmp r0, #24\n"
     "        blt top\n"
     "        ret\n"
     "main:\n"
     "        bl.simd kern_trip24\n"
     "        halt\n"},
    {"kern_stream",
     "        .rowords kco 5 7 5 7 5 7 5 7 5 7 5 7 5 7 5 7\n"
     "        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16\n"
     "        .data a 64\n"
     "kern_stream:\n"
     "        mov r0, #0\n"
     "top:\n"
     "        ldw r1, [kco + r0]\n"
     "        ldw r2, [x + r0]\n"
     "        add r3, r2, r1\n"
     "        stw [a + r0], r3\n"
     "        add r0, r0, #1\n"
     "        cmp r0, #16\n"
     "        blt top\n"
     "        ret\n"
     "main:\n"
     "        bl.simd kern_stream\n"
     "        halt\n"},
};

/** Everything the tool learned about one program. */
struct ProgramOutcome
{
    std::string name;
    std::vector<PolyRegion> regions;
    std::vector<PolyDiff> diffs;
    unsigned mismatches = 0;
    unsigned unbounded = 0;  ///< regions with a safe-for-all-N verdict
    unsigned warns = 0;      ///< regions whose best verdict is Warn
};

ProgramOutcome
analyzeProgram(const Program &prog, const std::string &name,
               unsigned sabotage = 0)
{
    ProgramOutcome out;
    out.name = name;
    const TranslatorConfig config;

    std::vector<int> seen;
    for (const HintedCall &call : prog.hintedCalls()) {
        bool dup = false;
        for (const int t : seen)
            dup = dup || t == call.target;
        if (dup)
            continue;
        seen.push_back(call.target);
        out.regions.push_back(analyzePoly(prog, call.target, config));
        out.diffs.push_back(
            diffRegion(prog, call.target, config, sabotage));
    }
    for (const PolyDiff &d : out.diffs)
        out.mismatches += static_cast<unsigned>(d.mismatches.size());
    for (const PolyRegion &r : out.regions) {
        if (r.validity.structuralUnbounded)
            ++out.unbounded;
        if (r.terminal.verdict == Severity::Warn &&
            r.validity.okWidths.empty())
            ++out.warns;
    }
    return out;
}

json::Value
regionJson(const PolyRegion &r)
{
    json::Value v = json::Value::object();
    v.set("region", r.entryLabel);
    v.set("entryIndex", r.entryIndex);
    const PolyValidity &pv = r.validity;
    v.set("summary", pv.summary);
    v.set("horizon", pv.horizon);
    v.set("tailExact", pv.tailExact);
    v.set("structuralUnbounded", pv.structuralUnbounded);
    json::Value ok = json::Value::array();
    for (const unsigned n : pv.okWidths)
        ok.push(n);
    v.set("okWidths", std::move(ok));
    v.set("tailVerdict", severityName(pv.tail.verdict));
    json::Value cons = json::Value::array();
    for (const NConstraint &c : pv.constraints)
        cons.push(c.render());
    v.set("constraints", std::move(cons));
    json::Value ladder = json::Value::array();
    for (const unsigned n : DepcheckResult::widths) {
        const PolyWidthOutcome o = r.instantiate(n);
        json::Value w = json::Value::object();
        w.set("width", n);
        w.set("verdict", severityName(o.verdict));
        if (o.verdict == Severity::Error) {
            w.set("reason", abortReasonName(o.reason));
            w.set("depMiscompile", o.depMiscompile);
        }
        if (o.depRan && o.depKind == WidthVerdict::Kind::Unsafe)
            w.set("distance", o.pair.distance);
        ladder.push(std::move(w));
    }
    v.set("ladder", std::move(ladder));
    return v;
}

json::Value
outcomeJson(const ProgramOutcome &out)
{
    json::Value v = json::Value::object();
    v.set("program", out.name);
    json::Value regions = json::Value::array();
    for (const PolyRegion &r : out.regions)
        regions.push(regionJson(r));
    v.set("regions", std::move(regions));
    json::Value diffs = json::Value::array();
    for (const PolyDiff &d : out.diffs) {
        for (const PolyMismatch &m : d.mismatches) {
            json::Value j = json::Value::object();
            j.set("region", d.entryLabel);
            j.set("width", m.width);
            j.set("field", m.field);
            j.set("expect", m.expect);
            j.set("got", m.got);
            diffs.push(std::move(j));
        }
    }
    v.set("mismatches", std::move(diffs));
    v.set("differentialClean", out.mismatches == 0);
    v.set("unboundedRegions", out.unbounded);
    return v;
}

void
printOutcome(const ProgramOutcome &out)
{
    std::cout << "== " << out.name << ": "
              << (out.mismatches == 0 ? "differential clean"
                                      : "DIFFERENTIAL MISMATCH")
              << '\n';
    for (const PolyRegion &r : out.regions) {
        std::cout << "  " << (r.entryLabel.empty() ? "?" : r.entryLabel)
                  << ": " << r.validity.summary << '\n';
    }
    for (const PolyDiff &d : out.diffs) {
        for (const PolyMismatch &m : d.mismatches) {
            std::cout << "  MISMATCH " << d.entryLabel << " w"
                      << m.width << " " << m.field << ": concrete="
                      << m.expect << " poly=" << m.got << '\n';
        }
    }
}

std::vector<ProgramOutcome>
runPrograms(const Options &opt, unsigned sabotage,
            bool withSuite, bool withMinis)
{
    std::vector<ProgramOutcome> outcomes;
    if (withMinis) {
        for (const MiniKernel &mk : miniKernels) {
            outcomes.push_back(analyzeProgram(assemble(mk.src),
                                              mk.name, sabotage));
        }
    }
    if (withSuite) {
        for (const auto &wl : makeSuite()) {
            const Workload::Build build =
                wl->build(EmitOptions::Mode::Scalarized, 8, true);
            outcomes.push_back(
                analyzeProgram(build.prog, wl->name(), sabotage));
        }
    }
    if (opt.random > 0) {
        Rng rng(opt.seed);
        Rng dataRng(opt.seed ^ 0xD1B54A32D192ED03ull);
        for (unsigned i = 0; i < opt.random; ++i) {
            const GeneratedKernel g = generateKernel(rng, i);
            const Program prog = buildGeneratedProgram(
                g, dataRng, EmitOptions::Mode::Scalarized, 8);
            outcomes.push_back(analyzeProgram(
                prog, "random" + std::to_string(i), sabotage));
        }
    }
    return outcomes;
}

/** The --sabotage self-test: every mutation must diverge somewhere. */
struct SabotageRun
{
    const char *name;
    unsigned mode;
    bool caught = false;
    std::string detail;
};

std::vector<SabotageRun>
runSabotage(const Options &opt)
{
    std::vector<SabotageRun> runs;
    for (unsigned bit = 0; bit < polySabotageCount; ++bit) {
        const auto sab = static_cast<PolySabotage>(1u << bit);
        runs.push_back({polySabotageName(sab), 1u << bit, false, ""});
    }
    for (SabotageRun &run : runs) {
        const std::vector<ProgramOutcome> outcomes =
            runPrograms(opt, run.mode, false, true);
        for (const ProgramOutcome &out : outcomes) {
            for (const PolyDiff &d : out.diffs) {
                if (!d.mismatches.empty()) {
                    const PolyMismatch &m = d.mismatches.front();
                    run.caught = true;
                    run.detail = out.name + " w" +
                                 std::to_string(m.width) + " " +
                                 m.field;
                    break;
                }
            }
            if (run.caught)
                break;
        }
    }
    return runs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    try {
        if (opt.sabotage) {
            // The honest evaluator must diff clean on the very
            // kernels the mutations are caught on.
            bool all = true;
            std::string honestFail;
            for (const ProgramOutcome &out :
                 runPrograms(opt, 0, false, true)) {
                if (out.mismatches != 0) {
                    all = false;
                    honestFail = out.name;
                }
            }
            const std::vector<SabotageRun> runs = runSabotage(opt);
            json::Value arr = json::Value::array();
            for (const SabotageRun &r : runs) {
                all = all && r.caught;
                if (opt.json) {
                    json::Value j = json::Value::object();
                    j.set("mutation", r.name);
                    j.set("caught", r.caught);
                    j.set("detail", r.detail);
                    arr.push(std::move(j));
                } else {
                    std::cout << r.name << ": "
                              << (r.caught ? "caught" : "NOT CAUGHT");
                    if (r.caught)
                        std::cout << " (" << r.detail << ")";
                    std::cout << '\n';
                }
            }
            if (!honestFail.empty())
                std::cerr << "honest evaluator mismatch on "
                          << honestFail << '\n';
            if (opt.json) {
                json::Value root =
                    json::toolReport(polySchema, polyToolVersion);
                root.set("sabotage", std::move(arr));
                root.set("allCaught", all);
                std::cout << root.toString() << '\n';
            } else {
                std::cout << (all ? "all mutations caught\n"
                                  : "SELF-TEST FAILED\n");
            }
            return all ? 0 : 1;
        }

        std::vector<ProgramOutcome> outcomes;
        if (opt.suite || opt.random > 0) {
            outcomes = runPrograms(opt, 0, opt.suite, opt.suite);
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            outcomes.push_back(
                analyzeProgram(assemble(source.str()), opt.file));
        }

        bool gateFailed = false;
        std::vector<std::string> gateFailures;
        unsigned mismatches = 0;
        unsigned unbounded = 0;
        unsigned warns = 0;
        for (const ProgramOutcome &out : outcomes) {
            mismatches += out.mismatches;
            unbounded += out.unbounded;
            warns += out.warns;
        }
        if (mismatches > 0) {
            gateFailed = true;
            gateFailures.push_back(
                "differential: " + std::to_string(mismatches) +
                " symbolic-vs-concrete mismatch(es)");
        }
        if (opt.suite && unbounded == 0) {
            gateFailed = true;
            gateFailures.push_back(
                "unbounded gate: no region earned a safe-for-all-N "
                "verdict");
        }
        if (opt.werror && warns > 0) {
            gateFailed = true;
            gateFailures.push_back("werror: " + std::to_string(warns) +
                                   " warn-for-all-N region(s)");
        }

        if (opt.json) {
            json::Value root =
                json::toolReport(polySchema, polyToolVersion);
            json::Value arr = json::Value::array();
            for (const ProgramOutcome &out : outcomes)
                arr.push(outcomeJson(out));
            root.set("programs", std::move(arr));
            json::Value gate = json::Value::object();
            gate.set("passed", !gateFailed);
            json::Value fails = json::Value::array();
            for (const std::string &s : gateFailures)
                fails.push(s);
            gate.set("failures", std::move(fails));
            root.set("gate", std::move(gate));
            std::cout << root.toString() << '\n';
        } else {
            for (const ProgramOutcome &out : outcomes)
                printOutcome(out);
            for (const std::string &s : gateFailures)
                std::cout << "GATE: " << s << '\n';
            std::cout << (gateFailed ? "FAILED\n" : "passed\n");
        }
        return gateFailed ? 1 : 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
