/**
 * @file
 * liquid-fast: lockstep differential harness and throughput bench for
 * the functional execution tier (src/fast/).
 *
 * The functional interpreter must retire the exact architectural state
 * the cycle core retires, instruction for instruction. This tool is
 * that contract's gate:
 *
 *   liquid-fast                            # lockstep the whole suite
 *   liquid-fast --random 200               # + randomized kernels
 *   liquid-fast --sabotage                 # self-test: seeded handler
 *                                          # bugs must be CAUGHT
 *   liquid-fast --switch                   # portable dispatch loop
 *   liquid-fast --bench --out BENCH_fast.json
 *                                          # retired-instructions/sec,
 *                                          # functional vs cycle, with
 *                                          # a >= --min-speedup gate
 *
 * Per-retire lockstep covers ScalarBaseline and NativeSimd execution;
 * Liquid mode interleaves translated microcode into the retire stream
 * and is covered by the chaos oracle's end-state contract instead.
 *
 * Exit status: 0 when every lockstep run is equal (and every sabotage
 * mutation is caught, and the bench gate holds); 1 otherwise; 2 on
 * usage errors.
 */

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "fast/fast.hh"
#include "fast/lockstep.hh"
#include "lab/experiments.hh"
#include "lab/runner.hh"
#include "random_kernels.hh"
#include "workloads/workload.hh"

using namespace liquid;
using fast::Sabotage;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *fastSchema = "liquid-fast-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *fastToolVersion = "1.0";

struct Options
{
    std::vector<std::string> workloads;  ///< empty = whole suite
    std::vector<ExecMode> modes{ExecMode::ScalarBaseline,
                                ExecMode::NativeSimd};
    std::vector<unsigned> widths{8};     ///< native widths
    unsigned random = 0;                 ///< extra random kernels
    std::uint64_t seed = 1;
    bool switchDispatch = false;
    std::string faults;                  ///< schedule key for both tiers
    bool sabotage = false;
    bool bench = false;
    double minSpeedup = 10.0;
    std::string out = "BENCH_fast.json";
    std::string dumpDir;
    bool json = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-fast [options]\n"
        "  --workloads LIST  comma-separated suite names (default: all)\n"
        "  --modes LIST      scalar,native (default: both)\n"
        "  --widths LIST     native SIMD widths (default: 8)\n"
        "  --random N        also lockstep N random kernels\n"
        "  --seed S          random-kernel RNG seed (default 1)\n"
        "  --switch          force the portable switch dispatch loop\n"
        "  --faults KEY      retire-keyed schedule for both tiers,\n"
        "                    e.g. 'int@40+smc@100'\n"
        "  --sabotage        self-test: seed each handler mutation and\n"
        "                    require the lockstep compare to catch it\n"
        "  --bench           measure retired-instructions/sec on both\n"
        "                    tiers and write a results file\n"
        "  --min-speedup X   bench gate: functional must be at least\n"
        "                    X times the cycle tier (default 10)\n"
        "  --out FILE        bench output path (default BENCH_fast.json)\n"
        "  --dump-dir DIR    write one divergence dump file per failing\n"
        "                    lockstep run\n"
        "  --json            machine-readable report on stdout\n";
}

std::vector<std::string>
splitList(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        const std::size_t comma = list.find(',', pos);
        out.push_back(list.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

bool
parseArgs(int argc, char **argv, Options &opts)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--workloads") {
            const char *v = next();
            if (!v)
                return false;
            opts.workloads = splitList(v);
        } else if (arg == "--modes") {
            const char *v = next();
            if (!v)
                return false;
            opts.modes.clear();
            for (const auto &m : splitList(v)) {
                if (m == "scalar") {
                    opts.modes.push_back(ExecMode::ScalarBaseline);
                } else if (m == "native") {
                    opts.modes.push_back(ExecMode::NativeSimd);
                } else {
                    std::cerr << "unknown mode '" << m
                              << "' (lockstep runs scalar and native; "
                                 "liquid is covered by liquid-chaos)\n";
                    return false;
                }
            }
        } else if (arg == "--widths") {
            const char *v = next();
            if (!v)
                return false;
            opts.widths.clear();
            for (const auto &w : splitList(v))
                opts.widths.push_back(
                    static_cast<unsigned>(std::strtoul(
                        w.c_str(), nullptr, 10)));
        } else if (arg == "--random") {
            const char *v = next();
            if (!v)
                return false;
            opts.random = static_cast<unsigned>(
                std::strtoul(v, nullptr, 10));
        } else if (arg == "--seed") {
            const char *v = next();
            if (!v)
                return false;
            opts.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--switch") {
            opts.switchDispatch = true;
        } else if (arg == "--faults") {
            const char *v = next();
            if (!v)
                return false;
            opts.faults = v;
        } else if (arg == "--sabotage") {
            opts.sabotage = true;
        } else if (arg == "--bench") {
            opts.bench = true;
        } else if (arg == "--min-speedup") {
            const char *v = next();
            if (!v)
                return false;
            opts.minSpeedup = std::strtod(v, nullptr);
        } else if (arg == "--out") {
            const char *v = next();
            if (!v)
                return false;
            opts.out = v;
        } else if (arg == "--dump-dir") {
            const char *v = next();
            if (!v)
                return false;
            opts.dumpDir = v;
        } else if (arg == "--json") {
            opts.json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        }
    }
    return true;
}

const char *
lockstepModeName(ExecMode mode)
{
    return mode == ExecMode::ScalarBaseline ? "scalar" : "native";
}

/** One lockstep verdict for the report. */
struct LockstepRecord
{
    std::string name;   ///< workload or generated-kernel name
    ExecMode mode = ExecMode::ScalarBaseline;
    unsigned width = 0;
    fast::LockstepResult result;
};

std::string
recordKey(const LockstepRecord &rec)
{
    std::string key = rec.name;
    key += '/';
    key += lockstepModeName(rec.mode);
    if (rec.mode != ExecMode::ScalarBaseline)
        key += "/w" + std::to_string(rec.width);
    return key;
}

void
dumpDivergence(const std::string &dir, const LockstepRecord &rec)
{
    if (dir.empty())
        return;
    std::filesystem::create_directories(dir);
    std::string file = recordKey(rec);
    for (char &c : file) {
        if (c == '/' || c == '.')
            c = '_';
    }
    std::ofstream os(dir + "/" + file + ".txt");
    os << recordKey(rec) << ": " << rec.result.retires
       << " retires compared\n";
    for (const auto &d : rec.result.divergences)
        os << d << '\n';
}

/**
 * Lockstep one program and record the verdict. Returns equal-ness so
 * callers can tally failures.
 */
bool
checkOne(const Options &opts, std::vector<LockstepRecord> &records,
         const std::string &name, const Program &prog, ExecMode mode,
         unsigned width, Sabotage sabotage = Sabotage::None)
{
    fast::LockstepOptions lopts;
    lopts.switchDispatch = opts.switchDispatch;
    lopts.sabotage = sabotage;
    if (!opts.faults.empty())
        lopts.faults = FaultSchedule::parse(opts.faults);
    // The stale-decode mutation only bites when an SMC event exercises
    // the invalidation path it corrupts.
    if (sabotage == Sabotage::StaleDecodeAfterSmc && opts.faults.empty())
        lopts.faults = FaultSchedule::parse("smc@40");

    LockstepRecord rec{name, mode, width,
                       fast::runLockstep(prog, mode, width, lopts)};
    const bool equal = rec.result.equal;
    if (!equal)
        dumpDivergence(opts.dumpDir, rec);
    if (!opts.json && !equal && sabotage == Sabotage::None) {
        std::cout << "  " << recordKey(rec) << ": DIVERGED after "
                  << rec.result.retires << " retire(s)\n";
        for (const auto &d : rec.result.divergences)
            std::cout << "      " << d << '\n';
    }
    records.push_back(std::move(rec));
    return equal;
}

/** The selected suite workloads, built per mode. */
std::vector<std::unique_ptr<Workload>>
selectWorkloads(const Options &opts)
{
    std::vector<std::unique_ptr<Workload>> out;
    for (auto &wl : makeSuite()) {
        if (!opts.workloads.empty()) {
            bool wanted = false;
            for (const auto &name : opts.workloads)
                wanted = wanted || name == wl->name();
            if (!wanted)
                continue;
        }
        out.push_back(std::move(wl));
    }
    if (out.empty())
        fatal("liquid-fast: no matching workloads");
    return out;
}

/**
 * The lockstep sweep proper: the 15-workload suite (scalar runs the
 * Scalarized build so bl/ret and the call log are exercised; native
 * runs the Native build per width), plus --random generated kernels.
 */
int
runLockstepSweep(const Options &opts)
{
    std::vector<LockstepRecord> records;
    unsigned failures = 0;

    for (const auto &wl : selectWorkloads(opts)) {
        for (ExecMode mode : opts.modes) {
            if (mode == ExecMode::ScalarBaseline) {
                const auto build =
                    wl->build(EmitOptions::Mode::Scalarized, 8);
                if (!checkOne(opts, records, wl->name(), build.prog,
                              mode, 0))
                    ++failures;
            } else {
                for (unsigned width : opts.widths) {
                    const auto build =
                        wl->build(EmitOptions::Mode::Native, width);
                    if (!checkOne(opts, records, wl->name(),
                                  build.prog, mode, width))
                        ++failures;
                }
            }
        }
    }

    Rng rng(opts.seed);
    unsigned skipped = 0;
    for (unsigned i = 0; i < opts.random; ++i) {
        const GeneratedKernel g = generateKernel(rng, i);
        const std::string name = "rand" + std::to_string(i);
        Program scalarProg;
        Program nativeProg;
        try {
            Rng rs(opts.seed ^ (0x9e3779b97f4a7c15ull + i));
            scalarProg = buildGeneratedProgram(
                g, rs, EmitOptions::Mode::Scalarized, 8);
            Rng rn(opts.seed ^ (0x9e3779b97f4a7c15ull + i));
            nativeProg = buildGeneratedProgram(
                g, rn, EmitOptions::Mode::Native, 8);
        } catch (const PanicError &) {
            // Generator occasionally exceeds a scalarizer limit;
            // such kernels never run on either tier.
            ++skipped;
            continue;
        } catch (const FatalError &) {
            ++skipped;
            continue;
        }
        if (!checkOne(opts, records, name, scalarProg,
                      ExecMode::ScalarBaseline, 0))
            ++failures;
        if (!checkOne(opts, records, name, nativeProg,
                      ExecMode::NativeSimd, 8))
            ++failures;
    }
    if (skipped && !opts.json) {
        std::cout << skipped << " random kernel(s) skipped "
                     "(scalarizer limits)\n";
    }

    // Sabotage self-test: each seeded handler mutation must surface as
    // a lockstep divergence — a compare that misses a known-wrong
    // functional tier would also miss a real bug.
    std::vector<std::pair<std::string, bool>> sabotageCaught;
    if (opts.sabotage) {
        const auto suite = makeSuite();
        const Workload *victim = nullptr;
        for (const auto &wl : suite) {
            if (wl->name() == "fir")
                victim = wl.get();
        }
        LIQUID_ASSERT(victim, "suite lost the fir workload");
        const auto scalarBuild =
            victim->build(EmitOptions::Mode::Scalarized, 8);
        const auto nativeBuild =
            victim->build(EmitOptions::Mode::Native, 8);
        for (Sabotage s :
             {Sabotage::WrongFlagUpdate, Sabotage::SkippedStore,
              Sabotage::StaleDecodeAfterSmc, Sabotage::OffByOneBlock}) {
            std::vector<LockstepRecord> scratch;
            const bool scalarEqual = checkOne(
                opts, scratch, "sabotage", scalarBuild.prog,
                ExecMode::ScalarBaseline, 0, s);
            const bool nativeEqual = checkOne(
                opts, scratch, "sabotage", nativeBuild.prog,
                ExecMode::NativeSimd, 8, s);
            // Caught = at least one lockstep run diverged.
            const bool caught = !scalarEqual || !nativeEqual;
            const char *sname =
                s == Sabotage::WrongFlagUpdate ? "wrongFlagUpdate"
                : s == Sabotage::SkippedStore  ? "skippedStore"
                : s == Sabotage::StaleDecodeAfterSmc
                    ? "staleDecodeAfterSmc"
                    : "offByOneBlock";
            sabotageCaught.emplace_back(sname, caught);
            if (!caught)
                ++failures;
            if (!opts.json) {
                std::cout << "sabotage " << sname << ": "
                          << (caught ? "caught" : "MISSED") << '\n';
            }
        }
    }

    if (opts.json) {
        json::Value v = json::toolReport(fastSchema, fastToolVersion);
        v.set("dispatch",
              opts.switchDispatch ? "switch" : "computed-goto");
        v.set("checks", static_cast<std::uint64_t>(records.size()));
        v.set("failures", failures);
        json::Value arr = json::Value::array();
        for (const auto &rec : records) {
            json::Value r = json::Value::object();
            r.set("key", recordKey(rec));
            r.set("retires", rec.result.retires);
            r.set("equal", rec.result.equal);
            if (!rec.result.equal) {
                json::Value dd = json::Value::array();
                for (const auto &d : rec.result.divergences)
                    dd.push(json::Value(d));
                r.set("divergences", std::move(dd));
            }
            arr.push(std::move(r));
        }
        v.set("results", std::move(arr));
        if (!sabotageCaught.empty()) {
            json::Value sab = json::Value::object();
            for (const auto &[name, caught] : sabotageCaught)
                sab.set(name, caught);
            v.set("sabotageCaught", std::move(sab));
        }
        std::cout << v.toString() << '\n';
    } else {
        std::uint64_t retires = 0;
        for (const auto &rec : records)
            retires += rec.result.retires;
        std::cout << records.size() << " lockstep runs, " << retires
                  << " retires compared, " << failures
                  << " failure(s)\n";
    }
    return failures ? 1 : 0;
}

// ---- throughput bench -----------------------------------------------------

/** Wall-clock per tier over repeated runs of one build. */
struct TierTiming
{
    std::uint64_t insts = 0;
    double seconds = 0;
};

/** Repeat @p body until ~minSeconds of wall-clock accumulates. */
template <typename Body>
TierTiming
timeTier(double minSeconds, Body body)
{
    TierTiming t;
    const auto t0 = std::chrono::steady_clock::now();
    do {
        t.insts += body();
        t.seconds = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    } while (t.seconds < minSeconds);
    return t;
}

/**
 * Bench: run the "fast" lab campaign for the committed parity results,
 * then measure retired-instructions/sec on both tiers across the suite
 * and attach the throughput block. The functional tier must clear
 * --min-speedup over the cycle model.
 */
int
runBench(const Options &opts)
{
    // Parity results via the lab (smoke-sized: the committed baseline
    // must match what CI's smoke campaign produces).
    lab::Runner runner(0);
    lab::ResultSet results = runner.run(
        lab::campaignByName("fast", true).matrix.expand(), nullptr,
        nullptr, nullptr);

    // Throughput: full-sized workloads, both modes, both tiers.
    TierTiming cycle, functional;
    for (const auto &wl : selectWorkloads(opts)) {
        for (ExecMode mode : opts.modes) {
            const auto build = wl->build(
                mode == ExecMode::ScalarBaseline
                    ? EmitOptions::Mode::Scalarized
                    : EmitOptions::Mode::Native,
                8);
            const SystemConfig config = SystemConfig::make(mode, 8);
            const auto c = timeTier(0.05, [&]() -> std::uint64_t {
                System sys(config, build.prog);
                sys.run();
                return sys.core().stats().get("insts");
            });
            cycle.insts += c.insts;
            cycle.seconds += c.seconds;

            fast::FastConfig fc;
            fc.simdWidth =
                mode == ExecMode::ScalarBaseline ? 0 : config.simdWidth;
            fc.switchDispatch = opts.switchDispatch;
            const auto f = timeTier(0.05, [&]() -> std::uint64_t {
                MainMemory mem = MainMemory::forProgram(build.prog);
                fast::FastInterp interp(fc, build.prog, mem);
                interp.run();
                return interp.retired();
            });
            functional.insts += f.insts;
            functional.seconds += f.seconds;
        }
    }

    const double cycleRate =
        static_cast<double>(cycle.insts) / cycle.seconds;
    const double functionalRate =
        static_cast<double>(functional.insts) / functional.seconds;
    const double speedup = functionalRate / cycleRate;

    json::Value v = results.toJson();
    json::Value thr = json::Value::object();
    thr.set("schema", fastSchema);
    thr.set("dispatch",
            opts.switchDispatch ? "switch" : "computed-goto");
    json::Value cyc = json::Value::object();
    cyc.set("insts", cycle.insts);
    cyc.set("retiredPerSec", cycleRate);
    thr.set("cycle", std::move(cyc));
    json::Value fun = json::Value::object();
    fun.set("insts", functional.insts);
    fun.set("retiredPerSec", functionalRate);
    thr.set("functional", std::move(fun));
    thr.set("speedup", speedup);
    v.set("throughput", std::move(thr));

    std::ofstream os(opts.out, std::ios::binary);
    if (!os)
        fatal("liquid-fast: cannot write '", opts.out, "'");
    os << v.toString();

    std::cout << "cycle tier:      " << static_cast<std::uint64_t>(
                     cycleRate) << " retired insts/sec\n"
              << "functional tier: " << static_cast<std::uint64_t>(
                     functionalRate) << " retired insts/sec\n"
              << "speedup:         " << speedup << "x (gate: >= "
              << opts.minSpeedup << "x)\n"
              << "results + throughput -> " << opts.out << '\n';
    if (speedup < opts.minSpeedup) {
        std::cout << "FAIL: functional tier below the throughput "
                     "gate\n";
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opts;
    if (!parseArgs(argc, argv, opts)) {
        usage();
        return 2;
    }

    try {
        if (opts.bench)
            return runBench(opts);
        return runLockstepSweep(opts);
    } catch (const FatalError &e) {
        std::cerr << "liquid-fast: " << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << "liquid-fast: " << e.what() << '\n';
        return 1;
    }
}
