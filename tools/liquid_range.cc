/**
 * @file
 * liquid-range: interprocedural value-range, alignment and trip-count
 * analysis front-end.
 *
 * Solves whole-program ranges for a binary, then runs the static
 * verifier twice — facts-off and facts-on — and reports what the
 * analysis bought: runtime-dependent Warn regions upgraded to concrete
 * verdicts, and pair-budget-exhausted depcheck Unknowns discharged by
 * footprint/congruence separation. Every run is backed by the
 * differential soundness oracle: a scalar-baseline execution with a
 * retire-bus recorder asserting each static fact contains every
 * dynamically observed value.
 *
 *   liquid-range prog.s            # analyze + verify one binary
 *   liquid-range --suite           # stress set + workload-suite gate
 *   liquid-range --widths 4,16     # accelerator widths to verify
 *   liquid-range --json            # machine-readable report
 *   liquid-range --sabotage        # seeded-unsoundness self-test
 *
 * --suite enforces the acceptance gate: every expected stress upgrade
 * happens, at least 3 verdicts are discharged past the pair budget,
 * and the oracle observes zero violations. --sabotage seeds each
 * unsound-transfer mutation in turn and requires the oracle to catch
 * every one.
 *
 * Exit status: 0 on success, 1 when a gate fails (oracle violation,
 * missed upgrade/discharge, uncaught sabotage, or --werror with a
 * facts-on Warn), 2 on usage/assembly problems.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "sim/system.hh"
#include "verifier/range.hh"
#include "verifier/verifier.hh"
#include "workloads/range_stress.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/** JSON output format identifier; bump on breaking layout changes. */
constexpr const char *rangeSchema = "liquid-range-v1";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *rangeToolVersion = "1.0";

struct Options
{
    std::string file;
    std::vector<unsigned> widths{2, 4, 8, 16};
    bool suite = false;
    bool json = false;
    bool werror = false;
    bool sabotage = false;
    bool oracle = true;
    bool prove = false;
};

void
usage()
{
    std::cout <<
        "usage: liquid-range [options] program.s\n"
        "       liquid-range [options] --suite\n"
        "       liquid-range [options] --sabotage\n"
        "  --widths N,N,..  accelerator widths to verify (2,4,8,16)\n"
        "  --suite          analyze the stress set and the workload\n"
        "                   suite, enforcing the upgrade/discharge/\n"
        "                   oracle gates\n"
        "  --sabotage       seed each unsound-transfer mutation and\n"
        "                   require the differential oracle to catch it\n"
        "  --prove          also run the translation-validation prover\n"
        "                   (range facts shrink its enumeration)\n"
        "  --no-oracle      skip the dynamic differential oracle\n"
        "  --werror         facts-on Warn verdicts fail the run\n"
        "  --json           machine-readable report on stdout\n";
}

bool
parseWidths(const std::string &arg, std::vector<unsigned> &widths)
{
    widths.clear();
    std::istringstream is(arg);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            return false;
        widths.push_back(static_cast<unsigned>(std::stoul(tok)));
    }
    return !widths.empty();
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--widths") {
            if (i + 1 >= argc || !parseWidths(argv[++i], opt.widths)) {
                std::cerr << "bad --widths value\n";
                return false;
            }
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--sabotage") {
            opt.sabotage = true;
        } else if (arg == "--prove") {
            opt.prove = true;
        } else if (arg == "--no-oracle") {
            opt.oracle = false;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.suite && !opt.sabotage) {
        usage();
        return false;
    }
    if (!opt.file.empty() && (opt.suite || opt.sabotage)) {
        std::cerr << "--suite/--sabotage do not take an input file\n";
        return false;
    }
    return true;
}

/** One region verified at one width, facts-off vs facts-on. */
struct RegionRow
{
    std::string label;
    int entryIndex = -1;
    unsigned width = 0;
    Severity before = Severity::Ok;
    Severity after = Severity::Ok;
    unsigned discharged = 0;
    std::vector<std::string> facts;
    std::string proofBefore;
    std::string proofAfter;
};

/** Everything the tool learned about one program. */
struct ProgramOutcome
{
    std::string name;
    bool sound = false;
    unsigned rounds = 0;
    std::vector<RegionRow> rows;
    unsigned upgrades = 0;         ///< rows where Warn turned Ok
    unsigned discharged = 0;       ///< dep verdicts flipped via range
    std::string tripBound;         ///< first region's proven bound
    unsigned oracleChecked = 0;
    std::vector<std::string> oracleViolations;
    bool oracleRan = false;
};

/** Run the differential oracle: scalar execution vs static facts. */
void
runOracle(const Program &prog, const ProgramRanges &pr,
          ProgramOutcome &out)
{
    const SystemConfig sc =
        SystemConfig::make(ExecMode::ScalarBaseline);
    System sys(sc, prog);
    RangeObserver obs(prog, pr);
    sys.core().setRetireSink(&obs);
    sys.run();
    out.oracleRan = true;
    out.oracleChecked = obs.checkedRetires();
    out.oracleViolations = obs.violations();
}

ProgramOutcome
analyzeProgram(const Program &prog, const std::string &name,
               const Options &opt, unsigned sabotage = SabNone)
{
    ProgramOutcome out;
    out.name = name;

    RangeSolveOptions ropt;
    ropt.sabotage = sabotage;
    const ProgramRanges pr = solveProgramRanges(prog, ropt);
    out.sound = pr.sound;
    out.rounds = pr.rounds;

    for (const unsigned w : opt.widths) {
        VerifyOptions off;
        off.config.simdWidth = w;
        off.prove = opt.prove;
        VerifyOptions on = off;
        on.ranges = &pr;

        const ProgramReport before = verifyProgram(prog, off);
        const ProgramReport after = verifyProgram(prog, on);
        for (std::size_t i = 0;
             i < before.regions.size() && i < after.regions.size();
             ++i) {
            const RegionReport &b = before.regions[i];
            const RegionReport &a = after.regions[i];
            RegionRow row;
            row.label = a.entryLabel;
            row.entryIndex = a.entryIndex;
            row.width = w;
            row.before = b.verdict;
            row.after = a.verdict;
            row.discharged = a.rangeDischarged;
            row.facts = a.rangeFacts;
            row.proofBefore = b.proofVerdict;
            row.proofAfter = a.proofVerdict;
            out.discharged += a.rangeDischarged;
            if (b.verdict == Severity::Warn &&
                a.verdict == Severity::Ok)
                ++out.upgrades;
            if (out.tripBound.empty()) {
                const Interval t = pr.tripBound(a.entryIndex);
                if (!t.isTop() && !t.empty())
                    out.tripBound = t.str();
            }
            out.rows.push_back(std::move(row));
        }
    }

    if (opt.oracle)
        runOracle(prog, pr, out);
    return out;
}

json::Value
outcomeJson(const ProgramOutcome &out)
{
    json::Value v = json::Value::object();
    v.set("program", out.name);
    v.set("sound", out.sound);
    v.set("rounds", out.rounds);
    if (!out.tripBound.empty())
        v.set("tripCountBound", out.tripBound);
    json::Value rows = json::Value::array();
    for (const RegionRow &r : out.rows) {
        json::Value j = json::Value::object();
        j.set("region", r.label);
        j.set("entryIndex", r.entryIndex);
        j.set("width", r.width);
        j.set("verdictFactsOff", severityName(r.before));
        j.set("verdictFactsOn", severityName(r.after));
        j.set("discharged", r.discharged);
        if (!r.proofAfter.empty())
            j.set("proof", r.proofAfter);
        json::Value facts = json::Value::array();
        for (const std::string &f : r.facts)
            facts.push(f);
        j.set("facts", std::move(facts));
        rows.push(std::move(j));
    }
    v.set("regions", std::move(rows));
    v.set("upgrades", out.upgrades);
    v.set("discharged", out.discharged);
    json::Value oracle = json::Value::object();
    oracle.set("ran", out.oracleRan);
    oracle.set("checkedRetires", out.oracleChecked);
    json::Value viol = json::Value::array();
    for (const std::string &s : out.oracleViolations)
        viol.push(s);
    oracle.set("violations", std::move(viol));
    v.set("oracle", std::move(oracle));
    return v;
}

void
printOutcome(const ProgramOutcome &out)
{
    std::cout << "== " << out.name << ": "
              << (out.sound ? "sound" : "NOT CONVERGED (facts dropped)")
              << ", " << out.rounds << " round(s)";
    if (!out.tripBound.empty())
        std::cout << ", trip bound " << out.tripBound;
    std::cout << '\n';
    for (const RegionRow &r : out.rows) {
        std::cout << "  " << (r.label.empty() ? "?" : r.label) << " w"
                  << r.width << ": " << severityName(r.before)
                  << " -> " << severityName(r.after);
        if (r.discharged)
            std::cout << " (" << r.discharged
                      << " dep verdict(s) discharged)";
        std::cout << '\n';
        for (const std::string &f : r.facts)
            std::cout << "    fact: " << f << '\n';
    }
    if (out.oracleRan) {
        std::cout << "  oracle: " << out.oracleChecked
                  << " retires checked, " << out.oracleViolations.size()
                  << " violation(s)\n";
        for (const std::string &s : out.oracleViolations)
            std::cout << "    VIOLATION: " << s << '\n';
    }
}

/** The --sabotage self-test: every mutation must be caught. */
struct SabotageRun
{
    const char *name;
    unsigned mode;
    bool caught = false;
    std::string detail;
};

std::vector<SabotageRun>
runSabotage(const Options &opt)
{
    std::vector<SabotageRun> runs = {
        {"unsoundJoin", SabUnsoundJoin, false, ""},
        {"wrapClamp", SabWrapClamp, false, ""},
        {"storeNoHavoc", SabStoreNoHavoc, false, ""},
        {"edgeTighten", SabEdgeTighten, false, ""},
    };
    Options sopt = opt;
    sopt.oracle = true;
    for (SabotageRun &run : runs) {
        for (const RangeStressCase &c : rangeStressCases()) {
            const Program prog = assemble(c.src);
            const ProgramOutcome out =
                analyzeProgram(prog, c.name, sopt, run.mode);
            if (!out.oracleViolations.empty()) {
                run.caught = true;
                run.detail = std::string(c.name) + ": " +
                             out.oracleViolations.front();
                break;
            }
        }
    }
    return runs;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    try {
        if (opt.sabotage) {
            const std::vector<SabotageRun> runs = runSabotage(opt);
            bool all = true;
            json::Value arr = json::Value::array();
            for (const SabotageRun &r : runs) {
                all = all && r.caught;
                if (opt.json) {
                    json::Value j = json::Value::object();
                    j.set("mutation", r.name);
                    j.set("caught", r.caught);
                    j.set("detail", r.detail);
                    arr.push(std::move(j));
                } else {
                    std::cout << r.name << ": "
                              << (r.caught ? "caught" : "NOT CAUGHT");
                    if (r.caught)
                        std::cout << " (" << r.detail << ")";
                    std::cout << '\n';
                }
            }
            if (opt.json) {
                json::Value root =
                    json::toolReport(rangeSchema, rangeToolVersion);
                root.set("sabotage", std::move(arr));
                root.set("allCaught", all);
                std::cout << root.toString() << '\n';
            } else {
                std::cout << (all ? "all mutations caught\n"
                                  : "SELF-TEST FAILED\n");
            }
            return all ? 0 : 1;
        }

        std::vector<ProgramOutcome> outcomes;
        bool gateFailed = false;
        std::vector<std::string> gateFailures;

        if (opt.suite) {
            unsigned discharged = 0;
            for (const RangeStressCase &c : rangeStressCases()) {
                const Program prog = assemble(c.src);
                ProgramOutcome out = analyzeProgram(prog, c.name, opt);
                discharged += out.discharged;
                if (c.expectUpgrade && out.upgrades == 0 &&
                    out.discharged == 0) {
                    gateFailed = true;
                    gateFailures.push_back(
                        std::string(c.name) +
                        ": expected an upgrade or discharge (" +
                        c.blocker + ")");
                }
                if (!c.expectUpgrade && out.upgrades > 0) {
                    gateFailed = true;
                    gateFailures.push_back(
                        std::string(c.name) +
                        ": negative control was upgraded");
                }
                outcomes.push_back(std::move(out));
            }
            if (discharged < 3) {
                gateFailed = true;
                gateFailures.push_back(
                    "discharge gate: " + std::to_string(discharged) +
                    " < 3 dep verdicts discharged past the budget");
            }
            // Workload-suite sweep: the analysis must stay sound and
            // oracle-clean on the fifteen-benchmark programs too.
            for (const auto &wl : makeSuite()) {
                const Workload::Build build = wl->build(
                    EmitOptions::Mode::Scalarized, 8, true);
                outcomes.push_back(
                    analyzeProgram(build.prog, wl->name(), opt));
            }
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            const Program prog = assemble(source.str());
            outcomes.push_back(analyzeProgram(prog, opt.file, opt));
        }

        unsigned violations = 0;
        unsigned warnAfter = 0;
        for (const ProgramOutcome &out : outcomes) {
            violations +=
                static_cast<unsigned>(out.oracleViolations.size());
            for (const RegionRow &r : out.rows)
                warnAfter += r.after == Severity::Warn ? 1 : 0;
        }
        if (violations > 0) {
            gateFailed = true;
            gateFailures.push_back("oracle: " +
                                   std::to_string(violations) +
                                   " soundness violation(s)");
        }
        if (opt.werror && warnAfter > 0) {
            gateFailed = true;
            gateFailures.push_back("werror: " +
                                   std::to_string(warnAfter) +
                                   " facts-on warn verdict(s)");
        }

        if (opt.json) {
            json::Value root =
                json::toolReport(rangeSchema, rangeToolVersion);
            json::Value arr = json::Value::array();
            for (const ProgramOutcome &out : outcomes)
                arr.push(outcomeJson(out));
            root.set("programs", std::move(arr));
            json::Value gate = json::Value::object();
            gate.set("passed", !gateFailed);
            json::Value fails = json::Value::array();
            for (const std::string &s : gateFailures)
                fails.push(s);
            gate.set("failures", std::move(fails));
            root.set("gate", std::move(gate));
            std::cout << root.toString() << '\n';
        } else {
            for (const ProgramOutcome &out : outcomes)
                printOutcome(out);
            for (const std::string &s : gateFailures)
                std::cout << "GATE: " << s << '\n';
            std::cout << (gateFailed ? "FAILED\n" : "passed\n");
        }
        return gateFailed ? 1 : 0;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
