/**
 * @file
 * liquid-scan: whole-binary SIMD-region discovery and static speedup
 * prediction.
 *
 * Takes an assembled program with NO scalarizer metadata, recovers the
 * interprocedural CFG (every bl target is an outlined function under
 * the bl/ret convention), checks each function's natural loops against
 * the paper's region-boundary liveness contract, and predicts the
 * translated speedup at each accelerator width via the Table-1 rule
 * mirror, depcheck and the cost model.
 *
 *   liquid-scan prog.s                    # scan one binary
 *   liquid-scan --suite                   # scan the unhinted suite
 *   liquid-scan --widths 2,4,8,16 prog.s  # prediction widths
 *   liquid-scan --json prog.s             # machine-readable report
 *   liquid-scan --suite --validate bench/baseline/BENCH_fig6.json
 *                                         # join predictions against
 *                                         # measured lab results
 *
 * Exit status: 0 when no region is Error-severity (and, with
 * --validate, predicted-vs-measured rankings agree); 1 otherwise;
 * 2 on usage/assembly problems.
 */

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "asm/assembler.hh"
#include "common/json.hh"
#include "lab/predict.hh"
#include "verifier/range.hh"
#include "verifier/scan.hh"
#include "workloads/workload.hh"

using namespace liquid;

namespace
{

/**
 * JSON output format identifier; bump on breaking layout changes.
 * v2: regions gained tripCountBound (liquid-range proven iteration
 * bound, present when --ranges proves one).
 * v3: candidate regions gained widthValidity{summary, okWidths,
 * structuralUnbounded} (the liquid-poly predicate on N), and
 * validation summaries report rejected functional-tier rows. Additive
 * over v2.
 */
constexpr const char *scanSchema = "liquid-scan-v3";
/** Tool revision carried in the JSON header for drift detection. */
constexpr const char *scanToolVersion = "3.0";

struct Options
{
    std::string file;
    std::vector<unsigned> widths{2, 4, 8, 16};
    bool fallback = true;
    bool predict = true;
    bool prove = false;
    bool ranges = false;
    bool werror = false;
    bool suite = false;
    bool json = false;
    std::string validateFile;
};

void
usage()
{
    std::cout <<
        "usage: liquid-scan [options] program.s\n"
        "       liquid-scan [options] --suite\n"
        "  --widths LIST    comma-separated prediction widths"
        " (2,4,8,16)\n"
        "  --no-fallback    do not retry failed widths at half width\n"
        "  --no-predict     discovery and contract checks only\n"
        "  --prove          back each prediction with the symbolic\n"
        "                   translation-validation prover\n"
        "  --ranges         seed discovery and the cost model with the\n"
        "                   interprocedural value-range analysis\n"
        "                   (trip-count bounds, access alignment)\n"
        "  --werror         treat warn verdicts as errors\n"
        "  --json           machine-readable report on stdout\n"
        "  --suite          scan every suite workload, built without\n"
        "                   scalarizer hints\n"
        "  --validate FILE  join suite predictions against measured\n"
        "                   liquid-lab results (implies --suite)\n";
}

bool
parseWidths(const std::string &list, std::vector<unsigned> &out)
{
    out.clear();
    std::istringstream is(list);
    std::string tok;
    while (std::getline(is, tok, ',')) {
        if (tok.empty())
            return false;
        const unsigned w =
            static_cast<unsigned>(std::stoul(tok));
        if (w < 2 || (w & (w - 1)) != 0)
            return false;
        out.push_back(w);
    }
    return !out.empty();
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << '\n';
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--widths") {
            const char *v = value();
            if (!v || !parseWidths(v, opt.widths)) {
                std::cerr << "bad width list\n";
                return false;
            }
        } else if (arg == "--no-fallback") {
            opt.fallback = false;
        } else if (arg == "--no-predict") {
            opt.predict = false;
        } else if (arg == "--prove") {
            opt.prove = true;
        } else if (arg == "--ranges") {
            opt.ranges = true;
        } else if (arg == "--werror") {
            opt.werror = true;
        } else if (arg == "--json") {
            opt.json = true;
        } else if (arg == "--suite") {
            opt.suite = true;
        } else if (arg == "--validate") {
            const char *v = value();
            if (!v)
                return false;
            opt.validateFile = v;
            opt.suite = true;
        } else if (arg == "-h" || arg == "--help") {
            usage();
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            return false;
        } else if (opt.file.empty()) {
            opt.file = arg;
        } else {
            std::cerr << "multiple input files\n";
            return false;
        }
    }
    if (opt.file.empty() && !opt.suite) {
        usage();
        return false;
    }
    if (!opt.file.empty() && opt.suite) {
        std::cerr << "--suite does not take an input file\n";
        return false;
    }
    return true;
}

json::Value
regNames(const RegSet &set)
{
    json::Value arr = json::Value::array();
    for (const RegId reg : set.regs())
        arr.push(regName(reg));
    return arr;
}

json::Value
regionJson(const std::string &program, const ScanRegion &r)
{
    json::Value v = json::Value::object();
    v.set("program", program);
    v.set("entryLabel", r.entryLabel);
    v.set("entryIndex", r.entryIndex);
    v.set("callSites", r.callSites);
    v.set("hinted", r.hinted);
    if (r.widthHint)
        v.set("widthHint", r.widthHint);
    v.set("blocks", r.blockCount);
    v.set("loops", r.loopCount);
    v.set("irreducible", r.irreducible);
    v.set("liveIn", regNames(r.liveIn));
    v.set("liveOut", regNames(r.liveOutDemanded));
    v.set("iv", regNames(r.ivRegs));
    v.set("contractVerdict", severityName(r.contractVerdict));
    v.set("verdict", severityName(r.overallVerdict()));
    v.set("candidate", r.candidate);
    if (!r.tripCountBound.isTop() && !r.tripCountBound.empty())
        v.set("tripCountBound", r.tripCountBound.str());

    json::Value diags = json::Value::array();
    for (const Diagnostic &d : r.contractDiags) {
        json::Value dj = json::Value::object();
        dj.set("severity", severityName(d.severity));
        if (d.instIndex >= 0)
            dj.set("inst", d.instIndex);
        dj.set("message", d.message);
        diags.push(std::move(dj));
    }
    v.set("contractDiags", std::move(diags));

    json::Value preds = json::Value::array();
    for (const WidthPrediction &p : r.predictions) {
        const RegionReport &rr = p.report;
        json::Value pj = json::Value::object();
        pj.set("requestedWidth", p.requestedWidth);
        pj.set("verdict", severityName(rr.verdict));
        if (rr.verdict == Severity::Error) {
            pj.set("reason", abortReasonName(rr.reason));
            pj.set("reasonDesc", abortReasonDescription(rr.reason));
            pj.set("depMiscompile", rr.depMiscompile);
        }
        if (rr.predictedWidth) {
            pj.set("boundWidth", rr.predictedWidth);
            pj.set("ucodeInsts", rr.predictedUcode);
        }
        if (rr.verdict == Severity::Ok && rr.predictedSpeedup > 0) {
            pj.set("scalarCycles", rr.predictedScalarCycles);
            pj.set("simdCycles", rr.predictedSimdCycles);
            pj.set("speedup", rr.predictedSpeedup);
        }
        if (!rr.proofVerdict.empty()) {
            json::Value proof = json::Value::object();
            proof.set("verdict", rr.proofVerdict);
            proof.set("summary", rr.proofSummary);
            pj.set("translationProof", std::move(proof));
        }
        preds.push(std::move(pj));
    }
    v.set("predictions", std::move(preds));

    if (r.polyAnalyzed) {
        json::Value pv = json::Value::object();
        pv.set("summary", r.widthValidity);
        pv.set("structuralUnbounded", r.polyUnbounded);
        json::Value okw = json::Value::array();
        for (const unsigned n : r.polyOkWidths)
            okw.push(n);
        pv.set("okWidths", std::move(okw));
        v.set("widthValidity", std::move(pv));
    }

    if (r.bestWidth) {
        v.set("bestWidth", r.bestWidth);
        v.set("bestSpeedup", r.bestSpeedup);
    }
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    ScanOptions sopts;
    sopts.widths = opt.widths;
    sopts.widthFallback = opt.fallback;
    sopts.predict = opt.predict;
    sopts.prove = opt.prove;

    try {
        // Per-program scan; --ranges solves the interprocedural
        // value-range analysis first and hands the facts to discovery,
        // depcheck and the cost model.
        auto scanOne = [&](const Program &prog) {
            ScanOptions s = sopts;
            std::optional<ProgramRanges> pr;
            if (opt.ranges) {
                pr.emplace(solveProgramRanges(prog));
                s.ranges = &*pr;
            }
            return scanProgram(prog, s);
        };

        std::vector<std::pair<std::string, ScanReport>> reports;
        if (opt.suite) {
            for (const auto &wl : makeSuite()) {
                // No hints: the scan must rediscover every region
                // from the bl/ret convention alone.
                const Workload::Build build =
                    wl->build(EmitOptions::Mode::Scalarized, 8,
                              /*hinted=*/false);
                reports.emplace_back(wl->name(), scanOne(build.prog));
            }
        } else {
            std::ifstream in(opt.file);
            if (!in) {
                std::cerr << "cannot open '" << opt.file << "'\n";
                return 2;
            }
            std::ostringstream source;
            source << in.rdbuf();
            const Program prog = assemble(source.str());
            reports.emplace_back(opt.file, scanOne(prog));
        }

        unsigned regions = 0, candidates = 0;
        unsigned ok = 0, warn = 0, error = 0;
        for (const auto &[name, rep] : reports) {
            regions += static_cast<unsigned>(rep.regions.size());
            candidates += rep.candidateCount();
            for (const ScanRegion &r : rep.regions) {
                switch (r.overallVerdict()) {
                  case Severity::Ok: ++ok; break;
                  case Severity::Warn: ++warn; break;
                  case Severity::Error: ++error; break;
                }
            }
        }

        // Optional differential validation against measured results.
        bool validated = true;
        lab::ValidationSummary validation;
        if (!opt.validateFile.empty()) {
            std::vector<lab::WorkloadPrediction> preds;
            for (const auto &[name, rep] : reports) {
                lab::WorkloadPrediction p;
                p.workload = name;
                p.speedupByWidth = lab::aggregateScanSpeedups(rep);
                preds.push_back(std::move(p));
            }
            const lab::ResultSet measured =
                lab::ResultSet::readFile(opt.validateFile);
            validation = lab::validatePredictions(preds, measured);
            validated = validation.rankAgreement() &&
                        !validation.rows.empty();
        }

        if (opt.json) {
            json::Value root =
                json::toolReport(scanSchema, scanToolVersion);
            json::Value regionArr = json::Value::array();
            for (const auto &[name, rep] : reports) {
                for (const ScanRegion &r : rep.regions)
                    regionArr.push(regionJson(name, r));
            }
            root.set("regions", std::move(regionArr));
            json::Value summary = json::Value::object();
            summary.set("regions", regions);
            summary.set("candidates", candidates);
            summary.set("ok", ok);
            summary.set("warn", warn);
            summary.set("error", error);
            root.set("summary", std::move(summary));
            if (!opt.validateFile.empty())
                root.set("validation", validation.toJson());
            std::cout << root.toString();
        } else {
            for (const auto &[name, rep] : reports) {
                if (opt.suite)
                    std::cout << "== " << name << '\n';
                for (const ScanRegion &r : rep.regions)
                    std::cout << formatScanRegion(r);
            }
            std::cout << regions << " region(s): " << candidates
                      << " candidate(s), " << ok << " ok, " << warn
                      << " warn, " << error << " error\n";
            if (!opt.validateFile.empty()) {
                if (validation.rejectedFunctional > 0) {
                    std::cout << "validation: rejected "
                              << validation.rejectedFunctional
                              << " functional-tier row(s) (no cycle "
                                 "clock under the /fun tier";
                    for (const std::string &k :
                         validation.rejectedFunctionalKeys)
                        std::cout << "; " << k;
                    std::cout << ")\n";
                }
                std::cout << "validation vs " << opt.validateFile
                          << ": " << validation.rows.size()
                          << " joined pair(s), "
                          << validation.discordantPairs << "/"
                          << validation.comparablePairs
                          << " discordant, mean |err| "
                          << validation.meanAbsError << ", max |err| "
                          << validation.maxAbsError << " -> "
                          << (validated ? "RANKS AGREE"
                                        : "RANK DISAGREEMENT")
                          << '\n';
            }
        }

        if (error || (opt.werror && warn) || !validated)
            return 1;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    }
    return 0;
}
