/**
 * @file
 * liquid-lab: sharded experiment orchestration for the paper's
 * evaluation matrix.
 *
 *   liquid-lab list                        # campaigns and job counts
 *   liquid-lab run --all --jobs 8          # whole matrix -> BENCH_*.json
 *   liquid-lab run --experiment fig6 --render
 *   liquid-lab run --all --smoke           # CI-sized matrix
 *   liquid-lab render BENCH_fig6.json      # paper tables from JSON
 *   liquid-lab diff BENCH_fig6.json bench/baseline/BENCH_fig6.json
 *
 * `run` shards jobs across worker threads (default: all cores) and
 * serves unchanged configurations from a content-addressed on-disk
 * cache. `diff` exits nonzero when a metric regressed past tolerance,
 * making it a CI gate.
 */

#include <chrono>
#include <filesystem>
#include <iostream>
#include <regex>
#include <string>
#include <vector>

#include "chaos/fault_schedule.hh"
#include "fast/tier.hh"
#include "lab/diff.hh"
#include "lab/experiments.hh"
#include "lab/predict.hh"
#include "lab/runner.hh"

using namespace liquid;
using namespace liquid::lab;

namespace
{

void
usage()
{
    std::cout <<
        "usage: liquid-lab <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                       show campaigns, jobs, workloads\n"
        "  run                        run experiments, write BENCH_*.json\n"
        "  render <file>...           render paper tables from results\n"
        "  diff <results> <baseline>  regression gate (nonzero on fail)\n"
        "\n"
        "run options:\n"
        "  --experiment NAME   campaign to run (repeatable)\n"
        "  --all               every campaign (default)\n"
        "  --jobs N            worker threads (default: all cores)\n"
        "  --out DIR           output directory (default: .)\n"
        "  --cache DIR         result cache (default: OUT/.liquid-lab-cache)\n"
        "  --no-cache          always simulate\n"
        "  --smoke             reduced trip counts (the CI matrix)\n"
        "  --filter REGEX      only jobs whose key matches\n"
        "  --render            also print the paper tables\n"
        "  --progress          one line per finished job\n"
        "  --predict           tag liquid results with liquid-scan's\n"
        "                      static speedup prediction\n"
        "  --prove             with --predict: back each prediction\n"
        "                      with the translation-validation prover\n"
        "                      and tag its verdict\n"
        "  --tier TIER         run every job on TIER (cycle|functional);\n"
        "                      functional drops jobs that need the cycle\n"
        "                      tier (liquid mode, warm-start, periodic\n"
        "                      faults) with a note, and the results\n"
        "                      carry no cycle counts (absent, not zero)\n"
        "\n"
        "diff options:\n"
        "  --tol PCT           cycle tolerance in percent (default: 2)\n"
        "  --counter NAME:PCT  also gate counter NAME (repeatable),\n"
        "                      e.g. --counter fast.insts:0\n";
}

int
cmdList(bool smoke)
{
    std::cout << "campaigns (" << (smoke ? "smoke" : "full")
              << " matrix):\n";
    std::size_t total = 0;
    for (const auto &campaign : standardCampaigns(smoke)) {
        const std::size_t n = campaign.matrix.expand().size();
        total += n;
        std::cout << "  " << campaign.name << "  -> "
                  << campaign.outputFile << "  (" << n << " jobs)\n";
    }
    std::cout << "total: " << total << " jobs\n\nworkloads:\n";
    for (const auto &name : suiteWorkloadNames())
        std::cout << "  " << name << '\n';
    return 0;
}

struct RunOptions
{
    std::vector<std::string> experiments;
    unsigned jobs = 0;
    std::string out = ".";
    std::string cacheDir;
    bool noCache = false;
    bool smoke = false;
    std::string filter;
    bool render = false;
    bool progress = false;
    bool predict = false;
    bool prove = false;
    fast::ExecTier tier = fast::ExecTier::Cycle;
};

/**
 * Re-point every job at the functional tier, dropping the ones only
 * the cycle tier can run: liquid mode (no translator), warm-start (no
 * microcode cache) and cycle-periodic fault schedules (no cycle
 * clock). Dropped jobs are reported, never silently skipped.
 */
std::vector<Job>
toFunctionalTier(std::vector<Job> jobs)
{
    std::vector<Job> converted;
    std::size_t dropped = 0;
    for (Job &job : jobs) {
        const bool periodic =
            job.over.faults &&
            FaultSchedule::parse(*job.over.faults).interruptPeriod != 0;
        if (job.mode == ExecMode::Liquid || job.warmStart || periodic) {
            ++dropped;
            continue;
        }
        job.tier = fast::ExecTier::Functional;
        converted.push_back(std::move(job));
    }
    if (dropped) {
        std::cerr << "  --tier functional: dropped " << dropped
                  << " job(s) that need the cycle tier (liquid mode, "
                     "warm-start or cycle-periodic faults)\n";
    }
    return converted;
}

int
cmdRun(const RunOptions &opt)
{
    std::vector<Campaign> campaigns;
    if (opt.experiments.empty()) {
        campaigns = standardCampaigns(opt.smoke);
    } else {
        for (const auto &name : opt.experiments)
            campaigns.push_back(campaignByName(name, opt.smoke));
    }

    std::filesystem::create_directories(opt.out);
    const std::string cacheDir =
        opt.noCache ? ""
                    : (opt.cacheDir.empty()
                           ? opt.out + "/.liquid-lab-cache"
                           : opt.cacheDir);
    const ResultCache cache(cacheDir);
    Runner runner(opt.jobs);

    // One scan of the unhinted suite covers every campaign's jobs.
    std::vector<WorkloadPrediction> predictions;
    if (opt.predict) {
        ScanOptions sopts;
        sopts.prove = opt.prove;
        predictions = predictSuite(sopts);
    }

    bool shapesOk = true;
    for (const auto &campaign : campaigns) {
        std::vector<Job> jobs = campaign.matrix.expand();
        if (opt.tier == fast::ExecTier::Functional)
            jobs = toFunctionalTier(std::move(jobs));
        if (!opt.filter.empty()) {
            const std::regex re(opt.filter);
            std::erase_if(jobs, [&](const Job &job) {
                return !std::regex_search(job.key(), re);
            });
        }
        const auto t0 = std::chrono::steady_clock::now();
        RunnerStats stats;
        std::function<void(const JobResult &)> progress;
        std::size_t done = 0;
        if (opt.progress) {
            const std::size_t n = jobs.size();
            progress = [&done, n](const JobResult &r) {
                std::cerr << "  [" << ++done << '/' << n << "] "
                          << r.job.key()
                          << (r.fromCache ? " (cached)" : "") << '\n';
            };
        }
        ResultSet results =
            runner.run(jobs, cache.enabled() ? &cache : nullptr,
                       &stats, std::move(progress));
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        unsigned tagged = 0;
        if (opt.predict)
            tagged = tagPredictions(results, predictions);

        const std::string path = opt.out + "/" + campaign.outputFile;
        results.writeFile(path);
        std::cout << campaign.name << ": " << stats.jobs << " jobs ("
                  << stats.simulations << " simulated, "
                  << stats.cacheHits << " cached, " << stats.steals
                  << " stolen) on " << runner.workers()
                  << " workers in " << std::fixed
                  << std::setprecision(2) << secs << "s -> " << path
                  << '\n';
        if (opt.predict)
            std::cout << "  tagged " << tagged
                      << " result(s) with scan predictions\n";

        if (opt.render && campaign.render) {
            std::cout << '\n';
            if (!campaign.render(std::cout, results))
                shapesOk = false;
            std::cout << '\n';
        }
    }
    return shapesOk ? 0 : 1;
}

int
cmdRender(const std::vector<std::string> &files)
{
    bool ok = true;
    for (const auto &file : files) {
        const ResultSet results = ResultSet::readFile(file);
        bool rendered = false;
        for (const auto &campaign : standardCampaigns(false)) {
            const bool present = std::any_of(
                results.results().begin(), results.results().end(),
                [&](const JobResult &r) {
                    return r.job.experiment == campaign.name;
                });
            if (!present)
                continue;
            rendered = true;
            if (!campaign.render(std::cout, results))
                ok = false;
            std::cout << '\n';
        }
        if (!rendered) {
            std::cerr << file
                      << ": no known experiment in result set\n";
            ok = false;
        }
    }
    return ok ? 0 : 1;
}

int
cmdDiff(const std::string &currentFile, const std::string &baselineFile,
        double tolPct,
        const std::map<std::string, double> &counterTols)
{
    const ResultSet current = ResultSet::readFile(currentFile);
    const ResultSet baseline = ResultSet::readFile(baselineFile);
    DiffOptions options;
    options.cycleTolerance = tolPct / 100.0;
    options.counterTolerances = counterTols;
    const DiffReport report = diffResults(baseline, current, options);

    std::cout << "compared " << report.jobsCompared
              << " jobs against " << baselineFile << " (tolerance "
              << tolPct << "%)\n";
    for (const auto &e : report.notes)
        std::cout << "  note: " << e.describe() << '\n';
    for (const auto &e : report.improvements)
        std::cout << "  improvement: " << e.describe() << '\n';
    for (const auto &e : report.regressions)
        std::cout << "  REGRESSION: " << e.describe() << '\n';
    if (!report.ok()) {
        std::cout << "FAIL: " << report.regressions.size()
                  << " regression(s)\n";
        return 1;
    }
    std::cout << "OK\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> args(argv + 1, argv + argc);
    if (args.empty() || args[0] == "-h" || args[0] == "--help") {
        usage();
        return args.empty() ? 2 : 0;
    }
    const std::string cmd = args[0];

    try {
        auto value = [&](std::size_t &i) -> std::string {
            if (i + 1 >= args.size())
                fatal("missing value for ", args[i]);
            return args[++i];
        };

        if (cmd == "list") {
            bool smoke = false;
            for (std::size_t i = 1; i < args.size(); ++i) {
                if (args[i] == "--smoke")
                    smoke = true;
                else
                    fatal("unknown option '", args[i], "'");
            }
            return cmdList(smoke);
        }

        if (cmd == "run") {
            RunOptions opt;
            for (std::size_t i = 1; i < args.size(); ++i) {
                const std::string &a = args[i];
                if (a == "--experiment")
                    opt.experiments.push_back(value(i));
                else if (a == "--all")
                    opt.experiments.clear();
                else if (a == "--jobs")
                    opt.jobs =
                        static_cast<unsigned>(std::stoul(value(i)));
                else if (a == "--out")
                    opt.out = value(i);
                else if (a == "--cache")
                    opt.cacheDir = value(i);
                else if (a == "--no-cache")
                    opt.noCache = true;
                else if (a == "--smoke")
                    opt.smoke = true;
                else if (a == "--filter")
                    opt.filter = value(i);
                else if (a == "--render")
                    opt.render = true;
                else if (a == "--progress")
                    opt.progress = true;
                else if (a == "--predict")
                    opt.predict = true;
                else if (a == "--prove")
                    opt.prove = true;
                else if (a == "--tier")
                    opt.tier = fast::tierFromName(value(i));
                else
                    fatal("unknown option '", a, "'");
            }
            return cmdRun(opt);
        }

        if (cmd == "render") {
            std::vector<std::string> files(args.begin() + 1,
                                           args.end());
            if (files.empty())
                fatal("render: no input files");
            return cmdRender(files);
        }

        if (cmd == "diff") {
            std::vector<std::string> files;
            double tolPct = 2.0;
            std::map<std::string, double> counterTols;
            for (std::size_t i = 1; i < args.size(); ++i) {
                if (args[i] == "--tol") {
                    tolPct = std::stod(value(i));
                } else if (args[i] == "--counter") {
                    const std::string spec = value(i);
                    const auto colon = spec.rfind(':');
                    if (colon == std::string::npos || colon == 0)
                        fatal("diff: --counter expects NAME:PCT, got '",
                              spec, "'");
                    counterTols[spec.substr(0, colon)] =
                        std::stod(spec.substr(colon + 1)) / 100.0;
                } else {
                    files.push_back(args[i]);
                }
            }
            if (files.size() != 2)
                fatal("diff: expected <results> <baseline>");
            return cmdDiff(files[0], files[1], tolPct, counterTols);
        }

        std::cerr << "unknown command '" << cmd << "'\n";
        usage();
        return 2;
    } catch (const FatalError &e) {
        std::cerr << e.what() << '\n';
        return 2;
    } catch (const PanicError &e) {
        std::cerr << e.what() << '\n';
        return 1;
    }
}
