/**
 * @file
 * Writing your own kernel against the public vector-IR API.
 *
 * The kernel here is an audio crossfade with saturating arithmetic
 * (the GSM-style idiom of paper Section 3.2): out = sat(a*w >> 5 + b).
 * We build it with the vir::Kernel builder, lower it three ways with
 * emitKernel(), run all three, and check every result against the
 * reference interpreter.
 *
 * Build and run:  ./examples/custom_kernel
 */

#include <iostream>

#include "cpu/core.hh"
#include "scalarizer/scalarizer.hh"
#include "sim/system.hh"
#include "workloads/vir_interp.hh"

using namespace liquid;

namespace
{

/** out = saturate(((a * 13) >> 5) + b) over int16 samples. */
vir::Kernel
crossfadeKernel()
{
    vir::Kernel k("crossfade", 128);
    const int a = k.load("cf_a", 2, false, /*is_signed=*/true);
    const int b = k.load("cf_b", 2, false, /*is_signed=*/true);
    const int scaled = k.binImm(Opcode::Mul, a, 13);
    const int shifted = k.binImm(Opcode::Asr, scaled, 5);
    const int mixed = k.bin(Opcode::Qadd, shifted, b);
    k.store("cf_out", mixed);
    return k;
}

Program
buildProgram(EmitOptions::Mode mode, unsigned width)
{
    Program prog;
    // int16 sample arrays, two per word.
    prog.allocData("cf_a", (128 + 16) * 2);
    prog.allocData("cf_b", (128 + 16) * 2);
    prog.allocData("cf_out", (128 + 16) * 2);
    for (unsigned i = 0; i < 128; ++i) {
        prog.initHalf(prog.symbol("cf_a") + 2 * i,
                      static_cast<std::uint16_t>(500 * i - 30000));
        prog.initHalf(prog.symbol("cf_b") + 2 * i,
                      static_cast<std::uint16_t>(20000 - 311 * i));
    }

    EmitOptions opts;
    opts.mode = mode;
    opts.nativeWidth = width;
    const EmitResult r = emitKernel(prog, crossfadeKernel(), opts);

    prog.defineLabel("main");
    if (mode == EmitOptions::Mode::Scalarized ||
        mode == EmitOptions::Mode::Native) {
        prog.addInst(Inst::call(-1, true, "crossfade", 16));
        prog.addInst(Inst::call(-1, true, "crossfade", 16));
    }
    prog.addInst(Inst::halt());
    prog.resolveBranches();

    std::cout << "  emitted " << r.instCount << " instructions ("
              << (mode == EmitOptions::Mode::Native ? "native SIMD"
                                                    : "scalar rep")
              << ")\n";
    return prog;
}

bool
verify(const Program &prog, const MainMemory &mem)
{
    // Reference: the vector-IR interpreter, applied twice like main.
    MainMemory golden = MainMemory::forProgram(prog);
    const auto k = crossfadeKernel();
    interpretKernel(k, prog, golden);
    interpretKernel(k, prog, golden);
    for (unsigned i = 0; i < 128; ++i) {
        const Addr addr = prog.symbol("cf_out") + 2 * i;
        if (mem.readHalf(addr) != golden.readHalf(addr)) {
            std::cerr << "  MISMATCH at sample " << i << '\n';
            return false;
        }
    }
    return true;
}

} // namespace

int
main()
{
    std::cout << "Custom saturating crossfade kernel, three lowerings:"
              << "\n\n1. Liquid SIMD scalar representation:\n";
    {
        Program prog = buildProgram(EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        sys.run();
        std::cout << "  " << sys.cycles() << " cycles; idioms "
                  << "recognized: "
                  << sys.translator().stats().get("idiomsRecognized")
                  << " (cmp/movgt/movlt -> vqadd)\n";
        if (!verify(prog, sys.memory()))
            return 1;
        std::cout << "  result matches reference interpreter\n";
    }

    std::cout << "\n2. Same binary, no accelerator:\n";
    {
        Program prog = buildProgram(EmitOptions::Mode::Scalarized, 8);
        System sys(SystemConfig::make(ExecMode::ScalarBaseline), prog);
        sys.run();
        std::cout << "  " << sys.cycles() << " cycles\n";
        if (!verify(prog, sys.memory()))
            return 1;
        std::cout << "  result matches reference interpreter\n";
    }

    std::cout << "\n3. Native SIMD ISA (8-wide):\n";
    {
        Program prog = buildProgram(EmitOptions::Mode::Native, 8);
        System sys(SystemConfig::make(ExecMode::NativeSimd, 8), prog);
        sys.run();
        std::cout << "  " << sys.cycles() << " cycles\n";
        if (!verify(prog, sys.memory()))
            return 1;
        std::cout << "  result matches reference interpreter\n";
    }
    return 0;
}
