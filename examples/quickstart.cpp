/**
 * @file
 * Quickstart: the whole Liquid SIMD idea in one page.
 *
 * We write a hot loop in the *scalar representation* (paper Table 1):
 * plain ARM-like instructions, outlined behind a hinted bl. The same
 * binary then runs on
 *   - a core with no SIMD accelerator (plain scalar execution),
 *   - a Liquid SIMD core with an 8-wide accelerator,
 *   - a Liquid SIMD core with a 16-wide accelerator,
 * and the dynamic translator turns the loop into width-appropriate
 * SIMD microcode at runtime — no recompilation, no new instructions.
 *
 * Build and run:  ./examples/quickstart
 */

#include <iostream>

#include "asm/assembler.hh"
#include "sim/system.hh"

using namespace liquid;

int
main()
{
    // a[i] = 3*x[i] + 100 over 64 elements, written as the scalar
    // representation of a SIMD loop and outlined as `saxpy`.
    Program prog = assemble(R"(
        .data x 256
        .data a 256
        saxpy:
            mov r0, #0
        top:
            ldw r1, [x + r0]
            mul r1, r1, #3
            add r1, r1, #100
            stw [a + r0], r1
            add r0, r0, #1
            cmp r0, #64
            blt top
            ret
        main:
            mov r10, #0
        outer:
            bl.simd saxpy
            add r10, r10, #1
            cmp r10, #8
            blt outer
            halt
    )");

    // Seed the input array.
    for (unsigned i = 0; i < 64; ++i)
        prog.initWord(prog.symbol("x") + 4 * i, i);

    std::cout << "One binary, three processors:\n\n";

    Cycles scalar_cycles = 0;
    for (unsigned width : {0u, 8u, 16u}) {
        const SystemConfig config =
            width == 0 ? SystemConfig::make(ExecMode::ScalarBaseline)
                       : SystemConfig::make(ExecMode::Liquid, width);
        System sys(config, prog);
        sys.run();

        if (width == 0) {
            scalar_cycles = sys.cycles();
            std::cout << "  no SIMD accelerator: " << sys.cycles()
                      << " cycles (scalar representation runs as-is)\n";
        } else {
            std::cout << "  " << width << "-wide accelerator:  "
                      << sys.cycles() << " cycles ("
                      << static_cast<double>(scalar_cycles) /
                             static_cast<double>(sys.cycles())
                      << "x), "
                      << sys.translator().stats().get("translations")
                      << " region translated, "
                      << sys.core().stats().get("ucodeDispatches")
                      << " microcode dispatches\n";
        }

        // Same architectural result everywhere.
        const Word last = sys.memory().readWord(
            prog.symbol("a") + 4 * 63);
        if (last != 3 * 63 + 100) {
            std::cerr << "wrong result!\n";
            return 1;
        }
    }

    // Peek at the microcode an 8-wide translator generated.
    System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
    sys.run();
    const UcodeEntry *uc = sys.ucodeCache().lookup(
        Program::instAddr(prog.labelIndex("saxpy")), sys.cycles());
    std::cout << "\nGenerated SIMD microcode (8-wide):\n";
    for (const auto &inst : uc->insts)
        std::cout << "    " << inst.toString() << '\n';
    return 0;
}
