/**
 * @file
 * Forward migration scenario — the paper's motivating problem.
 *
 * A vendor ships one FFT binary compiled to the Liquid SIMD scalar
 * representation (maximum vectorizable width 16). Over several product
 * generations the SIMD accelerator grows from nothing to 16 lanes; the
 * shipped binary is never touched. This example runs that binary on
 * every generation and reports what the dynamic translator bound where:
 * narrow accelerators refuse the wide butterflies (permutation CAM
 * miss) and transparently keep those loops scalar, exactly as the
 * paper describes.
 *
 * Build and run:  ./examples/fft_migration
 */

#include <iomanip>
#include <iostream>

#include "sim/system.hh"
#include "workloads/workload.hh"

using namespace liquid;

int
main()
{
    std::unique_ptr<Workload> fft;
    for (auto &wl : makeSuite()) {
        if (wl->name() == "fft")
            fft = std::move(wl);
    }

    // The binary is built once, before any hardware exists.
    const auto build = fft->build(EmitOptions::Mode::Scalarized);
    std::cout << "Shipping one FFT binary: "
              << build.prog.codeSizeBytes() << " bytes of code, "
              << build.kernels.size() << " outlined hot loops "
              << "(butterfly blocks 2, 4 and 8)\n\n";

    System gen0(SystemConfig::make(ExecMode::ScalarBaseline),
                build.prog);
    gen0.run();
    const Cycles base = gen0.cycles();
    std::cout << "gen 0 (no accelerator):   " << std::setw(8) << base
              << " cycles   1.00x  (loops run in scalar form)\n";

    for (unsigned width : {2u, 4u, 8u, 16u}) {
        SystemConfig config = SystemConfig::make(ExecMode::Liquid, width);
        config.translator.latencyPerInst = 0;  // steady-state view
        System sys(config, build.prog);
        sys.run();

        std::cout << "gen " << (width == 2 ? 1 : width == 4 ? 2
                                : width == 8 ? 3 : 4)
                  << " (" << std::setw(2) << width << "-wide SIMD):    "
                  << std::setw(8) << sys.cycles() << " cycles   "
                  << std::fixed << std::setprecision(2)
                  << static_cast<double>(base) /
                         static_cast<double>(sys.cycles())
                  << "x  (" << sys.translator().stats().get("translations")
                  << "/3 loops bound to SIMD";
        const auto shuffles =
            sys.translator().stats().get("abort.unsupportedShuffle") +
            sys.translator().stats().get("abort.valueMismatch");
        if (shuffles)
            std::cout << ", " << shuffles
                      << " butterfly wider than the hardware";
        std::cout << ")\n";
    }

    std::cout << "\nNo recompilation, no new opcodes, no binary-"
                 "compatibility break across four generations.\n";
    return 0;
}
