/**
 * @file
 * Inspecting the dynamic translator: legality checks, width fallback,
 * blacklisting and interrupt aborts — the machinery of paper Section 4
 * made visible.
 *
 * Build and run:  ./examples/inspect_translation
 */

#include <iostream>

#include "asm/assembler.hh"
#include "sim/system.hh"

using namespace liquid;

namespace
{

void
report(const char *title, const Program &prog, System &sys)
{
    sys.run();
    std::cout << title << '\n';
    for (const auto &[stat, value] : sys.translator().stats().counters()) {
        if (value)
            std::cout << "    " << stat << " = " << value << '\n';
    }
    (void)prog;
    std::cout << '\n';
}

} // namespace

int
main()
{
    std::cout << "=== 1. A clean region: every rule fires ===\n\n";
    {
        Program prog = assemble(R"(
            .rowords bfly 2 0 -2 0 2 0 -2 0   ; not a real shuffle
            .rowords swp 1 -1 1 -1 1 -1 1 -1  ; swap-pairs offsets
            .words a 1 2 3 4 5 6 7 8
            .data b 32
            fn:
                mov r0, #0
            top:
                ldw r1, [swp + r0]
                add r1, r0, r1
                ldw r2, [a + r1]
                add r2, r2, #10
                stw [b + r0], r2
                add r0, r0, #1
                cmp r0, #8
                blt top
                ret
            main:
                bl.simd fn
                bl.simd fn
                halt
        )");
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        report("shuffled copy loop translates:", prog, sys);

        const UcodeEntry *uc = sys.ucodeCache().lookup(
            Program::instAddr(prog.labelIndex("fn")), sys.cycles());
        std::cout << "  microcode:\n";
        for (const auto &inst : uc->insts)
            std::cout << "    " << inst.toString() << '\n';
        std::cout << '\n';
    }

    std::cout << "=== 2. Width fallback: 12 iterations on 8 lanes ===\n\n";
    {
        Program prog = assemble(R"(
            .words a 1 2 3 4 5 6 7 8 9 10 11 12
            .data b 48
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                stw [b + r0], r1
                add r0, r0, #1
                cmp r0, #12
                blt top
                ret
            main:
                bl.simd fn
                bl.simd fn
                bl.simd fn
                halt
        )");
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        report("first call aborts (12 % 8 != 0), second binds 4-wide:",
               prog, sys);
    }

    std::cout << "=== 3. Blacklisting: a region that can never bind "
                 "===\n\n";
    {
        Program prog = assemble(R"(
            helper:
                ret
            fn:
                mov r0, #0
                bl helper       ; nested call: untranslatable shape
                ret
            main:
                bl.simd fn
                bl.simd fn
                bl.simd fn
                halt
        )");
        System sys(SystemConfig::make(ExecMode::Liquid, 8), prog);
        report("one capture, then blacklisted (no repeated attempts):",
               prog, sys);
    }

    std::cout << "=== 4. Failure injection: interrupts abort in-flight "
                 "translation ===\n\n";
    {
        Program prog = assemble(R"(
            .words a 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16
            .data b 64
            fn:
                mov r0, #0
            top:
                ldw r1, [a + r0]
                stw [b + r0], r1
                add r0, r0, #1
                cmp r0, #16
                blt top
                ret
            main:
                mov r10, #0
            outer:
                bl.simd fn
                add r10, r10, #1
                cmp r10, #6
                blt outer
                halt
        )");
        SystemConfig config = SystemConfig::make(ExecMode::Liquid, 8);
        config.core.faults = liquid::FaultSchedule::periodic(450);  // mid-capture
        System sys(config, prog);
        report("interrupt aborts are transient (no blacklist, later "
               "call retries):",
               prog, sys);
        std::cout << "  final b[15] = "
                  << sys.memory().readWord(prog.symbol("b") + 60)
                  << " (correct: 16)\n";
    }
    return 0;
}
