; saxpy in the Liquid SIMD scalar representation: a[i] = 3*x[i] + 100.
; Run with:  liquid-run --sweep examples/asm/saxpy.s
        .words x 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20 21 22 23 24 25 26 27 28 29 30 31 32
        .data a 128
saxpy:
        mov r0, #0
top:
        ldw r1, [x + r0]
        mul r1, r1, #3
        add r1, r1, #100
        stw [a + r0], r1
        add r0, r0, #1
        cmp r0, #32
        blt top
        ret
main:
        mov r10, #0
outer:
        bl.simd saxpy
        add r10, r10, #1
        cmp r10, #8
        blt outer
        halt
