; Shuffled copy through a butterfly offset table (paper Table 1 cat. 7).
; Run with:  liquid-run --ucode examples/asm/butterfly.s
        .rowords bfly 4 4 4 4 -4 -4 -4 -4
        .words src 10 11 12 13 14 15 16 17
        .data dst 32
shuffle:
        mov r0, #0
top:
        ldw r1, [bfly + r0]
        add r1, r0, r1
        ldw r2, [src + r1]
        stw [dst + r0], r2
        add r0, r0, #1
        cmp r0, #8
        blt top
        ret
main:
        bl.simd shuffle
        bl.simd shuffle
        halt
