
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/memory/cache.cc" "src/memory/CMakeFiles/liquid_memory.dir/cache.cc.o" "gcc" "src/memory/CMakeFiles/liquid_memory.dir/cache.cc.o.d"
  "/root/repo/src/memory/main_memory.cc" "src/memory/CMakeFiles/liquid_memory.dir/main_memory.cc.o" "gcc" "src/memory/CMakeFiles/liquid_memory.dir/main_memory.cc.o.d"
  "/root/repo/src/memory/ucode_cache.cc" "src/memory/CMakeFiles/liquid_memory.dir/ucode_cache.cc.o" "gcc" "src/memory/CMakeFiles/liquid_memory.dir/ucode_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/liquid_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/liquid_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
