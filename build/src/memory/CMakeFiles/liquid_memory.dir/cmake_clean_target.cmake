file(REMOVE_RECURSE
  "libliquid_memory.a"
)
