file(REMOVE_RECURSE
  "CMakeFiles/liquid_memory.dir/cache.cc.o"
  "CMakeFiles/liquid_memory.dir/cache.cc.o.d"
  "CMakeFiles/liquid_memory.dir/main_memory.cc.o"
  "CMakeFiles/liquid_memory.dir/main_memory.cc.o.d"
  "CMakeFiles/liquid_memory.dir/ucode_cache.cc.o"
  "CMakeFiles/liquid_memory.dir/ucode_cache.cc.o.d"
  "libliquid_memory.a"
  "libliquid_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
