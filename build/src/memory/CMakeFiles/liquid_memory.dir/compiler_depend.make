# Empty compiler generated dependencies file for liquid_memory.
# This may be replaced when dependencies are built.
