
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/liquid_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/liquid_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/liquid_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/liquid_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/opcodes.cc" "src/isa/CMakeFiles/liquid_isa.dir/opcodes.cc.o" "gcc" "src/isa/CMakeFiles/liquid_isa.dir/opcodes.cc.o.d"
  "/root/repo/src/isa/perm.cc" "src/isa/CMakeFiles/liquid_isa.dir/perm.cc.o" "gcc" "src/isa/CMakeFiles/liquid_isa.dir/perm.cc.o.d"
  "/root/repo/src/isa/registers.cc" "src/isa/CMakeFiles/liquid_isa.dir/registers.cc.o" "gcc" "src/isa/CMakeFiles/liquid_isa.dir/registers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
