# Empty dependencies file for liquid_isa.
# This may be replaced when dependencies are built.
