file(REMOVE_RECURSE
  "libliquid_isa.a"
)
