file(REMOVE_RECURSE
  "CMakeFiles/liquid_isa.dir/encoding.cc.o"
  "CMakeFiles/liquid_isa.dir/encoding.cc.o.d"
  "CMakeFiles/liquid_isa.dir/instruction.cc.o"
  "CMakeFiles/liquid_isa.dir/instruction.cc.o.d"
  "CMakeFiles/liquid_isa.dir/opcodes.cc.o"
  "CMakeFiles/liquid_isa.dir/opcodes.cc.o.d"
  "CMakeFiles/liquid_isa.dir/perm.cc.o"
  "CMakeFiles/liquid_isa.dir/perm.cc.o.d"
  "CMakeFiles/liquid_isa.dir/registers.cc.o"
  "CMakeFiles/liquid_isa.dir/registers.cc.o.d"
  "libliquid_isa.a"
  "libliquid_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
