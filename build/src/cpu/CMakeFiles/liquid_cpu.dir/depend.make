# Empty dependencies file for liquid_cpu.
# This may be replaced when dependencies are built.
