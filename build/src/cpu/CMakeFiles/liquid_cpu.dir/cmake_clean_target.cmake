file(REMOVE_RECURSE
  "libliquid_cpu.a"
)
