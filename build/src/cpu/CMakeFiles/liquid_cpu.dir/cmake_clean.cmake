file(REMOVE_RECURSE
  "CMakeFiles/liquid_cpu.dir/core.cc.o"
  "CMakeFiles/liquid_cpu.dir/core.cc.o.d"
  "CMakeFiles/liquid_cpu.dir/exec.cc.o"
  "CMakeFiles/liquid_cpu.dir/exec.cc.o.d"
  "libliquid_cpu.a"
  "libliquid_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
