file(REMOVE_RECURSE
  "CMakeFiles/liquid_workloads.dir/suite.cc.o"
  "CMakeFiles/liquid_workloads.dir/suite.cc.o.d"
  "CMakeFiles/liquid_workloads.dir/vir_interp.cc.o"
  "CMakeFiles/liquid_workloads.dir/vir_interp.cc.o.d"
  "CMakeFiles/liquid_workloads.dir/workload.cc.o"
  "CMakeFiles/liquid_workloads.dir/workload.cc.o.d"
  "libliquid_workloads.a"
  "libliquid_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
