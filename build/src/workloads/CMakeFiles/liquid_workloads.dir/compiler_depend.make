# Empty compiler generated dependencies file for liquid_workloads.
# This may be replaced when dependencies are built.
