file(REMOVE_RECURSE
  "libliquid_workloads.a"
)
