# Empty dependencies file for liquid_translator.
# This may be replaced when dependencies are built.
