file(REMOVE_RECURSE
  "libliquid_translator.a"
)
