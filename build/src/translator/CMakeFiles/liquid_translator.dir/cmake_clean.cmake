file(REMOVE_RECURSE
  "CMakeFiles/liquid_translator.dir/cost_model.cc.o"
  "CMakeFiles/liquid_translator.dir/cost_model.cc.o.d"
  "CMakeFiles/liquid_translator.dir/offline.cc.o"
  "CMakeFiles/liquid_translator.dir/offline.cc.o.d"
  "CMakeFiles/liquid_translator.dir/translator.cc.o"
  "CMakeFiles/liquid_translator.dir/translator.cc.o.d"
  "libliquid_translator.a"
  "libliquid_translator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_translator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
