# Empty dependencies file for liquid_sim.
# This may be replaced when dependencies are built.
