file(REMOVE_RECURSE
  "libliquid_sim.a"
)
