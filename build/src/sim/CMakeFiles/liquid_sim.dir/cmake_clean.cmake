file(REMOVE_RECURSE
  "CMakeFiles/liquid_sim.dir/system.cc.o"
  "CMakeFiles/liquid_sim.dir/system.cc.o.d"
  "libliquid_sim.a"
  "libliquid_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
