file(REMOVE_RECURSE
  "CMakeFiles/liquid_asm.dir/assembler.cc.o"
  "CMakeFiles/liquid_asm.dir/assembler.cc.o.d"
  "CMakeFiles/liquid_asm.dir/program.cc.o"
  "CMakeFiles/liquid_asm.dir/program.cc.o.d"
  "libliquid_asm.a"
  "libliquid_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
