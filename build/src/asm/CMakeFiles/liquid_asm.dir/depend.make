# Empty dependencies file for liquid_asm.
# This may be replaced when dependencies are built.
