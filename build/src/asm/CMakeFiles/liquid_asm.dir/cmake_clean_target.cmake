file(REMOVE_RECURSE
  "libliquid_asm.a"
)
