
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asm/assembler.cc" "src/asm/CMakeFiles/liquid_asm.dir/assembler.cc.o" "gcc" "src/asm/CMakeFiles/liquid_asm.dir/assembler.cc.o.d"
  "/root/repo/src/asm/program.cc" "src/asm/CMakeFiles/liquid_asm.dir/program.cc.o" "gcc" "src/asm/CMakeFiles/liquid_asm.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/liquid_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
