file(REMOVE_RECURSE
  "CMakeFiles/liquid_scalarizer.dir/scalarizer.cc.o"
  "CMakeFiles/liquid_scalarizer.dir/scalarizer.cc.o.d"
  "CMakeFiles/liquid_scalarizer.dir/vir.cc.o"
  "CMakeFiles/liquid_scalarizer.dir/vir.cc.o.d"
  "libliquid_scalarizer.a"
  "libliquid_scalarizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid_scalarizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
