file(REMOVE_RECURSE
  "libliquid_scalarizer.a"
)
