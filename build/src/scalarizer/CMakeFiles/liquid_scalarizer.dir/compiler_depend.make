# Empty compiler generated dependencies file for liquid_scalarizer.
# This may be replaced when dependencies are built.
