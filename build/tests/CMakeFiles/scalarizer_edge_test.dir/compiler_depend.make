# Empty compiler generated dependencies file for scalarizer_edge_test.
# This may be replaced when dependencies are built.
