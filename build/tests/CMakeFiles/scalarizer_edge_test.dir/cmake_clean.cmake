file(REMOVE_RECURSE
  "CMakeFiles/scalarizer_edge_test.dir/scalarizer_edge_test.cc.o"
  "CMakeFiles/scalarizer_edge_test.dir/scalarizer_edge_test.cc.o.d"
  "scalarizer_edge_test"
  "scalarizer_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalarizer_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
