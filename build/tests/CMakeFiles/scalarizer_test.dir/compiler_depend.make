# Empty compiler generated dependencies file for scalarizer_test.
# This may be replaced when dependencies are built.
