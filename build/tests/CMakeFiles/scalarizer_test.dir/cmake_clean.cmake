file(REMOVE_RECURSE
  "CMakeFiles/scalarizer_test.dir/scalarizer_test.cc.o"
  "CMakeFiles/scalarizer_test.dir/scalarizer_test.cc.o.d"
  "scalarizer_test"
  "scalarizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalarizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
