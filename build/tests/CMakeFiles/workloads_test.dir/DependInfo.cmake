
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/workloads_test.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/liquid_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/liquid_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/translator/CMakeFiles/liquid_translator.dir/DependInfo.cmake"
  "/root/repo/build/src/scalarizer/CMakeFiles/liquid_scalarizer.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/liquid_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/memory/CMakeFiles/liquid_memory.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/liquid_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/liquid_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
