file(REMOVE_RECURSE
  "CMakeFiles/fft_walkthrough_test.dir/fft_walkthrough_test.cc.o"
  "CMakeFiles/fft_walkthrough_test.dir/fft_walkthrough_test.cc.o.d"
  "fft_walkthrough_test"
  "fft_walkthrough_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_walkthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
