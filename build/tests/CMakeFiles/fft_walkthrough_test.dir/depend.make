# Empty dependencies file for fft_walkthrough_test.
# This may be replaced when dependencies are built.
