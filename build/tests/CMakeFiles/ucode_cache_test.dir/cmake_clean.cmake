file(REMOVE_RECURSE
  "CMakeFiles/ucode_cache_test.dir/ucode_cache_test.cc.o"
  "CMakeFiles/ucode_cache_test.dir/ucode_cache_test.cc.o.d"
  "ucode_cache_test"
  "ucode_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucode_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
