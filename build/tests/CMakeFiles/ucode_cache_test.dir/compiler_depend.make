# Empty compiler generated dependencies file for ucode_cache_test.
# This may be replaced when dependencies are built.
