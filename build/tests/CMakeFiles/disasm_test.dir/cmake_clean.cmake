file(REMOVE_RECURSE
  "CMakeFiles/disasm_test.dir/disasm_test.cc.o"
  "CMakeFiles/disasm_test.dir/disasm_test.cc.o.d"
  "disasm_test"
  "disasm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
