# Empty dependencies file for disasm_test.
# This may be replaced when dependencies are built.
