file(REMOVE_RECURSE
  "CMakeFiles/translator_rules_test.dir/translator_rules_test.cc.o"
  "CMakeFiles/translator_rules_test.dir/translator_rules_test.cc.o.d"
  "translator_rules_test"
  "translator_rules_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
