# Empty compiler generated dependencies file for translator_rules_test.
# This may be replaced when dependencies are built.
