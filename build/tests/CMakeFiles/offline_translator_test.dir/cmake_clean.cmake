file(REMOVE_RECURSE
  "CMakeFiles/offline_translator_test.dir/offline_translator_test.cc.o"
  "CMakeFiles/offline_translator_test.dir/offline_translator_test.cc.o.d"
  "offline_translator_test"
  "offline_translator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offline_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
