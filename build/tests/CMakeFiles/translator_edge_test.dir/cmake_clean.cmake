file(REMOVE_RECURSE
  "CMakeFiles/translator_edge_test.dir/translator_edge_test.cc.o"
  "CMakeFiles/translator_edge_test.dir/translator_edge_test.cc.o.d"
  "translator_edge_test"
  "translator_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translator_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
