# Empty dependencies file for translator_edge_test.
# This may be replaced when dependencies are built.
