file(REMOVE_RECURSE
  "CMakeFiles/property_roundtrip_test.dir/property_roundtrip_test.cc.o"
  "CMakeFiles/property_roundtrip_test.dir/property_roundtrip_test.cc.o.d"
  "property_roundtrip_test"
  "property_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
