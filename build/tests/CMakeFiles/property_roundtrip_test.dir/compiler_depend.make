# Empty compiler generated dependencies file for property_roundtrip_test.
# This may be replaced when dependencies are built.
