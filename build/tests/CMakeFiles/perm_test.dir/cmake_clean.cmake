file(REMOVE_RECURSE
  "CMakeFiles/perm_test.dir/perm_test.cc.o"
  "CMakeFiles/perm_test.dir/perm_test.cc.o.d"
  "perm_test"
  "perm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
