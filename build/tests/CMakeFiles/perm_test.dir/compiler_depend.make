# Empty compiler generated dependencies file for perm_test.
# This may be replaced when dependencies are built.
