file(REMOVE_RECURSE
  "CMakeFiles/bitfield_test.dir/bitfield_test.cc.o"
  "CMakeFiles/bitfield_test.dir/bitfield_test.cc.o.d"
  "bitfield_test"
  "bitfield_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
