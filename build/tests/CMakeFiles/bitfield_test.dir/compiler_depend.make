# Empty compiler generated dependencies file for bitfield_test.
# This may be replaced when dependencies are built.
