file(REMOVE_RECURSE
  "CMakeFiles/inspect_translation.dir/inspect_translation.cpp.o"
  "CMakeFiles/inspect_translation.dir/inspect_translation.cpp.o.d"
  "inspect_translation"
  "inspect_translation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_translation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
