# Empty compiler generated dependencies file for inspect_translation.
# This may be replaced when dependencies are built.
