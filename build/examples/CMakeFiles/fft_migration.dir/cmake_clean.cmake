file(REMOVE_RECURSE
  "CMakeFiles/fft_migration.dir/fft_migration.cpp.o"
  "CMakeFiles/fft_migration.dir/fft_migration.cpp.o.d"
  "fft_migration"
  "fft_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
