# Empty compiler generated dependencies file for fft_migration.
# This may be replaced when dependencies are built.
