file(REMOVE_RECURSE
  "CMakeFiles/liquid-run.dir/liquid_run.cc.o"
  "CMakeFiles/liquid-run.dir/liquid_run.cc.o.d"
  "liquid-run"
  "liquid-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liquid-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
