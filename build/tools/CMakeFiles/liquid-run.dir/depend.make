# Empty dependencies file for liquid-run.
# This may be replaced when dependencies are built.
