# Empty dependencies file for bench_generation_sweep.
# This may be replaced when dependencies are built.
