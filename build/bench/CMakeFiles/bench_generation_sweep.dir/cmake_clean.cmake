file(REMOVE_RECURSE
  "CMakeFiles/bench_generation_sweep.dir/bench_generation_sweep.cc.o"
  "CMakeFiles/bench_generation_sweep.dir/bench_generation_sweep.cc.o.d"
  "bench_generation_sweep"
  "bench_generation_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_generation_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
