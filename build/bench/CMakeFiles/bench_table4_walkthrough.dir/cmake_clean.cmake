file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_walkthrough.dir/bench_table4_walkthrough.cc.o"
  "CMakeFiles/bench_table4_walkthrough.dir/bench_table4_walkthrough.cc.o.d"
  "bench_table4_walkthrough"
  "bench_table4_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
