# Empty dependencies file for bench_table4_walkthrough.
# This may be replaced when dependencies are built.
