# Empty compiler generated dependencies file for bench_table6_callgap.
# This may be replaced when dependencies are built.
