file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_callgap.dir/bench_table6_callgap.cc.o"
  "CMakeFiles/bench_table6_callgap.dir/bench_table6_callgap.cc.o.d"
  "bench_table6_callgap"
  "bench_table6_callgap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_callgap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
