file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_speedup.dir/bench_fig6_speedup.cc.o"
  "CMakeFiles/bench_fig6_speedup.dir/bench_fig6_speedup.cc.o.d"
  "bench_fig6_speedup"
  "bench_fig6_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
