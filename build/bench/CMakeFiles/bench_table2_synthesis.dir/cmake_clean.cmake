file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_synthesis.dir/bench_table2_synthesis.cc.o"
  "CMakeFiles/bench_table2_synthesis.dir/bench_table2_synthesis.cc.o.d"
  "bench_table2_synthesis"
  "bench_table2_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
