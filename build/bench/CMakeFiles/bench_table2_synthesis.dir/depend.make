# Empty dependencies file for bench_table2_synthesis.
# This may be replaced when dependencies are built.
