# Empty dependencies file for bench_table5_instcounts.
# This may be replaced when dependencies are built.
