file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_instcounts.dir/bench_table5_instcounts.cc.o"
  "CMakeFiles/bench_table5_instcounts.dir/bench_table5_instcounts.cc.o.d"
  "bench_table5_instcounts"
  "bench_table5_instcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_instcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
