file(REMOVE_RECURSE
  "CMakeFiles/bench_ucache_sweep.dir/bench_ucache_sweep.cc.o"
  "CMakeFiles/bench_ucache_sweep.dir/bench_ucache_sweep.cc.o.d"
  "bench_ucache_sweep"
  "bench_ucache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ucache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
