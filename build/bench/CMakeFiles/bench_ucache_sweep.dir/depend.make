# Empty dependencies file for bench_ucache_sweep.
# This may be replaced when dependencies are built.
