file(REMOVE_RECURSE
  "CMakeFiles/bench_codesize_overhead.dir/bench_codesize_overhead.cc.o"
  "CMakeFiles/bench_codesize_overhead.dir/bench_codesize_overhead.cc.o.d"
  "bench_codesize_overhead"
  "bench_codesize_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_codesize_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
