# Empty compiler generated dependencies file for bench_codesize_overhead.
# This may be replaced when dependencies are built.
