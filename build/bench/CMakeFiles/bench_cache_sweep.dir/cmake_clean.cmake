file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_sweep.dir/bench_cache_sweep.cc.o"
  "CMakeFiles/bench_cache_sweep.dir/bench_cache_sweep.cc.o.d"
  "bench_cache_sweep"
  "bench_cache_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
