# Empty compiler generated dependencies file for bench_cache_sweep.
# This may be replaced when dependencies are built.
