file(REMOVE_RECURSE
  "CMakeFiles/bench_collapse_ablation.dir/bench_collapse_ablation.cc.o"
  "CMakeFiles/bench_collapse_ablation.dir/bench_collapse_ablation.cc.o.d"
  "bench_collapse_ablation"
  "bench_collapse_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collapse_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
