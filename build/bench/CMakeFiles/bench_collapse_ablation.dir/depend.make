# Empty dependencies file for bench_collapse_ablation.
# This may be replaced when dependencies are built.
