# Empty dependencies file for bench_fission_ablation.
# This may be replaced when dependencies are built.
