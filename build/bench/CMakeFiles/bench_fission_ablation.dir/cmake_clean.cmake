file(REMOVE_RECURSE
  "CMakeFiles/bench_fission_ablation.dir/bench_fission_ablation.cc.o"
  "CMakeFiles/bench_fission_ablation.dir/bench_fission_ablation.cc.o.d"
  "bench_fission_ablation"
  "bench_fission_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fission_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
