# Empty dependencies file for bench_latency_sweep.
# This may be replaced when dependencies are built.
