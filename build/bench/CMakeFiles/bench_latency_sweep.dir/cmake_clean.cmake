file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_sweep.dir/bench_latency_sweep.cc.o"
  "CMakeFiles/bench_latency_sweep.dir/bench_latency_sweep.cc.o.d"
  "bench_latency_sweep"
  "bench_latency_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
