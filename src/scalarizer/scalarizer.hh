/**
 * @file
 * Kernel code generators — the compiler half of Liquid SIMD.
 *
 * From one vir::Kernel three lowerings are produced:
 *
 *  - Scalarized (paper Section 3): the width-independent scalar
 *    representation. One scalar loop per fission stage, permutations
 *    realized as offset arrays at memory boundaries, per-lane constants
 *    and masks as read-only arrays, reductions as loop-carried
 *    registers, saturating ops as cmp/mov idioms, the whole region
 *    outlined behind a bl so the dynamic translator can find it.
 *  - Native: direct SIMD instructions for a concrete accelerator
 *    width (the paper's "built-in ISA support" comparison).
 *  - InlineScalar: the scalar representation emitted inline without
 *    outlining — the paper's no-accelerator baseline.
 *
 * Loop fission (paper Section 3.4): a permutation of a *computed* value
 * that is not consumed directly by stores ends its stage; the permuted
 * value crosses to the next stage through a compiler temporary array
 * with the permutation applied by the store's offset indexing, exactly
 * like lines 18-20 / 24-30 of paper Figure 4(B).
 */

#ifndef LIQUID_SCALARIZER_SCALARIZER_HH
#define LIQUID_SCALARIZER_SCALARIZER_HH

#include <string>

#include "asm/program.hh"
#include "scalarizer/vir.hh"

namespace liquid
{

/** Code-generation options. */
struct EmitOptions
{
    enum class Mode
    {
        Scalarized,   ///< outlined scalar representation
        Native,       ///< direct SIMD code for nativeWidth lanes
        InlineScalar, ///< scalar representation, not outlined
    };
    Mode mode = Mode::Scalarized;
    unsigned nativeWidth = 8;
    bool hinted = true;       ///< mark the region with bl.simd
    std::string fnName;       ///< defaults to the kernel name

    /**
     * Deliberate Table-1 conformance violations (Scalarized mode
     * only), for exercising the translator's legality checks and the
     * static verifier. Each injection is semantically harmless to the
     * scalar execution but makes translation abort with a specific
     * reason.
     */
    enum class Sabotage
    {
        None,
        UntranslatableOp,  ///< nop at region entry -> untranslatableOpcode
        NestedCall,        ///< bl to a stub at entry -> nestedCall
        ForwardBranch,     ///< taken forward b at entry -> forwardBranch
        IvArithmetic,      ///< IV-derived arithmetic -> ivArithmetic
        ScalarStore,       ///< non-vector store data -> storeScalarData

        // Loop-carried memory-dependence kernels at a known iteration
        // distance (sabotageDistance). These exercise depcheck and the
        // differential oracle rather than a single abort reason.
        /**
         * Two unit-stride stores into one array, the second offset by
         * +distance: a carried output dependence the translator's
         * store-vs-load check never sees. Translation commits; SIMD
         * diverges from scalar iff distance < width.
         */
        OverlapStoreStore,
        /**
         * Store to arr[i], then load arr[i+distance] feeding a store
         * to a second array: a carried anti/flow pair the interval
         * test passes (the store sits below the load stream).
         * Translation commits; SIMD diverges iff distance < width.
         */
        OverlapLoadAhead,
        /**
         * Load arr[i], store arr[i+distance]: the one overlap shape
         * the translator's interval check does catch. Translation
         * aborts (memoryDependence) at every width, even when
         * distance >= width makes the loop provably safe — the
         * conservative-abort case depcheck documents.
         */
        OverlapStoreAfterLoad,
    };
    Sabotage sabotage = Sabotage::None;
    /** Carried iteration distance for the Overlap* modes. */
    unsigned sabotageDistance = 1;
};

/** Code-generation outputs. */
struct EmitResult
{
    std::string entryLabel;   ///< call target; empty in inline mode
    unsigned instCount = 0;   ///< instructions emitted for the region
    unsigned numStages = 1;   ///< fissioned scalar loops
    /** Registers holding each reduction accumulator after the region. */
    std::vector<RegId> accRegs;
};

/**
 * Lower @p kernel into @p prog. Validates the kernel first; throws
 * FatalError with diagnostics for unsupported constructs (VTBL,
 * interleaving, illegal in-stage aliasing, register pressure).
 */
EmitResult emitKernel(Program &prog, const vir::Kernel &kernel,
                      const EmitOptions &opts);

} // namespace liquid

#endif // LIQUID_SCALARIZER_SCALARIZER_HH
