#include "scalarizer/vir.hh"

#include <set>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "cpu/regfile.hh"

namespace liquid::vir
{

Kernel::Kernel(std::string name, unsigned trip_count, unsigned max_width)
    : name_(std::move(name)), tripCount_(trip_count), maxWidth_(max_width)
{
}

int
Kernel::newValue(bool is_float, unsigned elem_size)
{
    values_.push_back(ValueInfo{is_float, elem_size});
    return static_cast<int>(values_.size()) - 1;
}

int
Kernel::load(const std::string &array, unsigned elem_size, bool is_float,
             bool is_signed, std::int32_t disp)
{
    VInst v;
    v.k = OpK::Load;
    v.array = array;
    v.elemSize = elem_size;
    v.isSigned = is_signed;
    v.disp = disp;
    v.dst = newValue(is_float, elem_size);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

void
Kernel::store(const std::string &array, int value, std::int32_t disp)
{
    VInst v;
    v.k = OpK::Store;
    v.array = array;
    v.a = value;
    v.disp = disp;
    v.elemSize = values_.at(value).elemSize;
    body_.push_back(std::move(v));
}

int
Kernel::bin(Opcode op, int a, int b)
{
    VInst v;
    v.k = OpK::Bin;
    v.op = op;
    v.a = a;
    v.b = b;
    const bool is_float =
        values_.at(a).isFloat || values_.at(b).isFloat;
    v.dst = newValue(is_float,
                     std::max(values_.at(a).elemSize,
                              values_.at(b).elemSize));
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::binImm(Opcode op, int a, std::int32_t imm)
{
    VInst v;
    v.k = OpK::BinImm;
    v.op = op;
    v.a = a;
    v.imm = imm;
    v.dst = newValue(values_.at(a).isFloat, values_.at(a).elemSize);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::binConst(Opcode op, int a, std::vector<Word> lanes)
{
    VInst v;
    v.k = OpK::BinConst;
    v.op = op;
    v.a = a;
    v.lanes = std::move(lanes);
    v.dst = newValue(values_.at(a).isFloat, values_.at(a).elemSize);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::perm(int a, PermKind kind, unsigned block)
{
    VInst v;
    v.k = OpK::Perm;
    v.a = a;
    v.permKind = kind;
    v.permBlock = block;
    v.dst = newValue(values_.at(a).isFloat, values_.at(a).elemSize);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::mask(int a, std::uint32_t bits, unsigned block)
{
    VInst v;
    v.k = OpK::Mask;
    v.a = a;
    v.maskBits = bits;
    v.maskBlock = block;
    v.dst = newValue(values_.at(a).isFloat, values_.at(a).elemSize);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::newAcc(const std::string &name, Opcode op, Word init,
               bool is_float)
{
    accs_.push_back(Accum{name, op, init, is_float});
    return static_cast<int>(accs_.size()) - 1;
}

void
Kernel::reduce(int acc, int value)
{
    LIQUID_ASSERT(acc >= 0 &&
                  static_cast<std::size_t>(acc) < accs_.size());
    VInst v;
    v.k = OpK::Red;
    v.op = accs_[acc].op;
    v.acc = acc;
    v.a = value;
    body_.push_back(std::move(v));
}

void
Kernel::setFloat(int value, bool is_float)
{
    values_.at(value).isFloat = is_float;
}

int
Kernel::tableLookup(int indices, int table)
{
    VInst v;
    v.k = OpK::TableLookup;
    v.a = indices;
    v.b = table;
    v.dst = newValue(false, 4);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

int
Kernel::interleavedLoad(const std::string &array, unsigned stride)
{
    VInst v;
    v.k = OpK::InterleavedLoad;
    v.array = array;
    v.imm = static_cast<std::int32_t>(stride);
    v.dst = newValue(false, 4);
    body_.push_back(std::move(v));
    return body_.back().dst;
}

void
Kernel::validate() const
{
    if (!isPowerOf2(maxWidth_) || maxWidth_ < 2 ||
        maxWidth_ > maxSimdWidth)
        fatal("kernel '", name_, "': bad maxWidth ", maxWidth_);
    if (tripCount_ == 0 || tripCount_ % maxWidth_ != 0) {
        fatal("kernel '", name_, "': trip count ", tripCount_,
              " is not a multiple of the compiled width ", maxWidth_,
              " (the compiler aligns data to the maximum vectorizable "
              "length, paper Section 3.1)");
    }

    std::set<int> defined;
    auto checkUse = [&](int v, const char *what) {
        if (v < 0 || static_cast<std::size_t>(v) >= values_.size() ||
            !defined.count(v))
            fatal("kernel '", name_, "': use of undefined ", what);
    };

    for (const VInst &v : body_) {
        switch (v.k) {
          case OpK::TableLookup:
            fatal("kernel '", name_, "': VTBL-style table lookups have "
                  "no width-independent scalar representation (the "
                  "induction-variable offset is unknown until runtime; "
                  "paper Section 3.3)");
          case OpK::InterleavedLoad:
            fatal("kernel '", name_, "': interleaved memory accesses "
                  "have no scalar equivalent (paper Section 3.3)");
          case OpK::Load:
            if (v.elemSize != 1 && v.elemSize != 2 && v.elemSize != 4)
                fatal("kernel '", name_, "': bad element size");
            break;
          case OpK::Store:
            checkUse(v.a, "store operand");
            break;
          case OpK::Bin:
            checkUse(v.a, "operand");
            checkUse(v.b, "operand");
            if (opInfo(v.op).vectorEquiv == Opcode::Nop)
                fatal("kernel '", name_, "': opcode ", opName(v.op),
                      " has no vector equivalent");
            break;
          case OpK::BinImm:
          case OpK::BinConst:
            checkUse(v.a, "operand");
            if (opInfo(v.op).vectorEquiv == Opcode::Nop)
                fatal("kernel '", name_, "': opcode ", opName(v.op),
                      " has no vector equivalent");
            if (v.k == OpK::BinConst &&
                (v.lanes.empty() || v.lanes.size() > maxWidth_ ||
                 !isPowerOf2(v.lanes.size())))
                fatal("kernel '", name_,
                      "': constant period must be a power of two <= "
                      "maxWidth");
            break;
          case OpK::Perm:
            checkUse(v.a, "permutation operand");
            if (v.permBlock < 2 || v.permBlock > maxWidth_ ||
                !isPowerOf2(v.permBlock))
                fatal("kernel '", name_, "': permutation block ",
                      v.permBlock, " illegal for maxWidth ", maxWidth_);
            break;
          case OpK::Mask:
            checkUse(v.a, "mask operand");
            if (v.maskBlock < 1 || v.maskBlock > maxWidth_ ||
                !isPowerOf2(v.maskBlock))
                fatal("kernel '", name_, "': mask block illegal");
            break;
          case OpK::Red:
            checkUse(v.a, "reduction operand");
            if (opInfo(accs_.at(v.acc).op).reductionEquiv == Opcode::Nop)
                fatal("kernel '", name_, "': opcode ",
                      opName(accs_.at(v.acc).op),
                      " is not a supported reduction");
            break;
        }
        if (v.dst >= 0) {
            if (defined.count(v.dst))
                fatal("kernel '", name_, "': value defined twice");
            defined.insert(v.dst);
        }
    }
}

} // namespace liquid::vir
