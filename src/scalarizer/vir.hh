/**
 * @file
 * Vector intermediate representation.
 *
 * A vir::Kernel describes one SIMD hot loop the way the paper's
 * hand-SIMDized assembly does (Figure 4(A)): a straight-line dataflow
 * body that consumes and produces memory arrays, executed once per
 * vector of elements. The scalarizer lowers a kernel three ways:
 *
 *  - the Liquid SIMD scalar representation (paper Table 1), outlined;
 *  - native SIMD code for a concrete accelerator width;
 *  - plain inline scalar code (the paper's no-accelerator baseline).
 *
 * Values are SSA ids; loads/stores reference named arrays in the
 * program's data segment with element-granular displacements.
 */

#ifndef LIQUID_SCALARIZER_VIR_HH
#define LIQUID_SCALARIZER_VIR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace liquid::vir
{

/** Kinds of vector-IR operations. */
enum class OpK : std::uint8_t
{
    Load,      ///< dst = array[i + disp ...]
    Store,     ///< array[i + disp ...] = a
    Bin,       ///< dst = op(a, b) elementwise
    BinImm,    ///< dst = op(a, #imm) elementwise
    BinConst,  ///< dst = op(a, periodic constant vector)
    Perm,      ///< dst = block permutation of a
    Mask,      ///< dst = lane-mask of a
    Red,       ///< acc = op(acc, lanes of a)
    // Unsupported by the scalar representation (paper Section 3.3);
    // present so the legality checker can reject them with diagnostics.
    TableLookup,
    InterleavedLoad,
};

/** One vector-IR operation. */
struct VInst
{
    OpK k = OpK::Bin;
    Opcode op = Opcode::Add;   ///< scalar opcode for Bin*/Red
    int dst = -1;
    int a = -1;
    int b = -1;
    std::string array;         ///< Load/Store target
    std::int32_t disp = 0;     ///< element displacement
    unsigned elemSize = 4;
    bool isSigned = false;
    std::int32_t imm = 0;      ///< BinImm operand
    std::vector<Word> lanes;   ///< BinConst periodic constant
    PermKind permKind = PermKind::SwapHalves;
    unsigned permBlock = 0;
    std::uint32_t maskBits = 0;
    unsigned maskBlock = 0;
    int acc = -1;              ///< Red accumulator id
};

/** Per-value metadata. */
struct ValueInfo
{
    bool isFloat = false;
    unsigned elemSize = 4;
};

/** A reduction accumulator, exposed in a scalar register after the call. */
struct Accum
{
    std::string name;
    Opcode op = Opcode::Add;   ///< Add / Min / Max
    Word init = 0;
    bool isFloat = false;
};

/** One SIMD hot loop. */
class Kernel
{
  public:
    Kernel(std::string name, unsigned trip_count, unsigned max_width = 16);

    const std::string &name() const { return name_; }
    unsigned tripCount() const { return tripCount_; }
    unsigned maxWidth() const { return maxWidth_; }

    const std::vector<VInst> &body() const { return body_; }
    const std::vector<ValueInfo> &values() const { return values_; }
    const std::vector<Accum> &accs() const { return accs_; }

    // ---- builder API -----------------------------------------------------

    /** Load elements of @p array (elemSize 1/2/4). */
    int load(const std::string &array, unsigned elem_size = 4,
             bool is_float = false, bool is_signed = false,
             std::int32_t disp = 0);

    /** Store @p value into @p array. */
    void store(const std::string &array, int value, std::int32_t disp = 0);

    /** Elementwise binary op (Add/Sub/Mul/And/.../Qadd). */
    int bin(Opcode op, int a, int b);

    /** Elementwise op with a scalar immediate. */
    int binImm(Opcode op, int a, std::int32_t imm);

    /** Elementwise op with a periodic per-lane constant. */
    int binConst(Opcode op, int a, std::vector<Word> lanes);

    /** Block permutation. */
    int perm(int a, PermKind kind, unsigned block);

    /** Lane mask (keep lane i iff bit i%block set). */
    int mask(int a, std::uint32_t bits, unsigned block);

    /** Declare a reduction accumulator. */
    int newAcc(const std::string &name, Opcode op, Word init,
               bool is_float = false);

    /** Fold @p value into accumulator @p acc. */
    void reduce(int acc, int value);

    /** Mark a value's class explicitly (rarely needed). */
    void setFloat(int value, bool is_float);

    // Unsupported constructs, for legality testing (paper Section 3.3).
    int tableLookup(int indices, int table);
    int interleavedLoad(const std::string &array, unsigned stride);

    /**
     * Validate the kernel: SSA discipline, operand classes, permutation
     * and mask blocks within maxWidth, trip count a multiple of
     * maxWidth, no unsupported constructs. Throws FatalError with a
     * diagnostic on violation.
     */
    void validate() const;

  private:
    int newValue(bool is_float, unsigned elem_size);

    std::string name_;
    unsigned tripCount_;
    unsigned maxWidth_;
    std::vector<VInst> body_;
    std::vector<ValueInfo> values_;
    std::vector<Accum> accs_;
};

} // namespace liquid::vir

#endif // LIQUID_SCALARIZER_VIR_HH
