#include "scalarizer/scalarizer.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bitfield.hh"
#include "common/logging.hh"
#include "cpu/exec.hh"
#include "cpu/regfile.hh"

namespace liquid
{

namespace
{

using vir::Kernel;
using vir::OpK;
using vir::VInst;

// ---------------------------------------------------------------------------
// Register pool with reuse.
// ---------------------------------------------------------------------------

class RegPool
{
  public:
    RegPool(RegClass cls, unsigned lo, unsigned hi, const char *what)
        : cls_(cls), lo_(lo), hi_(hi), what_(what),
          used_(hi - lo + 1, false)
    {
    }

    RegId
    alloc()
    {
        for (unsigned i = 0; i < used_.size(); ++i) {
            if (!used_[i]) {
                used_[i] = true;
                return RegId(cls_, lo_ + i);
            }
        }
        fatal("scalarizer: out of ", what_, " registers (register "
              "pressure; split the kernel)");
    }

    void
    release(RegId reg)
    {
        LIQUID_ASSERT(reg.cls() == cls_ && reg.idx() >= lo_ &&
                      reg.idx() <= hi_);
        used_[reg.idx() - lo_] = false;
    }

  private:
    RegClass cls_;
    unsigned lo_;
    unsigned hi_;
    const char *what_;
    std::vector<bool> used_;
};

// ---------------------------------------------------------------------------
// Fission plan.
// ---------------------------------------------------------------------------

enum class PermMode
{
    LoadFused,   ///< realized as an offset-indexed load
    TmpFused,    ///< offset-indexed load of the operand's tmp array
    StoreFused,  ///< realized as offset-indexed stores by its consumers
    Split,       ///< ends its stage; crosses via a permuted tmp store
};

struct FissionPlan
{
    std::vector<int> stageOf;                 ///< per body index
    int numStages = 1;
    std::map<int, PermMode> permMode;         ///< body idx of each Perm
    std::map<int, std::string> loadFuseArray; ///< Perm idx -> array read
    std::map<int, std::int32_t> loadFuseDisp;
    std::set<int> deadLoads;                  ///< loads fully fused away
    std::set<int> matPlain;                   ///< values -> plain tmp
    std::map<int, int> splitPermIdx;          ///< value -> Perm body idx
    std::map<int, int> defIdx;                ///< value -> defining idx
    std::map<int, std::vector<int>> uses;     ///< value -> user indices
};

const char *
arrayOrEmpty(const VInst &v)
{
    return v.array.c_str();
}

FissionPlan
planFission(const Kernel &kernel)
{
    const auto &body = kernel.body();
    FissionPlan plan;
    plan.stageOf.assign(body.size(), 0);

    for (std::size_t i = 0; i < body.size(); ++i) {
        const VInst &v = body[i];
        if (v.dst >= 0)
            plan.defIdx[v.dst] = static_cast<int>(i);
        if (v.a >= 0)
            plan.uses[v.a].push_back(static_cast<int>(i));
        if (v.b >= 0)
            plan.uses[v.b].push_back(static_cast<int>(i));
    }

    // First store position (body index) per array, for load-fusion
    // legality: a fused re-read must complete before the array changes.
    std::map<std::string, int> firstStoreAt;
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (body[i].k == OpK::Store && !firstStoreAt.count(body[i].array))
            firstStoreAt[body[i].array] = static_cast<int>(i);
    }

    int stage = 0;
    std::vector<int> valueStage(kernel.values().size(), 0);

    for (std::size_t i = 0; i < body.size(); ++i) {
        const VInst &v = body[i];
        if (v.k != OpK::Perm) {
            plan.stageOf[i] = stage;
            if (v.dst >= 0)
                valueStage[v.dst] = stage;
            // Operands produced in earlier stages cross through tmps.
            for (int opnd : {v.a, v.b}) {
                if (opnd >= 0 && valueStage[opnd] < stage &&
                    !plan.splitPermIdx.count(opnd))
                    plan.matPlain.insert(opnd);
            }
            continue;
        }

        // A permutation: try to realize it at a memory boundary.
        const int def = plan.defIdx.at(v.a);
        const VInst &def_inst = body[def];
        const int last_use = plan.uses.count(v.dst)
                                 ? plan.uses.at(v.dst).back()
                                 : static_cast<int>(i);

        // (a) Fuse with the defining load: re-read the source array
        // with offset indexing, provided nothing stores to that array
        // before the last fused use.
        if (def_inst.k == OpK::Load &&
            (!firstStoreAt.count(def_inst.array) ||
             firstStoreAt.at(def_inst.array) > last_use)) {
            plan.permMode[static_cast<int>(i)] = PermMode::LoadFused;
            plan.loadFuseArray[static_cast<int>(i)] = def_inst.array;
            plan.loadFuseDisp[static_cast<int>(i)] = def_inst.disp;
            plan.stageOf[i] = stage;
            valueStage[v.dst] = stage;
            // Drop this use of the load; the load dies if unused now.
            auto &load_uses = plan.uses[v.a];
            for (auto it = load_uses.begin(); it != load_uses.end(); ++it) {
                if (*it == static_cast<int>(i)) {
                    load_uses.erase(it);
                    break;
                }
            }
            if (load_uses.empty())
                plan.deadLoads.insert(def);
            continue;
        }

        // (a') The operand already lives in an earlier stage: it will
        // be materialized to a tmp array, and the permutation becomes
        // an offset-indexed load of that tmp (tmps are written once).
        if (valueStage[v.a] < stage) {
            plan.permMode[static_cast<int>(i)] = PermMode::TmpFused;
            plan.matPlain.insert(v.a);
            plan.stageOf[i] = stage;
            valueStage[v.dst] = stage;
            continue;
        }

        // (b) Fuse with the consuming stores if every use is a store.
        bool all_stores = plan.uses.count(v.dst) &&
                          !plan.uses.at(v.dst).empty();
        if (all_stores) {
            for (int u : plan.uses.at(v.dst))
                all_stores = all_stores && body[u].k == OpK::Store;
        }
        if (all_stores) {
            plan.permMode[static_cast<int>(i)] = PermMode::StoreFused;
            plan.stageOf[i] = stage;
            valueStage[v.dst] = stage;
            if (valueStage[v.a] < stage)
                plan.matPlain.insert(v.a);
            continue;
        }

        // (c) Split: end the stage here; the operand crosses through a
        // tmp array with the permutation applied at the store.
        plan.permMode[static_cast<int>(i)] = PermMode::Split;
        plan.stageOf[i] = stage;
        plan.splitPermIdx[v.dst] = static_cast<int>(i);
        if (valueStage[v.a] < stage)
            plan.matPlain.insert(v.a);
        ++stage;
        valueStage[v.dst] = stage;
    }

    plan.numStages = stage + 1;

    // In-stage aliasing legality: within one scalar loop, a store to an
    // array an offset access touches (or a store "ahead of" a straight
    // load) breaks iteration-at-a-time equivalence (Section 3.4 of
    // DESIGN.md). Detect and reject.
    for (int s = 0; s < plan.numStages; ++s) {
        std::map<std::string, std::int32_t> min_load_disp;
        std::set<std::string> perm_arrays;
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (plan.stageOf[i] != s)
                continue;
            const VInst &v = body[i];
            if (v.k == OpK::Load && !plan.deadLoads.count(
                                        static_cast<int>(i))) {
                auto it = min_load_disp.find(v.array);
                if (it == min_load_disp.end())
                    min_load_disp[v.array] = v.disp;
                else
                    it->second = std::min(it->second, v.disp);
            }
            if (v.k == OpK::Perm &&
                plan.permMode.at(static_cast<int>(i)) ==
                    PermMode::LoadFused)
                perm_arrays.insert(
                    plan.loadFuseArray.at(static_cast<int>(i)));
        }
        for (std::size_t i = 0; i < body.size(); ++i) {
            if (plan.stageOf[i] != s || body[i].k != OpK::Store)
                continue;
            const VInst &v = body[i];
            if (perm_arrays.count(v.array)) {
                fatal("kernel '", kernel.name(), "': array '",
                      arrayOrEmpty(v), "' is stored in the same stage "
                      "that reads it through a permutation; restructure "
                      "the kernel (route the store through a tmp)");
            }
            auto it = min_load_disp.find(v.array);
            if (it != min_load_disp.end() && v.disp > it->second) {
                fatal("kernel '", kernel.name(), "': store to '",
                      arrayOrEmpty(v), "' runs ahead of a load in the "
                      "same stage; scalar iteration order would diverge "
                      "from vector semantics");
            }
        }
    }

    return plan;
}

// ---------------------------------------------------------------------------
// Shared emission helpers.
// ---------------------------------------------------------------------------

/** Read-only table interning (offset / constant / mask arrays). */
class RoTables
{
  public:
    RoTables(Program &prog, std::string prefix, unsigned trip_count)
        : prog_(prog), prefix_(std::move(prefix)), tripCount_(trip_count)
    {
    }

    /** Array repeating @p pattern out to the trip count. */
    const std::string &
    table(const std::vector<Word> &pattern)
    {
        auto it = byPattern_.find(pattern);
        if (it != byPattern_.end())
            return it->second;
        std::vector<Word> words(tripCount_);
        for (unsigned i = 0; i < tripCount_; ++i)
            words[i] = pattern[i % pattern.size()];
        std::string name =
            prefix_ + "_ro" + std::to_string(byPattern_.size());
        prog_.allocRoWords(name, words, 64);
        return byPattern_.emplace(pattern, std::move(name))
            .first->second;
    }

    const std::string &
    permTable(PermKind kind, unsigned block)
    {
        const auto offsets = permOffsets(kind, block);
        std::vector<Word> pattern(offsets.size());
        for (std::size_t i = 0; i < offsets.size(); ++i)
            pattern[i] = static_cast<Word>(offsets[i]);
        return table(pattern);
    }

    const std::string &
    maskTable(std::uint32_t bits, unsigned block)
    {
        std::vector<Word> pattern(block);
        for (unsigned i = 0; i < block; ++i)
            pattern[i] = ((bits >> i) & 1u) ? 0xFFFFFFFFu : 0;
        return table(pattern);
    }

  private:
    Program &prog_;
    std::string prefix_;
    unsigned tripCount_;
    std::map<std::vector<Word>, std::string> byPattern_;
};

Opcode
loadOpcode(unsigned elem_size, bool is_signed)
{
    switch (elem_size) {
      case 1: return is_signed ? Opcode::Ldsb : Opcode::Ldb;
      case 2: return is_signed ? Opcode::Ldsh : Opcode::Ldh;
      case 4: return Opcode::Ldw;
      default: panic("bad element size ", elem_size);
    }
}

Opcode
storeOpcode(unsigned elem_size)
{
    switch (elem_size) {
      case 1: return Opcode::Stb;
      case 2: return Opcode::Sth;
      case 4: return Opcode::Stw;
      default: panic("bad element size ", elem_size);
    }
}

// ---------------------------------------------------------------------------
// Scalar emission (Scalarized and InlineScalar modes).
// ---------------------------------------------------------------------------

class ScalarEmitter
{
  public:
    ScalarEmitter(Program &prog, const Kernel &kernel,
                  const EmitOptions &opts)
        : prog_(prog), kernel_(kernel), opts_(opts),
          fnName_(opts.fnName.empty() ? kernel.name() : opts.fnName),
          tables_(prog, fnName_, kernel.tripCount()),
          // r0 is the induction variable; r10+ belong to drivers;
          // f15 maps to the translator's vf15 shuffle scratch.
          intPool_(RegClass::Int, 1, 9, "integer"),
          fltPool_(RegClass::Flt, 0, 14, "float"),
          iv_(RegClass::Int, 0)
    {
    }

    EmitResult
    emit()
    {
        plan_ = planFission(kernel_);

        const int first = static_cast<int>(prog_.code().size());
        const bool outlined =
            opts_.mode == EmitOptions::Mode::Scalarized;
        using Sabotage = EmitOptions::Sabotage;

        if (outlined && opts_.sabotage == Sabotage::NestedCall) {
            // Stub callee ahead of the entry; reachable only via the
            // injected bl below.
            prog_.defineLabel(fnName_ + "_sab_helper");
            prog_.addInst(Inst::ret());
        }

        if (outlined)
            prog_.defineLabel(fnName_);

        if (outlined) {
            switch (opts_.sabotage) {
              case Sabotage::UntranslatableOp:
                prog_.addInst(Inst::nop());
                break;
              case Sabotage::NestedCall:
                prog_.addInst(Inst::call(-1, false,
                                         fnName_ + "_sab_helper"));
                break;
              case Sabotage::ForwardBranch:
                prog_.addInst(Inst::branch(Cond::AL, -1,
                                           fnName_ + "_sab_skip"));
                prog_.defineLabel(fnName_ + "_sab_skip");
                break;
              case Sabotage::ScalarStore:
                prog_.allocData(fnName_ + "_sab",
                                kernel_.tripCount() * 4, 64);
                break;
              default:
                break;
            }
        }

        // Reduction accumulators live in registers across all stages.
        for (const auto &acc : kernel_.accs()) {
            RegId reg = acc.isFloat ? fltPool_.alloc() : intPool_.alloc();
            accRegs_.push_back(reg);
            prog_.addInst(
                Inst::movImm(reg, static_cast<std::int32_t>(acc.init)));
        }

        // Plain tmp arrays for values crossing stage boundaries.
        for (int v : plan_.matPlain)
            backingArray_[v] = newTmpArray();
        for (const auto &[dst, perm_idx] : plan_.splitPermIdx) {
            (void)perm_idx;
            backingArray_[dst] = newTmpArray();
        }

        for (int s = 0; s < plan_.numStages; ++s)
            emitStage(s);

        if (opts_.mode == EmitOptions::Mode::Scalarized)
            prog_.addInst(Inst::ret());

        EmitResult result;
        result.entryLabel =
            opts_.mode == EmitOptions::Mode::Scalarized ? fnName_ : "";
        result.instCount =
            static_cast<unsigned>(prog_.code().size()) - first;
        result.numStages = static_cast<unsigned>(plan_.numStages);
        result.accRegs = accRegs_;
        return result;
    }

  private:
    std::string
    newTmpArray()
    {
        std::string name = fnName_ + "_tmp" + std::to_string(numTmps_++);
        prog_.allocData(name, kernel_.tripCount() * 4, 64);
        return name;
    }

    RegId
    allocFor(int value)
    {
        return kernel_.values()[value].isFloat ? fltPool_.alloc()
                                               : intPool_.alloc();
    }

    void
    release(RegId reg)
    {
        if (reg.cls() == RegClass::Int)
            intPool_.release(reg);
        else
            fltPool_.release(reg);
    }

    /** Emit `ldw rt, [off + iv]; add rt, iv, rt` -> returns rt. */
    RegId
    emitOffsetIndex(const std::string &off_table)
    {
        RegId rt = intPool_.alloc();
        prog_.addInst(Inst::load(Opcode::Ldw, rt, prog_.ref(off_table, iv_)));
        prog_.addInst(Inst::dp(Opcode::Add, rt, iv_, rt));
        return rt;
    }

    // Emission items for one stage, in order.
    struct Item
    {
        enum class Kind { Body, TmpLoad, MatStore, PermMatStore } kind;
        int bodyIdx = -1;  ///< Body
        int value = -1;    ///< TmpLoad / MatStore / PermMatStore source
        int permIdx = -1;  ///< PermMatStore: the Split Perm
    };

    std::vector<Item>
    buildItems(int s)
    {
        const auto &body = kernel_.body();
        std::vector<Item> items;
        std::set<int> resident;  // values register-resident this stage

        auto ensureLoaded = [&](int value) {
            if (value < 0 || resident.count(value))
                return;
            // Values defined in this stage become resident when their
            // defining item runs; only cross-stage values need loads.
            if (plan_.stageOf[plan_.defIdx.at(value)] ==
                    s &&
                !plan_.splitPermIdx.count(value))
                return;
            items.push_back(Item{Item::Kind::TmpLoad, -1, value, -1});
            resident.insert(value);
        };

        for (std::size_t i = 0; i < body.size(); ++i) {
            if (plan_.stageOf[i] != s)
                continue;
            const VInst &v = body[i];
            if (v.k == OpK::Load &&
                plan_.deadLoads.count(static_cast<int>(i)))
                continue;
            if (v.k == OpK::Perm) {
                const PermMode mode =
                    plan_.permMode.at(static_cast<int>(i));
                if (mode == PermMode::StoreFused)
                    continue;  // realized at the consuming stores
                if (mode == PermMode::Split) {
                    // Materialize the operand with the permutation; the
                    // result is consumed from its tmp in later stages.
                    ensureLoaded(storeSource(v.a));
                    items.push_back(Item{Item::Kind::PermMatStore, -1,
                                         v.a, static_cast<int>(i)});
                    continue;
                }
                // LoadFused/TmpFused: emits its own offset-indexed load.
                items.push_back(
                    Item{Item::Kind::Body, static_cast<int>(i), -1, -1});
                resident.insert(v.dst);
                continue;
            }

            if (v.k == OpK::Store) {
                ensureLoaded(storeSource(v.a));
            } else {
                for (int opnd : {v.a, v.b})
                    ensureLoaded(opnd);
            }
            items.push_back(
                Item{Item::Kind::Body, static_cast<int>(i), -1, -1});
            if (v.dst >= 0)
                resident.insert(v.dst);
        }

        // Materialize plain tmps for values defined here but used later.
        const auto &bodyref = kernel_.body();
        for (std::size_t i = 0; i < bodyref.size(); ++i) {
            if (plan_.stageOf[i] != s)
                continue;
            const int dst = bodyref[i].dst;
            if (dst >= 0 && plan_.matPlain.count(dst) &&
                !plan_.splitPermIdx.count(dst)) {
                items.push_back(
                    Item{Item::Kind::MatStore, -1, dst, -1});
            }
        }
        return items;
    }

    /** The value a store actually reads (store-fused perms alias). */
    int
    storeSource(int value)
    {
        auto it = plan_.splitPermIdx.find(value);
        (void)it;
        auto pm = permAliasOf(value);
        return pm ? kernel_.body()[*pm].a : value;
    }

    /** If @p value is a StoreFused perm result, its Perm body index. */
    std::optional<int>
    permAliasOf(int value)
    {
        auto def = plan_.defIdx.find(value);
        if (def == plan_.defIdx.end())
            return std::nullopt;
        auto pm = plan_.permMode.find(def->second);
        if (pm != plan_.permMode.end() && pm->second == PermMode::StoreFused)
            return def->second;
        return std::nullopt;
    }

    void
    emitStage(int s)
    {
        const auto items = buildItems(s);

        // Last use position of each value within this stage's items.
        std::map<int, std::size_t> last_use;
        for (std::size_t p = 0; p < items.size(); ++p) {
            const Item &item = items[p];
            if (item.kind == Item::Kind::Body) {
                const VInst &v = kernel_.body()[item.bodyIdx];
                if (v.k == OpK::Store) {
                    last_use[storeSource(v.a)] = p;
                } else {
                    for (int opnd : {v.a, v.b}) {
                        if (opnd >= 0)
                            last_use[opnd] = p;
                    }
                }
            } else if (item.kind != Item::Kind::TmpLoad) {
                last_use[item.value] = p;
            }
        }

        // Loop prologue.
        prog_.addInst(Inst::movImm(iv_, 0));
        using Sabotage = EmitOptions::Sabotage;
        const bool sabotage_here =
            s == 0 && opts_.mode == EmitOptions::Mode::Scalarized;
        if (sabotage_here &&
            opts_.sabotage == Sabotage::IvArithmetic) {
            // IV-derived value: Rule 11 refuses it (it would diverge
            // once the loop strides by W). Dead afterwards, so the
            // scalar execution is unaffected.
            RegId rt = intPool_.alloc();
            prog_.addInst(Inst::dp(Opcode::Add, rt, iv_, iv_));
            intPool_.release(rt);
        }
        const std::string top =
            fnName_ + "_s" + std::to_string(s) + "_top";
        prog_.defineLabel(top);
        if (sabotage_here &&
            opts_.sabotage == Sabotage::ScalarStore) {
            // Store whose data register is not a virtualized vector:
            // the translator's store rule refuses it.
            RegId rt = intPool_.alloc();
            prog_.addInst(Inst::movImm(rt, 7));
            prog_.addInst(Inst::store(Opcode::Stw, rt,
                                      prog_.ref(fnName_ + "_sab", iv_)));
            intPool_.release(rt);
        }
        if (sabotage_here &&
            (opts_.sabotage == Sabotage::OverlapStoreStore ||
             opts_.sabotage == Sabotage::OverlapLoadAhead ||
             opts_.sabotage == Sabotage::OverlapStoreAfterLoad)) {
            emitOverlapSabotage();
        }

        regOf_.clear();
        for (std::size_t p = 0; p < items.size(); ++p) {
            emitItem(items[p]);
            // Free registers whose value dies here.
            for (auto it = regOf_.begin(); it != regOf_.end();) {
                auto lu = last_use.find(it->first);
                const bool dead =
                    lu == last_use.end() || lu->second <= p;
                if (dead) {
                    release(it->second);
                    it = regOf_.erase(it);
                } else {
                    ++it;
                }
            }
        }

        // Loop epilogue.
        prog_.addInst(Inst::dpImm(Opcode::Add, iv_, iv_, 1));
        prog_.addInst(Inst::cmpImm(
            iv_, static_cast<std::int32_t>(kernel_.tripCount())));
        prog_.addInst(Inst::branch(Cond::LT, -1, top));
    }

    /**
     * Plant a loop-carried memory dependence at a known iteration
     * distance inside the stage-0 loop body (Overlap* sabotage). The
     * scratch arrays are allocated here — after every kernel array —
     * so their bases sit above all kernel load streams and the only
     * overlaps the translator or depcheck can see are the intended
     * intra-sabotage ones. All three kernels are idempotent functions
     * of read-only-ish state and the induction variable, so a
     * SIMD/scalar divergence survives repeated region calls instead
     * of washing out.
     */
    void
    emitOverlapSabotage()
    {
        using Sabotage = EmitOptions::Sabotage;
        const unsigned trip = kernel_.tripCount();
        const unsigned d = std::max(1u, opts_.sabotageDistance);

        // Shared scratch array, sized so loads/stores displaced by +d
        // stay in bounds. Distinct per-element init values keep any
        // wrong-order execution observable.
        const std::string arr = fnName_ + "_sabarr";
        std::vector<Word> arr_init;
        for (unsigned i = 0; i < trip + d; ++i)
            arr_init.push_back(3000 + i);
        prog_.allocWords(arr, arr_init, 64);

        switch (opts_.sabotage) {
          case Sabotage::OverlapStoreStore: {
            // arr[i] = in1[i]; arr[i+d] = in2[i] — a carried output
            // dependence between two stores. The translator's
            // finalize-time check only compares stores against load
            // streams, so it commits; the vector groups then run all
            // arr[i] lanes before all arr[i+d] lanes, flipping the
            // last-writer whenever d < width.
            std::vector<Word> in1, in2;
            for (unsigned i = 0; i < trip; ++i) {
                in1.push_back(1000 + i);
                in2.push_back(5000 + i);
            }
            prog_.allocWords(fnName_ + "_sabin", in1, 64);
            prog_.allocWords(fnName_ + "_sabin2", in2, 64);
            RegId rt = intPool_.alloc();
            prog_.addInst(Inst::load(
                Opcode::Ldw, rt, prog_.ref(fnName_ + "_sabin", iv_)));
            prog_.addInst(Inst::store(Opcode::Stw, rt,
                                      prog_.ref(arr, iv_)));
            prog_.addInst(Inst::load(
                Opcode::Ldw, rt, prog_.ref(fnName_ + "_sabin2", iv_)));
            prog_.addInst(Inst::store(
                Opcode::Stw, rt,
                prog_.ref(arr, iv_, static_cast<std::int32_t>(d))));
            intPool_.release(rt);
            break;
          }
          case Sabotage::OverlapLoadAhead: {
            // arr[i] = out[i]; out[i] = arr[i+d] — the store sits at
            // the *base* of the load stream it feeds, so the
            // translator's (s0 > l0) interval test passes and it
            // commits. Vector groups write the whole arr block before
            // reading arr[i+d], so lanes with i+d inside the group
            // read this call's values instead of last call's.
            std::vector<Word> outv;
            for (unsigned i = 0; i < trip; ++i)
                outv.push_back(1000 + i);
            prog_.allocWords(fnName_ + "_sabout", outv, 64);
            RegId rt = intPool_.alloc();
            prog_.addInst(Inst::load(
                Opcode::Ldw, rt, prog_.ref(fnName_ + "_sabout", iv_)));
            prog_.addInst(Inst::store(Opcode::Stw, rt,
                                      prog_.ref(arr, iv_)));
            prog_.addInst(Inst::load(
                Opcode::Ldw, rt,
                prog_.ref(arr, iv_, static_cast<std::int32_t>(d))));
            prog_.addInst(Inst::store(
                Opcode::Stw, rt, prog_.ref(fnName_ + "_sabout", iv_)));
            intPool_.release(rt);
            break;
          }
          case Sabotage::OverlapStoreAfterLoad: {
            // arr[i+d] = arr[i] — the store lands strictly inside the
            // load stream, the one shape the translator's interval
            // test does catch: it aborts (memoryDependence) at every
            // width, even for d >= width where the vector execution
            // would have been safe.
            RegId rt = intPool_.alloc();
            prog_.addInst(Inst::load(Opcode::Ldw, rt,
                                     prog_.ref(arr, iv_)));
            prog_.addInst(Inst::store(
                Opcode::Stw, rt,
                prog_.ref(arr, iv_, static_cast<std::int32_t>(d))));
            intPool_.release(rt);
            break;
          }
          default:
            break;
        }
    }

    RegId
    valueReg(int value)
    {
        auto it = regOf_.find(value);
        LIQUID_ASSERT(it != regOf_.end(),
                      "scalarizer: value not resident");
        return it->second;
    }

    void
    emitItem(const Item &item)
    {
        const auto &values = kernel_.values();
        switch (item.kind) {
          case Item::Kind::TmpLoad: {
            RegId reg = allocFor(item.value);
            prog_.addInst(Inst::load(
                Opcode::Ldw, reg,
                prog_.ref(backingArray_.at(item.value), iv_)));
            regOf_[item.value] = reg;
            return;
          }
          case Item::Kind::MatStore: {
            prog_.addInst(Inst::store(
                Opcode::Stw, valueReg(item.value),
                prog_.ref(backingArray_.at(item.value), iv_)));
            return;
          }
          case Item::Kind::PermMatStore: {
            const VInst &perm = kernel_.body()[item.permIdx];
            const std::string &off = tables_.permTable(
                permInverse(perm.permKind), perm.permBlock);
            RegId rt = emitOffsetIndex(off);
            prog_.addInst(Inst::store(
                Opcode::Stw, valueReg(item.value),
                prog_.ref(backingArray_.at(perm.dst), rt)));
            intPool_.release(rt);
            return;
          }
          case Item::Kind::Body:
            break;
        }

        const VInst &v = kernel_.body()[item.bodyIdx];
        switch (v.k) {
          case OpK::Load: {
            RegId reg = allocFor(v.dst);
            prog_.addInst(Inst::load(
                loadOpcode(v.elemSize, v.isSigned), reg,
                prog_.ref(v.array, iv_, v.disp)));
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::Perm: {
            // Offset-indexed read, either of the original source array
            // (LoadFused) or of the operand's tmp array (TmpFused).
            const std::string &off =
                tables_.permTable(v.permKind, v.permBlock);
            RegId rt = emitOffsetIndex(off);
            RegId reg = allocFor(v.dst);
            if (plan_.permMode.at(item.bodyIdx) == PermMode::TmpFused) {
                prog_.addInst(Inst::load(
                    Opcode::Ldw, reg,
                    prog_.ref(backingArray_.at(v.a), rt)));
            } else {
                const VInst &src = kernel_.body()[plan_.defIdx.at(v.a)];
                prog_.addInst(Inst::load(
                    loadOpcode(src.elemSize, src.isSigned), reg,
                    prog_.ref(plan_.loadFuseArray.at(item.bodyIdx), rt,
                              plan_.loadFuseDisp.at(item.bodyIdx))));
            }
            intPool_.release(rt);
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::Store: {
            const int src_value = storeSource(v.a);
            auto alias = permAliasOf(v.a);
            if (alias) {
                const VInst &perm = kernel_.body()[*alias];
                const std::string &off = tables_.permTable(
                    permInverse(perm.permKind), perm.permBlock);
                RegId rt = emitOffsetIndex(off);
                prog_.addInst(Inst::store(
                    storeOpcode(v.elemSize), valueReg(src_value),
                    prog_.ref(v.array, rt, v.disp)));
                intPool_.release(rt);
            } else {
                prog_.addInst(Inst::store(
                    storeOpcode(v.elemSize), valueReg(src_value),
                    prog_.ref(v.array, iv_, v.disp)));
            }
            return;
          }
          case OpK::Bin: {
            RegId reg = allocFor(v.dst);
            if (v.op == Opcode::Qadd || v.op == Opcode::Qsub) {
                emitSaturationIdiom(v, reg);
            } else {
                prog_.addInst(Inst::dp(v.op, reg, valueReg(v.a),
                                       valueReg(v.b)));
            }
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::BinImm: {
            RegId reg = allocFor(v.dst);
            prog_.addInst(Inst::dpImm(v.op, reg, valueReg(v.a), v.imm));
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::BinConst: {
            const std::string &cnst = tables_.table(v.lanes);
            RegId rt = intPool_.alloc();
            prog_.addInst(
                Inst::load(Opcode::Ldw, rt, prog_.ref(cnst, iv_)));
            RegId reg = allocFor(v.dst);
            prog_.addInst(Inst::dp(v.op, reg, valueReg(v.a), rt));
            intPool_.release(rt);
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::Mask: {
            const std::string &mask =
                tables_.maskTable(v.maskBits, v.maskBlock);
            RegId rt = intPool_.alloc();
            prog_.addInst(
                Inst::load(Opcode::Ldw, rt, prog_.ref(mask, iv_)));
            RegId reg = allocFor(v.dst);
            prog_.addInst(Inst::dp(Opcode::And, reg, valueReg(v.a), rt));
            intPool_.release(rt);
            regOf_[v.dst] = reg;
            return;
          }
          case OpK::Red: {
            RegId acc = accRegs_.at(v.acc);
            prog_.addInst(Inst::dp(v.op, acc, acc, valueReg(v.a)));
            return;
          }
          default:
            panic("unsupported vir op in scalar emitter");
        }
        (void)values;
    }

    /**
     * Saturating arithmetic has no single scalar equivalent; emit the
     * paper's cmp/conditional-mov idiom (Section 3.2).
     */
    void
    emitSaturationIdiom(const VInst &v, RegId reg)
    {
        const Opcode base =
            v.op == Opcode::Qadd ? Opcode::Add : Opcode::Sub;
        prog_.addInst(Inst::dp(base, reg, valueReg(v.a), valueReg(v.b)));
        prog_.addInst(Inst::cmpImm(reg, satMax));
        prog_.addInst(Inst::movImm(reg, satMax, Cond::GT));
        prog_.addInst(Inst::cmpImm(reg, satMin));
        prog_.addInst(Inst::movImm(reg, satMin, Cond::LT));
    }

    Program &prog_;
    const Kernel &kernel_;
    EmitOptions opts_;
    std::string fnName_;
    RoTables tables_;
    RegPool intPool_;
    RegPool fltPool_;
    RegId iv_;
    FissionPlan plan_;
    std::vector<RegId> accRegs_;
    std::map<int, RegId> regOf_;
    std::map<int, std::string> backingArray_;
    int numTmps_ = 0;
};

// ---------------------------------------------------------------------------
// Native SIMD emission.
// ---------------------------------------------------------------------------

class NativeEmitter
{
  public:
    NativeEmitter(Program &prog, const Kernel &kernel,
                  const EmitOptions &opts)
        : prog_(prog), kernel_(kernel), opts_(opts),
          fnName_((opts.fnName.empty() ? kernel.name() : opts.fnName)),
          intPool_(RegClass::Vec, 0, 15, "vector"),
          fltPool_(RegClass::VFlt, 0, 15, "vector-float"),
          sIntPool_(RegClass::Int, 1, 9, "integer"),
          sFltPool_(RegClass::Flt, 0, 15, "float"),
          iv_(RegClass::Int, 0)
    {
    }

    EmitResult
    emit()
    {
        const unsigned width = opts_.nativeWidth;
        if (!isPowerOf2(width) || width < 2 ||
            width > kernel_.maxWidth()) {
            fatal("native emission: width ", width,
                  " outside kernel's compiled range");
        }
        for (const VInst &v : kernel_.body()) {
            if (v.k == OpK::Perm && v.permBlock > width)
                fatal("native emission: permutation block ", v.permBlock,
                      " exceeds accelerator width ", width);
            if (v.k == OpK::Mask && v.maskBlock > width)
                fatal("native emission: mask block exceeds width");
            if (v.k == OpK::BinConst && v.lanes.size() > width)
                fatal("native emission: constant period exceeds width");
        }

        const int first = static_cast<int>(prog_.code().size());
        prog_.defineLabel(fnName_);

        for (const auto &acc : kernel_.accs()) {
            RegId reg =
                acc.isFloat ? sFltPool_.alloc() : sIntPool_.alloc();
            accRegs_.push_back(reg);
            prog_.addInst(
                Inst::movImm(reg, static_cast<std::int32_t>(acc.init)));
        }

        // Last-use positions for register reuse.
        const auto &body = kernel_.body();
        std::map<int, std::size_t> last_use;
        for (std::size_t i = 0; i < body.size(); ++i) {
            for (int opnd : {body[i].a, body[i].b}) {
                if (opnd >= 0)
                    last_use[opnd] = i;
            }
        }

        prog_.addInst(Inst::movImm(iv_, 0));
        const std::string top = fnName_ + "_top";
        prog_.defineLabel(top);

        for (std::size_t i = 0; i < body.size(); ++i) {
            emitInst(body[i]);
            for (auto it = regOf_.begin(); it != regOf_.end();) {
                auto lu = last_use.find(it->first);
                if (lu == last_use.end() || lu->second <= i) {
                    if (it->second.cls() == RegClass::Vec)
                        intPool_.release(it->second);
                    else
                        fltPool_.release(it->second);
                    it = regOf_.erase(it);
                } else {
                    ++it;
                }
            }
        }

        prog_.addInst(Inst::dpImm(Opcode::Add, iv_, iv_,
                                  static_cast<std::int32_t>(width)));
        prog_.addInst(Inst::cmpImm(
            iv_, static_cast<std::int32_t>(kernel_.tripCount())));
        prog_.addInst(Inst::branch(Cond::LT, -1, top));
        prog_.addInst(Inst::ret());

        EmitResult result;
        result.entryLabel = fnName_;
        result.instCount =
            static_cast<unsigned>(prog_.code().size()) - first;
        result.numStages = 1;
        result.accRegs = accRegs_;
        return result;
    }

  private:
    RegId
    allocFor(int value)
    {
        return kernel_.values()[value].isFloat ? fltPool_.alloc()
                                               : intPool_.alloc();
    }

    RegId
    reg(int value)
    {
        auto it = regOf_.find(value);
        LIQUID_ASSERT(it != regOf_.end(), "native: value not resident");
        return it->second;
    }

    void
    emitInst(const VInst &v)
    {
        switch (v.k) {
          case OpK::Load: {
            RegId r = allocFor(v.dst);
            prog_.addInst(Inst::load(
                opInfo(loadOpcode(v.elemSize, v.isSigned)).vectorEquiv,
                r, prog_.ref(v.array, iv_, v.disp)));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::Store:
            prog_.addInst(Inst::store(
                opInfo(storeOpcode(v.elemSize)).vectorEquiv, reg(v.a),
                prog_.ref(v.array, iv_, v.disp)));
            return;
          case OpK::Bin: {
            RegId r = allocFor(v.dst);
            prog_.addInst(Inst::dp(opInfo(v.op).vectorEquiv, r,
                                   reg(v.a), reg(v.b)));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::BinImm: {
            RegId r = allocFor(v.dst);
            prog_.addInst(Inst::dpImm(opInfo(v.op).vectorEquiv, r,
                                      reg(v.a), v.imm));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::BinConst: {
            RegId r = allocFor(v.dst);
            const std::uint32_t id = prog_.addCvec(ConstVec{v.lanes});
            prog_.addInst(Inst::dpCvec(opInfo(v.op).vectorEquiv, r,
                                       reg(v.a), id));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::Perm: {
            RegId r = allocFor(v.dst);
            prog_.addInst(
                Inst::vperm(r, reg(v.a), v.permKind, v.permBlock));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::Mask: {
            RegId r = allocFor(v.dst);
            prog_.addInst(
                Inst::vmask(r, reg(v.a), v.maskBits, v.maskBlock));
            regOf_[v.dst] = r;
            return;
          }
          case OpK::Red:
            prog_.addInst(Inst::vred(opInfo(v.op).reductionEquiv,
                                     accRegs_.at(v.acc), reg(v.a)));
            return;
          default:
            panic("unsupported vir op in native emitter");
        }
    }

    Program &prog_;
    const Kernel &kernel_;
    EmitOptions opts_;
    std::string fnName_;
    RegPool intPool_;
    RegPool fltPool_;
    RegPool sIntPool_;
    RegPool sFltPool_;
    RegId iv_;
    std::vector<RegId> accRegs_;
    std::map<int, RegId> regOf_;
};

} // namespace

EmitResult
emitKernel(Program &prog, const vir::Kernel &kernel,
           const EmitOptions &opts)
{
    kernel.validate();
    if (opts.mode == EmitOptions::Mode::Native)
        return NativeEmitter(prog, kernel, opts).emit();
    return ScalarEmitter(prog, kernel, opts).emit();
}

} // namespace liquid
