/**
 * @file
 * The prediction/measurement join between liquid-scan and liquid-lab.
 *
 * liquid-scan produces per-region, per-width static speedups from a
 * binary alone; liquid-lab measures whole-program cycles. This layer
 * connects the two: it aggregates scan reports into one predicted
 * speedup per (workload, width), tags lab results with that number
 * (`liquid-lab run --predict` writes it into the JSON so downstream
 * consumers join on the job key without re-running campaigns), and
 * computes the differential validation the ISSUE requires — predicted
 * and measured speedups must agree in rank order across widths for
 * every workload, with absolute errors reported but not gated (the
 * prediction is region-level, the measurement program-level, so
 * Amdahl dilution shifts magnitudes without reordering widths).
 */

#ifndef LIQUID_LAB_PREDICT_HH
#define LIQUID_LAB_PREDICT_HH

#include <map>
#include <string>
#include <vector>

#include "lab/results.hh"
#include "verifier/scan.hh"

namespace liquid::lab
{

/** Aggregate static prediction for one workload. */
struct WorkloadPrediction
{
    std::string workload;
    /**
     * Requested accelerator width -> aggregate predicted speedup over
     * the workload's committed regions (sum of predicted scalar
     * cycles / sum of predicted SIMD cycles). Widths where no region
     * commits are absent.
     */
    std::map<unsigned, double> speedupByWidth;
    /**
     * Requested width -> worst translation-proof verdict over the
     * workload's candidate regions ("proved"/"unknown"/"refuted").
     * Populated only when the scan ran with ScanOptions::prove.
     */
    std::map<unsigned, std::string> proofByWidth;
};

/**
 * Collapse one scan report into a per-width aggregate speedup: at
 * each requested width, candidate regions whose prediction verdict is
 * Ok contribute their cost-model scalar and SIMD cycles.
 */
std::map<unsigned, double>
aggregateScanSpeedups(const ScanReport &report);

/**
 * Collapse one scan report's translation-proof verdicts into a
 * per-width worst verdict: one refuted region poisons the width.
 * Empty unless the scan ran with ScanOptions::prove.
 */
std::map<unsigned, std::string>
aggregateScanProofs(const ScanReport &report);

/**
 * Scan workload @p name — built scalarized but with NO bl.simd hints,
 * so the scan discovers the regions itself — and aggregate. fatal()
 * on unknown workload names.
 */
WorkloadPrediction predictWorkload(const std::string &name,
                                   const ScanOptions &opts);

/** predictWorkload() over the paper's whole 15-benchmark suite. */
std::vector<WorkloadPrediction> predictSuite(const ScanOptions &opts);

/**
 * Tag every Liquid-mode result in @p set whose (workload, width) has
 * a prediction. Returns the number of results tagged.
 */
unsigned tagPredictions(ResultSet &set,
                        const std::vector<WorkloadPrediction> &preds);

/** One joined (workload, width) pair. */
struct ValidationRow
{
    std::string workload;
    unsigned width = 0;
    double predicted = 0.0;   ///< scan aggregate speedup
    double measured = 0.0;    ///< scalar cycles / liquid cycles
    std::string jobKey;       ///< measured liquid job joined on
};

/** The differential verdict. */
struct ValidationSummary
{
    std::vector<ValidationRow> rows;

    /**
     * Measured rows rejected from the join because they ran on the
     * functional tier (`/fun` job keys): those results carry retired
     * instructions but no cycle clock, so a speedup join would divide
     * by an absent stat. The first few offending keys are kept for
     * the diagnostic.
     */
    unsigned rejectedFunctional = 0;
    std::vector<std::string> rejectedFunctionalKeys;

    /** Same-workload width pairs with both values present. */
    unsigned comparablePairs = 0;
    /** Pairs where prediction and measurement strictly disagree on
     *  which width is faster (ties on either side never count). */
    unsigned discordantPairs = 0;

    double meanAbsError = 0.0;
    double maxAbsError = 0.0;

    bool rankAgreement() const { return discordantPairs == 0; }

    json::Value toJson() const;
};

/**
 * Join @p preds against measured lab results: each Liquid, non-ideal,
 * default-config result with a matching prediction pairs with its
 * ScalarBaseline twin (same experiment/workload/reps) to form one
 * ValidationRow; rank concordance is then checked per workload across
 * widths.
 */
ValidationSummary
validatePredictions(const std::vector<WorkloadPrediction> &preds,
                    const ResultSet &measured);

} // namespace liquid::lab

#endif // LIQUID_LAB_PREDICT_HH
