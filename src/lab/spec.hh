/**
 * @file
 * Declarative experiment specs for the lab orchestration subsystem.
 *
 * An ExperimentMatrix is a set of ExperimentSpecs; each spec expands a
 * cartesian product of (workload x ExecMode x width x config override
 * x rep count) into independent Jobs. A Job is pure data: everything a
 * worker thread needs to build the program and SystemConfig from
 * scratch, so jobs can run in any order on any thread and still
 * produce identical results. The canonical Job::key() both names the
 * result in the JSON output and seeds the job's deterministic RNG.
 */

#ifndef LIQUID_LAB_SPEC_HH
#define LIQUID_LAB_SPEC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fast/tier.hh"
#include "sim/system.hh"

namespace liquid::lab
{

/** FNV-1a over a string: job keys -> RNG seeds, content hashes. */
std::uint64_t fnv1a(const std::string &text,
                    std::uint64_t seed = 0xcbf29ce484222325ull);

/** Human-readable ExecMode name used in job keys and JSON. */
const char *modeName(ExecMode mode);

/** Parse a modeName(); fatal() on unknown names. */
ExecMode modeFromName(const std::string &name);

/**
 * Optional deviations from the default SystemConfig. Every field that
 * is set contributes a component to the job key, so distinct
 * configurations can never collide in the result set or the cache.
 */
struct ConfigOverrides
{
    std::optional<unsigned> ucodeEntries;        ///< microcode cache slots
    std::optional<Cycles> translatorLatency;     ///< cycles / observed inst
    std::optional<std::size_t> dcacheSizeBytes;  ///< data cache capacity
    std::optional<unsigned> dcacheAssoc;         ///< data cache ways
    /**
     * Fault-injection schedule as a canonical FaultSchedule key
     * ("p700", "int@200+flush@400", ...). Replaces the retired
     * interruptPeriod override; legacy results files carrying
     * "interruptPeriod": N are read back as faults = "pN".
     */
    std::optional<std::string> faults;

    /** Key suffix, e.g. "/e4" or "/lat10/dc4096"; empty if default. */
    std::string tag() const;

    /** Apply on top of a mode/width-coupled config. */
    void applyTo(SystemConfig &config) const;

    bool
    operator==(const ConfigOverrides &o) const
    {
        return ucodeEntries == o.ucodeEntries &&
               translatorLatency == o.translatorLatency &&
               dcacheSizeBytes == o.dcacheSizeBytes &&
               dcacheAssoc == o.dcacheAssoc && faults == o.faults;
    }
};

/** One independent unit of simulation work. */
struct Job
{
    std::string experiment;  ///< spec name, e.g. "fig6"
    std::string workload;    ///< suite benchmark name, e.g. "fir"
    ExecMode mode = ExecMode::Liquid;
    unsigned width = 8;      ///< SIMD lanes; 0 for ScalarBaseline
    unsigned repsOverride = 0;  ///< 0 = workload default
    /**
     * "Ideal" run for the paper's Figure 6 callout: run once to
     * translate, then run again with the microcode cache warm-started,
     * modelling built-in ISA support. Both runs happen inside this one
     * job so it stays independent of every other job.
     */
    bool warmStart = false;
    /**
     * Execution tier: the cycle core (timing + architectural state) or
     * the functional interpreter (architectural state only; cycle-shaped
     * results are absent, not zero). Functional excludes Liquid mode
     * (no translator), warmStart and cycle-periodic fault schedules.
     */
    fast::ExecTier tier = fast::ExecTier::Cycle;
    ConfigOverrides over;

    /**
     * Canonical identity, e.g. "fig6/fir/liquid/w8/ideal" or
     * "fast/fir/native/w8/fun". Stable across runs, threads and
     * platforms; results are sorted by it.
     */
    std::string key() const;

    /** Deterministic per-job RNG seed, derived from the key. */
    std::uint64_t rngSeed() const { return fnv1a(key()); }

    /** The full SystemConfig this job simulates. */
    SystemConfig config() const;
};

/** One named sweep; expands to jobs. */
struct ExperimentSpec
{
    std::string name;
    /** Suite benchmark names; empty = the whole 15-benchmark suite. */
    std::vector<std::string> workloads;
    std::vector<ExecMode> modes{ExecMode::Liquid};
    /** Ignored for ScalarBaseline (recorded as width 0). */
    std::vector<unsigned> widths{8};
    /**
     * Execution-tier axis. Functional-tier jobs are only generated for
     * non-Liquid modes (the functional interpreter has no translator);
     * a tier list of {Cycle, Functional} over a mode list containing
     * Liquid simply skips the impossible combination.
     */
    std::vector<fast::ExecTier> tiers{fast::ExecTier::Cycle};
    /** Config override axis; empty = the default configuration. */
    std::vector<ConfigOverrides> overrides;
    /** Rep-count axis; empty = the workload default. */
    std::vector<unsigned> repsList;
    /** Add a warm-started Liquid job per (workload, override, reps). */
    bool includeIdeal = false;
    unsigned idealWidth = 8;

    /** Expand into jobs (deduplicated by key, declaration order). */
    std::vector<Job> expand() const;
};

/** A full experiment campaign. */
struct ExperimentMatrix
{
    std::vector<ExperimentSpec> specs;

    /** All specs' jobs, deduplicated by key. */
    std::vector<Job> expand() const;
};

/** Names of the paper's 15-benchmark suite, in suite order. */
std::vector<std::string> suiteWorkloadNames();

} // namespace liquid::lab

#endif // LIQUID_LAB_SPEC_HH
