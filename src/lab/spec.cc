#include "lab/spec.hh"

#include <set>

#include "common/logging.hh"
#include "workloads/workload.hh"

namespace liquid::lab
{

std::uint64_t
fnv1a(const std::string &text, std::uint64_t seed)
{
    std::uint64_t h = seed;
    for (unsigned char c : text) {
        h ^= c;
        h *= 0x100000001b3ull;
    }
    return h;
}

const char *
modeName(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ScalarBaseline:
        return "scalar";
      case ExecMode::Liquid:
        return "liquid";
      case ExecMode::NativeSimd:
        return "native";
    }
    panic("unknown ExecMode");
}

ExecMode
modeFromName(const std::string &name)
{
    if (name == "scalar")
        return ExecMode::ScalarBaseline;
    if (name == "liquid")
        return ExecMode::Liquid;
    if (name == "native")
        return ExecMode::NativeSimd;
    fatal("unknown execution mode '", name, "'");
}

std::string
ConfigOverrides::tag() const
{
    std::string t;
    if (ucodeEntries)
        t += "/e" + std::to_string(*ucodeEntries);
    if (translatorLatency)
        t += "/lat" + std::to_string(*translatorLatency);
    if (dcacheSizeBytes)
        t += "/dc" + std::to_string(*dcacheSizeBytes);
    if (dcacheAssoc)
        t += "/da" + std::to_string(*dcacheAssoc);
    // Schedule keys are path-safe and '/'-free by construction, so the
    // job key stays parseable.
    if (faults)
        t += "/f" + *faults;
    return t;
}

void
ConfigOverrides::applyTo(SystemConfig &config) const
{
    if (ucodeEntries)
        config.ucodeCache.entries = *ucodeEntries;
    if (translatorLatency)
        config.translator.latencyPerInst = *translatorLatency;
    if (dcacheSizeBytes)
        config.core.dcache.sizeBytes = *dcacheSizeBytes;
    if (dcacheAssoc)
        config.core.dcache.assoc = *dcacheAssoc;
    if (faults)
        config.core.faults = FaultSchedule::parse(*faults);
}

std::string
Job::key() const
{
    std::string k = experiment + '/' + workload + '/' + modeName(mode);
    if (mode != ExecMode::ScalarBaseline)
        k += "/w" + std::to_string(width);
    // The cycle tier is the historic default and stays untagged so
    // every pre-tier job key (and baseline file) remains valid.
    if (tier == fast::ExecTier::Functional)
        k += "/fun";
    k += over.tag();
    if (repsOverride)
        k += "/reps" + std::to_string(repsOverride);
    if (warmStart)
        k += "/ideal";
    return k;
}

SystemConfig
Job::config() const
{
    SystemConfig config = SystemConfig::make(mode, width);
    over.applyTo(config);
    return config;
}

std::vector<Job>
ExperimentSpec::expand() const
{
    const std::vector<std::string> wls =
        workloads.empty() ? suiteWorkloadNames() : workloads;
    const std::vector<ConfigOverrides> overs =
        overrides.empty() ? std::vector<ConfigOverrides>{{}} : overrides;
    const std::vector<unsigned> reps =
        repsList.empty() ? std::vector<unsigned>{0} : repsList;

    std::vector<Job> jobs;
    std::set<std::string> seen;
    auto add = [&](Job job) {
        if (seen.insert(job.key()).second)
            jobs.push_back(std::move(job));
    };

    for (const auto &wl : wls) {
        for (const auto &over : overs) {
            for (unsigned rep : reps) {
                for (ExecMode mode : modes) {
                    // The baseline has no accelerator: the width axis
                    // collapses to one job recorded at width 0.
                    const std::vector<unsigned> ws =
                        mode == ExecMode::ScalarBaseline
                            ? std::vector<unsigned>{0}
                            : widths;
                    for (unsigned w : ws) {
                        for (fast::ExecTier tier : tiers) {
                            // The functional interpreter has neither a
                            // translator nor a microcode cache: Liquid
                            // mode exists only on the cycle tier.
                            if (tier == fast::ExecTier::Functional &&
                                mode == ExecMode::Liquid)
                                continue;
                            Job job;
                            job.experiment = name;
                            job.workload = wl;
                            job.mode = mode;
                            job.width = w;
                            job.repsOverride = rep;
                            job.tier = tier;
                            job.over = over;
                            add(std::move(job));
                        }
                    }
                }
                if (includeIdeal) {
                    Job job;
                    job.experiment = name;
                    job.workload = wl;
                    job.mode = ExecMode::Liquid;
                    job.width = idealWidth;
                    job.repsOverride = rep;
                    job.warmStart = true;
                    job.over = over;
                    add(std::move(job));
                }
            }
        }
    }
    return jobs;
}

std::vector<Job>
ExperimentMatrix::expand() const
{
    std::vector<Job> jobs;
    std::set<std::string> seen;
    for (const auto &spec : specs) {
        for (auto &job : spec.expand()) {
            if (seen.insert(job.key()).second)
                jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

std::vector<std::string>
suiteWorkloadNames()
{
    std::vector<std::string> names;
    for (const auto &wl : makeSuite())
        names.push_back(wl->name());
    return names;
}

} // namespace liquid::lab
