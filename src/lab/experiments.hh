/**
 * @file
 * The standard paper-evaluation campaigns, declared once and shared by
 * the liquid-lab CLI and the ported bench binaries: Figure 6 speedups
 * (+ virtualization-overhead callout), the microcode-cache capacity
 * sweep, the translation-latency sweep and the data-cache sweep. Each
 * campaign also has a renderer that reproduces the classic text table
 * (including the paper shape checks) from a ResultSet, so the human
 * tables are now a pure function of the machine-readable JSON.
 */

#ifndef LIQUID_LAB_EXPERIMENTS_HH
#define LIQUID_LAB_EXPERIMENTS_HH

#include <ostream>
#include <string>
#include <vector>

#include "lab/results.hh"
#include "lab/spec.hh"

namespace liquid::lab
{

/** One named campaign: specs to run and a renderer for the results. */
struct Campaign
{
    std::string name;        ///< CLI name, e.g. "fig6"
    std::string outputFile;  ///< e.g. "BENCH_fig6.json"
    ExperimentMatrix matrix;
    /** Render paper tables + shape checks; false = a check failed. */
    bool (*render)(std::ostream &os, const ResultSet &results);
};

/**
 * All standard campaigns. @p smoke shrinks every workload to 2 outer
 * reps and drops the expensive Figure 6 call-count callout — the
 * configuration CI runs and the committed baseline is generated from.
 */
std::vector<Campaign> standardCampaigns(bool smoke);

/** Campaign by name; fatal() listing the choices on a miss. */
Campaign campaignByName(const std::string &name, bool smoke);

// Individual renderers (used by the ported bench binaries).
bool renderFig6(std::ostream &os, const ResultSet &results);
bool renderUcacheSweep(std::ostream &os, const ResultSet &results);
bool renderLatencySweep(std::ostream &os, const ResultSet &results);
bool renderCacheSweep(std::ostream &os, const ResultSet &results);
bool renderChaos(std::ostream &os, const ResultSet &results);
bool renderFast(std::ostream &os, const ResultSet &results);

} // namespace liquid::lab

#endif // LIQUID_LAB_EXPERIMENTS_HH
