/**
 * @file
 * Structured results for the lab subsystem: every finished Job becomes
 * a JobResult carrying the full RunOutcome (cycles, flattened
 * StatGroup counters, call log); a ResultSet serializes them to the
 * machine-readable BENCH_*.json files that the paper-table renderers,
 * the regression gate and CI consume. Serialization is deterministic:
 * results are sorted by canonical job key and numbers format
 * identically across platforms, so the same matrix produces
 * byte-identical JSON at any --jobs count.
 */

#ifndef LIQUID_LAB_RESULTS_HH
#define LIQUID_LAB_RESULTS_HH

#include <string>
#include <vector>

#include "common/json.hh"
#include "lab/lab.hh"
#include "lab/spec.hh"

namespace liquid::lab
{

/**
 * Results file schema identifier. v2 added the execution-tier axis:
 * functional-tier jobs carry "tier": "functional" and OMIT the
 * cycle-shaped fields (cycles, translations, aborts, ucodeDispatches,
 * retranslations, callLog) — absent, not zero. v1 files (all jobs
 * cycle-tier, fields always present) are still read back.
 */
inline constexpr const char *resultsSchema = "liquid-lab-results-v2";
inline constexpr const char *resultsSchemaV1 = "liquid-lab-results-v1";

/** One job's identity plus everything its simulation produced. */
struct JobResult
{
    Job job;
    RunOutcome outcome;
    /**
     * liquid-scan's static speedup prediction for this job's workload
     * at this job's width (0 = untagged). Written by `liquid-lab run
     * --predict` so `liquid-scan --validate` can join prediction and
     * measurement on the job key without re-running the campaign.
     */
    double predictedSpeedup = 0.0;
    /**
     * Translation-proof verdict backing the prediction ("proved",
     * "unknown", "refuted"; empty = untagged). Written by
     * `liquid-lab run --predict --prove`.
     */
    std::string predictedProof;
    /** Served from the on-disk result cache (not serialized). */
    bool fromCache = false;

    json::Value toJson() const;
    static JobResult fromJson(const json::Value &v);

    /**
     * Deterministic fingerprint of the serialized result (fnv1a over
     * the canonical JSON; fromCache is excluded by construction).
     * Identical jobs produce identical outcomes, hence identical
     * digests — the serve subsystem's response-identity and
     * cache-soundness checks key on this.
     */
    std::uint64_t digest() const;
};

/** An ordered, key-addressable collection of job results. */
class ResultSet
{
  public:
    void add(JobResult result);

    /** Sort by canonical job key (serialization order). */
    void sortByKey();

    const std::vector<JobResult> &results() const { return results_; }
    /** Mutable access (the predict layer tags results in place). */
    std::vector<JobResult> &results() { return results_; }
    std::size_t size() const { return results_.size(); }

    /** Lookup by canonical key; nullptr when absent. */
    const JobResult *find(const std::string &key) const;

    /** Lookup by key; fatal() when absent. */
    const JobResult &at(const std::string &key) const;

    /**
     * Cycles of the job with @p key; fatal() when absent — including
     * when the job ran on the functional tier, whose results carry no
     * cycle counts at all (asking for one is a caller bug, not a zero).
     */
    Cycles cycles(const std::string &key) const;

    /** Serialize (sorted copy is NOT implied: call sortByKey first). */
    json::Value toJson() const;
    std::string writeString() const;
    void writeFile(const std::string &path) const;

    static ResultSet fromJson(const json::Value &v);
    static ResultSet readFile(const std::string &path);

  private:
    std::vector<JobResult> results_;
};

} // namespace liquid::lab

#endif // LIQUID_LAB_RESULTS_HH
