/**
 * @file
 * Content-addressed on-disk result cache for the lab runner.
 *
 * A job's cache key is a 128-bit hash over everything that determines
 * its outcome: the built program (disassembly, data image, constant
 * pool, symbols), the complete SystemConfig, the job's execution
 * procedure (single run vs warm-started ideal run) and the
 * repo-declared lab::modelVersion. Re-running a matrix therefore only
 * simulates configurations whose inputs actually changed; results are
 * stored as one JSON file per key, shareable across experiments that
 * happen to request identical simulations.
 */

#ifndef LIQUID_LAB_RESULT_CACHE_HH
#define LIQUID_LAB_RESULT_CACHE_HH

#include <optional>
#include <string>

#include "lab/lab.hh"
#include "lab/results.hh"

namespace liquid::lab
{

/**
 * Stable content hash of one job's simulation inputs. @p build must be
 * the exact Build the job would run.
 */
std::string contentHash(const Job &job, const Workload::Build &build,
                        const SystemConfig &config);

/** On-disk cache; an empty directory string disables it. */
class ResultCache
{
  public:
    explicit ResultCache(std::string dir);

    bool enabled() const { return !dir_.empty(); }
    const std::string &dir() const { return dir_; }

    /** Look up a previously stored outcome. */
    std::optional<RunOutcome> load(const std::string &hash) const;

    /** Persist an outcome under its content hash. */
    void store(const std::string &hash, const Job &job,
               const RunOutcome &outcome) const;

  private:
    std::string path(const std::string &hash) const;

    std::string dir_;
};

} // namespace liquid::lab

#endif // LIQUID_LAB_RESULT_CACHE_HH
