#include "lab/result_cache.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace liquid::lab
{

namespace
{

/**
 * Serialize every SystemConfig field. Exhaustive on purpose: a knob
 * missing here would let two different configurations share a cache
 * entry, silently serving wrong results.
 */
std::string
serializeConfig(const SystemConfig &c)
{
    std::ostringstream os;
    os << "mode=" << modeName(c.mode) << ";simdWidth=" << c.simdWidth
       << ";pretranslate=" << c.pretranslate
       << ";core.simdWidth=" << c.core.simdWidth
       << ";core.translationEnabled=" << c.core.translationEnabled
       << ";core.missPenalty=" << c.core.missPenalty
       << ";core.busBytesPerCycle=" << c.core.busBytesPerCycle
       << ";core.takenBranchPenalty=" << c.core.takenBranchPenalty
       << ";core.floatAddLatency=" << c.core.floatAddLatency
       << ";core.floatMulLatency=" << c.core.floatMulLatency
       << ";core.icache=" << c.core.icache.sizeBytes << '/'
       << c.core.icache.assoc << '/' << c.core.icache.lineSize
       << ";core.dcache=" << c.core.dcache.sizeBytes << '/'
       << c.core.dcache.assoc << '/' << c.core.dcache.lineSize
       << ";core.faults=" << c.core.faults.key()
       << ";core.sabotage=" << c.core.sabotageAbandonUcodeOnInterrupt
       << ";core.maxInsts=" << c.core.maxInsts
       << ";tr.simdWidth=" << c.translator.simdWidth
       << ";tr.permRepertoire=" << c.translator.permRepertoire
       << ";tr.maxUcodeInsts=" << c.translator.maxUcodeInsts
       << ";tr.requireHint=" << c.translator.requireHint
       << ";tr.latencyPerInst=" << c.translator.latencyPerInst
       << ";tr.blacklistOnAbort=" << c.translator.blacklistOnAbort
       << ";tr.widthFallback=" << c.translator.widthFallback
       << ";tr.collapseEnabled=" << c.translator.collapseEnabled
       << ";ucache.entries=" << c.ucodeCache.entries
       << ";ucache.maxInsts=" << c.ucodeCache.maxInsts;
    return os.str();
}

std::string
serializeProgram(const Program &prog)
{
    std::ostringstream os;
    for (const auto &inst : prog.code())
        os << inst.toString() << '\n';
    os << "#data\n";
    const auto &data = prog.dataImage();
    os.write(reinterpret_cast<const char *>(data.data()),
             static_cast<std::streamsize>(data.size()));
    os << "#cvecs\n";
    for (const auto &cv : prog.cvecPool()) {
        for (Word w : cv.lanes)
            os << w << ',';
        os << '\n';
    }
    os << "#symbols\n";
    for (const auto &[name, addr] : prog.symbols())
        os << name << '=' << addr << '\n';
    return os.str();
}

std::string
hex(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

} // namespace

std::string
contentHash(const Job &job, const Workload::Build &build,
            const SystemConfig &config)
{
    std::ostringstream os;
    os << "model=" << modelVersion << '\n'
       << "procedure=" << (job.warmStart ? "warmstart" : "single") << '\n'
       << "tier=" << fast::tierName(job.tier) << '\n'
       << serializeConfig(config) << '\n'
       << serializeProgram(build.prog);
    const std::string text = os.str();
    // Two independent FNV streams give a 128-bit key; with the model
    // version folded into the text, accidental collisions across the
    // matrix sizes we run are out of reach.
    const std::uint64_t lo = fnv1a(text);
    const std::uint64_t hi = fnv1a(text, 0x84222325cbf29ce4ull);
    return hex(hi) + hex(lo);
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    if (!dir_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(dir_, ec);
        if (ec)
            fatal("lab cache: cannot create '", dir_, "': ",
                  ec.message());
    }
}

std::string
ResultCache::path(const std::string &hash) const
{
    return dir_ + "/" + hash + ".json";
}

std::optional<RunOutcome>
ResultCache::load(const std::string &hash) const
{
    if (!enabled())
        return std::nullopt;
    std::ifstream in(path(hash), std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    const JobResult r =
        JobResult::fromJson(json::parse(text.str()).at("result"));
    return r.outcome;
}

void
ResultCache::store(const std::string &hash, const Job &job,
                   const RunOutcome &outcome) const
{
    if (!enabled())
        return;
    JobResult r;
    r.job = job;
    r.outcome = outcome;
    json::Value v = json::toolReport("liquid-lab-cache-v1", modelVersion);
    v.set("hash", hash);
    v.set("result", r.toJson());

    // Write-then-rename so a crashed run never leaves a torn entry
    // that a later run would half-parse.
    const std::string final = path(hash);
    const std::string tmp = final + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary);
        if (!os)
            fatal("lab cache: cannot write '", tmp, "'");
        os << v.toString();
    }
    std::error_code ec;
    std::filesystem::rename(tmp, final, ec);
    if (ec)
        fatal("lab cache: cannot commit '", final, "': ", ec.message());
}

} // namespace liquid::lab
