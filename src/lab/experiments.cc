#include "lab/experiments.hh"

#include <algorithm>
#include <iomanip>
#include <map>
#include <set>
#include <sstream>

#include "chaos/fault_schedule.hh"
#include "common/logging.hh"

namespace liquid::lab
{

namespace
{

// ---- campaign definitions -------------------------------------------------

std::vector<unsigned>
smokeReps(bool smoke)
{
    return smoke ? std::vector<unsigned>{2} : std::vector<unsigned>{};
}

ExperimentMatrix
fig6Matrix(bool smoke)
{
    ExperimentSpec main;
    main.name = "fig6";
    main.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    main.widths = {2, 4, 8, 16};
    main.repsList = smokeReps(smoke);
    main.includeIdeal = true;
    main.idealWidth = 8;

    // Native emission requires the accelerator to be at least as wide
    // as the widest permutation block (8 in several kernels), so the
    // native reference point runs at width 8 only -- the figure's
    // "built-in ISA" comparison, not a sweep.
    ExperimentSpec native;
    native.name = "fig6";
    native.modes = {ExecMode::NativeSimd};
    native.widths = {8};
    native.repsList = smokeReps(smoke);

    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(main));
    matrix.specs.push_back(std::move(native));

    if (!smoke) {
        // The callout: virtualization overhead vs hot-loop call count
        // on fir, the paper's worst case.
        ExperimentSpec callout;
        callout.name = "fig6_callout";
        callout.workloads = {"fir"};
        callout.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
        callout.widths = {8};
        callout.repsList = {24, 128, 512, 2048};
        callout.includeIdeal = true;
        callout.idealWidth = 8;
        matrix.specs.push_back(std::move(callout));
    }
    return matrix;
}

ExperimentMatrix
ucacheMatrix(bool smoke)
{
    ExperimentSpec spec;
    spec.name = "ucache";
    spec.modes = {ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = smokeReps(smoke);
    for (unsigned entries : {1u, 2u, 4u, 8u, 16u}) {
        ConfigOverrides over;
        over.ucodeEntries = entries;
        spec.overrides.push_back(over);
    }
    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(spec));
    return matrix;
}

ExperimentMatrix
latencyMatrix(bool smoke)
{
    ExperimentSpec spec;
    spec.name = "latency";
    spec.modes = {ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = smokeReps(smoke);
    for (Cycles lat : {0u, 1u, 10u, 50u, 200u}) {
        ConfigOverrides over;
        over.translatorLatency = lat;
        spec.overrides.push_back(over);
    }
    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(spec));
    return matrix;
}

ExperimentMatrix
cacheMatrix(bool smoke)
{
    ExperimentSpec spec;
    spec.name = "cache";
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = smokeReps(smoke);
    for (std::size_t bytes :
         {std::size_t{4} * 1024, std::size_t{16} * 1024,
          std::size_t{64} * 1024, std::size_t{256} * 1024}) {
        ConfigOverrides over;
        over.dcacheSizeBytes = bytes;
        over.dcacheAssoc = 64;
        spec.overrides.push_back(over);
    }
    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(spec));
    return matrix;
}

/**
 * Chaos campaign: the whole suite in Liquid mode under one schedule
 * per fault kind (plus the legacy periodic interrupt and a fault-free
 * control). Address-free events pick their deterministic default
 * victims, so the same schedule works for every workload. Retire
 * indices are small enough to land inside even the smoke-sized runs.
 */
const std::vector<std::string> &
chaosScheduleKeys()
{
    static const std::vector<std::string> keys = {
        "p700",      // legacy periodic interrupt
        "int@40",    // one-shot interrupt
        "flush@80",  // context-switch microcode flush
        "evict@60",  // LRU microcode eviction
        "smc@100",   // self-modifying-code invalidation
        "dcache@50", // data-cache perturbation (timing-only)
    };
    return keys;
}

/**
 * Fast campaign: the whole suite in scalar and native modes on BOTH
 * execution tiers. The renderer's shape check is retired-instruction
 * parity — the functional interpreter must retire exactly as many
 * instructions as the cycle core for every (workload, mode), the
 * coarse architectural agreement the lockstep harness refines
 * per-retire. The cycle/functional wall-clock ratio feeds the
 * committed BENCH_fast.json throughput baseline (liquid-fast --bench).
 */
ExperimentMatrix
fastMatrix(bool smoke)
{
    ExperimentSpec spec;
    spec.name = "fast";
    spec.modes = {ExecMode::ScalarBaseline, ExecMode::NativeSimd};
    spec.widths = {8};
    spec.tiers = {fast::ExecTier::Cycle, fast::ExecTier::Functional};
    spec.repsList = smokeReps(smoke);
    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(spec));
    return matrix;
}

ExperimentMatrix
chaosMatrix(bool smoke)
{
    ExperimentSpec spec;
    spec.name = "chaos";
    spec.modes = {ExecMode::Liquid};
    spec.widths = {8};
    spec.repsList = smokeReps(smoke);
    spec.overrides.push_back(ConfigOverrides{});  // fault-free control
    for (const std::string &key : chaosScheduleKeys()) {
        ConfigOverrides over;
        over.faults = key;
        spec.overrides.push_back(over);
    }
    ExperimentMatrix matrix;
    matrix.specs.push_back(std::move(spec));
    return matrix;
}

// ---- rendering helpers ----------------------------------------------------

/** Fixed-width column printer (negative width = left-aligned). */
void
cell(std::ostream &os, int width, const std::string &text)
{
    if (width < 0)
        os << std::left << std::setw(-width) << text << std::right;
    else
        os << std::setw(width) << text;
}

std::string
fmt(double value, int precision = 2)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

/** Results of one experiment, grouped per workload in suite order. */
std::vector<std::pair<std::string, std::vector<const JobResult *>>>
groupByWorkload(const ResultSet &results, const std::string &experiment)
{
    std::vector<std::pair<std::string, std::vector<const JobResult *>>>
        groups;
    for (const auto &name : suiteWorkloadNames()) {
        std::vector<const JobResult *> jobs;
        for (const auto &r : results.results()) {
            if (r.job.experiment == experiment && r.job.workload == name)
                jobs.push_back(&r);
        }
        if (!jobs.empty())
            groups.emplace_back(name, std::move(jobs));
    }
    return groups;
}

const JobResult *
pick(const std::vector<const JobResult *> &jobs, ExecMode mode,
     unsigned width, bool ideal = false,
     const ConfigOverrides *over = nullptr, unsigned reps = 0,
     fast::ExecTier tier = fast::ExecTier::Cycle)
{
    for (const JobResult *r : jobs) {
        if (r->job.mode != mode || r->job.warmStart != ideal)
            continue;
        if (r->job.tier != tier)
            continue;
        if (mode != ExecMode::ScalarBaseline && r->job.width != width)
            continue;
        if (over && !(r->job.over == *over))
            continue;
        if (reps && r->job.repsOverride != reps)
            continue;
        if (!reps && over == nullptr && r->job.over.tag() != "")
            continue;
        return r;
    }
    return nullptr;
}

} // namespace

// ---- renderers ------------------------------------------------------------

bool
renderFig6(std::ostream &os, const ResultSet &results)
{
    os << "=== Figure 6: speedup vs scalar baseline (one Liquid "
          "binary per benchmark) ===\n\n";
    const std::vector<std::pair<std::string, int>> cols = {
        {"benchmark", -14}, {"W=2", 8},    {"W=4", 8},
        {"W=8", 8},         {"W=16", 8},   {"nat8", 9},
        {"ideal8", 9},      {"overhead", 10}};
    std::size_t total = 0;
    for (const auto &[name, width] : cols) {
        cell(os, width, name);
        total += static_cast<std::size_t>(width < 0 ? -width : width);
    }
    os << '\n' << std::string(total, '-') << '\n';

    double best_speedup = 0, worst_speedup = 1e9;
    std::string best_name, worst_name;
    double m2d_w8 = 0, m2d_w16 = 0;
    bool sawAny = false;

    for (const auto &[name, jobs] : groupByWorkload(results, "fig6")) {
        const JobResult *base = pick(jobs, ExecMode::ScalarBaseline, 0);
        if (!base)
            continue;
        sawAny = true;
        const double baseCycles =
            static_cast<double>(base->outcome.cycles);
        auto speedup = [&](const JobResult *r) {
            return r ? baseCycles /
                           static_cast<double>(r->outcome.cycles)
                     : 0.0;
        };

        cell(os, -14, name);
        double w8 = 0, w16 = 0;
        for (unsigned width : {2u, 4u, 8u, 16u}) {
            const double s =
                speedup(pick(jobs, ExecMode::Liquid, width));
            cell(os, 8, fmt(s));
            if (width == 8)
                w8 = s;
            if (width == 16)
                w16 = s;
        }
        const double nat8 =
            speedup(pick(jobs, ExecMode::NativeSimd, 8));
        const double ideal8 =
            speedup(pick(jobs, ExecMode::Liquid, 8, true));
        cell(os, 9, fmt(nat8));
        cell(os, 9, fmt(ideal8));
        cell(os, 10, fmt(ideal8 - w8, 4));
        os << '\n';

        if (w16 > best_speedup) {
            best_speedup = w16;
            best_name = name;
        }
        if (w16 < worst_speedup) {
            worst_speedup = w16;
            worst_name = name;
        }
        if (name == "mpeg2dec") {
            m2d_w8 = w8;
            m2d_w16 = w16;
        }
    }
    if (!sawAny)
        fatal("renderFig6: no fig6 jobs in the result set");

    const bool bestOk = best_name == "fir";
    const bool worstOk = worst_name == "179.art";
    const bool flatOk = m2d_w16 <= m2d_w8 * 1.05;
    os << "\nShape checks vs the paper:\n"
       << "  highest speedup: " << best_name << " (paper: fir)  -> "
       << (bestOk ? "match" : "MISMATCH") << '\n'
       << "  lowest speedup:  " << worst_name
       << " (paper: 179.art) -> " << (worstOk ? "match" : "MISMATCH")
       << '\n'
       << "  mpeg2dec flat 8->16 (paper: 8-element loops): "
       << fmt(m2d_w8) << " -> " << fmt(m2d_w16) << "  "
       << (flatOk ? "match" : "MISMATCH") << '\n'
       << "  per-run overhead columns above are bounded by first-call "
          "amortization at our small rep counts\n";

    // Callout: overhead vs call count (present in full runs only).
    const auto callout = groupByWorkload(results, "fig6_callout");
    if (!callout.empty()) {
        os << "\n=== Callout: virtualization overhead vs hot-loop "
              "call count (fir) ===\n\n";
        for (const auto &[name, width] :
             std::vector<std::pair<std::string, int>>{
                 {"calls", 8}, {"liquid", 10}, {"ideal", 10},
                 {"overhead", 10}})
            cell(os, width, name);
        os << '\n' << std::string(38, '-') << '\n';
        const auto &jobs = callout.front().second;
        for (unsigned reps : {24u, 128u, 512u, 2048u}) {
            const JobResult *base = pick(jobs, ExecMode::ScalarBaseline,
                                         0, false, nullptr, reps);
            const JobResult *liquid = pick(jobs, ExecMode::Liquid, 8,
                                           false, nullptr, reps);
            const JobResult *ideal = pick(jobs, ExecMode::Liquid, 8,
                                          true, nullptr, reps);
            if (!base || !liquid || !ideal)
                continue;
            const double b = static_cast<double>(base->outcome.cycles);
            const double s_liquid =
                b / static_cast<double>(liquid->outcome.cycles);
            const double s_ideal =
                b / static_cast<double>(ideal->outcome.cycles);
            cell(os, 8, std::to_string(reps));
            cell(os, 10, fmt(s_liquid, 3));
            cell(os, 10, fmt(s_ideal, 3));
            cell(os, 10, fmt(s_ideal - s_liquid, 4));
            os << '\n';
        }
        os << "\n(overhead ~ 1/calls; the paper's full-application "
              "run corresponds to the bottom of this sweep)\n";
    }
    return bestOk && worstOk && flatOk;
}

bool
renderUcacheSweep(std::ostream &os, const ResultSet &results)
{
    os << "=== Ablation: microcode cache capacity (paper: 8 entries x "
          "64 instructions = 2 KB) ===\n\n";
    const unsigned sizes[] = {1, 2, 4, 8, 16};

    cell(os, -14, "benchmark");
    for (unsigned entries : sizes)
        cell(os, 10, "e=" + std::to_string(entries));
    os << '\n' << std::string(64, '-') << '\n';

    std::map<unsigned, double> total;
    for (const auto &[name, jobs] : groupByWorkload(results, "ucache")) {
        cell(os, -14, name);
        for (unsigned entries : sizes) {
            ConfigOverrides over;
            over.ucodeEntries = entries;
            const JobResult *r =
                pick(jobs, ExecMode::Liquid, 8, false, &over);
            if (!r)
                fatal("renderUcacheSweep: missing e=", entries,
                      " job for ", name);
            cell(os, 10, std::to_string(r->outcome.cycles));
            total[entries] += static_cast<double>(r->outcome.cycles);
        }
        os << '\n';
    }

    os << "\nSuite totals:\n";
    for (unsigned entries : sizes) {
        os << "  " << entries << " entries: "
           << static_cast<Cycles>(total[entries]) << " cycles\n";
    }
    const bool captured = total[8] <= total[16] * 1.001;
    os << "\n8 entries capture the working set (no gain at 16): "
       << (captured ? "yes" : "NO") << '\n';
    return captured;
}

bool
renderLatencySweep(std::ostream &os, const ResultSet &results)
{
    os << "=== Ablation: translation latency per observed scalar "
          "instruction ===\n\n";
    const Cycles latencies[] = {0, 1, 10, 50, 200};

    cell(os, -14, "benchmark");
    for (Cycles lat : latencies)
        cell(os, 10, "lat=" + std::to_string(lat));
    os << '\n' << std::string(64, '-') << '\n';

    std::map<Cycles, double> total;
    for (const auto &[name, jobs] :
         groupByWorkload(results, "latency")) {
        cell(os, -14, name);
        for (Cycles lat : latencies) {
            ConfigOverrides over;
            over.translatorLatency = lat;
            const JobResult *r =
                pick(jobs, ExecMode::Liquid, 8, false, &over);
            if (!r)
                fatal("renderLatencySweep: missing lat=", lat,
                      " job for ", name);
            cell(os, 10, std::to_string(r->outcome.cycles));
            total[lat] += static_cast<double>(r->outcome.cycles);
        }
        os << '\n';
    }

    os << "\nSuite totals:\n";
    for (Cycles lat : latencies) {
        os << "  " << lat
           << " cycles/inst: " << static_cast<Cycles>(total[lat])
           << '\n';
    }
    const double at1 = 100.0 * (total[1] / total[0] - 1.0);
    const double at10 = 100.0 * (total[10] / total[0] - 1.0);
    os << "\nSlowdown vs free translation: " << fmt(at1, 3)
       << "% at 1 cycle/inst (paper's design: negligible), "
       << fmt(at10, 2) << "% at 10 cycles/inst\n";
    return at1 < 0.5;
}

bool
renderCacheSweep(std::ostream &os, const ResultSet &results)
{
    os << "=== Ablation: Liquid speedup (W=8) vs data cache size "
          "===\n\n";
    const std::size_t sizes[] = {4 * 1024, 16 * 1024, 64 * 1024,
                                 256 * 1024};

    cell(os, -14, "benchmark");
    for (std::size_t bytes : sizes)
        cell(os, 8, std::to_string(bytes / 1024) + "KB");
    os << '\n' << std::string(46, '-') << '\n';

    for (const auto &[name, jobs] : groupByWorkload(results, "cache")) {
        cell(os, -14, name);
        for (std::size_t bytes : sizes) {
            ConfigOverrides over;
            over.dcacheSizeBytes = bytes;
            over.dcacheAssoc = 64;
            const JobResult *base = pick(jobs, ExecMode::ScalarBaseline,
                                         0, false, &over);
            const JobResult *liquid =
                pick(jobs, ExecMode::Liquid, 8, false, &over);
            if (!base || !liquid)
                fatal("renderCacheSweep: missing ", bytes,
                      "B jobs for ", name);
            cell(os, 8,
                 fmt(static_cast<double>(base->outcome.cycles) /
                     static_cast<double>(liquid->outcome.cycles)));
        }
        os << '\n';
    }

    os << "\n179.art's speedup tracks cache size (the paper's "
          "explanation for its last place); compute-bound benchmarks "
          "like fir barely move.\n";
    return true;
}

bool
renderChaos(std::ostream &os, const ResultSet &results)
{
    os << "=== Chaos: fault-schedule injection across the suite "
          "(Liquid, W=8) ===\n\n";
    const auto &schedules = chaosScheduleKeys();

    cell(os, -14, "benchmark");
    cell(os, 10, "none");
    for (const auto &key : schedules)
        cell(os, 11, key);
    os << '\n' << std::string(14 + 10 + 11 * schedules.size(), '-')
       << '\n';

    // Suite-wide tallies the shape checks run on.
    std::map<std::string, std::uint64_t> kindFired;
    std::uint64_t retranslations = 0;
    bool sawAny = false, missing = false;

    for (const auto &[name, jobs] : groupByWorkload(results, "chaos")) {
        sawAny = true;
        cell(os, -14, name);
        const JobResult *control = pick(jobs, ExecMode::Liquid, 8);
        cell(os, 10,
             control ? std::to_string(control->outcome.cycles) : "?");
        if (!control)
            missing = true;
        for (const auto &key : schedules) {
            ConfigOverrides over;
            over.faults = key;
            const JobResult *r =
                pick(jobs, ExecMode::Liquid, 8, false, &over);
            if (!r) {
                cell(os, 11, "?");
                missing = true;
                continue;
            }
            cell(os, 11, std::to_string(r->outcome.cycles));
            retranslations += r->outcome.retranslations;
            for (const auto &[stat, value] : r->outcome.counters) {
                if (stat.rfind("core.faults.", 0) == 0)
                    kindFired[stat.substr(12)] += value;
            }
        }
        os << '\n';
    }
    if (!sawAny)
        fatal("renderChaos: no chaos jobs in the result set");

    // Shape checks: every fault kind must actually fire somewhere in
    // the suite, and cache-loss events must force re-translations.
    bool allKinds = true;
    os << "\nFault kinds fired across the suite:\n";
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(FaultKind::NumKinds); ++k) {
        const char *kindName =
            faultKindName(static_cast<FaultKind>(k));
        const std::uint64_t fired = kindFired[kindName];
        os << "  " << std::left << std::setw(8) << kindName
           << std::right << fired << (fired ? "" : "  MISSING")
           << '\n';
        if (!fired)
            allKinds = false;
    }
    os << "re-translations after microcode loss: " << retranslations
       << (retranslations ? "" : "  MISSING") << '\n';
    if (missing)
        os << "some (workload, schedule) jobs were MISSING\n";
    return allKinds && retranslations > 0 && !missing;
}

bool
renderFast(std::ostream &os, const ResultSet &results)
{
    os << "=== Fast: functional-tier retired-instruction parity "
          "(per-retire agreement lives in liquid-fast) ===\n\n";
    const std::vector<std::pair<std::string, int>> cols = {
        {"benchmark", -14}, {"scalar/cyc", 12}, {"scalar/fun", 12},
        {"parity", 8},      {"nat8/cyc", 12},   {"nat8/fun", 12},
        {"parity", 8}};
    std::size_t total = 0;
    for (const auto &[name, width] : cols) {
        cell(os, width, name);
        total += static_cast<std::size_t>(width < 0 ? -width : width);
    }
    os << '\n' << std::string(total, '-') << '\n';

    // Retired counts live under different stat groups per tier: the
    // cycle core's "core.insts" against the interpreter's "fast.insts".
    auto insts = [](const JobResult *r) -> std::uint64_t {
        if (!r)
            return 0;
        const char *stat =
            r->job.tier == fast::ExecTier::Functional ? "fast.insts"
                                                      : "core.insts";
        auto it = r->outcome.counters.find(stat);
        return it == r->outcome.counters.end() ? 0 : it->second;
    };

    bool sawAny = false, allParity = true, missing = false;
    for (const auto &[name, jobs] : groupByWorkload(results, "fast")) {
        sawAny = true;
        cell(os, -14, name);
        for (ExecMode mode :
             {ExecMode::ScalarBaseline, ExecMode::NativeSimd}) {
            const JobResult *cyc = pick(jobs, mode, 8);
            const JobResult *fun = pick(jobs, mode, 8, false, nullptr,
                                        0, fast::ExecTier::Functional);
            if (!cyc || !fun)
                missing = true;
            const std::uint64_t ci = insts(cyc), fi = insts(fun);
            const bool parity = cyc && fun && ci == fi && ci > 0;
            cell(os, 12, cyc ? std::to_string(ci) : "?");
            cell(os, 12, fun ? std::to_string(fi) : "?");
            cell(os, 8, parity ? "ok" : "DIVERGE");
            if (!parity)
                allParity = false;
        }
        os << '\n';
    }
    if (!sawAny)
        fatal("renderFast: no fast jobs in the result set");

    os << "\nRetired-instruction parity across the suite: "
       << (allParity ? "yes" : "NO") << '\n';
    if (missing)
        os << "some (workload, mode, tier) jobs were MISSING\n";
    os << "(functional results carry no cycle counts: cycle-shaped "
          "stats are absent under that tier, never zero)\n";
    return allParity && !missing;
}

// ---- campaign registry ----------------------------------------------------

std::vector<Campaign>
standardCampaigns(bool smoke)
{
    return {
        {"fig6", "BENCH_fig6.json", fig6Matrix(smoke), renderFig6},
        {"ucache", "BENCH_ucache.json", ucacheMatrix(smoke),
         renderUcacheSweep},
        {"latency", "BENCH_latency.json", latencyMatrix(smoke),
         renderLatencySweep},
        {"cache", "BENCH_cache.json", cacheMatrix(smoke),
         renderCacheSweep},
        {"chaos", "BENCH_chaos.json", chaosMatrix(smoke), renderChaos},
        {"fast", "BENCH_fast.json", fastMatrix(smoke), renderFast},
    };
}

Campaign
campaignByName(const std::string &name, bool smoke)
{
    std::string known;
    for (auto &campaign : standardCampaigns(smoke)) {
        if (campaign.name == name)
            return campaign;
        known += (known.empty() ? "" : ", ") + campaign.name;
    }
    fatal("unknown experiment '", name, "' (known: ", known, ")");
}

} // namespace liquid::lab
