#include "lab/results.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "fast/tier.hh"

namespace liquid::lab
{

json::Value
JobResult::toJson() const
{
    json::Value v = json::Value::object();
    v.set("key", job.key());
    v.set("experiment", job.experiment);
    v.set("workload", job.workload);
    v.set("mode", modeName(job.mode));
    v.set("width", job.width);
    if (job.tier == fast::ExecTier::Functional)
        v.set("tier", fast::tierName(job.tier));
    if (job.repsOverride)
        v.set("reps", job.repsOverride);
    if (job.warmStart)
        v.set("ideal", true);

    json::Value over = json::Value::object();
    if (job.over.ucodeEntries)
        over.set("ucodeEntries", *job.over.ucodeEntries);
    if (job.over.translatorLatency)
        over.set("translatorLatency",
                 static_cast<std::uint64_t>(*job.over.translatorLatency));
    if (job.over.dcacheSizeBytes)
        over.set("dcacheSizeBytes",
                 static_cast<std::uint64_t>(*job.over.dcacheSizeBytes));
    if (job.over.dcacheAssoc)
        over.set("dcacheAssoc", *job.over.dcacheAssoc);
    if (job.over.faults)
        over.set("faults", *job.over.faults);
    if (!over.members().empty())
        v.set("overrides", std::move(over));

    if (predictedSpeedup > 0.0)
        v.set("predictedSpeedup", predictedSpeedup);
    if (!predictedProof.empty())
        v.set("predictedProof", predictedProof);

    // Functional-tier outcomes have no cycle clock: every cycle-shaped
    // field is omitted entirely (absent, not zero).
    if (outcome.hasCycles) {
        v.set("cycles", outcome.cycles);
        v.set("translations", outcome.translations);
        v.set("aborts", outcome.aborts);
        v.set("ucodeDispatches", outcome.ucodeDispatches);
        v.set("retranslations", outcome.retranslations);
    }

    json::Value counters = json::Value::object();
    for (const auto &[stat, value] : outcome.counters)
        counters.set(stat, value);
    v.set("counters", std::move(counters));

    if (outcome.hasCycles) {
        json::Value callLog = json::Value::object();
        for (const auto &[addr, cycles] : outcome.callLog) {
            json::Value arr = json::Value::array();
            for (Cycles c : cycles)
                arr.push(json::Value(c));
            callLog.set(std::to_string(addr), std::move(arr));
        }
        v.set("callLog", std::move(callLog));
    }
    return v;
}

std::uint64_t
JobResult::digest() const
{
    return fnv1a(toJson().toString(0));
}

JobResult
JobResult::fromJson(const json::Value &v)
{
    JobResult r;
    bool legacy_faults = false;
    r.job.experiment = v.at("experiment").asString();
    r.job.workload = v.at("workload").asString();
    r.job.mode = modeFromName(v.at("mode").asString());
    r.job.width = static_cast<unsigned>(v.at("width").asUint());
    // Tolerant read: v1 files predate the tier axis (all cycle-tier).
    if (const json::Value *tier = v.find("tier"))
        r.job.tier = fast::tierFromName(tier->asString());
    if (const json::Value *reps = v.find("reps"))
        r.job.repsOverride = static_cast<unsigned>(reps->asUint());
    if (const json::Value *ideal = v.find("ideal"))
        r.job.warmStart = ideal->asBool();
    if (const json::Value *over = v.find("overrides")) {
        if (const json::Value *e = over->find("ucodeEntries"))
            r.job.over.ucodeEntries = static_cast<unsigned>(e->asUint());
        if (const json::Value *l = over->find("translatorLatency"))
            r.job.over.translatorLatency = l->asUint();
        if (const json::Value *s = over->find("dcacheSizeBytes"))
            r.job.over.dcacheSizeBytes =
                static_cast<std::size_t>(s->asUint());
        if (const json::Value *a = over->find("dcacheAssoc"))
            r.job.over.dcacheAssoc = static_cast<unsigned>(a->asUint());
        if (const json::Value *f = over->find("faults"))
            r.job.over.faults = f->asString();
        // Deprecated spelling from pre-chaos result files: a bare
        // periodic-interrupt override maps onto its schedule key.
        if (const json::Value *p = over->find("interruptPeriod")) {
            r.job.over.faults = "p" + std::to_string(p->asUint());
            legacy_faults = true;
        }
    }

    // Keys from legacy files predate the "/f<schedule>" tag the
    // mapped faults override would add, so validate those against the
    // untagged spelling.
    const std::string key = v.at("key").asString();
    bool key_ok = key == r.job.key();
    if (!key_ok && legacy_faults) {
        Job untagged = r.job;
        untagged.over.faults.reset();
        key_ok = key == untagged.key();
    }
    if (!key_ok)
        fatal("results: job key '", key, "' does not match its fields (",
              r.job.key(), ")");

    if (const json::Value *p = v.find("predictedSpeedup"))
        r.predictedSpeedup = p->asDouble();
    if (const json::Value *p = v.find("predictedProof"))
        r.predictedProof = p->asString();

    if (r.job.tier == fast::ExecTier::Functional) {
        // Cycle-shaped fields are absent by construction; a functional
        // result that carries them anyway is malformed.
        r.outcome.hasCycles = false;
        if (v.find("cycles"))
            fatal("results: functional-tier job '", key,
                  "' carries a 'cycles' field (cycle stats are absent "
                  "under the functional tier, never zero)");
    } else {
        r.outcome.cycles = v.at("cycles").asUint();
        r.outcome.translations = v.at("translations").asUint();
        r.outcome.aborts = v.at("aborts").asUint();
        r.outcome.ucodeDispatches = v.at("ucodeDispatches").asUint();
        // Tolerant read: the field postdates committed baseline files.
        if (const json::Value *rt = v.find("retranslations"))
            r.outcome.retranslations = rt->asUint();
        for (const auto &[addr, cycles] : v.at("callLog").members()) {
            std::vector<Cycles> log;
            for (const auto &c : cycles.items())
                log.push_back(c.asUint());
            r.outcome.callLog[static_cast<Addr>(std::stoul(addr))] =
                std::move(log);
        }
    }
    for (const auto &[stat, value] : v.at("counters").members())
        r.outcome.counters[stat] = value.asUint();
    return r;
}

void
ResultSet::add(JobResult result)
{
    results_.push_back(std::move(result));
}

void
ResultSet::sortByKey()
{
    std::sort(results_.begin(), results_.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.job.key() < b.job.key();
              });
}

const JobResult *
ResultSet::find(const std::string &key) const
{
    for (const auto &r : results_) {
        if (r.job.key() == key)
            return &r;
    }
    return nullptr;
}

const JobResult &
ResultSet::at(const std::string &key) const
{
    const JobResult *r = find(key);
    if (!r)
        fatal("results: no job '", key, "'");
    return *r;
}

Cycles
ResultSet::cycles(const std::string &key) const
{
    const JobResult &r = at(key);
    if (!r.outcome.hasCycles)
        fatal("results: job '", key,
              "' ran on the functional tier; cycle counts are absent "
              "(not zero) — run the job on the cycle tier to get one");
    return r.outcome.cycles;
}

json::Value
ResultSet::toJson() const
{
    json::Value v = json::toolReport(resultsSchema, modelVersion);
    json::Value jobs = json::Value::array();
    for (const auto &r : results_)
        jobs.push(r.toJson());
    v.set("jobs", std::move(jobs));
    return v;
}

std::string
ResultSet::writeString() const
{
    return toJson().toString();
}

void
ResultSet::writeFile(const std::string &path) const
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("results: cannot write '", path, "'");
    os << writeString();
}

ResultSet
ResultSet::fromJson(const json::Value &v)
{
    const std::string schema = v.at("schema").asString();
    if (schema != resultsSchema && schema != resultsSchemaV1)
        fatal("results: unsupported schema '", schema, "' (expected '",
              resultsSchema, "' or legacy '", resultsSchemaV1, "')");
    ResultSet set;
    for (const auto &job : v.at("jobs").items())
        set.add(JobResult::fromJson(job));
    return set;
}

ResultSet
ResultSet::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("results: cannot open '", path, "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromJson(json::parse(text.str()));
}

} // namespace liquid::lab
