/**
 * @file
 * Work-stealing parallel job runner.
 *
 * Jobs are dealt round-robin onto per-worker deques; each worker pops
 * from the front of its own deque and, when empty, steals from the
 * back of a victim's. Every worker constructs its own Systems (see
 * lab.hh for the thread-safety audit), and each result is written into
 * a slot preallocated for its job index, so the finished ResultSet —
 * sorted by canonical key — is bit-identical regardless of thread
 * count or schedule.
 */

#ifndef LIQUID_LAB_RUNNER_HH
#define LIQUID_LAB_RUNNER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "lab/result_cache.hh"
#include "lab/results.hh"
#include "lab/spec.hh"

namespace liquid::lab
{

/** Orchestration counters for one Runner::run call. */
struct RunnerStats
{
    std::uint64_t jobs = 0;         ///< jobs executed in total
    std::uint64_t simulations = 0;  ///< jobs that actually simulated
    std::uint64_t cacheHits = 0;    ///< jobs served from the cache
    std::uint64_t steals = 0;       ///< jobs taken from another worker
};

class Runner
{
  public:
    /** @p jobs worker threads; 0 = hardware concurrency. */
    explicit Runner(unsigned jobs);

    unsigned workers() const { return workers_; }

    /**
     * Run every job (through @p cache when non-null) and return the
     * results sorted by key. Progress callback, when set, is invoked
     * serially under a lock as jobs finish.
     */
    ResultSet run(const std::vector<Job> &jobs,
                  const ResultCache *cache = nullptr,
                  RunnerStats *stats = nullptr,
                  std::function<void(const JobResult &)> progress = {});

  private:
    unsigned workers_;
};

} // namespace liquid::lab

#endif // LIQUID_LAB_RUNNER_HH
