#include "lab/lab.hh"

#include "common/logging.hh"
#include "fast/fast.hh"

namespace liquid::lab
{

namespace
{

/** Flatten one StatGroup into the outcome's counter map. */
void
snapshot(const StatGroup &group, RunOutcome &out)
{
    for (const auto &[stat, value] : group)
        out.counters[group.name() + '.' + stat] = value;
}

RunOutcome
harvest(System &sys)
{
    RunOutcome out;
    out.cycles = sys.cycles();
    out.ucodeDispatches = sys.core().stats().get("ucodeDispatches");
    snapshot(sys.core().stats(), out);
    snapshot(sys.core().icache().stats(), out);
    snapshot(sys.core().dcache().stats(), out);
    if (sys.config().mode == ExecMode::Liquid) {
        out.translations = sys.translator().stats().get("translations");
        out.aborts = sys.translator().stats().get("aborts");
        out.retranslations =
            sys.translator().stats().get("retranslations");
        snapshot(sys.translator().stats(), out);
        snapshot(sys.ucodeCache().stats(), out);
    }
    out.callLog = sys.core().takeCallLog();
    return out;
}

/** Emission mode matching an execution mode. */
EmitOptions::Mode
buildMode(ExecMode mode)
{
    switch (mode) {
      case ExecMode::ScalarBaseline:
        return EmitOptions::Mode::InlineScalar;
      case ExecMode::Liquid:
        return EmitOptions::Mode::Scalarized;
      case ExecMode::NativeSimd:
        return EmitOptions::Mode::Native;
    }
    panic("unknown ExecMode");
}

/**
 * Functional-tier job execution: run the threaded-dispatch interpreter
 * (fast/fast.hh) instead of a System. Retire-keyed fault events still
 * fire; everything cycle-shaped is absent from the outcome
 * (hasCycles = false), not zero.
 */
RunOutcome
runFunctional(const Job &job, const Workload::Build &build)
{
    if (job.mode == ExecMode::Liquid)
        fatal("lab: job '", job.key(),
              "': the functional tier has no translator or microcode "
              "cache; liquid mode requires the cycle tier");
    if (job.warmStart)
        fatal("lab: job '", job.key(),
              "': warm-start models microcode-cache residency, which "
              "the functional tier does not have");

    const SystemConfig config = job.config();
    fast::FastConfig fc;
    fc.simdWidth = config.core.simdWidth;
    fc.faults = config.core.faults;  // pN rejected by FastInterp
    fc.maxInsts = config.core.maxInsts;

    MainMemory mem = MainMemory::forProgram(build.prog);
    fast::FastInterp interp(fc, build.prog, mem);
    interp.run();

    RunOutcome out;
    out.hasCycles = false;
    snapshot(interp.stats(), out);
    return out;
}

} // namespace

RunOutcome
runOnce(const Workload::Build &build, const SystemConfig &config)
{
    System sys(config, build.prog);
    sys.run();
    return harvest(sys);
}

Workload::Build
buildJob(const Job &job)
{
    std::unique_ptr<Workload> wl;
    for (auto &candidate : makeSuite()) {
        if (candidate->name() == job.workload)
            wl = std::move(candidate);
    }
    if (!wl)
        fatal("lab: unknown workload '", job.workload, "'");
    if (job.repsOverride)
        wl->setReps(job.repsOverride);
    return wl->build(buildMode(job.mode), job.width ? job.width : 8);
}

RunOutcome
runBuilt(const Job &job, const Workload::Build &build)
{
    if (job.tier == fast::ExecTier::Functional)
        return runFunctional(job, build);

    const SystemConfig config = job.config();

    if (!job.warmStart)
        return runOnce(build, config);

    // Figure 6 callout: model built-in ISA support by warm-starting
    // the microcode cache from a first translating run, so the second
    // run dispatches SIMD from the very first call.
    LIQUID_ASSERT(config.mode == ExecMode::Liquid,
                  "warmStart requires Liquid mode");
    System warmup(config, build.prog);
    warmup.run();
    System ideal(config, build.prog);
    ideal.ucodeCache().warmStartFrom(warmup.ucodeCache());
    ideal.run();
    return harvest(ideal);
}

RunOutcome
runJob(const Job &job)
{
    return runBuilt(job, buildJob(job));
}

} // namespace liquid::lab
