#include "lab/diff.hh"

#include <sstream>

namespace liquid::lab
{

std::string
DiffEntry::describe() const
{
    std::ostringstream os;
    if (metric == "missing") {
        os << key << ": present in baseline, missing from results";
        return os.str();
    }
    if (metric == "new") {
        os << key << ": not in baseline";
        return os.str();
    }
    os << key << ": " << metric << ' ' << baseline << " -> " << current
       << " (" << (relative >= 0 ? "+" : "")
       << static_cast<long long>(relative * 10000) / 100.0 << "%)";
    return os.str();
}

namespace
{

void
compareMetric(const std::string &key, const std::string &metric,
              double base, double cur, double tolerance,
              DiffReport &report)
{
    if (base == 0 && cur == 0)
        return;
    const double rel = base == 0 ? 1.0 : (cur - base) / base;
    DiffEntry e{key, metric, base, cur, rel};
    if (rel > tolerance)
        report.regressions.push_back(std::move(e));
    else if (rel < -tolerance)
        report.improvements.push_back(std::move(e));
}

} // namespace

DiffReport
diffResults(const ResultSet &baseline, const ResultSet &current,
            const DiffOptions &options)
{
    DiffReport report;

    for (const auto &base : baseline.results()) {
        const std::string key = base.job.key();
        const JobResult *cur = current.find(key);
        if (!cur) {
            report.regressions.push_back(DiffEntry{key, "missing", 0, 0, 0});
            continue;
        }
        ++report.jobsCompared;
        compareMetric(key, "cycles",
                      static_cast<double>(base.outcome.cycles),
                      static_cast<double>(cur->outcome.cycles),
                      options.cycleTolerance, report);
        for (const auto &[metric, tol] : options.counterTolerances) {
            auto lookup = [&](const RunOutcome &o) -> double {
                auto it = o.counters.find(metric);
                return it == o.counters.end()
                           ? 0.0
                           : static_cast<double>(it->second);
            };
            compareMetric(key, metric, lookup(base.outcome),
                          lookup(cur->outcome), tol, report);
        }
    }

    for (const auto &cur : current.results()) {
        if (!baseline.find(cur.job.key()))
            report.notes.push_back(
                DiffEntry{cur.job.key(), "new", 0, 0, 0});
    }
    return report;
}

} // namespace liquid::lab
