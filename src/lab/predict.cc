#include "lab/predict.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "scalarizer/scalarizer.hh"

namespace liquid::lab
{

std::map<unsigned, double>
aggregateScanSpeedups(const ScanReport &report)
{
    std::map<unsigned, double> scalar;
    std::map<unsigned, double> simd;
    for (const ScanRegion &region : report.regions) {
        if (!region.candidate)
            continue;
        for (const WidthPrediction &p : region.predictions) {
            if (p.report.verdict != Severity::Ok)
                continue;
            scalar[p.requestedWidth] += p.report.predictedScalarCycles;
            simd[p.requestedWidth] += p.report.predictedSimdCycles;
        }
    }
    std::map<unsigned, double> out;
    for (const auto &[w, sc] : scalar) {
        const double sd = simd[w];
        if (sd > 0.0)
            out[w] = sc / sd;
    }
    return out;
}

std::map<unsigned, std::string>
aggregateScanProofs(const ScanReport &report)
{
    // Worst verdict wins: one refuted region poisons the width.
    auto rank = [](const std::string &v) {
        if (v == "refuted")
            return 2;
        if (v == "unknown")
            return 1;
        return 0;  // proved
    };
    std::map<unsigned, std::string> out;
    for (const ScanRegion &region : report.regions) {
        if (!region.candidate)
            continue;
        for (const WidthPrediction &p : region.predictions) {
            if (p.report.proofVerdict.empty())
                continue;
            const auto it = out.find(p.requestedWidth);
            if (it == out.end() ||
                rank(p.report.proofVerdict) > rank(it->second))
                out[p.requestedWidth] = p.report.proofVerdict;
        }
    }
    return out;
}

WorkloadPrediction
predictWorkload(const std::string &name, const ScanOptions &opts)
{
    std::unique_ptr<Workload> wl;
    for (auto &candidate : makeSuite()) {
        if (candidate->name() == name)
            wl = std::move(candidate);
    }
    if (!wl)
        fatal("predict: unknown workload '", name, "'");

    // Scalarized, hints stripped: the scan must rediscover the
    // regions from the bl/ret convention alone.
    const Workload::Build build =
        wl->build(EmitOptions::Mode::Scalarized, 8, /*hinted=*/false);

    WorkloadPrediction pred;
    pred.workload = name;
    const ScanReport rep = scanProgram(build.prog, opts);
    pred.speedupByWidth = aggregateScanSpeedups(rep);
    pred.proofByWidth = aggregateScanProofs(rep);
    return pred;
}

std::vector<WorkloadPrediction>
predictSuite(const ScanOptions &opts)
{
    std::vector<WorkloadPrediction> preds;
    for (const std::string &name : suiteWorkloadNames())
        preds.push_back(predictWorkload(name, opts));
    return preds;
}

unsigned
tagPredictions(ResultSet &set,
               const std::vector<WorkloadPrediction> &preds)
{
    unsigned tagged = 0;
    for (JobResult &r : set.results()) {
        if (r.job.mode != ExecMode::Liquid)
            continue;
        for (const WorkloadPrediction &p : preds) {
            if (p.workload != r.job.workload)
                continue;
            auto it = p.speedupByWidth.find(r.job.width);
            if (it != p.speedupByWidth.end()) {
                r.predictedSpeedup = it->second;
                ++tagged;
            }
            auto pit = p.proofByWidth.find(r.job.width);
            if (pit != p.proofByWidth.end())
                r.predictedProof = pit->second;
        }
    }
    return tagged;
}

ValidationSummary
validatePredictions(const std::vector<WorkloadPrediction> &preds,
                    const ResultSet &measured)
{
    ValidationSummary out;

    for (const JobResult &r : measured.results()) {
        if (r.job.mode != ExecMode::Liquid || r.job.warmStart ||
            !(r.job.over == ConfigOverrides{}))
            continue;

        // Functional-tier rows have no cycle clock — joining them
        // would compare against an absent stat, not a zero. Reject
        // loudly instead of silently skipping.
        if (r.job.tier == fast::ExecTier::Functional) {
            ++out.rejectedFunctional;
            if (out.rejectedFunctionalKeys.size() < 4)
                out.rejectedFunctionalKeys.push_back(r.job.key());
            continue;
        }

        const WorkloadPrediction *pred = nullptr;
        for (const WorkloadPrediction &p : preds) {
            if (p.workload == r.job.workload)
                pred = &p;
        }
        if (!pred)
            continue;
        auto it = pred->speedupByWidth.find(r.job.width);
        if (it == pred->speedupByWidth.end())
            continue;

        // The scalar twin shares every key axis except mode/width;
        // tier is pinned to the cycle core so a functional-tier twin
        // can never sneak a zero-cycle denominator into the ratio.
        Job twin = r.job;
        twin.mode = ExecMode::ScalarBaseline;
        twin.width = 0;
        twin.warmStart = false;
        twin.tier = fast::ExecTier::Cycle;
        const JobResult *base = measured.find(twin.key());
        if (!base || r.outcome.cycles == 0 ||
            base->outcome.cycles == 0)
            continue;

        ValidationRow row;
        row.workload = r.job.workload;
        row.width = r.job.width;
        row.predicted = it->second;
        row.measured = static_cast<double>(base->outcome.cycles) /
                       static_cast<double>(r.outcome.cycles);
        row.jobKey = r.job.key();
        out.rows.push_back(std::move(row));
    }

    std::sort(out.rows.begin(), out.rows.end(),
              [](const ValidationRow &a, const ValidationRow &b) {
                  if (a.workload != b.workload)
                      return a.workload < b.workload;
                  return a.width < b.width;
              });

    double errSum = 0.0;
    for (const ValidationRow &row : out.rows) {
        const double err = std::fabs(row.predicted - row.measured);
        errSum += err;
        out.maxAbsError = std::max(out.maxAbsError, err);
    }
    if (!out.rows.empty())
        out.meanAbsError = errSum / static_cast<double>(out.rows.size());

    // Rank concordance per workload: a pair is discordant only when
    // both sides order the two widths strictly and oppositely. Ties
    // are common and meaningful (e.g. a width hint or trip count caps
    // the binding, so w8 and w16 measure identically) and never count
    // against agreement.
    constexpr double tol = 1e-6;
    for (std::size_t i = 0; i < out.rows.size(); ++i) {
        for (std::size_t j = i + 1; j < out.rows.size(); ++j) {
            const ValidationRow &a = out.rows[i];
            const ValidationRow &b = out.rows[j];
            if (a.workload != b.workload)
                continue;
            ++out.comparablePairs;
            const double dp = a.predicted - b.predicted;
            const double dm = a.measured - b.measured;
            if ((dp > tol && dm < -tol) || (dp < -tol && dm > tol))
                ++out.discordantPairs;
        }
    }
    return out;
}

json::Value
ValidationSummary::toJson() const
{
    json::Value v = json::Value::object();
    v.set("rankAgreement", rankAgreement());
    v.set("comparablePairs", comparablePairs);
    v.set("discordantPairs", discordantPairs);
    v.set("rejectedFunctional", rejectedFunctional);
    json::Value rejected = json::Value::array();
    for (const std::string &k : rejectedFunctionalKeys)
        rejected.push(k);
    v.set("rejectedFunctionalKeys", std::move(rejected));
    v.set("meanAbsError", meanAbsError);
    v.set("maxAbsError", maxAbsError);
    json::Value rowsJson = json::Value::array();
    for (const ValidationRow &row : rows) {
        json::Value r = json::Value::object();
        r.set("workload", row.workload);
        r.set("width", row.width);
        r.set("predicted", row.predicted);
        r.set("measured", row.measured);
        r.set("absError", std::fabs(row.predicted - row.measured));
        r.set("jobKey", row.jobKey);
        rowsJson.push(std::move(r));
    }
    v.set("rows", std::move(rowsJson));
    return v;
}

} // namespace liquid::lab
