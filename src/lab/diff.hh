/**
 * @file
 * Regression gate: compare a results file against a committed
 * baseline with per-metric relative tolerances. CI runs
 * `liquid-lab diff` after the smoke matrix; a cycle count that grew
 * past its tolerance, or a job missing from the new results, fails
 * the build.
 */

#ifndef LIQUID_LAB_DIFF_HH
#define LIQUID_LAB_DIFF_HH

#include <map>
#include <string>
#include <vector>

#include "lab/results.hh"

namespace liquid::lab
{

/** Tolerances, as relative fractions (0.02 = 2%). */
struct DiffOptions
{
    /** Cycles may grow by this much before failing. */
    double cycleTolerance = 0.02;
    /**
     * Per-metric overrides for counters beyond cycles; a metric listed
     * here is gated like cycles (named as in RunOutcome::counters,
     * e.g. "translator.aborts"). Direction: increases are regressions.
     */
    std::map<std::string, double> counterTolerances;
};

/** One metric excursion. */
struct DiffEntry
{
    std::string key;     ///< job key, or "" for set-level findings
    std::string metric;  ///< "cycles", counter name, or "missing"
    double baseline = 0;
    double current = 0;
    double relative = 0; ///< (current - baseline) / baseline

    std::string describe() const;
};

/** Outcome of one comparison. */
struct DiffReport
{
    std::vector<DiffEntry> regressions;   ///< gate failures
    std::vector<DiffEntry> improvements;  ///< beyond-tolerance gains
    std::vector<DiffEntry> notes;         ///< e.g. jobs new vs baseline
    std::uint64_t jobsCompared = 0;

    bool ok() const { return regressions.empty(); }
};

/** Compare @p current against @p baseline. */
DiffReport diffResults(const ResultSet &baseline,
                       const ResultSet &current,
                       const DiffOptions &options = {});

} // namespace liquid::lab

#endif // LIQUID_LAB_DIFF_HH
