#include "lab/runner.hh"

#include <atomic>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/logging.hh"

namespace liquid::lab
{

namespace
{

/** A mutex-guarded deque: owner pops the front, thieves the back. */
class WorkQueue
{
  public:
    void
    push(std::size_t jobIndex)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        deque_.push_back(jobIndex);
    }

    bool
    popFront(std::size_t &jobIndex)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (deque_.empty())
            return false;
        jobIndex = deque_.front();
        deque_.pop_front();
        return true;
    }

    bool
    stealBack(std::size_t &jobIndex)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (deque_.empty())
            return false;
        jobIndex = deque_.back();
        deque_.pop_back();
        return true;
    }

  private:
    std::mutex mutex_;
    std::deque<std::size_t> deque_;
};

} // namespace

Runner::Runner(unsigned jobs) : workers_(jobs)
{
    if (workers_ == 0) {
        workers_ = std::thread::hardware_concurrency();
        if (workers_ == 0)
            workers_ = 1;
    }
}

ResultSet
Runner::run(const std::vector<Job> &jobs, const ResultCache *cache,
            RunnerStats *stats,
            std::function<void(const JobResult &)> progress)
{
    const std::size_t n = jobs.size();
    const unsigned nw =
        static_cast<unsigned>(std::min<std::size_t>(workers_, std::max<std::size_t>(n, 1)));

    std::vector<JobResult> slots(n);
    std::vector<WorkQueue> queues(nw);
    for (std::size_t i = 0; i < n; ++i)
        queues[i % nw].push(i);

    std::atomic<std::uint64_t> simulations{0};
    std::atomic<std::uint64_t> cacheHits{0};
    std::atomic<std::uint64_t> steals{0};
    std::mutex progressMutex;
    std::mutex errorMutex;
    std::exception_ptr firstError;

    auto executeOne = [&](std::size_t index) {
        const Job &job = jobs[index];
        JobResult result;
        result.job = job;

        if (cache && cache->enabled()) {
            // Hash the exact simulation inputs: the program is built
            // here (cheap next to simulating it) so a changed workload
            // generator or scalarizer invalidates the entry even
            // though the declarative spec did not change.
            const Workload::Build build = buildJob(job);
            const std::string hash =
                contentHash(job, build, job.config());
            if (auto cached = cache->load(hash)) {
                result.outcome = std::move(*cached);
                result.fromCache = true;
                cacheHits.fetch_add(1, std::memory_order_relaxed);
            } else {
                result.outcome = runBuilt(job, build);
                simulations.fetch_add(1, std::memory_order_relaxed);
                cache->store(hash, job, result.outcome);
            }
        } else {
            result.outcome = runJob(job);
            simulations.fetch_add(1, std::memory_order_relaxed);
        }

        if (progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            progress(result);
        }
        slots[index] = std::move(result);
    };

    auto workerMain = [&](unsigned self) {
        try {
            std::size_t index = 0;
            while (true) {
                if (queues[self].popFront(index)) {
                    executeOne(index);
                    continue;
                }
                bool stole = false;
                for (unsigned v = 1; v < nw && !stole; ++v) {
                    const unsigned victim = (self + v) % nw;
                    if (queues[victim].stealBack(index)) {
                        steals.fetch_add(1,
                                         std::memory_order_relaxed);
                        executeOne(index);
                        stole = true;
                    }
                }
                if (!stole)
                    return;  // every queue drained
            }
        } catch (...) {
            std::lock_guard<std::mutex> lock(errorMutex);
            if (!firstError)
                firstError = std::current_exception();
        }
    };

    if (nw <= 1) {
        workerMain(0);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nw);
        for (unsigned w = 0; w < nw; ++w)
            threads.emplace_back(workerMain, w);
        for (auto &t : threads)
            t.join();
    }
    if (firstError)
        std::rethrow_exception(firstError);

    if (stats) {
        stats->jobs += n;
        stats->simulations += simulations.load();
        stats->cacheHits += cacheHits.load();
        stats->steals += steals.load();
    }

    ResultSet set;
    for (auto &slot : slots)
        set.add(std::move(slot));
    set.sortByKey();
    return set;
}

} // namespace liquid::lab
