/**
 * @file
 * Job execution for the lab orchestration subsystem: build a workload,
 * construct a private System, run it and snapshot everything the
 * results layer serializes. This is the single simulation entry point
 * shared by the lab runner, the ported bench binaries and the
 * bench_util.hh wrappers.
 *
 * Thread-safety: one runJob()/runOnce() call touches only state it
 * creates itself — the Program, MainMemory, caches, translator and
 * every StatGroup live inside the per-call System, there are no
 * mutable globals anywhere in src/ (logging reports errors by
 * throwing, the RNG is an explicitly seeded value type, and StatGroup
 * is move-only so a group cannot alias across Systems). Concurrent
 * calls from the Runner's worker threads are therefore safe, and
 * results are bit-identical regardless of thread count or schedule.
 */

#ifndef LIQUID_LAB_LAB_HH
#define LIQUID_LAB_LAB_HH

#include <map>
#include <string>

#include "lab/spec.hh"
#include "workloads/workload.hh"

namespace liquid::lab
{

/**
 * Simulator model version, part of every result-cache content hash:
 * bump it whenever a change alters simulated timing or statistics so
 * stale cached results can never be served for new model behaviour.
 */
inline constexpr const char *modelVersion = "liquid-sim-2026.08-3";

/** Everything harvested from one finished simulation. */
struct RunOutcome
{
    /**
     * False for functional-tier runs: there is no cycle clock, so
     * cycles and the other timing mirrors below are ABSENT — the
     * serializer omits them and ResultSet::cycles() refuses to serve
     * them — never reported as zero.
     */
    bool hasCycles = true;

    Cycles cycles = 0;

    // Convenience mirrors of the counters the paper tables use most.
    std::uint64_t translations = 0;
    std::uint64_t aborts = 0;
    std::uint64_t ucodeDispatches = 0;
    /** Re-commits after a loss/abort; per-reason breakdown lives in
     *  counters as "translator.retranslate.<reason>". */
    std::uint64_t retranslations = 0;

    /** Full StatGroup snapshot, flattened as "<group>.<stat>". */
    std::map<std::string, std::uint64_t> counters;

    /** Cycle of each bl per target (paper Table 6), moved out of the
     *  Core rather than copied. */
    std::map<Addr, std::vector<Cycles>> callLog;
};

/** Run @p build under @p config and harvest the outcome. */
RunOutcome runOnce(const Workload::Build &build,
                   const SystemConfig &config);

/**
 * Build the program a Job simulates: locate the workload in a private
 * copy of the suite, apply the rep override, emit for the job's mode.
 * Deterministic — the same Job always yields the same program, which
 * is what makes the content-addressed result cache sound.
 */
Workload::Build buildJob(const Job &job);

/**
 * Execute a job whose program is already built (twice with a
 * warm-started microcode cache for warmStart jobs).
 */
RunOutcome runBuilt(const Job &job, const Workload::Build &build);

/** buildJob + runBuilt. */
RunOutcome runJob(const Job &job);

} // namespace liquid::lab

#endif // LIQUID_LAB_LAB_HH
