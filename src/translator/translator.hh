/**
 * @file
 * Post-retirement dynamic translator (paper Section 4).
 *
 * The translator listens on the retire bus. When a bl into an outlined
 * function retires, it begins capturing; each retired scalar instruction
 * is pushed through the rule automaton of paper Table 3 to build SIMD
 * microcode. Multi-lane facts (permutation offset vectors, per-lane
 * constants, lane masks) are identified during the loop's first
 * iteration and collected/verified over the following iterations: lane
 * values accumulate in the per-register "previous values" state until
 * one full vector's worth is known, after which the permutation CAM and
 * constant pool are finalized and every later iteration is checked
 * against the prediction. Any mismatch — unknown opcode, unsupported
 * shuffle, trip count not a multiple of the accelerator width, external
 * interrupt — aborts translation (legality checks). On ret, the
 * microcode buffer is compacted (the paper's alignment network removes
 * collapsed offset loads) and written to the microcode cache.
 */

#ifndef LIQUID_TRANSLATOR_TRANSLATOR_HH
#define LIQUID_TRANSLATOR_TRANSLATOR_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hh"
#include "cpu/core.hh"
#include "memory/ucode_cache.hh"
#include "translator/abort_reason.hh"

namespace liquid
{

/** Translator configuration. */
struct TranslatorConfig
{
    /** Vector width (lanes) of the target SIMD accelerator. */
    unsigned simdWidth = 8;
    /**
     * The accelerator's shuffle opcode repertoire — the permutation
     * CAM only recognizes offset patterns the hardware can execute.
     * Models the paper's *functionality* evolution axis (ARM's SIMD
     * opcode count doubled between ISA v6 and v7): older generations
     * support fewer shuffles and transparently leave those loops
     * scalar.
     */
    PermRepertoire permRepertoire = allPerms;
    /** Abort regions whose microcode exceeds this (paper: 64). */
    unsigned maxUcodeInsts = 64;
    /** Only capture bl.simd-hinted regions (paper Section 3.5). */
    bool requireHint = true;
    /**
     * Translation throughput: cycles the translator needs per observed
     * scalar instruction. The translator runs concurrently with
     * execution off the retirement bus (paper Section 4), so the
     * microcode becomes fetchable at
     *   max(region end, region start + latencyPerInst * instructions),
     * i.e. a 1-cycle/instruction translator (the paper's assumption)
     * finishes essentially when the region's first execution returns.
     */
    Cycles latencyPerInst = 1;
    /** Never retry a region whose translation aborted. */
    bool blacklistOnAbort = true;

    /**
     * When a region cannot bind at the accelerator's full width (trip
     * count not a multiple of W, shuffle narrower than W), retry the
     * next call at half width: a W-lane accelerator can execute
     * narrower vector operations, so an 8-element loop still becomes
     * 8-wide microcode on 16-lane hardware (the paper's MPEG2 loops
     * are flat from width 8 to 16 rather than reverting to scalar).
     */
    bool widthFallback = true;

    /**
     * Enable the microcode buffer's alignment/collapse network that
     * removes tentative offset-array loads once a permutation or
     * constant replaces them. The paper notes removal "is not strictly
     * necessary for correctness" and costs buffer area; disabling it
     * models the cheaper buffer (bench_collapse_ablation).
     */
    bool collapseEnabled = true;
};

/** Hardware dynamic translator model. */
class Translator : public RetireSink
{
  public:
    Translator(const TranslatorConfig &config, const Program &prog,
               UcodeCache &cache);

    // RetireSink interface -------------------------------------------------
    void onCall(Addr callee_entry, bool hinted, unsigned width_hint,
                Cycles now) override;
    void onRetire(const RetireInfo &info, Cycles now) override;
    void onReturn(Cycles now) override;
    void onInterrupt(Cycles now) override;

    bool capturing() const { return mode_ != Mode::Idle; }
    bool isBlacklisted(Addr entry) const
    {
        return blacklist_.count(entry) != 0;
    }

    StatGroup &stats() { return stats_; }
    const StatGroup &stats() const { return stats_; }

    const TranslatorConfig &config() const { return config_; }

    /** Reason of the most recent abort (None if none has occurred). */
    AbortReason lastAbort() const { return lastAbort_; }

    /** Entry address of the capture in flight; invalidAddr when idle. */
    Addr captureRegion() const { return regionEntry_; }

    /**
     * An already-committed translation of @p entry was dropped from the
     * microcode cache for @p reason (context-switch flush, eviction,
     * SMC invalidation). Recorded so the next successful commit of the
     * region counts as a re-translation keyed by the causing reason.
     */
    void noteTranslationLost(Addr entry, AbortReason reason);

    /**
     * A store hit code in [lo, hi): forget blacklist and width-retry
     * decisions derived from the overwritten code, and abort any
     * capture whose region overlaps the range.
     */
    void noteCodeInvalidated(Addr lo, Addr hi, AbortReason reason);

  private:
    enum class Mode
    {
        Idle,     ///< not capturing
        Build,    ///< first pass through region code: emitting microcode
        Verify,   ///< inside a recognized loop, checking iterations 2..N
    };

    /** Per-register translation state (the paper's 56 bits/register). */
    struct RegState
    {
        enum class Kind : std::uint8_t
        {
            Unknown,
            Scalar,     ///< plain scalar value
            IndVar,     ///< induction-variable candidate (mov r, #c)
            Vector,     ///< virtualizes a vector register
            VecValues,  ///< offsets copied from a loaded value stream
        };
        Kind kind = Kind::Unknown;
        unsigned elemSize = 4;
        int stream = -1;        ///< value stream feeding this register
        int producerUcode = -1; ///< ucode slot of the vld that defined it
        RegId ivReg;            ///< VecValues: the IV it was combined with
        std::int32_t ivStep = 1;
    };

    /** Per-iteration values observed from one static load. */
    struct ValueStream
    {
        std::vector<Word> values;  ///< capped at simdWidth lanes
        int producerUcode = -1;    ///< tentative vld slot (collapsible)
        bool referenced = false;   ///< consumed as offsets/constants
    };

    /** Emitted microcode slot (pre-compaction buffer). */
    struct UcodeSlot
    {
        Inst inst;
        bool squashed = false;        ///< removed by the collapse network
        bool collapseCandidate = false;
        bool keep = false;            ///< has a real vector consumer
        bool loopVerified = false;
        bool needsLoop = false;       ///< must end up in a verified loop
        bool branchNeedsRemap = false; ///< inst.target is a static index
    };

    /** Deferred multi-lane finalization. */
    struct Patch
    {
        enum class Kind
        {
            PermLoad,   ///< vperm after a shuffled load
            PermStore,  ///< vperm before a shuffled store (inverse)
            CvecOrMask, ///< per-lane constant / lane mask operand
        };
        Kind kind;
        int ucodeIdx;
        int stream;
    };

    /** What to check when this static instruction retires again. */
    struct BuildNote
    {
        int stream = -1;       ///< append/verify the retired value
        bool checkAddr = false;
        bool isStore = false;
        Addr firstEa = 0;
        unsigned esize = 0;
        bool checkIv = false;
        Word ivFirst = 0;
        std::int32_t ivStep = 1;
    };

    /** Saturation idiom recognizer state. */
    struct IdiomState
    {
        int stage = 0;      ///< 0: none, 1..3: inside the idiom
        RegId reg;
        int defSlot = -1;   ///< ucode slot holding the vadd/vsub to patch
    };

    // Build-phase rule handlers.
    void build(const RetireInfo &info);
    void buildMov(const RetireInfo &info);
    void buildLoad(const RetireInfo &info);
    void buildStore(const RetireInfo &info);
    void buildDataProc(const RetireInfo &info);
    void buildCmp(const RetireInfo &info);
    void buildBranch(const RetireInfo &info);
    bool handleIdiom(const RetireInfo &info);

    // Verify-phase handler.
    void verify(const RetireInfo &info);
    void finalizeLoop();

    void commit(Cycles now);
    void abort(AbortReason reason);
    void resetCapture();

    RegState &state(RegId reg);
    int newStream(int producer_ucode);
    int emit(Inst inst, int static_idx);
    BuildNote &note(int static_idx);

    TranslatorConfig config_;
    const Program &prog_;
    UcodeCache &cache_;
    StatGroup stats_;

    Mode mode_ = Mode::Idle;
    Addr regionEntry_ = invalidAddr;
    Cycles regionStart_ = 0;
    std::uint64_t observedInsts_ = 0;
    /** Width this capture binds to (may be below the accelerator's). */
    unsigned captureWidth_ = 0;
    /** Regions that must retry at a reduced width. */
    std::map<Addr, unsigned> retryWidth_;
    /**
     * Regions whose translation was aborted or externally dropped, with
     * the causing reason; the next commit of such a region increments
     * "retranslations" and "retranslate.<reason>".
     */
    std::map<Addr, AbortReason> pendingRetranslate_;
    /** Most recent abort reason (survives resetCapture). */
    AbortReason lastAbort_ = AbortReason::None;

    std::vector<RegState> regs_;
    std::vector<ValueStream> streams_;
    std::vector<UcodeSlot> ucode_;
    std::vector<ConstVec> cvecs_;
    std::vector<Patch> patches_;
    std::map<int, int> ucodeStartOfStatic_;
    std::map<int, BuildNote> notes_;
    IdiomState idiom_;

    // Loop verification state.
    int loopStart_ = -1;       ///< static index of the loop head
    int loopEnd_ = -1;         ///< static index of the backedge branch
    int expectIdx_ = -1;       ///< next expected static index
    unsigned itersDone_ = 0;
    int loopUcodeStart_ = -1;

    std::set<Addr> blacklist_;
};

} // namespace liquid

#endif // LIQUID_TRANSLATOR_TRANSLATOR_HH
