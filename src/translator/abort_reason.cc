#include "translator/abort_reason.hh"

#include <array>

#include "common/logging.hh"

namespace liquid
{

namespace
{

/**
 * The single source of truth for everything rendered about a reason:
 * canonical name (stats keys, JSON), class, and the one-line
 * description shared by translator stats, verifier diagnostics and
 * the scan report.
 */
struct ReasonInfo
{
    AbortReason reason;
    const char *name;
    ReasonClass cls;
    const char *desc;
};

constexpr std::array<ReasonInfo,
                     static_cast<std::size_t>(AbortReason::NumReasons)>
    reasonTable{{
        {AbortReason::None, "none", ReasonClass::None,
         "translation committed"},

        {AbortReason::NestedCall, "nestedCall", ReasonClass::Structure,
         "a bl inside the region: outlined loops never nest calls"},
        {AbortReason::ForwardBranch, "forwardBranch",
         ReasonClass::Structure,
         "a forward branch inside the region body"},
        {AbortReason::RetInsideLoop, "retInsideLoop",
         ReasonClass::Structure,
         "a ret between the loop head and its back edge"},
        {AbortReason::BackedgeTargetUnseen, "backedgeTargetUnseen",
         ReasonClass::Structure,
         "the back edge targets an instruction the capture never saw"},
        {AbortReason::ShapeMismatch, "shapeMismatch",
         ReasonClass::Structure,
         "region shape outside the single-loop do-while format"},
        {AbortReason::VectorOutsideLoop, "vectorOutsideLoop",
         ReasonClass::Structure,
         "a convertible instruction before the loop body"},
        {AbortReason::DanglingBranch, "danglingBranch",
         ReasonClass::Structure,
         "a conditional branch with no in-region target"},
        {AbortReason::UnindexedInst, "unindexedInst",
         ReasonClass::Structure,
         "a loop-body instruction with no lane mapping"},
        {AbortReason::IdiomIncomplete, "idiomIncomplete",
         ReasonClass::Structure,
         "the region ended inside an unfinished idiom"},
        {AbortReason::UnfinalizedPatches, "unfinalizedPatches",
         ReasonClass::Structure,
         "microcode patches left unresolved at commit"},

        {AbortReason::VectorOpcode, "vectorOpcode", ReasonClass::Opcode,
         "an explicit vector instruction in scalar code"},
        {AbortReason::UntranslatableOpcode, "untranslatableOpcode",
         ReasonClass::Opcode,
         "an opcode outside the Table 1 conversion rules"},
        {AbortReason::ConditionalMov, "conditionalMov",
         ReasonClass::Opcode,
         "a conditional mov with no select equivalent"},
        {AbortReason::MovFromNonScalar, "movFromNonScalar",
         ReasonClass::Opcode,
         "mov source register carries per-lane state"},
        {AbortReason::LoadWithoutIndex, "loadWithoutIndex",
         ReasonClass::Opcode,
         "a loop-body load with no induction-variable index"},
        {AbortReason::LoadBadIndex, "loadBadIndex", ReasonClass::Opcode,
         "load index register is not the loop induction variable"},
        {AbortReason::StoreWithoutIndex, "storeWithoutIndex",
         ReasonClass::Opcode,
         "a loop-body store with no induction-variable index"},
        {AbortReason::StoreScalarData, "storeScalarData",
         ReasonClass::Opcode,
         "store data register holds a loop-invariant scalar"},
        {AbortReason::StoreBadIndex, "storeBadIndex",
         ReasonClass::Opcode,
         "store index register is not the loop induction variable"},
        {AbortReason::VectorCompare, "vectorCompare",
         ReasonClass::Opcode,
         "a compare on per-lane values (flags stay scalar)"},
        {AbortReason::UnsupportedReduction, "unsupportedReduction",
         ReasonClass::Opcode,
         "a cross-lane reduction outside the supported set"},
        {AbortReason::NoVectorEquivalent, "noVectorEquivalent",
         ReasonClass::Opcode,
         "the scalar opcode has no vector counterpart"},
        {AbortReason::VectorScalarMix, "vectorScalarMix",
         ReasonClass::Opcode,
         "an operation mixes per-lane and scalar operands"},
        {AbortReason::OffsetsInArithmetic, "offsetsInArithmetic",
         ReasonClass::Opcode,
         "permutation offsets flowed into lane arithmetic"},
        {AbortReason::IvArithmetic, "ivArithmetic", ReasonClass::Opcode,
         "the induction variable flowed into lane arithmetic"},

        {AbortReason::IdiomNoProducer, "idiomNoProducer",
         ReasonClass::Idiom,
         "saturation clamp with no tracked producer"},
        {AbortReason::IdiomShape, "idiomShape", ReasonClass::Idiom,
         "saturation idiom lost its compare/select shape"},
        {AbortReason::IdiomBadProducer, "idiomBadProducer",
         ReasonClass::Idiom,
         "saturation clamp bound to an unsupported producer"},

        {AbortReason::ValueTooWide, "valueTooWide",
         ReasonClass::Dataflow,
         "a loaded value too wide for per-lane tracking"},
        {AbortReason::AddressMismatch, "addressMismatch",
         ReasonClass::Dataflow,
         "lane addresses do not advance by one element per lane"},
        {AbortReason::IvMismatch, "ivMismatch", ReasonClass::Dataflow,
         "the induction variable did not step by one per iteration"},
        {AbortReason::MemoryDependence, "memoryDependence",
         ReasonClass::Dataflow,
         "a load and store overlap within the vector group"},

        {AbortReason::TripCount, "tripCount", ReasonClass::Width,
         "iteration count not divisible by the binding width"},
        {AbortReason::UnsupportedShuffle, "unsupportedShuffle",
         ReasonClass::Width,
         "offset pattern matches no vperm at this width"},
        {AbortReason::ValueMismatch, "valueMismatch",
         ReasonClass::Width,
         "lane values break the constant-vector period at this width"},
        {AbortReason::LanesIncomplete, "lanesIncomplete",
         ReasonClass::Width,
         "the capture ended before filling every lane"},

        {AbortReason::UcodeOverflow, "ucodeOverflow",
         ReasonClass::Capacity,
         "the microcode buffer overflowed"},

        {AbortReason::Interrupt, "interrupt", ReasonClass::Runtime,
         "an external interrupt flushed the capture"},
        {AbortReason::UcodeFlushed, "ucodeFlushed",
         ReasonClass::Runtime,
         "a context switch flushed the microcode cache"},
        {AbortReason::UcodeEvicted, "ucodeEvicted",
         ReasonClass::Runtime,
         "the cached translation was evicted from the microcode cache"},
        {AbortReason::SmcInvalidated, "smcInvalidated",
         ReasonClass::Runtime,
         "a store into the region's code invalidated its translation"},
    }};

/**
 * The table is indexed by the enum value; prove at compile time that
 * every enum value is covered, in order, so lookups never need a
 * runtime ordering check.
 */
constexpr bool
tableCoversEveryReason()
{
    for (std::size_t i = 0; i < reasonTable.size(); ++i) {
        if (static_cast<std::size_t>(reasonTable[i].reason) != i)
            return false;
        if (reasonTable[i].name == nullptr ||
            reasonTable[i].desc == nullptr)
            return false;
    }
    return true;
}

static_assert(reasonTable.size() ==
                  static_cast<std::size_t>(AbortReason::NumReasons),
              "abort-reason table must have one entry per enum value");
static_assert(tableCoversEveryReason(),
              "abort-reason table entries must appear in enum order "
              "with a name and description each");

const ReasonInfo &
info(AbortReason reason)
{
    const auto idx = static_cast<std::size_t>(reason);
    LIQUID_ASSERT(idx < reasonTable.size(), "bad abort reason");
    return reasonTable[idx];
}

} // namespace

const char *
abortReasonName(AbortReason reason)
{
    return info(reason).name;
}

const char *
abortReasonDescription(AbortReason reason)
{
    return info(reason).desc;
}

AbortReason
parseAbortReason(const std::string &name)
{
    for (const ReasonInfo &entry : reasonTable) {
        if (name == entry.name)
            return entry.reason;
    }
    return AbortReason::NumReasons;
}

ReasonClass
abortReasonClass(AbortReason reason)
{
    return info(reason).cls;
}

const char *
reasonClassName(ReasonClass cls)
{
    switch (cls) {
      case ReasonClass::None: return "none";
      case ReasonClass::Structure: return "structure";
      case ReasonClass::Opcode: return "opcode";
      case ReasonClass::Idiom: return "idiom";
      case ReasonClass::Dataflow: return "dataflow";
      case ReasonClass::Width: return "width";
      case ReasonClass::Capacity: return "capacity";
      case ReasonClass::Runtime: return "runtime";
    }
    panic("bad reason class");
}

} // namespace liquid
