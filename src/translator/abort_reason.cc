#include "translator/abort_reason.hh"

#include <array>

#include "common/logging.hh"

namespace liquid
{

namespace
{

struct ReasonInfo
{
    AbortReason reason;
    const char *name;
    ReasonClass cls;
};

constexpr std::array<ReasonInfo,
                     static_cast<std::size_t>(AbortReason::NumReasons)>
    reasonTable{{
        {AbortReason::None, "none", ReasonClass::None},

        {AbortReason::NestedCall, "nestedCall", ReasonClass::Structure},
        {AbortReason::ForwardBranch, "forwardBranch",
         ReasonClass::Structure},
        {AbortReason::RetInsideLoop, "retInsideLoop",
         ReasonClass::Structure},
        {AbortReason::BackedgeTargetUnseen, "backedgeTargetUnseen",
         ReasonClass::Structure},
        {AbortReason::ShapeMismatch, "shapeMismatch",
         ReasonClass::Structure},
        {AbortReason::VectorOutsideLoop, "vectorOutsideLoop",
         ReasonClass::Structure},
        {AbortReason::DanglingBranch, "danglingBranch",
         ReasonClass::Structure},
        {AbortReason::UnindexedInst, "unindexedInst",
         ReasonClass::Structure},
        {AbortReason::IdiomIncomplete, "idiomIncomplete",
         ReasonClass::Structure},
        {AbortReason::UnfinalizedPatches, "unfinalizedPatches",
         ReasonClass::Structure},

        {AbortReason::VectorOpcode, "vectorOpcode", ReasonClass::Opcode},
        {AbortReason::UntranslatableOpcode, "untranslatableOpcode",
         ReasonClass::Opcode},
        {AbortReason::ConditionalMov, "conditionalMov",
         ReasonClass::Opcode},
        {AbortReason::MovFromNonScalar, "movFromNonScalar",
         ReasonClass::Opcode},
        {AbortReason::LoadWithoutIndex, "loadWithoutIndex",
         ReasonClass::Opcode},
        {AbortReason::LoadBadIndex, "loadBadIndex", ReasonClass::Opcode},
        {AbortReason::StoreWithoutIndex, "storeWithoutIndex",
         ReasonClass::Opcode},
        {AbortReason::StoreScalarData, "storeScalarData",
         ReasonClass::Opcode},
        {AbortReason::StoreBadIndex, "storeBadIndex",
         ReasonClass::Opcode},
        {AbortReason::VectorCompare, "vectorCompare",
         ReasonClass::Opcode},
        {AbortReason::UnsupportedReduction, "unsupportedReduction",
         ReasonClass::Opcode},
        {AbortReason::NoVectorEquivalent, "noVectorEquivalent",
         ReasonClass::Opcode},
        {AbortReason::VectorScalarMix, "vectorScalarMix",
         ReasonClass::Opcode},
        {AbortReason::OffsetsInArithmetic, "offsetsInArithmetic",
         ReasonClass::Opcode},
        {AbortReason::IvArithmetic, "ivArithmetic", ReasonClass::Opcode},

        {AbortReason::IdiomNoProducer, "idiomNoProducer",
         ReasonClass::Idiom},
        {AbortReason::IdiomShape, "idiomShape", ReasonClass::Idiom},
        {AbortReason::IdiomBadProducer, "idiomBadProducer",
         ReasonClass::Idiom},

        {AbortReason::ValueTooWide, "valueTooWide",
         ReasonClass::Dataflow},
        {AbortReason::AddressMismatch, "addressMismatch",
         ReasonClass::Dataflow},
        {AbortReason::IvMismatch, "ivMismatch", ReasonClass::Dataflow},
        {AbortReason::MemoryDependence, "memoryDependence",
         ReasonClass::Dataflow},

        {AbortReason::TripCount, "tripCount", ReasonClass::Width},
        {AbortReason::UnsupportedShuffle, "unsupportedShuffle",
         ReasonClass::Width},
        {AbortReason::ValueMismatch, "valueMismatch",
         ReasonClass::Width},
        {AbortReason::LanesIncomplete, "lanesIncomplete",
         ReasonClass::Width},

        {AbortReason::UcodeOverflow, "ucodeOverflow",
         ReasonClass::Capacity},

        {AbortReason::Interrupt, "interrupt", ReasonClass::Runtime},
    }};

const ReasonInfo &
info(AbortReason reason)
{
    const auto idx = static_cast<std::size_t>(reason);
    LIQUID_ASSERT(idx < reasonTable.size(), "bad abort reason");
    const ReasonInfo &entry = reasonTable[idx];
    LIQUID_ASSERT(entry.reason == reason, "abort-reason table disorder");
    return entry;
}

} // namespace

const char *
abortReasonName(AbortReason reason)
{
    return info(reason).name;
}

AbortReason
parseAbortReason(const std::string &name)
{
    for (const ReasonInfo &entry : reasonTable) {
        if (name == entry.name)
            return entry.reason;
    }
    return AbortReason::NumReasons;
}

ReasonClass
abortReasonClass(AbortReason reason)
{
    return info(reason).cls;
}

const char *
reasonClassName(ReasonClass cls)
{
    switch (cls) {
      case ReasonClass::None: return "none";
      case ReasonClass::Structure: return "structure";
      case ReasonClass::Opcode: return "opcode";
      case ReasonClass::Idiom: return "idiom";
      case ReasonClass::Dataflow: return "dataflow";
      case ReasonClass::Width: return "width";
      case ReasonClass::Capacity: return "capacity";
      case ReasonClass::Runtime: return "runtime";
    }
    panic("bad reason class");
}

} // namespace liquid
