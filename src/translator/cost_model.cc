#include "translator/cost_model.hh"

#include <cmath>
#include <sstream>

#include "common/bitfield.hh"

namespace liquid
{

namespace
{

// Calibration constants (90 nm standard cell, fitted to paper Table 2
// and the component breakdown in Section 4.1; see header comment).
constexpr std::uint64_t decoderCells = 3000;      // "a few thousand"
constexpr std::uint64_t legalityCells = 400;      // "a few hundred"
constexpr std::uint64_t opcodeGenCells = 9000;    // "approximately 9000"
constexpr std::uint64_t cellsPerStateBit = 60;    // flop + value MUXes
constexpr std::uint64_t cellsPerBufferBit = 20;   // register array
constexpr std::uint64_t alignCellsPerInst = 563;  // collapse network
constexpr std::uint64_t miscControlCells = 28085; // sequencing/intercon.
constexpr std::uint64_t camCellsPerBit = 6;
constexpr double gateDelayNs = 1.51 / 16.0;       // FO4-ish @ 90 nm
constexpr double cellAreaUm2 = 1.1;

} // namespace

CostModelResult
evalCostModel(const CostModelParams &params)
{
    CostModelResult r;

    // Per-register state: kind (3b), element size (2b), flags (3b), and
    // one small value per lane — 56 bits at width 8, as in the paper.
    r.regStateBitsPerReg = 8 + params.simdWidth * params.valueBits;
    r.regStateBits =
        static_cast<std::uint64_t>(r.regStateBitsPerReg) * params.numRegs;

    r.decoderCells = decoderCells;
    r.legalityCells = legalityCells;
    r.regStateCells = r.regStateBits * cellsPerStateBit;
    r.opcodeGenCells = opcodeGenCells;
    r.camCells = static_cast<std::uint64_t>(params.camEntries) *
                 params.simdWidth * params.valueBits * camCellsPerBit;
    r.ucodeBufferCells =
        static_cast<std::uint64_t>(params.ucodeInsts) *
            params.ucodeInstBits * cellsPerBufferBit +
        static_cast<std::uint64_t>(params.ucodeInsts) * alignCellsPerInst;

    r.totalCells = r.decoderCells + r.legalityCells + r.regStateCells +
                   r.opcodeGenCells + r.camCells + r.ucodeBufferCells +
                   miscControlCells;

    // Critical path: 5 gates of partial decode plus the register-state
    // read-modify path, which grows with the lane-select mux depth.
    const unsigned lane_levels =
        params.simdWidth > 1
            ? static_cast<unsigned>(std::log2(params.simdWidth))
            : 0;
    r.critPathGates = 5 + 8 + lane_levels;
    r.critPathNs = r.critPathGates * gateDelayNs;
    r.freqMhz = 1000.0 / r.critPathNs;
    r.areaMm2 = static_cast<double>(r.totalCells) * cellAreaUm2 * 1e-6;
    return r;
}

std::string
costModelReport(const CostModelParams &params, const CostModelResult &r)
{
    std::ostringstream os;
    os << params.simdWidth << "-wide Translator: crit path "
       << r.critPathGates << " gates, " << r.critPathNs << " ns ("
       << r.freqMhz << " MHz), " << r.totalCells << " cells, "
       << r.areaMm2 << " mm^2\n"
       << "  register state: " << r.regStateBitsPerReg << " b/reg x "
       << params.numRegs << " regs = " << r.regStateBits << " b, "
       << r.regStateCells << " cells\n"
       << "  partial decoder: " << r.decoderCells
       << " cells; legality: " << r.legalityCells
       << " cells; opcode gen: " << r.opcodeGenCells << " cells\n"
       << "  permutation CAM: " << r.camCells
       << " cells; ucode buffer (" << params.ucodeInsts << " x "
       << params.ucodeInstBits << " b + alignment network): "
       << r.ucodeBufferCells << " cells\n";
    return os.str();
}

RegionCostEstimate
estimateRegionCost(const RegionCostInputs &in)
{
    RegionCostEstimate est;
    if (in.width == 0 || in.scalarInsts == 0)
        return est;

    est.scalarCycles = static_cast<double>(in.scalarInsts);

    // The walk observed one calling context; a proven trip bound above
    // it generalizes both sides of the ratio to the worst-case caller.
    unsigned long iters = in.loopIters;
    if (in.tripBound > iters) {
        if (in.loopIters > 0) {
            est.scalarCycles *= static_cast<double>(in.tripBound) /
                                static_cast<double>(in.loopIters);
        }
        iters = in.tripBound;
    }

    // Non-loop microcode (prologue/epilogue) runs once; each loop-body
    // slot runs once per vector group of `width` scalar iterations.
    const unsigned straight = in.ucodeInsts >= in.ucodeLoopInsts
                                  ? in.ucodeInsts - in.ucodeLoopInsts
                                  : 0;
    const unsigned long groups = (iters + in.width - 1) / in.width;
    est.simdCycles = static_cast<double>(straight) +
                     static_cast<double>(in.ucodeLoopInsts) *
                         static_cast<double>(groups);
    // A vector access not provably aligned to the full vector span
    // splits across a line boundary: one extra cycle per group.
    if (in.minAlignBytes != 0 &&
        in.minAlignBytes < in.width * 4 && in.ucodeLoopInsts > 0)
        est.simdCycles += static_cast<double>(groups);
    if (est.simdCycles > 0)
        est.speedup = est.scalarCycles / est.simdCycles;
    return est;
}

} // namespace liquid
