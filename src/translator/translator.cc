#include "translator/translator.hh"

#include <algorithm>

#include "common/bitfield.hh"
#include "cpu/exec.hh"

namespace liquid
{

namespace
{

/** Internal control-flow escape used to unwind on translation abort. */
struct AbortCapture
{
    AbortReason reason;
};

[[noreturn]] void
raiseAbort(AbortReason reason)
{
    throw AbortCapture{reason};
}

} // namespace

Translator::Translator(const TranslatorConfig &config, const Program &prog,
                       UcodeCache &cache)
    : config_(config), prog_(prog), cache_(cache), stats_("translator"),
      regs_(4 * regsPerClass)
{
    LIQUID_ASSERT(isPowerOf2(config_.simdWidth) && config_.simdWidth >= 2,
                  "bad SIMD width");
}

Translator::RegState &
Translator::state(RegId reg)
{
    LIQUID_ASSERT(reg.isValid());
    return regs_[reg.flat()];
}

int
Translator::newStream(int producer_ucode)
{
    streams_.push_back(ValueStream{});
    streams_.back().producerUcode = producer_ucode;
    return static_cast<int>(streams_.size()) - 1;
}

Translator::BuildNote &
Translator::note(int static_idx)
{
    return notes_[static_idx];
}

int
Translator::emit(Inst inst, int static_idx)
{
    if (ucode_.size() >= config_.maxUcodeInsts)
        raiseAbort(AbortReason::UcodeOverflow);
    UcodeSlot slot;
    slot.inst = std::move(inst);
    (void)static_idx;
    ucode_.push_back(std::move(slot));
    return static_cast<int>(ucode_.size()) - 1;
}

void
Translator::resetCapture()
{
    mode_ = Mode::Idle;
    regionEntry_ = invalidAddr;
    observedInsts_ = 0;
    for (auto &r : regs_)
        r = RegState{};
    streams_.clear();
    ucode_.clear();
    cvecs_.clear();
    patches_.clear();
    ucodeStartOfStatic_.clear();
    notes_.clear();
    idiom_ = IdiomState{};
    loopStart_ = loopEnd_ = expectIdx_ = -1;
    itersDone_ = 0;
    loopUcodeStart_ = -1;
}

void
Translator::abort(AbortReason reason)
{
    lastAbort_ = reason;
    stats_.inc("aborts");
    stats_.inc(std::string("abort.") + abortReasonName(reason));
    if (regionEntry_ != invalidAddr)
        pendingRetranslate_[regionEntry_] = reason;
    // Runtime-class aborts (interrupt, cache loss, SMC) are transient
    // properties of the environment, not of the code: never blacklist
    // or narrow the width for them.
    if (regionEntry_ != invalidAddr &&
        abortReasonClass(reason) != ReasonClass::Runtime) {
        // Width-dependent failures can succeed at a narrower binding:
        // the trip count may divide a smaller width, and a shuffle or
        // lane pattern that is not W-periodic may be W/2-periodic.
        if (config_.widthFallback && abortIsWidthDependent(reason) &&
            captureWidth_ > 2) {
            retryWidth_[regionEntry_] = captureWidth_ / 2;
            stats_.inc("widthFallbacks");
        } else if (config_.blacklistOnAbort) {
            blacklist_.insert(regionEntry_);
        }
    }
    resetCapture();
}

void
Translator::onCall(Addr callee_entry, bool hinted, unsigned width_hint,
                   Cycles now)
{
    (void)now;
    if (mode_ != Mode::Idle) {
        // A call retired inside a region being captured: the region
        // does not fit the outlined-loop format.
        abort(AbortReason::NestedCall);
        return;
    }
    if (config_.simdWidth == 0)
        return;
    if (config_.requireHint && !hinted)
        return;
    if (blacklist_.count(callee_entry))
        return;
    if (cache_.contains(callee_entry))
        return;

    resetCapture();
    mode_ = Mode::Build;
    regionEntry_ = callee_entry;
    regionStart_ = now;
    // Bind at the accelerator width, capped by the compiled maximum
    // vectorizable width (data is only aligned that far — paper
    // Section 3.1) and by any previous width fallback.
    captureWidth_ = config_.simdWidth;
    if (width_hint != 0)
        captureWidth_ = std::min(captureWidth_, width_hint);
    auto retry = retryWidth_.find(callee_entry);
    if (retry != retryWidth_.end())
        captureWidth_ = std::min(captureWidth_, retry->second);
    if (captureWidth_ < 2) {
        resetCapture();
        return;
    }
    stats_.inc("capturesStarted");
}

void
Translator::onInterrupt(Cycles now)
{
    (void)now;
    if (mode_ == Mode::Idle)
        return;
    // External abort from the pipeline (paper Figure 5's Abort input):
    // transient, so the region is not blacklisted and may be retried.
    abort(AbortReason::Interrupt);
}

void
Translator::noteTranslationLost(Addr entry, AbortReason reason)
{
    stats_.inc("translationsLost");
    stats_.inc(std::string("lost.") + abortReasonName(reason));
    pendingRetranslate_[entry] = reason;
}

void
Translator::noteCodeInvalidated(Addr lo, Addr hi, AbortReason reason)
{
    // Overwritten code means every decision derived from the old bytes
    // is stale: a formerly untranslatable region may now translate, and
    // a narrower-width retry may no longer apply.
    for (auto it = blacklist_.begin(); it != blacklist_.end();) {
        if (*it >= lo && *it < hi)
            it = blacklist_.erase(it);
        else
            ++it;
    }
    for (auto it = retryWidth_.begin(); it != retryWidth_.end();) {
        if (it->first >= lo && it->first < hi)
            it = retryWidth_.erase(it);
        else
            ++it;
    }

    if (mode_ == Mode::Idle || regionEntry_ == invalidAddr)
        return;
    const Addr capture_end =
        ucodeStartOfStatic_.empty()
            ? regionEntry_ + 4
            : Program::instAddr(ucodeStartOfStatic_.rbegin()->first + 2);
    if (lo < capture_end && hi > regionEntry_)
        abort(reason);
}

void
Translator::onReturn(Cycles now)
{
    if (mode_ == Mode::Idle)
        return;
    try {
        if (mode_ == Mode::Verify)
            raiseAbort(AbortReason::RetInsideLoop);
        commit(now);
    } catch (const AbortCapture &a) {
        abort(a.reason);
    }
}

void
Translator::onRetire(const RetireInfo &info, Cycles now)
{
    (void)now;
    if (mode_ == Mode::Idle)
        return;
    ++observedInsts_;
    stats_.inc("instsObserved");

    try {
        if (info.index < 0)
            raiseAbort(AbortReason::UnindexedInst);
        if (mode_ == Mode::Verify)
            verify(info);
        else
            build(info);
    } catch (const AbortCapture &a) {
        abort(a.reason);
    }
}

// ---------------------------------------------------------------------------
// Build phase: paper Table 3 rules.
// ---------------------------------------------------------------------------

void
Translator::build(const RetireInfo &info)
{
    const Inst &inst = *info.inst;

    if (!ucodeStartOfStatic_.count(info.index)) {
        ucodeStartOfStatic_[info.index] =
            static_cast<int>(ucode_.size());
    }

    // The partial decoder recognizes only translatable opcodes.
    const DecodeClass dc = partialDecode(inst.op);
    switch (dc) {
      case DecodeClass::Vector:
        raiseAbort(AbortReason::VectorOpcode);
      case DecodeClass::Call:
        raiseAbort(AbortReason::NestedCall);
      case DecodeClass::Untranslatable:
        raiseAbort(AbortReason::UntranslatableOpcode);
      default:
        break;
    }

    // The saturation idiom recognizer intercepts its instructions before
    // the main rule table.
    if (handleIdiom(info))
        return;

    switch (dc) {
      case DecodeClass::Mov:
        buildMov(info);
        return;
      case DecodeClass::Cmp:
        buildCmp(info);
        return;
      case DecodeClass::Branch:
        buildBranch(info);
        return;
      case DecodeClass::Load:
        buildLoad(info);
        return;
      case DecodeClass::Store:
        buildStore(info);
        return;
      case DecodeClass::DataProc:
        buildDataProc(info);
        return;
      default:
        raiseAbort(AbortReason::UntranslatableOpcode);
    }
}

bool
Translator::handleIdiom(const RetireInfo &info)
{
    const Inst &inst = *info.inst;

    // Stages: 1 = saw `cmp vd, #satMax`, expect `movgt vd, #satMax`;
    //         2 = expect `cmp vd, #satMin`;
    //         3 = expect `movlt vd, #satMin`, then patch vadd -> vqadd.
    switch (idiom_.stage) {
      case 0: {
        if (inst.op != Opcode::Cmp || !inst.hasImm ||
            !inst.src1.isValid())
            return false;
        if (state(inst.src1).kind != RegState::Kind::Vector)
            return false;
        // cmp on a virtualized vector register: only legal as the head
        // of the saturation idiom.
        if (inst.imm != satMax)
            raiseAbort(AbortReason::VectorCompare);
        idiom_.stage = 1;
        idiom_.reg = inst.src1;
        idiom_.defSlot = state(inst.src1).producerUcode;
        if (idiom_.defSlot < 0)
            raiseAbort(AbortReason::IdiomNoProducer);
        return true;
      }
      case 1: {
        if (inst.op != Opcode::Mov || inst.cond != Cond::GT ||
            !inst.hasImm || inst.imm != satMax || inst.dst != idiom_.reg)
            raiseAbort(AbortReason::IdiomShape);
        idiom_.stage = 2;
        return true;
      }
      case 2: {
        if (inst.op != Opcode::Cmp || !inst.hasImm ||
            inst.imm != satMin || inst.src1 != idiom_.reg)
            raiseAbort(AbortReason::IdiomShape);
        idiom_.stage = 3;
        return true;
      }
      case 3: {
        if (inst.op != Opcode::Mov || inst.cond != Cond::LT ||
            !inst.hasImm || inst.imm != satMin || inst.dst != idiom_.reg)
            raiseAbort(AbortReason::IdiomShape);
        Inst &def = ucode_[idiom_.defSlot].inst;
        if (def.op == Opcode::Vadd)
            def.op = Opcode::Vqadd;
        else if (def.op == Opcode::Vsub)
            def.op = Opcode::Vqsub;
        else
            raiseAbort(AbortReason::IdiomBadProducer);
        stats_.inc("idiomsRecognized");
        idiom_ = IdiomState{};
        return true;
      }
      default:
        panic("bad idiom stage");
    }
}

void
Translator::buildMov(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    if (inst.cond != Cond::AL)
        raiseAbort(AbortReason::ConditionalMov);  // only legal inside idioms

    if (inst.hasImm) {
        // Rule 1: mov r, #const marks an induction-variable candidate.
        RegState &s = state(inst.dst);
        s = RegState{};
        s.kind = RegState::Kind::IndVar;
        emit(inst, info.index);
        return;
    }

    // Register move: legal only between plain scalars.
    const RegState &src = state(inst.src1);
    if (src.kind == RegState::Kind::Vector ||
        src.kind == RegState::Kind::VecValues ||
        src.kind == RegState::Kind::IndVar)
        raiseAbort(AbortReason::MovFromNonScalar);
    RegState &d = state(inst.dst);
    d = RegState{};
    d.kind = RegState::Kind::Scalar;
    emit(inst, info.index);
}

void
Translator::buildLoad(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    if (!inst.mem.index.isValid())
        raiseAbort(AbortReason::LoadWithoutIndex);

    const RegState &idxState = state(inst.mem.index);
    const OpInfo &op = inst.info();

    if (idxState.kind == RegState::Kind::IndVar) {
        // Rule 2: vector load; element width recorded from the opcode.
        Inst vld = inst;
        vld.op = op.vectorEquiv;
        LIQUID_ASSERT(vld.op != Opcode::Nop);
        vld.dst = inst.dst.toVector();
        const int slot = emit(std::move(vld), info.index);

        RegState &d = state(inst.dst);
        d = RegState{};
        d.kind = RegState::Kind::Vector;
        d.elemSize = op.memElemSize;
        d.producerUcode = slot;

        BuildNote &n = note(info.index);
        n.checkAddr = true;
        n.firstEa = info.memAddr;
        n.esize = op.memElemSize;

        // "The value loaded is stored in the register state" — but only
        // loads from read-only data can hold offsets/constants/masks,
        // and only values narrow enough for the per-lane state. Wider
        // values (e.g. float constants) are simply not recorded: the
        // constant array stays an ordinary vector load, which is still
        // exact (removing it "is not strictly necessary for
        // correctness", paper Section 4.1).
        if (prog_.isReadOnly(info.memAddr) && laneRepresentable(info.value)) {
            d.stream = newStream(slot);
            streams_[d.stream].values.push_back(info.value);
            n.stream = d.stream;
        }
        return;
    }

    if (idxState.kind == RegState::Kind::VecValues) {
        // Rule 3: shuffled load — vld indexed by the IV, then a
        // permutation finalized once a full vector of offsets is known.
        LIQUID_ASSERT(idxState.stream >= 0);
        Inst vld = inst;
        vld.op = op.vectorEquiv;
        vld.dst = inst.dst.toVector();
        vld.mem.index = idxState.ivReg;
        emit(std::move(vld), info.index);

        Inst vp = Inst::vperm(inst.dst.toVector(), inst.dst.toVector(),
                              PermKind::SwapHalves, 2);  // placeholder
        const int pslot = emit(std::move(vp), info.index);
        patches_.push_back(
            Patch{Patch::Kind::PermLoad, pslot, idxState.stream});

        // The tentative vld of the offset array can be collapsed out of
        // the microcode buffer (the paper's alignment network).
        const int producer = streams_[idxState.stream].producerUcode;
        if (producer >= 0)
            ucode_[producer].collapseCandidate = true;

        RegState &d = state(inst.dst);
        d = RegState{};
        d.kind = RegState::Kind::Vector;
        d.elemSize = op.memElemSize;
        d.producerUcode = pslot;
        return;
    }

    raiseAbort(AbortReason::LoadBadIndex);
}

void
Translator::buildStore(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    if (!inst.mem.index.isValid())
        raiseAbort(AbortReason::StoreWithoutIndex);

    RegState &dataState = state(inst.src1);
    if (dataState.kind != RegState::Kind::Vector)
        raiseAbort(AbortReason::StoreScalarData);
    if (dataState.producerUcode >= 0)
        ucode_[dataState.producerUcode].keep = true;

    const RegState &idxState = state(inst.mem.index);
    const OpInfo &op = inst.info();
    const RegId vdata = inst.src1.toVector();

    if (idxState.kind == RegState::Kind::IndVar) {
        // Rule 4: plain vector store.
        Inst vst = inst;
        vst.op = op.vectorEquiv;
        vst.src1 = vdata;
        emit(std::move(vst), info.index);

        BuildNote &n = note(info.index);
        n.checkAddr = true;
        n.isStore = true;
        n.firstEa = info.memAddr;
        n.esize = op.memElemSize;
        return;
    }

    if (idxState.kind == RegState::Kind::VecValues) {
        // Rule 5: shuffled store — permute (inverse), then store at the
        // IV-indexed address. The paper permutes in place, relying on
        // the compiler to guarantee the register is dead afterwards; we
        // permute into a reserved scratch vector register (v15/vf15,
        // never allocated by the scalarizer) so the virtualized value
        // survives any later use of the same register.
        LIQUID_ASSERT(idxState.stream >= 0);
        const RegId scratch(vdata.cls(), regsPerClass - 1);
        Inst vp = Inst::vperm(scratch, vdata, PermKind::SwapHalves, 2);
        const int pslot = emit(std::move(vp), info.index);
        patches_.push_back(
            Patch{Patch::Kind::PermStore, pslot, idxState.stream});

        Inst vst = inst;
        vst.op = op.vectorEquiv;
        vst.src1 = scratch;
        vst.mem.index = idxState.ivReg;
        emit(std::move(vst), info.index);

        const int producer = streams_[idxState.stream].producerUcode;
        if (producer >= 0)
            ucode_[producer].collapseCandidate = true;
        return;
    }

    raiseAbort(AbortReason::StoreBadIndex);
}

void
Translator::buildCmp(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    const RegState &s1 = state(inst.src1);
    if (s1.kind == RegState::Kind::Vector ||
        s1.kind == RegState::Kind::VecValues)
        raiseAbort(AbortReason::VectorCompare);  // idiom heads handled earlier
    if (!inst.hasImm) {
        const RegState &s2 = state(inst.src2);
        if (s2.kind == RegState::Kind::Vector ||
            s2.kind == RegState::Kind::VecValues)
            raiseAbort(AbortReason::VectorCompare);
    }
    emit(inst, info.index);
}

void
Translator::buildBranch(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    LIQUID_ASSERT(inst.target >= 0);

    if (info.branchTaken && inst.target > info.index)
        raiseAbort(AbortReason::ForwardBranch);

    // Emit the branch; its target is remapped from a static instruction
    // index to a microcode index when the region commits.
    Inst b = inst;
    const int slot = emit(std::move(b), info.index);
    ucode_[slot].branchNeedsRemap = true;

    if (info.branchTaken && inst.target <= info.index) {
        // First backedge: the loop body [target .. here] was just built;
        // switch to verifying iterations 2..N against it.
        auto it = ucodeStartOfStatic_.find(inst.target);
        if (it == ucodeStartOfStatic_.end())
            raiseAbort(AbortReason::BackedgeTargetUnseen);
        mode_ = Mode::Verify;
        loopStart_ = inst.target;
        loopEnd_ = info.index;
        expectIdx_ = loopStart_;
        itersDone_ = 1;
        loopUcodeStart_ = it->second;
    }
}

void
Translator::buildDataProc(const RetireInfo &info)
{
    const Inst &inst = *info.inst;
    RegState &s1 = state(inst.src1);
    RegState *s2 = inst.hasImm ? nullptr : &state(inst.src2);
    using Kind = RegState::Kind;

    auto isVec = [](const RegState *s) {
        return s && s->kind == Kind::Vector;
    };
    auto isScalarish = [](const RegState &s) {
        return s.kind == Kind::Scalar || s.kind == Kind::Unknown;
    };

    // Rule 9: reduction — dp r1, r1, r2 with scalar r1 and vector r2.
    if (!inst.hasImm && inst.dst == inst.src1 &&
        (isScalarish(s1) || s1.kind == Kind::IndVar) && isVec(s2)) {
        const Opcode red = inst.info().reductionEquiv;
        if (red == Opcode::Nop)
            raiseAbort(AbortReason::UnsupportedReduction);
        if (s2->producerUcode >= 0)
            ucode_[s2->producerUcode].keep = true;
        Inst vr = Inst::vred(red, inst.dst, inst.src2.toVector());
        const int slot = emit(std::move(vr), info.index);
        ucode_[slot].needsLoop = true;
        RegState &d = state(inst.dst);
        d = RegState{};
        d.kind = Kind::Scalar;
        return;
    }

    // Rule 8: offsets + induction variable — no instruction generated;
    // the loaded values are copied to the destination's state.
    if (inst.op == Opcode::Add && !inst.hasImm) {
        RegState *vals = nullptr;
        RegId iv_reg;
        if (s1.kind == Kind::IndVar && s2 && s2->kind == Kind::Vector &&
            s2->stream >= 0) {
            vals = s2;
            iv_reg = inst.src1;
        } else if (s2 && s2->kind == Kind::IndVar &&
                   s1.kind == Kind::Vector && s1.stream >= 0) {
            vals = &s1;
            iv_reg = inst.src2;
        }
        if (vals) {
            streams_[vals->stream].referenced = true;
            const int stream = vals->stream;
            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = Kind::VecValues;
            d.stream = stream;
            d.ivReg = iv_reg;
            return;
        }
    }

    // Rule 10 (generalized): self-increment of an induction-variable
    // candidate by a constant becomes an increment by W * constant.
    // This is also correct for constant-step accumulators.
    if (inst.hasImm && inst.dst == inst.src1 &&
        s1.kind == Kind::IndVar && inst.op == Opcode::Add) {
        Inst step = inst;
        step.imm = inst.imm * static_cast<std::int32_t>(captureWidth_);
        const int slot = emit(std::move(step), info.index);
        ucode_[slot].needsLoop = true;

        BuildNote &n = note(info.index);
        n.checkIv = true;
        n.ivFirst = info.value;
        n.ivStep = inst.imm;
        return;
    }

    // Vector cases.
    if (isVec(&s1) || isVec(s2)) {
        const Opcode vop = inst.info().vectorEquiv;
        if (vop == Opcode::Nop)
            raiseAbort(AbortReason::NoVectorEquivalent);

        if (isVec(&s1) && inst.hasImm) {
            // Category 2: vector op with an immediate constant.
            Inst vi = inst;
            vi.op = vop;
            vi.dst = inst.dst.toVector();
            vi.src1 = inst.src1.toVector();
            const int slot = emit(std::move(vi), info.index);
            ucode_[slot].needsLoop = true;
            if (s1.producerUcode >= 0)
                ucode_[s1.producerUcode].keep = true;
            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = Kind::Vector;
            d.producerUcode = slot;
            return;
        }

        if (isVec(&s1) && isVec(s2)) {
            const bool c1 = s1.stream >= 0;
            const bool c2 = s2->stream >= 0;
            if (c1 != c2) {
                // Rule 7: exactly one operand carries loaded values —
                // emit a vector-constant op; the tentative vld of the
                // constant array is collapsed.
                RegState &cst = c1 ? s1 : *s2;
                RegState &vec = c1 ? *s2 : s1;
                streams_[cst.stream].referenced = true;
                Inst vc;
                vc.op = vop;
                vc.dst = inst.dst.toVector();
                vc.src1 = (c1 ? inst.src2 : inst.src1).toVector();
                vc.cvec = 0;  // patched at loop finalize
                const int slot = emit(std::move(vc), info.index);
                ucode_[slot].needsLoop = true;
                patches_.push_back(Patch{Patch::Kind::CvecOrMask, slot,
                                         cst.stream});
                const int producer =
                    streams_[cst.stream].producerUcode;
                if (producer >= 0)
                    ucode_[producer].collapseCandidate = true;
                if (vec.producerUcode >= 0)
                    ucode_[vec.producerUcode].keep = true;
                RegState &d = state(inst.dst);
                d = RegState{};
                d.kind = Kind::Vector;
                d.producerUcode = slot;
                return;
            }

            // Rule 6: plain data-parallel vector op.
            Inst vv = inst;
            vv.op = vop;
            vv.dst = inst.dst.toVector();
            vv.src1 = inst.src1.toVector();
            vv.src2 = inst.src2.toVector();
            const int slot = emit(std::move(vv), info.index);
            ucode_[slot].needsLoop = true;
            if (s1.producerUcode >= 0)
                ucode_[s1.producerUcode].keep = true;
            if (s2->producerUcode >= 0)
                ucode_[s2->producerUcode].keep = true;
            RegState &d = state(inst.dst);
            d = RegState{};
            d.kind = Kind::Vector;
            d.elemSize = std::max(s1.elemSize, s2->elemSize);
            d.producerUcode = slot;
            return;
        }

        // Vector mixed with a live scalar register: not in the rule
        // table (the scalar form would need a broadcast).
        raiseAbort(AbortReason::VectorScalarMix);
    }

    if (s1.kind == Kind::VecValues || (s2 && s2->kind == Kind::VecValues))
        raiseAbort(AbortReason::OffsetsInArithmetic);

    // Rule 11: all source operands scalar — pass through unmodified.
    // Values derived from the induction variable would diverge once the
    // loop strides by W, so they abort instead.
    if (s1.kind == Kind::IndVar || (s2 && s2->kind == Kind::IndVar))
        raiseAbort(AbortReason::IvArithmetic);
    emit(inst, info.index);
    RegState &d = state(inst.dst);
    d = RegState{};
    d.kind = Kind::Scalar;
}

// ---------------------------------------------------------------------------
// Verify phase: iterations 2..N of a recognized loop.
// ---------------------------------------------------------------------------

void
Translator::verify(const RetireInfo &info)
{
    if (info.index != expectIdx_)
        raiseAbort(AbortReason::ShapeMismatch);

    const unsigned width = captureWidth_;
    const unsigned iter = itersDone_ + 1;   // current iteration, 1-based
    const std::size_t elem = iter - 1;      // element this iteration does

    auto it = notes_.find(info.index);
    if (it != notes_.end()) {
        const BuildNote &n = it->second;
        if (n.stream >= 0 && streams_[n.stream].referenced) {
            auto &values = streams_[n.stream].values;
            if (values.size() < width) {
                if (!laneRepresentable(info.value))
                    raiseAbort(AbortReason::ValueTooWide);
                values.push_back(info.value);
            } else if (info.value != values[elem % width]) {
                raiseAbort(AbortReason::ValueMismatch);
            }
        }
        if (n.checkAddr &&
            info.memAddr !=
                n.firstEa + static_cast<Addr>(elem * n.esize)) {
            raiseAbort(AbortReason::AddressMismatch);
        }
        if (n.checkIv &&
            info.value !=
                n.ivFirst + static_cast<Word>(elem) *
                                static_cast<Word>(n.ivStep)) {
            raiseAbort(AbortReason::IvMismatch);
        }
    }

    if (info.index == loopEnd_) {
        ++itersDone_;
        if (info.branchTaken) {
            expectIdx_ = loopStart_;
        } else {
            finalizeLoop();
            mode_ = Mode::Build;
        }
        return;
    }
    ++expectIdx_;
}

void
Translator::finalizeLoop()
{
    const unsigned width = captureWidth_;

    // The microcode strides W elements per iteration, so the trip count
    // must be a whole number of vectors.
    if (itersDone_ < width || itersDone_ % width != 0)
        raiseAbort(AbortReason::TripCount);

    // Cross-iteration memory dependences: the paper notes translated
    // code is only "functionally correct as long as there were no
    // memory dependences between scalar loop iterations" and leaves
    // detection open. Because every tracked access is a unit-stride
    // stream, the check is cheap: a store stream that begins *after*
    // an overlapping load stream feeds later iterations and must
    // abort (a store at or behind the load is read-before-write in
    // both scalar and vector order).
    for (const auto &[store_idx, store_note] : notes_) {
        if (!store_note.isStore || !store_note.checkAddr)
            continue;
        if (store_idx < loopStart_ || store_idx > loopEnd_)
            continue;
        const Addr s0 = store_note.firstEa;
        for (const auto &[load_idx, load_note] : notes_) {
            if (load_note.isStore || !load_note.checkAddr)
                continue;
            if (load_idx < loopStart_ || load_idx > loopEnd_)
                continue;
            const Addr l0 = load_note.firstEa;
            const Addr l_end =
                l0 + itersDone_ * load_note.esize;
            const Addr s_end =
                s0 + itersDone_ * store_note.esize;
            if (s0 > l0 && s0 < l_end && s_end > l0)
                raiseAbort(AbortReason::MemoryDependence);
        }
    }

    for (const Patch &p : patches_) {
        const auto &values = streams_[p.stream].values;
        if (values.size() < width)
            raiseAbort(AbortReason::LanesIncomplete);

        if (p.kind == Patch::Kind::CvecOrMask) {
            // Reduce to the smallest period that explains the lanes.
            unsigned period = width;
            for (unsigned cand = 1; cand < width; cand *= 2) {
                bool ok = true;
                for (unsigned i = 0; i < width && ok; ++i)
                    ok = values[i] == values[i % cand];
                if (ok) {
                    period = cand;
                    break;
                }
            }
            const bool mask_like = std::all_of(
                values.begin(), values.begin() + width,
                [](Word v) { return v == 0 || v == 0xFFFFFFFFu; });
            Inst &inst = ucode_[p.ucodeIdx].inst;
            if (mask_like && inst.op == Opcode::Vand) {
                std::uint32_t bits = 0;
                for (unsigned i = 0; i < period; ++i) {
                    if (values[i])
                        bits |= 1u << i;
                }
                inst.op = Opcode::Vmask;
                inst.cvec = noCvec;
                inst.maskBits = bits;
                inst.maskBlock = static_cast<std::uint8_t>(
                    std::max(period, 1u));
            } else {
                ConstVec cv;
                cv.lanes.assign(values.begin(),
                                values.begin() + period);
                std::uint32_t id = 0;
                for (; id < cvecs_.size(); ++id) {
                    if (cvecs_[id] == cv)
                        break;
                }
                if (id == cvecs_.size())
                    cvecs_.push_back(std::move(cv));
                inst.cvec = id;
            }
            continue;
        }

        // Permutations: CAM the offset pattern against the shuffles the
        // accelerator supports at this width.
        std::vector<std::int32_t> offsets;
        offsets.reserve(width);
        for (unsigned i = 0; i < width; ++i)
            offsets.push_back(static_cast<std::int32_t>(
                static_cast<SWord>(values[i])));
        const auto match =
            permCamLookup(offsets, width, config_.permRepertoire);
        if (!match)
            raiseAbort(AbortReason::UnsupportedShuffle);

        Inst &inst = ucode_[p.ucodeIdx].inst;
        inst.permKind = p.kind == Patch::Kind::PermStore
                            ? permInverse(match->kind)
                            : match->kind;
        inst.permBlock = static_cast<std::uint8_t>(match->block);
    }
    patches_.clear();

    for (std::size_t i = static_cast<std::size_t>(loopUcodeStart_);
         i < ucode_.size(); ++i)
        ucode_[i].loopVerified = true;

    stats_.inc("loopsVerified");
}

// ---------------------------------------------------------------------------
// Commit: compact the microcode buffer and publish to the cache.
// ---------------------------------------------------------------------------

void
Translator::commit(Cycles now)
{
    if (idiom_.stage != 0)
        raiseAbort(AbortReason::IdiomIncomplete);
    if (!patches_.empty())
        raiseAbort(AbortReason::UnfinalizedPatches);

    // The alignment network collapses tentative offset-array loads whose
    // only consumers were permutations or constants.
    std::vector<int> new_index(ucode_.size(), -1);
    std::vector<Inst> out;
    for (std::size_t i = 0; i < ucode_.size(); ++i) {
        UcodeSlot &slot = ucode_[i];
        const bool drop =
            slot.squashed || (config_.collapseEnabled &&
                              slot.collapseCandidate && !slot.keep);
        if (drop) {
            stats_.inc("instsCollapsed");
            continue;
        }
        if (slot.needsLoop && !slot.loopVerified)
            raiseAbort(AbortReason::VectorOutsideLoop);
        new_index[i] = static_cast<int>(out.size());
        out.push_back(slot.inst);
    }

    // Remap branch targets from static indices to microcode indices:
    // the target is the first surviving slot at or after the static
    // target's first emission point.
    for (std::size_t i = 0; i < ucode_.size(); ++i) {
        if (new_index[i] < 0 || !ucode_[i].branchNeedsRemap)
            continue;
        Inst &b = out[static_cast<std::size_t>(new_index[i])];
        auto it = ucodeStartOfStatic_.find(b.target);
        if (it == ucodeStartOfStatic_.end())
            raiseAbort(AbortReason::DanglingBranch);
        int target = -1;
        for (std::size_t j = static_cast<std::size_t>(it->second);
             j < ucode_.size(); ++j) {
            if (new_index[j] >= 0) {
                target = new_index[j];
                break;
            }
        }
        if (target < 0)
            raiseAbort(AbortReason::DanglingBranch);
        b.target = target;
        b.targetSym.clear();
    }

    UcodeEntry entry;
    entry.entryAddr = regionEntry_;
    entry.insts = std::move(out);
    entry.cvecs = cvecs_;
    entry.simdWidth = captureWidth_;
    // Source code range for SMC invalidation: the region spans from its
    // entry through the last static instruction the capture observed
    // (the ret retires one past the largest recorded index).
    entry.codeEnd =
        ucodeStartOfStatic_.empty()
            ? regionEntry_ + 4
            : Program::instAddr(ucodeStartOfStatic_.rbegin()->first + 2);
    // The translator consumes the retire stream concurrently with
    // execution; it only delays readiness when its per-instruction
    // cost exceeds the core's effective CPI.
    entry.readyAt = std::max(
        now, regionStart_ + config_.latencyPerInst * observedInsts_);
    cache_.insert(std::move(entry));

    stats_.inc("translations");
    stats_.inc("instsTranslated", observedInsts_);

    // A commit that follows a recorded loss or abort of the same region
    // is a re-translation; count it keyed by what caused the redo.
    auto pending = pendingRetranslate_.find(regionEntry_);
    if (pending != pendingRetranslate_.end()) {
        stats_.inc("retranslations");
        stats_.inc(std::string("retranslate.") +
                   abortReasonName(pending->second));
        pendingRetranslate_.erase(pending);
    }
    resetCapture();
}

} // namespace liquid
