/**
 * @file
 * Structural hardware cost model for the dynamic translator.
 *
 * The paper synthesized the translator in a 90 nm IBM standard-cell
 * process (Table 2): an 8-wide translator has a 16-gate critical path,
 * 1.51 ns cycle, and 174,117 cells (< 0.2 mm^2). We cannot synthesize
 * here, so this model enumerates the same structures the paper
 * describes — partial decoder, legality checks, per-register value
 * state, opcode generation logic, microcode buffer with its alignment
 * network — and converts bits/entries to cells and area with constants
 * calibrated against the paper's reported proportions (register state
 * ~55% of area, the 256-byte microcode storage a little more than half
 * of the buffer's 77,000 cells, decoder "a few thousand" cells,
 * legality "a few hundred", opcode generation ~9,000).
 *
 * The model is parameterized by vector width and architectural register
 * count so the scaling claims (register state grows linearly with
 * width) can be explored as an ablation.
 */

#ifndef LIQUID_TRANSLATOR_COST_MODEL_HH
#define LIQUID_TRANSLATOR_COST_MODEL_HH

#include <cstdint>
#include <string>

namespace liquid
{

/** Translator hardware parameters. */
struct CostModelParams
{
    unsigned simdWidth = 8;       ///< lanes tracked per register
    unsigned numRegs = 16;        ///< architectural integer registers
    unsigned valueBits = 6;       ///< bits per stored lane value
    unsigned ucodeInsts = 64;     ///< microcode buffer depth
    unsigned ucodeInstBits = 32;  ///< bits per buffered instruction
    unsigned camEntries = 10;     ///< permutation CAM entries
};

/** Synthesis-style outputs (paper Table 2). */
struct CostModelResult
{
    // Per-register translation state (the paper's 56 bits at width 8).
    unsigned regStateBitsPerReg = 0;
    std::uint64_t regStateBits = 0;

    std::uint64_t decoderCells = 0;
    std::uint64_t legalityCells = 0;
    std::uint64_t regStateCells = 0;
    std::uint64_t opcodeGenCells = 0;
    std::uint64_t ucodeBufferCells = 0;
    std::uint64_t camCells = 0;
    std::uint64_t totalCells = 0;

    unsigned critPathGates = 0;   ///< decode + register-state stages
    double critPathNs = 0.0;
    double areaMm2 = 0.0;
    double freqMhz = 0.0;
};

/** Evaluate the model. */
CostModelResult evalCostModel(const CostModelParams &params);

/**
 * Per-region execution-time estimate for a translated region, derived
 * from the static verifier's commit prediction. The unit is "dynamic
 * instructions at 1 IPC": the scalar baseline replays every analyzed
 * retire, while the SIMD estimate runs the non-loop microcode once and
 * each loop-body slot once per vector group (ceil(iters / width)).
 */
struct RegionCostInputs
{
    unsigned scalarInsts = 0;    ///< abstract retires in the region
    unsigned ucodeInsts = 0;     ///< committed microcode slots
    unsigned ucodeLoopInsts = 0; ///< committed slots inside loop bodies
    unsigned loopIters = 0;      ///< scalar iterations across all loops
    unsigned width = 0;          ///< bound SIMD width

    // liquid-range refinements (0 = unknown / not proven).
    /**
     * Proven upper bound on scalar loop iterations over every calling
     * context. The abstract walk observes one context; when the bound
     * exceeds it, the estimate is scaled to the worst-case context.
     */
    unsigned long tripBound = 0;
    /**
     * Weakest proven byte alignment over the region's memory
     * accesses. A vector group whose accesses are not aligned to the
     * full vector span (width * 4 bytes) pays a line-split penalty.
     */
    unsigned minAlignBytes = 0;
};

struct RegionCostEstimate
{
    double scalarCycles = 0.0;
    double simdCycles = 0.0;
    double speedup = 0.0;  ///< scalarCycles / simdCycles; 0 if undefined
};

RegionCostEstimate estimateRegionCost(const RegionCostInputs &in);

/** Render a Table-2-style report. */
std::string costModelReport(const CostModelParams &params,
                            const CostModelResult &result);

} // namespace liquid

#endif // LIQUID_TRANSLATOR_COST_MODEL_HH
