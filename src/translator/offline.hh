/**
 * @file
 * Offline (static) binary translation — the alternative the paper
 * weighs against hardware translation in Section 2.
 *
 * An offline translator has the whole binary and its read-only data in
 * front of it, so it can bind every outlined region to a target SIMD
 * width before the program runs, DAISY/Dynamo-style: each region is
 * executed once in a sandbox (a scratch core over a pristine copy of
 * the program image) feeding the same rule automaton the hardware
 * translator uses, and the resulting microcode is installed with zero
 * runtime latency.
 *
 * The paper's objections to this approach — no transparency, multiple
 * binaries to manage, unclear accountability when translated code
 * misbehaves — are organizational, not functional; this implementation
 * exists to quantify the other side of that trade (bench_fig6's
 * "ideal" column and the offline tests) and to cross-check the
 * hardware translator: both must produce identical microcode.
 */

#ifndef LIQUID_TRANSLATOR_OFFLINE_HH
#define LIQUID_TRANSLATOR_OFFLINE_HH

#include <string>
#include <vector>

#include "asm/program.hh"
#include "memory/ucode_cache.hh"
#include "translator/abort_reason.hh"

namespace liquid
{

/** Outcome of statically translating one region. */
struct OfflineResult
{
    bool ok = false;
    AbortReason reason = AbortReason::None;  ///< set when !ok
    std::string abortReason;  ///< canonical reason name, set when !ok
    UcodeEntry entry;         ///< valid when ok (readyAt == 0)
};

/**
 * Statically translate the outlined region entered at instruction
 * @p entry_index for a @p width-lane accelerator.
 *
 * @param width_hint the region's compiled maximum vectorizable width
 *                   (0 = unknown), as carried by bl.simd<N>.
 */
OfflineResult translateOffline(const Program &prog, int entry_index,
                               unsigned width, unsigned width_hint = 0);

/**
 * Scan @p prog for hinted calls and translate every distinct region,
 * installing successful translations (ready immediately) into
 * @p cache. Regions that cannot bind at the full width are retried at
 * successively halved widths, mirroring the dynamic translator's
 * width fallback. Returns the number of regions installed.
 */
unsigned pretranslateProgram(const Program &prog, unsigned width,
                             UcodeCache &cache);

} // namespace liquid

#endif // LIQUID_TRANSLATOR_OFFLINE_HH
