#include "translator/offline.hh"

#include "cpu/core.hh"
#include "translator/translator.hh"

namespace liquid
{

OfflineResult
translateOffline(const Program &prog, int entry_index, unsigned width,
                 unsigned width_hint)
{
    OfflineResult result;
    LIQUID_ASSERT(entry_index >= 0 &&
                  static_cast<std::size_t>(entry_index) <
                      prog.code().size());

    // Sandbox: pristine memory, a scratch core, and a private
    // translator/cache. Translation legality is data-independent (the
    // structure, the induction variable, and the read-only tables are
    // what matter), so interpreting over the initial image is
    // equivalent to observing the first real call.
    MainMemory mem = MainMemory::forProgram(prog);
    UcodeCacheConfig cache_config;
    cache_config.entries = 1;
    UcodeCache cache(cache_config);

    TranslatorConfig tconfig;
    tconfig.simdWidth = width;
    tconfig.requireHint = false;
    tconfig.latencyPerInst = 0;
    tconfig.widthFallback = false;  // the caller controls retries
    Translator translator(tconfig, prog, cache);

    CoreConfig cconfig;
    cconfig.simdWidth = 0;  // the sandbox executes the scalar form
    cconfig.translationEnabled = false;
    Core core(cconfig, prog, mem);
    core.setRetireSink(&translator);

    const Addr entry = Program::instAddr(entry_index);
    translator.onCall(entry, true, width_hint, 0);
    core.runRegion(entry_index);

    const UcodeEntry *uc = cache.lookup(entry, core.cycles() + 1);
    if (!uc) {
        result.ok = false;
        result.reason = translator.lastAbort();
        result.abortReason = result.reason == AbortReason::None
                                 ? "unknown"
                                 : abortReasonName(result.reason);
        return result;
    }

    result.ok = true;
    result.entry = *uc;
    result.entry.readyAt = 0;
    return result;
}

unsigned
pretranslateProgram(const Program &prog, unsigned width,
                    UcodeCache &cache)
{
    unsigned installed = 0;
    for (const HintedCall &call : prog.hintedCalls()) {
        // Width fallback, as in the dynamic translator: bind as wide
        // as the region allows.
        unsigned bind = width;
        if (call.widthHint != 0)
            bind = std::min(bind, call.widthHint);
        for (; bind >= 2; bind /= 2) {
            OfflineResult r = translateOffline(prog, call.target, bind,
                                               call.widthHint);
            if (r.ok) {
                cache.insert(std::move(r.entry));
                ++installed;
                break;
            }
        }
    }
    return installed;
}

} // namespace liquid
