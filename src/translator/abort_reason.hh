/**
 * @file
 * Stable taxonomy of translation-abort reasons.
 *
 * Every legality check in the dynamic translator (paper Section 4's
 * rule automaton) reports one of these reasons. The canonical string
 * names are part of the tool contract: they key the translator's
 * statistic counters ("abort.<name>"), the offline translator's
 * OfflineResult, and the static verifier's diagnostics, and the
 * differential tests assert that all three agree. Add new reasons at
 * the end of their class group; never rename an existing one.
 */

#ifndef LIQUID_TRANSLATOR_ABORT_REASON_HH
#define LIQUID_TRANSLATOR_ABORT_REASON_HH

#include <string>

#include "common/types.hh"

namespace liquid
{

/** Why a region's translation aborted (canonical name in comments). */
enum class AbortReason : std::uint8_t
{
    None,                 ///< no abort (translation committed)

    // -- structure: the region does not fit the outlined-loop format --
    NestedCall,           ///< "nestedCall"
    ForwardBranch,        ///< "forwardBranch"
    RetInsideLoop,        ///< "retInsideLoop"
    BackedgeTargetUnseen, ///< "backedgeTargetUnseen"
    ShapeMismatch,        ///< "shapeMismatch"
    VectorOutsideLoop,    ///< "vectorOutsideLoop"
    DanglingBranch,       ///< "danglingBranch"
    UnindexedInst,        ///< "unindexedInst"
    IdiomIncomplete,      ///< "idiomIncomplete"
    UnfinalizedPatches,   ///< "unfinalizedPatches"

    // -- opcode: an instruction outside the Table 1/3 repertoire --
    VectorOpcode,         ///< "vectorOpcode"
    UntranslatableOpcode, ///< "untranslatableOpcode"
    ConditionalMov,       ///< "conditionalMov"
    MovFromNonScalar,     ///< "movFromNonScalar"
    LoadWithoutIndex,     ///< "loadWithoutIndex"
    LoadBadIndex,         ///< "loadBadIndex"
    StoreWithoutIndex,    ///< "storeWithoutIndex"
    StoreScalarData,      ///< "storeScalarData"
    StoreBadIndex,        ///< "storeBadIndex"
    VectorCompare,        ///< "vectorCompare"
    UnsupportedReduction, ///< "unsupportedReduction"
    NoVectorEquivalent,   ///< "noVectorEquivalent"
    VectorScalarMix,      ///< "vectorScalarMix"
    OffsetsInArithmetic,  ///< "offsetsInArithmetic"
    IvArithmetic,         ///< "ivArithmetic"

    // -- idiom: a saturation idiom started but lost its shape --
    IdiomNoProducer,      ///< "idiomNoProducer"
    IdiomShape,           ///< "idiomShape"
    IdiomBadProducer,     ///< "idiomBadProducer"

    // -- dataflow: observed values broke a multi-lane invariant --
    ValueTooWide,         ///< "valueTooWide"
    AddressMismatch,      ///< "addressMismatch"
    IvMismatch,           ///< "ivMismatch"
    MemoryDependence,     ///< "memoryDependence"

    // -- width: can succeed at a narrower binding (fallback retries) --
    TripCount,            ///< "tripCount"
    UnsupportedShuffle,   ///< "unsupportedShuffle"
    ValueMismatch,        ///< "valueMismatch"
    LanesIncomplete,      ///< "lanesIncomplete"

    // -- capacity: microcode buffer limits --
    UcodeOverflow,        ///< "ucodeOverflow"

    // -- runtime: external events, not a property of the region --
    Interrupt,            ///< "interrupt"
    UcodeFlushed,         ///< "ucodeFlushed"
    UcodeEvicted,         ///< "ucodeEvicted"
    SmcInvalidated,       ///< "smcInvalidated"

    NumReasons,
};

/**
 * Coarse grouping used by the differential tests: the static verifier
 * must predict the dynamic translator's abort *class* even when check
 * ordering makes the precise reason ambiguous.
 */
enum class ReasonClass : std::uint8_t
{
    None,       ///< translation committed
    Structure,  ///< region shape outside the outlined-loop format
    Opcode,     ///< instruction outside the conversion-rule repertoire
    Idiom,      ///< malformed saturation idiom
    Dataflow,   ///< multi-lane value/address invariant violated
    Width,      ///< width-dependent; a narrower binding may succeed
    Capacity,   ///< microcode buffer overflow
    Runtime,    ///< external interrupt — unknowable statically
};

/** Canonical string name, e.g. "tripCount" (stats key "abort.<name>"). */
const char *abortReasonName(AbortReason reason);

/**
 * One-line human description of the reason, shared by the translator
 * statistics, the verifier diagnostics and the scan report so every
 * tool explains an abort in the same words. Rendered from the same
 * table as abortReasonName(); a static_assert guarantees the table
 * covers every enum value.
 */
const char *abortReasonDescription(AbortReason reason);

/** Parse a canonical name; returns NumReasons when unknown. */
AbortReason parseAbortReason(const std::string &name);

/** The reason's class. */
ReasonClass abortReasonClass(AbortReason reason);

/** Printable class name ("structure", "opcode", ...). */
const char *reasonClassName(ReasonClass cls);

/**
 * True if this failure can succeed at a narrower width binding (the
 * dynamic translator's width-fallback retry set) — exactly the Width
 * class.
 */
inline bool
abortIsWidthDependent(AbortReason reason)
{
    return abortReasonClass(reason) == ReasonClass::Width;
}

/**
 * Can this loaded value live in the translator's per-lane value state?
 * The paper stores only small values ("numbers that are too big to
 * represent simply abort"): permutation offsets, small constants, and
 * all-ones/all-zero lane masks. Shared by the hardware translator and
 * the static verifier so both classify streams identically.
 */
inline bool
laneRepresentable(Word value)
{
    if (value == 0xFFFFFFFFu)
        return true;  // lane-mask "keep" pattern
    const SWord s = static_cast<SWord>(value);
    return s >= -128 && s <= 127;
}

} // namespace liquid

#endif // LIQUID_TRANSLATOR_ABORT_REASON_HH
