#include "sim/system.hh"

#include "translator/offline.hh"

namespace liquid
{

SystemConfig
SystemConfig::make(ExecMode mode, unsigned width)
{
    SystemConfig config;
    config.mode = mode;
    config.simdWidth = width;
    switch (mode) {
      case ExecMode::ScalarBaseline:
        config.core.simdWidth = 0;
        config.core.translationEnabled = false;
        break;
      case ExecMode::Liquid:
        config.core.simdWidth = width;
        config.core.translationEnabled = true;
        config.translator.simdWidth = width;
        break;
      case ExecMode::NativeSimd:
        config.core.simdWidth = width;
        config.core.translationEnabled = false;
        break;
    }
    return config;
}

System::System(const SystemConfig &config, const Program &prog)
    : config_(config), prog_(prog),
      mem_(MainMemory::forProgram(prog)), ucache_(config.ucodeCache)
{
    core_ = std::make_unique<Core>(config_.core, prog_, mem_);

    if (config_.mode == ExecMode::Liquid) {
        if (config_.pretranslate)
            pretranslateProgram(prog_, config_.simdWidth, ucache_);
        translator_ =
            std::make_unique<Translator>(config_.translator, prog_,
                                         ucache_);
        core_->setRetireSink(translator_.get());
        core_->setUcodeLookup([this](Addr entry, Cycles now) {
            return ucache_.lookup(entry, now);
        });
    }
}

void
System::run()
{
    core_->run();
}

Cycles
runProgram(const Program &prog, const SystemConfig &config)
{
    System sys(config, prog);
    sys.run();
    return sys.cycles();
}

} // namespace liquid
