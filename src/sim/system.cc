#include "sim/system.hh"

#include "common/logging.hh"
#include "translator/offline.hh"

namespace liquid
{

SystemConfig
SystemConfig::make(ExecMode mode, unsigned width)
{
    SystemConfig config;
    config.mode = mode;
    config.simdWidth = width;
    switch (mode) {
      case ExecMode::ScalarBaseline:
        config.core.simdWidth = 0;
        config.core.translationEnabled = false;
        break;
      case ExecMode::Liquid:
        config.core.simdWidth = width;
        config.core.translationEnabled = true;
        config.translator.simdWidth = width;
        break;
      case ExecMode::NativeSimd:
        config.core.simdWidth = width;
        config.core.translationEnabled = false;
        break;
    }
    return config;
}

System::System(const SystemConfig &config, const Program &prog)
    : config_(config), prog_(prog),
      mem_(MainMemory::forProgram(prog)), ucache_(config.ucodeCache)
{
    core_ = std::make_unique<Core>(config_.core, prog_, mem_);
    // Installed in every mode so scheduled events are always consumed;
    // without a microcode cache in use they are harmless no-ops.
    core_->setFaultHandler([this](const FaultEvent &event, Cycles now) {
        handleFault(event, now);
    });

    if (config_.mode == ExecMode::Liquid) {
        if (config_.pretranslate)
            pretranslateProgram(prog_, config_.simdWidth, ucache_);
        translator_ =
            std::make_unique<Translator>(config_.translator, prog_,
                                         ucache_);
        core_->setRetireSink(translator_.get());
        core_->setUcodeLookup([this](Addr entry, Cycles now) {
            return ucache_.lookup(entry, now);
        });
    }
}

void
System::handleFault(const FaultEvent &event, Cycles now)
{
    (void)now;
    switch (event.kind) {
      case FaultKind::UcodeFlush: {
        // Context switch: every cached translation is lost at once.
        const std::vector<Addr> lost = ucache_.entryAddrs();
        ucache_.flush();
        if (translator_) {
            for (Addr entry : lost) {
                translator_->noteTranslationLost(
                    entry, AbortReason::UcodeFlushed);
            }
        }
        return;
      }

      case FaultKind::UcodeEvict: {
        // Capacity pressure: drop one entry (the LRU victim when the
        // schedule names no address).
        const Addr victim = event.addr != invalidAddr
                                ? event.addr
                                : ucache_.lruEntryAddr();
        if (victim != invalidAddr && ucache_.invalidate(victim) &&
            translator_) {
            translator_->noteTranslationLost(victim,
                                             AbortReason::UcodeEvicted);
        }
        return;
      }

      case FaultKind::SmcStore: {
        // Self-modifying code: a store into translated code. The model
        // exercises the invalidation protocol — drop overlapping cache
        // entries and stale translator decisions. With no address the
        // store targets the most recently dispatched region, falling
        // back to the capture in flight.
        Addr lo = event.addr;
        if (lo == invalidAddr)
            lo = ucache_.mruEntryAddr();
        if (lo == invalidAddr && translator_)
            lo = translator_->captureRegion();
        if (lo == invalidAddr)
            return;
        const Addr hi = lo + 4;
        for (Addr entry : ucache_.invalidateRange(lo, hi)) {
            if (translator_) {
                translator_->noteTranslationLost(
                    entry, AbortReason::SmcInvalidated);
            }
        }
        if (translator_) {
            translator_->noteCodeInvalidated(lo, hi,
                                             AbortReason::SmcInvalidated);
        }
        return;
      }

      case FaultKind::Interrupt:
      case FaultKind::DcachePerturb:
      case FaultKind::NumKinds:
        break;
    }
    panic("fault kind not handled by the system");
}

void
System::run()
{
    core_->run();
}

Cycles
runProgram(const Program &prog, const SystemConfig &config)
{
    System sys(config, prog);
    sys.run();
    return sys.cycles();
}

} // namespace liquid
