/**
 * @file
 * Top-level simulated system: core + caches + microcode cache + dynamic
 * translator, wired as in paper Figure 1.
 */

#ifndef LIQUID_SIM_SYSTEM_HH
#define LIQUID_SIM_SYSTEM_HH

#include <memory>

#include "asm/program.hh"
#include "cpu/core.hh"
#include "memory/main_memory.hh"
#include "memory/ucode_cache.hh"
#include "translator/translator.hh"

namespace liquid
{

/** How a program is executed. */
enum class ExecMode
{
    ScalarBaseline,  ///< no SIMD accelerator (paper's speedup baseline)
    Liquid,          ///< SIMD accelerator driven by dynamic translation
    NativeSimd,      ///< SIMD accelerator with native SIMD instructions
};

/** Complete system configuration. */
struct SystemConfig
{
    ExecMode mode = ExecMode::Liquid;
    unsigned simdWidth = 8;         ///< ignored for ScalarBaseline
    CoreConfig core{};
    TranslatorConfig translator{};
    UcodeCacheConfig ucodeCache{};

    /**
     * Liquid mode: statically bind every hinted region before the
     * program starts (offline binary translation, paper Section 2)
     * instead of translating at runtime.
     */
    bool pretranslate = false;

    /** Convenience constructor applying the mode/width coupling. */
    static SystemConfig make(ExecMode mode, unsigned width = 8);
};

/** A runnable system instance bound to one program. */
class System
{
  public:
    System(const SystemConfig &config, const Program &prog);

    /** Run to completion (halt). */
    void run();

    Core &core() { return *core_; }
    const Core &core() const { return *core_; }
    MainMemory &memory() { return mem_; }
    const MainMemory &memory() const { return mem_; }
    Translator &translator() { return *translator_; }
    const Translator &translator() const { return *translator_; }
    UcodeCache &ucodeCache() { return ucache_; }

    Cycles cycles() const { return core_->cycles(); }

    /** The program this system is bound to (warmup fast-forward). */
    const Program &program() const { return prog_; }

    const SystemConfig &config() const { return config_; }

  private:
    /**
     * Service a scheduled fault event the core cannot handle itself:
     * microcode-cache flush/evict and SMC stores operate on the cache
     * and translator, which the System owns.
     */
    void handleFault(const FaultEvent &event, Cycles now);

    SystemConfig config_;
    const Program &prog_;
    MainMemory mem_;
    UcodeCache ucache_;
    std::unique_ptr<Translator> translator_;
    std::unique_ptr<Core> core_;
};

/** Run @p prog under @p config and return the elapsed cycles. */
Cycles runProgram(const Program &prog, const SystemConfig &config);

} // namespace liquid

#endif // LIQUID_SIM_SYSTEM_HH
