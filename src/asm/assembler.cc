#include "asm/assembler.hh"

#include <cctype>
#include <stdexcept>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

namespace
{

/** Assembler working state shared across the two passes. */
struct AsmContext
{
    Program prog;
    std::map<std::string, std::uint32_t> cvecByName;
    int lineNo = 0;

    template <typename... Args>
    [[noreturn]] void
    error(const Args &...args) const
    {
        std::ostringstream os;
        detail::formatInto(os, args...);
        fatal("asm line ", lineNo, ": ", os.str());
    }
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    int bracket = 0;
    for (char c : s) {
        if (c == '[')
            ++bracket;
        if (c == ']')
            --bracket;
        if (c == ',' && bracket == 0) {
            out.push_back(trim(cur));
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!trim(cur).empty())
        out.push_back(trim(cur));
    return out;
}

std::vector<std::string>
splitWhitespace(const std::string &s)
{
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string tok;
    while (is >> tok)
        out.push_back(tok);
    return out;
}

std::optional<std::int64_t>
parseInt(const std::string &s)
{
    if (s.empty())
        return std::nullopt;
    std::size_t pos = 0;
    bool neg = false;
    if (s[pos] == '-' || s[pos] == '+') {
        neg = s[pos] == '-';
        ++pos;
    }
    int base = 10;
    if (pos + 1 < s.size() && s[pos] == '0' &&
        (s[pos + 1] == 'x' || s[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    if (pos >= s.size())
        return std::nullopt;
    std::int64_t value = 0;
    for (; pos < s.size(); ++pos) {
        const char c =
            static_cast<char>(std::tolower(static_cast<unsigned char>(s[pos])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = 10 + (c - 'a');
        else
            return std::nullopt;
        if (digit >= base)
            return std::nullopt;
        value = value * base + digit;
    }
    return neg ? -value : value;
}

/** Mnemonic decomposition: opcode, condition, dot-suffix. */
struct Mnemonic
{
    Opcode op;
    Cond cond;
    std::string suffix;  ///< text after '.', e.g. "simd", "bfly8"
};

std::optional<Mnemonic>
parseMnemonic(const std::string &text)
{
    std::string head = text;
    std::string suffix;
    if (auto dot = text.find('.'); dot != std::string::npos) {
        head = text.substr(0, dot);
        suffix = text.substr(dot + 1);
    }

    Opcode op = parseOpcodeName(head);
    if (op != Opcode::NumOpcodes)
        return Mnemonic{op, Cond::AL, suffix};

    if (head.size() > 2) {
        Cond cond;
        if (parseCondName(head.substr(head.size() - 2), cond)) {
            op = parseOpcodeName(head.substr(0, head.size() - 2));
            if (op != Opcode::NumOpcodes)
                return Mnemonic{op, cond, suffix};
        }
    }
    return std::nullopt;
}

/** Parse "[sym + reg + #disp]" (any of reg/disp optional). */
MemRef
parseMemOperand(AsmContext &ctx, const std::string &text)
{
    std::string inner = trim(text);
    if (inner.size() < 2 || inner.front() != '[' || inner.back() != ']')
        ctx.error("expected memory operand, got '", text, "'");
    inner = inner.substr(1, inner.size() - 2);

    MemRef mem;
    bool have_base = false;
    std::string part;
    std::istringstream is(inner);
    while (std::getline(is, part, '+')) {
        part = trim(part);
        if (part.empty())
            ctx.error("empty memory operand component");
        if (part[0] == '#') {
            auto v = parseInt(part.substr(1));
            if (!v)
                ctx.error("bad displacement '", part, "'");
            mem.disp = static_cast<std::int32_t>(*v);
            continue;
        }
        RegId reg = parseRegName(part);
        if (reg.isValid()) {
            if (mem.index.isValid())
                ctx.error("memory operand has two index registers");
            mem.index = reg;
            continue;
        }
        if (have_base)
            ctx.error("memory operand has two base symbols");
        if (!ctx.prog.hasSymbol(part))
            ctx.error("unknown data symbol '", part, "'");
        mem.base = ctx.prog.symbol(part);
        mem.baseSym = part;
        have_base = true;
    }
    if (!have_base)
        ctx.error("memory operand needs a data-symbol base");
    return mem;
}

RegId
parseRegOperand(AsmContext &ctx, const std::string &text)
{
    RegId reg = parseRegName(text);
    if (!reg.isValid())
        ctx.error("expected register, got '", text, "'");
    return reg;
}

std::int32_t
parseImmOperand(AsmContext &ctx, const std::string &text)
{
    if (text.empty() || text[0] != '#')
        ctx.error("expected immediate, got '", text, "'");
    auto v = parseInt(text.substr(1));
    if (!v)
        ctx.error("bad immediate '", text, "'");
    return static_cast<std::int32_t>(*v);
}

void
handleDirective(AsmContext &ctx, const std::string &line)
{
    const auto toks = splitWhitespace(line);
    const std::string &dir = toks[0];

    auto wordsFrom = [&](std::size_t first) {
        std::vector<Word> words;
        for (std::size_t i = first; i < toks.size(); ++i) {
            auto v = parseInt(toks[i]);
            if (!v)
                ctx.error("bad word value '", toks[i], "'");
            words.push_back(static_cast<Word>(
                static_cast<std::int64_t>(*v)));
        }
        return words;
    };

    if (dir == ".data") {
        if (toks.size() < 3 || toks.size() > 4)
            ctx.error(".data needs: name bytes [align]");
        auto bytes = parseInt(toks[2]);
        if (!bytes || *bytes < 0)
            ctx.error("bad .data size");
        std::size_t align = 4;
        if (toks.size() == 4) {
            auto a = parseInt(toks[3]);
            if (!a || *a <= 0)
                ctx.error("bad .data align");
            align = static_cast<std::size_t>(*a);
        }
        ctx.prog.allocData(toks[1], static_cast<std::size_t>(*bytes),
                           align);
    } else if (dir == ".words") {
        if (toks.size() < 3)
            ctx.error(".words needs: name w0 ...");
        ctx.prog.allocWords(toks[1], wordsFrom(2));
    } else if (dir == ".floats") {
        // Word array of IEEE single-precision values.
        if (toks.size() < 3)
            ctx.error(".floats needs: name f0 ...");
        std::vector<Word> words;
        for (std::size_t i = 2; i < toks.size(); ++i) {
            try {
                std::size_t used = 0;
                const float f = std::stof(toks[i], &used);
                if (used != toks[i].size())
                    ctx.error("bad float value '", toks[i], "'");
                words.push_back(floatToBits(f));
            } catch (const std::invalid_argument &) {
                ctx.error("bad float value '", toks[i], "'");
            } catch (const std::out_of_range &) {
                ctx.error("float value out of range '", toks[i], "'");
            }
        }
        ctx.prog.allocWords(toks[1], words);
    } else if (dir == ".rowords") {
        // Read-only word array (compiler constant tables).
        if (toks.size() < 3)
            ctx.error(".rowords needs: name w0 ...");
        ctx.prog.allocRoWords(toks[1], wordsFrom(2));
    } else if (dir == ".cvec") {
        if (toks.size() < 3)
            ctx.error(".cvec needs: name w0 ...");
        if (ctx.cvecByName.count(toks[1]))
            ctx.error("duplicate cvec '", toks[1], "'");
        ctx.cvecByName[toks[1]] =
            ctx.prog.addCvec(ConstVec{wordsFrom(2)});
    } else if (dir == ".text") {
        // Section marker, accepted for readability; no effect.
    } else {
        ctx.error("unknown directive '", dir, "'");
    }
}

/** Parse "bfly8" / "rev4"-style permutation suffixes. */
void
parsePermSuffix(AsmContext &ctx, const std::string &suffix, Inst &inst)
{
    std::size_t digits = suffix.size();
    while (digits > 0 &&
           std::isdigit(static_cast<unsigned char>(suffix[digits - 1])))
        --digits;
    const std::string kind_name = suffix.substr(0, digits);
    auto block = parseInt(suffix.substr(digits));
    if (!block || *block < 2)
        ctx.error("bad permutation block in '", suffix, "'");

    for (unsigned k = 0; k < static_cast<unsigned>(PermKind::NumKinds);
         ++k) {
        if (kind_name == permKindName(static_cast<PermKind>(k))) {
            inst.permKind = static_cast<PermKind>(k);
            inst.permBlock = static_cast<std::uint8_t>(*block);
            return;
        }
    }
    ctx.error("unknown permutation kind '", kind_name, "'");
}

void
handleInstruction(AsmContext &ctx, const std::string &line)
{
    // Split mnemonic from operands.
    std::size_t sp = 0;
    while (sp < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[sp])))
        ++sp;
    const std::string mnemonic_text = line.substr(0, sp);
    const auto operands = splitCommas(trim(line.substr(sp)));

    auto mn = parseMnemonic(mnemonic_text);
    if (!mn)
        ctx.error("unknown mnemonic '", mnemonic_text, "'");

    const OpInfo &info = opInfo(mn->op);
    Inst inst;
    inst.op = mn->op;
    inst.cond = mn->cond;

    auto need = [&](std::size_t n) {
        if (operands.size() != n) {
            ctx.error(info.name, " expects ", n, " operand(s), got ",
                      operands.size());
        }
    };

    switch (mn->op) {
      case Opcode::Nop:
      case Opcode::Halt:
      case Opcode::Ret:
        need(0);
        break;

      case Opcode::B:
        need(1);
        inst.targetSym = operands[0];
        break;

      case Opcode::Bl:
        need(1);
        inst.targetSym = operands[0];
        if (!mn->suffix.empty()) {
            if (mn->suffix.rfind("simd", 0) != 0)
                ctx.error("unknown bl suffix '", mn->suffix, "'");
            inst.hinted = true;
            const std::string width = mn->suffix.substr(4);
            if (!width.empty()) {
                auto w = parseInt(width);
                if (!w || *w < 2 || *w > 64)
                    ctx.error("bad bl.simd width '", mn->suffix, "'");
                inst.blWidthHint = static_cast<std::uint8_t>(*w);
            }
        }
        break;

      case Opcode::Cmp:
        need(2);
        inst.src1 = parseRegOperand(ctx, operands[0]);
        if (operands[1][0] == '#') {
            inst.hasImm = true;
            inst.imm = parseImmOperand(ctx, operands[1]);
        } else {
            inst.src2 = parseRegOperand(ctx, operands[1]);
        }
        break;

      case Opcode::Mov:
        need(2);
        inst.dst = parseRegOperand(ctx, operands[0]);
        if (operands[1][0] == '#') {
            inst.hasImm = true;
            inst.imm = parseImmOperand(ctx, operands[1]);
        } else {
            inst.src1 = parseRegOperand(ctx, operands[1]);
        }
        break;

      case Opcode::Vperm:
        need(2);
        inst.dst = parseRegOperand(ctx, operands[0]);
        inst.src1 = parseRegOperand(ctx, operands[1]);
        parsePermSuffix(ctx, mn->suffix, inst);
        break;

      case Opcode::Vmask: {
        need(3);
        inst.dst = parseRegOperand(ctx, operands[0]);
        inst.src1 = parseRegOperand(ctx, operands[1]);
        const std::string &m = operands[2];
        auto slash = m.find('/');
        if (m.empty() || m[0] != '#' || slash == std::string::npos)
            ctx.error("vmask needs #bits/block, got '", m, "'");
        auto bits = parseInt(m.substr(1, slash - 1));
        auto block = parseInt(m.substr(slash + 1));
        if (!bits || !block || *block < 2)
            ctx.error("bad vmask operand '", m, "'");
        inst.maskBits = static_cast<std::uint32_t>(*bits);
        inst.maskBlock = static_cast<std::uint8_t>(*block);
        break;
      }

      default:
        if (info.isLoad) {
            need(2);
            inst.dst = parseRegOperand(ctx, operands[0]);
            inst.mem = parseMemOperand(ctx, operands[1]);
        } else if (info.isStore) {
            need(2);
            inst.mem = parseMemOperand(ctx, operands[0]);
            inst.src1 = parseRegOperand(ctx, operands[1]);
        } else if (info.isReduction) {
            need(2);
            inst.dst = parseRegOperand(ctx, operands[0]);
            inst.src1 = inst.dst;
            inst.src2 = parseRegOperand(ctx, operands[1]);
        } else if (info.isDataProc) {
            need(3);
            inst.dst = parseRegOperand(ctx, operands[0]);
            inst.src1 = parseRegOperand(ctx, operands[1]);
            const std::string &s2 = operands[2];
            if (s2.rfind("cv:", 0) == 0) {
                auto it = ctx.cvecByName.find(s2.substr(3));
                if (it == ctx.cvecByName.end())
                    ctx.error("unknown cvec '", s2, "'");
                inst.cvec = it->second;
            } else if (s2[0] == '#') {
                inst.hasImm = true;
                inst.imm = parseImmOperand(ctx, s2);
            } else {
                inst.src2 = parseRegOperand(ctx, s2);
            }
        } else {
            ctx.error("cannot assemble opcode '", info.name, "'");
        }
        break;
    }

    ctx.prog.addInst(std::move(inst));
}

} // namespace

Program
assemble(const std::string &source)
{
    AsmContext ctx;

    std::istringstream is(source);
    std::string raw;
    while (std::getline(is, raw)) {
        ++ctx.lineNo;
        // Strip comments.
        if (auto semi = raw.find(';'); semi != std::string::npos)
            raw = raw.substr(0, semi);
        std::string line = trim(raw);
        if (line.empty())
            continue;

        // Labels (possibly followed by an instruction on the same line).
        while (true) {
            auto colon = line.find(':');
            if (colon == std::string::npos)
                break;
            const std::string head = trim(line.substr(0, colon));
            // "cv:" inside operands also contains ':'; only treat a
            // leading identifier as a label.
            bool is_label = !head.empty();
            for (char c : head) {
                if (!std::isalnum(static_cast<unsigned char>(c)) &&
                    c != '_')
                    is_label = false;
            }
            if (!is_label)
                break;
            ctx.prog.defineLabel(head);
            line = trim(line.substr(colon + 1));
            if (line.empty())
                break;
        }
        if (line.empty())
            continue;

        if (line[0] == '.')
            handleDirective(ctx, line);
        else
            handleInstruction(ctx, line);
    }

    ctx.prog.resolveBranches();
    return ctx.prog;
}

} // namespace liquid
