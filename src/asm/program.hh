/**
 * @file
 * A complete Liquid SIMD binary: code, static data image, symbols and
 * the constant-vector pool. Produced either by the text assembler or
 * directly by the scalarizer's code generators.
 */

#ifndef LIQUID_ASM_PROGRAM_HH
#define LIQUID_ASM_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/instruction.hh"

namespace liquid
{

/** A hinted bl site: the outlined region it targets. */
struct HintedCall
{
    int target = -1;            ///< region entry instruction index
    unsigned widthHint = 0;     ///< bl.simd<N> compiled width (0 = none)
};

/** Program text + data segments. */
class Program
{
  public:
    /** Architectural base address of the code segment. */
    static constexpr Addr codeBase = 0x1000;
    /** Architectural base address of the data segment. */
    static constexpr Addr dataBase = 0x100000;

    // ---- code ----------------------------------------------------------

    /** Append an instruction; returns its index. */
    int
    addInst(Inst inst)
    {
        code_.push_back(std::move(inst));
        return static_cast<int>(code_.size()) - 1;
    }

    /** Bind @p name to the next instruction index. */
    void defineLabel(const std::string &name);

    /** Instruction index of a label; fatal() if missing. */
    int labelIndex(const std::string &name) const;

    bool hasLabel(const std::string &name) const;

    /** A label bound to exactly @p index; empty if none. */
    std::string labelAt(int index) const;

    /**
     * Every distinct hinted bl target in the program — the outlined
     * regions the dynamic translator will try to capture. When several
     * hinted calls target one region, the last call's width hint wins
     * (matching the translator, which rebinds on every call). Targets
     * are returned in ascending order.
     */
    std::vector<HintedCall> hintedCalls() const;

    const std::vector<Inst> &code() const { return code_; }
    std::vector<Inst> &code() { return code_; }

    /** Architectural address of instruction @p index. */
    static Addr instAddr(int index)
    {
        return codeBase + static_cast<Addr>(index) * 4;
    }

    /** Code size in architectural bytes (4 per instruction). */
    std::size_t codeSizeBytes() const { return code_.size() * 4; }

    // ---- data ----------------------------------------------------------

    /**
     * Reserve @p bytes of zeroed static data named @p name, aligned to
     * @p align bytes. Returns the symbol's address.
     */
    Addr allocData(const std::string &name, std::size_t bytes,
                   std::size_t align = 4);

    /** Reserve and initialize a word array. */
    Addr allocWords(const std::string &name,
                    const std::vector<Word> &words,
                    std::size_t align = 4);

    /**
     * Reserve and initialize a *read-only* word array (compiler-emitted
     * offset / constant / mask tables). The dynamic translator records
     * "previous values" only for loads from read-only data, the
     * software-visible analogue of a read-only page attribute.
     */
    Addr allocRoWords(const std::string &name,
                      const std::vector<Word> &words,
                      std::size_t align = 4);

    /** Mark [begin, end) as read-only data. */
    void markReadOnly(Addr begin, Addr end);

    /** True if @p addr lies in a read-only range. */
    bool isReadOnly(Addr addr) const;

    /** Address of a data symbol; fatal() if missing. */
    Addr symbol(const std::string &name) const;

    bool hasSymbol(const std::string &name) const;

    /** Write an initial value into the data image. */
    void initWord(Addr addr, Word value);
    void initHalf(Addr addr, std::uint16_t value);
    void initByte(Addr addr, std::uint8_t value);

    /**
     * Read one element of the *initial* data image (the state a static
     * analysis may assume: read-only tables keep these values for the
     * whole run). Little-endian, zero- or sign-extended like
     * MainMemory::readElem. Returns false when [addr, addr + size) is
     * not covered by the image.
     */
    bool readInitialElem(Addr addr, unsigned size, bool sign_extend,
                         Word &out) const;

    /**
     * Name of the data symbol whose address is the greatest one at or
     * below @p addr — the array a diagnostic should blame. Empty when
     * @p addr precedes every symbol.
     */
    std::string symbolAt(Addr addr) const;

    const std::vector<std::uint8_t> &dataImage() const { return data_; }
    const std::map<std::string, Addr> &symbols() const { return symbols_; }

    // ---- constant-vector pool -------------------------------------------

    /** Intern a constant vector; returns its pool id. */
    std::uint32_t addCvec(ConstVec cv);

    const ConstVec &cvec(std::uint32_t id) const;
    const std::vector<ConstVec> &cvecPool() const { return cvecPool_; }

    // ---- convenience -----------------------------------------------------

    /** Build a MemRef to `[name + index + #disp]`. */
    MemRef
    ref(const std::string &name, RegId index = RegId::invalid(),
        std::int32_t disp = 0) const
    {
        MemRef m;
        m.base = symbol(name);
        m.baseSym = name;
        m.index = index;
        m.disp = disp;
        return m;
    }

    /**
     * Resolve symbolic branch targets (targetSym set, target < 0) against
     * the label table. fatal() on undefined labels.
     */
    void resolveBranches();

    /** Full disassembly listing (for debugging and the examples). */
    std::string listing() const;

  private:
    std::vector<Inst> code_;
    std::map<std::string, int> labels_;
    std::vector<std::uint8_t> data_;
    std::map<std::string, Addr> symbols_;
    std::vector<ConstVec> cvecPool_;
    std::vector<std::pair<Addr, Addr>> roRanges_;
};

} // namespace liquid

#endif // LIQUID_ASM_PROGRAM_HH
