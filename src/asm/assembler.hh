/**
 * @file
 * Two-pass text assembler for the Liquid SIMD ISA.
 *
 * Syntax (one item per line, ';' starts a comment):
 *
 *     .data    name bytes [align]   ; reserve zeroed bytes
 *     .words   name w0 w1 ...       ; reserve + initialize a word array
 *     .floats  name f0 f1 ...       ; word array of float bit patterns
 *     .rowords name w0 w1 ...       ; same, marked read-only (constant
 *                                   ;  tables the translator may track)
 *     .cvec    name w0 w1 ...       ; constant-vector pool entry
 *     label:
 *         mov   r0, #0
 *         ldw   r1, [bfly + r0]
 *         stw   [tmp0 + r3], f3     ; store: memory operand first
 *         movgt r1, #255            ; conditional execution suffix
 *         blt   label
 *         bl    func                ; plain call
 *         bl.simd func              ; call hinted as translatable
 *         vperm.bfly8 vf0, vf0      ; permutation kind + block suffix
 *         vmask vf3, vf3, #0xF0/8   ; lane mask / pattern period
 *         vadd  v1, v2, cv:name     ; constant-vector operand
 *         vredmin r1, v2            ; reduction folds into dst
 *         halt
 */

#ifndef LIQUID_ASM_ASSEMBLER_HH
#define LIQUID_ASM_ASSEMBLER_HH

#include <string>

#include "asm/program.hh"

namespace liquid
{

/**
 * Assemble @p source into a Program. Throws FatalError with a
 * line-numbered message on any syntax or semantic error.
 */
Program assemble(const std::string &source);

} // namespace liquid

#endif // LIQUID_ASM_ASSEMBLER_HH
