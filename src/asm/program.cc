#include "asm/program.hh"

#include <iomanip>
#include <sstream>

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

void
Program::defineLabel(const std::string &name)
{
    if (labels_.count(name))
        fatal("duplicate label '", name, "'");
    labels_[name] = static_cast<int>(code_.size());
}

int
Program::labelIndex(const std::string &name) const
{
    auto it = labels_.find(name);
    if (it == labels_.end())
        fatal("undefined label '", name, "'");
    return it->second;
}

bool
Program::hasLabel(const std::string &name) const
{
    return labels_.count(name) != 0;
}

std::string
Program::labelAt(int index) const
{
    for (const auto &[name, idx] : labels_) {
        if (idx == index)
            return name;
    }
    return {};
}

std::vector<HintedCall>
Program::hintedCalls() const
{
    std::map<int, unsigned> hints;
    for (const auto &inst : code_) {
        if (inst.op == Opcode::Bl && inst.hinted && inst.target >= 0)
            hints[inst.target] = inst.blWidthHint;
    }
    std::vector<HintedCall> calls;
    calls.reserve(hints.size());
    for (const auto &[target, hint] : hints)
        calls.push_back(HintedCall{target, hint});
    return calls;
}

bool
Program::readInitialElem(Addr addr, unsigned size, bool sign_extend,
                         Word &out) const
{
    if (addr < dataBase)
        return false;
    const std::size_t offset = addr - dataBase;
    if (offset + size > data_.size())
        return false;
    Word raw = 0;
    for (unsigned i = 0; i < size; ++i)
        raw |= static_cast<Word>(data_[offset + i]) << (8 * i);
    out = sign_extend ? static_cast<Word>(sext(raw, 8 * size)) : raw;
    return true;
}

std::string
Program::symbolAt(Addr addr) const
{
    std::string best;
    Addr best_addr = 0;
    for (const auto &[name, sym_addr] : symbols_) {
        if (sym_addr <= addr && (best.empty() || sym_addr >= best_addr)) {
            best = name;
            best_addr = sym_addr;
        }
    }
    return best;
}

Addr
Program::allocData(const std::string &name, std::size_t bytes,
                   std::size_t align)
{
    if (symbols_.count(name))
        fatal("duplicate data symbol '", name, "'");
    const std::size_t offset =
        static_cast<std::size_t>(roundUp(data_.size(), align));
    data_.resize(offset + bytes, 0);
    const Addr addr = dataBase + static_cast<Addr>(offset);
    symbols_[name] = addr;
    return addr;
}

Addr
Program::allocWords(const std::string &name,
                    const std::vector<Word> &words, std::size_t align)
{
    const Addr addr = allocData(name, words.size() * 4, align);
    for (std::size_t i = 0; i < words.size(); ++i)
        initWord(addr + static_cast<Addr>(i * 4), words[i]);
    return addr;
}

Addr
Program::allocRoWords(const std::string &name,
                      const std::vector<Word> &words, std::size_t align)
{
    const Addr addr = allocWords(name, words, align);
    markReadOnly(addr, addr + static_cast<Addr>(words.size() * 4));
    return addr;
}

void
Program::markReadOnly(Addr begin, Addr end)
{
    LIQUID_ASSERT(begin <= end);
    roRanges_.emplace_back(begin, end);
}

bool
Program::isReadOnly(Addr addr) const
{
    for (const auto &[begin, end] : roRanges_) {
        if (addr >= begin && addr < end)
            return true;
    }
    return false;
}

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols_.find(name);
    if (it == symbols_.end())
        fatal("undefined data symbol '", name, "'");
    return it->second;
}

bool
Program::hasSymbol(const std::string &name) const
{
    return symbols_.count(name) != 0;
}

void
Program::initWord(Addr addr, Word value)
{
    initHalf(addr, static_cast<std::uint16_t>(value));
    initHalf(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

void
Program::initHalf(Addr addr, std::uint16_t value)
{
    initByte(addr, static_cast<std::uint8_t>(value));
    initByte(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void
Program::initByte(Addr addr, std::uint8_t value)
{
    LIQUID_ASSERT(addr >= dataBase);
    const std::size_t offset = addr - dataBase;
    LIQUID_ASSERT(offset < data_.size(),
                  "data init outside allocated image");
    data_[offset] = value;
}

std::uint32_t
Program::addCvec(ConstVec cv)
{
    for (std::size_t i = 0; i < cvecPool_.size(); ++i) {
        if (cvecPool_[i] == cv)
            return static_cast<std::uint32_t>(i);
    }
    cvecPool_.push_back(std::move(cv));
    return static_cast<std::uint32_t>(cvecPool_.size()) - 1;
}

const ConstVec &
Program::cvec(std::uint32_t id) const
{
    LIQUID_ASSERT(id < cvecPool_.size(), "bad cvec id");
    return cvecPool_[id];
}

void
Program::resolveBranches()
{
    for (auto &inst : code_) {
        if (!inst.isBranch() || inst.op == Opcode::Ret)
            continue;
        if (inst.target >= 0)
            continue;
        if (inst.targetSym.empty())
            fatal("branch with neither target nor symbol");
        inst.target = labelIndex(inst.targetSym);
    }
}

std::string
Program::listing() const
{
    // Invert the label map for printing.
    std::map<int, std::vector<std::string>> labels_at;
    for (const auto &kv : labels_)
        labels_at[kv.second].push_back(kv.first);

    std::ostringstream os;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        auto it = labels_at.find(static_cast<int>(i));
        if (it != labels_at.end()) {
            for (const auto &name : it->second)
                os << name << ":\n";
        }
        os << "  " << std::setw(4) << i << ": " << code_[i].toString()
           << '\n';
    }
    return os.str();
}

} // namespace liquid
