#include "fast/reference.hh"

#include <algorithm>

#include "asm/program.hh"
#include "fast/fast.hh"
#include "memory/main_memory.hh"

namespace liquid::fast
{

ChaosReference
makeFunctionalReference(const Program &prog, unsigned width)
{
    // The scalar baseline has no SIMD accelerator regardless of the
    // requested width (SystemConfig::make applies the same coupling).
    static_cast<void>(width);

    MainMemory mem = MainMemory::forProgram(prog);
    FastInterp interp(FastConfig{}, prog, mem);
    interp.run();

    ChaosReference ref;
    const std::size_t bytes = prog.dataImage().size();
    ref.snapshot.memory.reserve(bytes / 4 + 1);
    for (std::size_t off = 0; off + 4 <= bytes; off += 4)
        ref.snapshot.memory.push_back(
            mem.readWord(Program::dataBase + off));

    ref.snapshot.scalars = interp.scalars();
    ref.snapshot.cmpState = interp.cmpState();

    // The cycle core's call log keeps at most 8 stamps per target, so
    // its snapshot call counts saturate at 8; mirror the cap exactly.
    for (const auto &[target, count] : interp.callCounts()) {
        ref.snapshot.callCounts[target] =
            static_cast<std::size_t>(std::min<std::uint64_t>(count, 8));
        ref.regions.push_back(target);
    }
    ref.instsRetired = interp.retired();
    return ref;
}

} // namespace liquid::fast
