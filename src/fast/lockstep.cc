#include "fast/lockstep.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "cpu/core.hh"
#include "memory/main_memory.hh"

namespace liquid::fast
{

namespace
{

std::string
hex(Word w)
{
    std::ostringstream os;
    os << "0x" << std::hex << w;
    return os.str();
}

} // namespace

LockstepResult
runLockstep(const Program &prog, ExecMode mode, unsigned width,
            const LockstepOptions &opts)
{
    if (mode == ExecMode::Liquid) {
        fatal("lockstep requires stream-aligned tiers: liquid mode "
              "interleaves dispatched microcode into the retire "
              "stream; its equivalence is covered by the chaos "
              "oracle's end-state contract");
    }

    // A bare Core (no System) keeps the retire stream free of
    // translator side effects; scalar/native modes never dispatch
    // microcode anyway. Each tier gets its own memory image.
    CoreConfig core_config = SystemConfig::make(mode, width).core;
    core_config.faults = opts.faults;
    core_config.maxInsts = opts.maxRetires;

    MainMemory cycle_mem = MainMemory::forProgram(prog);
    MainMemory fast_mem = MainMemory::forProgram(prog);
    Core core(core_config, prog, cycle_mem);

    FastConfig fast_config;
    fast_config.simdWidth = core_config.simdWidth;
    fast_config.faults = opts.faults;
    fast_config.maxInsts = opts.maxRetires;
    fast_config.switchDispatch = opts.switchDispatch;
    fast_config.sabotage = opts.sabotage;
    FastInterp interp(fast_config, prog, fast_mem);

    LockstepResult res;
    auto diverge = [&](std::string msg) {
        res.equal = false;
        if (res.divergences.size() < opts.maxDivergences) {
            res.divergences.push_back("retire " +
                                      std::to_string(res.retires) +
                                      ": " + std::move(msg));
        }
    };

    const auto &fast_scalars = interp.scalars();
    const auto &fast_vectors = interp.vectors();

    auto compareArch = [&] {
        if (core.pc() != interp.pc()) {
            diverge("pc " + std::to_string(interp.pc()) + " vs cycle " +
                    std::to_string(core.pc()));
        }
        const RegFile &regs = core.regs();
        if (regs.cmpState() != interp.cmpState()) {
            diverge("cmpState " + std::to_string(interp.cmpState()) +
                    " vs cycle " + std::to_string(regs.cmpState()));
        }
        for (unsigned i = 0; i < regsPerClass; ++i) {
            const RegId ri(RegClass::Int, i);
            const RegId rf(RegClass::Flt, i);
            if (regs.read(ri) != fast_scalars[i]) {
                diverge(regName(ri) + " = " + hex(fast_scalars[i]) +
                        " vs cycle " + hex(regs.read(ri)));
            }
            if (regs.read(rf) != fast_scalars[regsPerClass + i]) {
                diverge(regName(rf) + " = " +
                        hex(fast_scalars[regsPerClass + i]) +
                        " vs cycle " + hex(regs.read(rf)));
            }
        }
        if (width == 0)
            return;
        for (unsigned i = 0; i < regsPerClass; ++i) {
            const RegId vi(RegClass::Vec, i);
            const RegId vf(RegClass::VFlt, i);
            if (regs.readVec(vi) != fast_vectors[i])
                diverge(regName(vi) + " lanes differ");
            if (regs.readVec(vf) != fast_vectors[regsPerClass + i])
                diverge(regName(vf) + " lanes differ");
        }
    };

    auto compareMemory = [&](Addr begin) {
        std::size_t shown = 0;
        for (Addr a = begin; a + 4 <= cycle_mem.size(); a += 4) {
            const Word c = cycle_mem.readWord(a);
            const Word f = fast_mem.readWord(a);
            if (c == f)
                continue;
            diverge("mem[" + hex(a) + "] = " + hex(f) + " vs cycle " +
                    hex(c));
            if (++shown >= 4)
                break;
        }
    };

    while (res.equal) {
        std::string cycle_err;
        std::string fast_err;
        try {
            core.step();
        } catch (const PanicError &e) {
            cycle_err = e.what();
        } catch (const FatalError &e) {
            cycle_err = e.what();
        }
        try {
            interp.step();
        } catch (const PanicError &e) {
            fast_err = e.what();
        } catch (const FatalError &e) {
            fast_err = e.what();
        }
        ++res.retires;

        if (!cycle_err.empty() || !fast_err.empty()) {
            if (cycle_err != fast_err) {
                diverge("cycle error '" + cycle_err +
                        "' vs functional error '" + fast_err + "'");
            }
            break;
        }

        if (core.halted() != interp.halted()) {
            diverge(std::string("halted: functional=") +
                    (interp.halted() ? "yes" : "no") + " vs cycle=" +
                    (core.halted() ? "yes" : "no"));
            break;
        }

        compareArch();
        if (opts.memCompareEvery &&
            res.retires % opts.memCompareEvery == 0)
            compareMemory(Program::dataBase);

        if (core.halted())
            break;
    }

    if (!res.equal)
        return res;

    // End-of-run contract: whole memory, retire totals, call log shape.
    compareMemory(0);

    if (core.instsRetired() != interp.retired()) {
        diverge("retired " + std::to_string(interp.retired()) +
                " vs cycle " + std::to_string(core.instsRetired()));
    }

    std::map<Addr, std::uint64_t> cycle_calls;
    for (const auto &[target, stamps] : core.callLog())
        cycle_calls[target] = stamps.size();
    std::map<Addr, std::uint64_t> fast_calls;
    for (const auto &[target, count] : interp.callCounts())
        fast_calls[target] = std::min<std::uint64_t>(count, 8);
    if (cycle_calls != fast_calls)
        diverge("call log shape differs (targets or counts)");

    return res;
}

} // namespace liquid::fast
