/**
 * @file
 * Execution-tier selection shared by the lab, the CLI drivers and the
 * lockstep harness.
 *
 * The cycle tier is the five-stage pipeline model (cpu/core.hh); the
 * functional tier is the threaded-dispatch interpreter (fast/fast.hh),
 * which retires the same architectural state with no cycle clock, no
 * caches and no translator. Anything cycle-shaped is *absent* under the
 * functional tier — never reported as zero.
 */

#ifndef LIQUID_FAST_TIER_HH
#define LIQUID_FAST_TIER_HH

#include <string>

#include "common/logging.hh"

namespace liquid::fast
{

/** Which execution engine retires instructions. */
enum class ExecTier
{
    Cycle,       ///< five-stage pipeline model with timing
    Functional,  ///< threaded-dispatch interpreter, arch state only
};

/** Canonical tier name used in CLI flags and results JSON. */
inline const char *
tierName(ExecTier tier)
{
    return tier == ExecTier::Functional ? "functional" : "cycle";
}

/** Inverse of tierName(); fatal() on unknown names. */
inline ExecTier
tierFromName(const std::string &name)
{
    if (name == "cycle")
        return ExecTier::Cycle;
    if (name == "functional")
        return ExecTier::Functional;
    fatal("unknown execution tier '", name,
          "' (expected 'cycle' or 'functional')");
}

} // namespace liquid::fast

#endif // LIQUID_FAST_TIER_HH
