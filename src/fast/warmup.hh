/**
 * @file
 * Fast-forward warmup: run the functional tier to a retire-count
 * checkpoint, then hand the architectural state to the cycle core so
 * detailed simulation starts from an already-warm program point.
 *
 * The handoff covers exactly the architectural state the scalar ISA
 * promises — registers, compare flags, pc, the call stack, memory (the
 * functional tier runs directly on the System's memory image) — plus
 * the retire count (so the instruction watchdog and retire-keyed fault
 * events keep their absolute positions) and the call-log shape. Cycle
 * stamps for pre-checkpoint calls are synthesized as 0: the functional
 * tier has no cycle clock, so Table-6-style inter-call timing must not
 * mix warmed-up runs. Cycle statistics cover the post-checkpoint
 * portion only.
 */

#ifndef LIQUID_FAST_WARMUP_HH
#define LIQUID_FAST_WARMUP_HH

#include <cstdint>

#include "fast/fast.hh"

namespace liquid
{
class System;
}

namespace liquid::fast
{

/** What the functional prefix executed. */
struct WarmupResult
{
    std::uint64_t retired = 0;  ///< instructions retired functionally
    bool halted = false;        ///< program finished before checkpoint
};

/**
 * Run @p sys's program functionally until @p checkpoint instructions
 * have retired (or halt), then adopt the architectural state into the
 * System's cycle core. Fault events with atRetire < checkpoint fire
 * functionally; later ones fire in the cycle core. fatal() on
 * cycle-periodic interrupt schedules, which have no clock to key on
 * during the functional prefix.
 */
WarmupResult fastForward(System &sys, std::uint64_t checkpoint);

} // namespace liquid::fast

#endif // LIQUID_FAST_WARMUP_HH
