/**
 * @file
 * Functional-tier reference runner for the chaos and depcheck oracles.
 *
 * Both oracles compare a faulted / translated run against a fault-free
 * scalar-baseline run of the same program. That reference side only
 * needs architectural state, so the functional tier computes it at a
 * fraction of the cycle model's cost — which is what lets the trial
 * counts rise while wall-clock stays flat. makeFunctionalReference is
 * a drop-in replacement for chaos makeReference (oracle.hh); the
 * fast_lockstep test asserts the two produce identical references
 * across the whole workload suite.
 */

#ifndef LIQUID_FAST_REFERENCE_HH
#define LIQUID_FAST_REFERENCE_HH

#include "chaos/oracle.hh"

namespace liquid
{
class Program;
}

namespace liquid::fast
{

/**
 * Run the scalar baseline on the functional tier and snapshot the
 * result. Signature-compatible with chaos makeReference so it plugs
 * into ExploreOptions::refMaker; @p width only sizes the retire
 * window bookkeeping, the reference itself is scalar by definition.
 */
ChaosReference makeFunctionalReference(const Program &prog,
                                       unsigned width);

} // namespace liquid::fast

#endif // LIQUID_FAST_REFERENCE_HH
