#include "fast/fast.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "cpu/exec.hh"

namespace liquid::fast
{

FastInterp::FastInterp(const FastConfig &config, const Program &prog,
                       MainMemory &mem)
    : config_(config), prog_(prog), mem_(mem), stats_("fast")
{
    // Satellite of the tier contract: the legacy cycle-periodic
    // interrupt cannot be silently ignored — there is no cycle clock
    // for it to key on, so reject it loudly.
    if (config_.faults.interruptPeriod != 0) {
        fatal("functional tier has no cycle clock: cycle-periodic "
              "interrupt schedule 'p", config_.faults.interruptPeriod,
              "' cannot fire; use retire-keyed events (e.g. 'int@40') "
              "or the cycle tier");
    }
    LIQUID_ASSERT(!prog_.code().empty(), "empty program");
    LIQUID_ASSERT(config_.simdWidth <= maxSimdWidth,
                  "simd width ", config_.simdWidth, " out of range");
    config_.faults.normalize();
    ops_.assign(prog_.code().size(), FastOp{});
    pc_ = prog_.hasLabel("main") ? prog_.labelIndex("main") : 0;
}

// ---- predecode ---------------------------------------------------------

namespace
{

std::uint8_t
flatScalar(RegId reg)
{
    LIQUID_ASSERT(reg.isScalar(), "scalar operand expected, got ",
                  regName(reg));
    return static_cast<std::uint8_t>(
        (reg.cls() == RegClass::Flt ? regsPerClass : 0) + reg.idx());
}

std::uint8_t
flatVector(RegId reg)
{
    LIQUID_ASSERT(reg.isVector(), "vector operand expected, got ",
                  regName(reg));
    return static_cast<std::uint8_t>(
        (reg.cls() == RegClass::VFlt ? regsPerClass : 0) + reg.idx());
}

void
decodeMem(const Inst &inst, FastOp &op)
{
    op.esize = static_cast<std::uint8_t>(inst.elemSize());
    op.memBase = inst.mem.base;
    op.memDisp = inst.mem.disp;
    if (inst.mem.index.isValid())
        op.memIndex = flatScalar(inst.mem.index);
    if (inst.info().memSigned)
        op.flags |= FastOp::flagSigned;
}

} // namespace

FastOp
FastInterp::decodeOne(const Inst &inst) const
{
    FastOp op;
    op.cond = inst.cond;
    op.op = inst.op;
    op.inst = &inst;
    const OpInfo &info = inst.info();

    if (info.isVector) {
        if (info.isLoad) {
            op.handler = HVLoad;
            op.dst = flatVector(inst.dst);
            decodeMem(inst, op);
        } else if (info.isStore) {
            op.handler = HVStore;
            op.src1 = flatVector(inst.src1);
            decodeMem(inst, op);
        } else if (info.isReduction) {
            op.handler = HVRed;
            op.dst = flatScalar(inst.dst);
            op.src1 = flatScalar(inst.src1);
            op.src2 = flatVector(inst.src2);
            if (inst.dst.isFloat())
                op.flags |= FastOp::flagFloat;
        } else if (inst.op == Opcode::Vperm) {
            op.handler = HVPerm;
            op.dst = flatVector(inst.dst);
            op.src1 = flatVector(inst.src1);
        } else if (inst.op == Opcode::Vmask) {
            op.handler = HVMask;
            op.dst = flatVector(inst.dst);
            op.src1 = flatVector(inst.src1);
        } else {
            LIQUID_ASSERT(info.isDataProc, "unhandled vector opcode ",
                          opName(inst.op));
            op.dst = flatVector(inst.dst);
            op.src1 = flatVector(inst.src1);
            if (inst.dst.isFloat())
                op.flags |= FastOp::flagFloat;
            if (inst.cvec != noCvec) {
                op.handler = HVDpCvec;
            } else if (inst.hasImm) {
                op.handler = HVDpImm;
                op.imm = inst.imm;
            } else {
                op.handler = HVDpRR;
                op.src2 = flatVector(inst.src2);
            }
        }
        return op;
    }

    switch (inst.op) {
      case Opcode::Nop:
        op.handler = HNop;
        return op;
      case Opcode::Halt:
        op.handler = HHalt;
        return op;
      case Opcode::Mov:
        op.dst = flatScalar(inst.dst);
        if (inst.hasImm) {
            op.handler = HMovImm;
            op.imm = inst.imm;
        } else {
            op.handler = HMovReg;
            op.src1 = flatScalar(inst.src1);
        }
        return op;
      case Opcode::Cmp:
        op.src1 = flatScalar(inst.src1);
        if (inst.src1.isFloat())
            op.flags |= FastOp::flagFloat;
        if (inst.hasImm) {
            op.handler = HCmpRI;
            op.imm = inst.imm;
        } else {
            op.handler = HCmpRR;
            op.src2 = flatScalar(inst.src2);
        }
        return op;
      case Opcode::B:
        LIQUID_ASSERT(inst.target >= 0, "unresolved branch");
        op.handler = HBranch;
        op.imm = inst.target;
        return op;
      case Opcode::Bl:
        LIQUID_ASSERT(inst.target >= 0, "unresolved bl");
        op.handler = HBl;
        op.imm = inst.target;
        op.memBase = Program::instAddr(inst.target);
        return op;
      case Opcode::Ret:
        op.handler = HRet;
        return op;
      default:
        break;
    }

    if (info.isLoad) {
        op.handler = HLoad;
        op.dst = flatScalar(inst.dst);
        decodeMem(inst, op);
        return op;
    }
    if (info.isStore) {
        op.handler = HStore;
        op.src1 = flatScalar(inst.src1);
        decodeMem(inst, op);
        return op;
    }
    if (info.isDataProc) {
        op.dst = flatScalar(inst.dst);
        op.src1 = flatScalar(inst.src1);
        if (inst.dst.isFloat())
            op.flags |= FastOp::flagFloat;
        if (inst.hasImm) {
            op.handler = HDpRI;
            op.imm = inst.imm;
        } else {
            op.handler = HDpRR;
            op.src2 = flatScalar(inst.src2);
        }
        return op;
    }
    panic("fast: unhandled opcode ", opName(inst.op));
}

void
FastInterp::decodeBlock(int start)
{
    LIQUID_ASSERT(start >= 0 &&
                      static_cast<std::size_t>(start) < ops_.size(),
                  "pc out of range: ", start);
    const auto &code = prog_.code();
    std::size_t i = static_cast<std::size_t>(start);
    int first_effect = -1;
    for (;;) {
        const Inst &inst = code[i];
        FastOp op = decodeOne(inst);
        op.blockStart = start;
        const bool terminator =
            inst.op == Opcode::B || inst.op == Opcode::Bl ||
            inst.op == Opcode::Ret || inst.op == Opcode::Halt;
        // Sabotage: a conditional block terminator falls through one
        // instruction too far — the classic block-boundary off-by-one.
        if (config_.sabotage == Sabotage::OffByOneBlock && terminator &&
            op.handler == HBranch)
            op.pcBump = 2;
        ops_[i] = op;
        ++decodedInsts_;
        if (first_effect < 0 && op.handler != HNop)
            first_effect = static_cast<int>(i);
        if (terminator || i + 1 == ops_.size())
            break;
        ++i;
    }
    ++blocksDecoded_;
    if (pendingStale_ && first_effect >= 0) {
        ops_[static_cast<std::size_t>(first_effect)].handler = HStaleNop;
        pendingStale_ = false;
    }
}

// ---- dispatch-cache invalidation ---------------------------------------

int
FastInterp::addrToIndex(Addr addr) const
{
    if (addr < Program::codeBase)
        return -1;
    const Addr index = (addr - Program::codeBase) / 4;
    if (index >= ops_.size())
        return -1;
    return static_cast<int>(index);
}

void
FastInterp::invalidateIndexRange(std::size_t lo, std::size_t hi)
{
    hi = std::min(hi, ops_.size());
    for (std::size_t i = lo; i < hi; ++i) {
        const int anchor = ops_[i].blockStart;
        if (anchor < 0)
            continue;
        // Entries carry their block's anchor index, so dropping the
        // contiguous anchor run drops the whole predecoded block.
        std::size_t j = static_cast<std::size_t>(anchor);
        while (j < ops_.size() && ops_[j].blockStart == anchor)
            resetOp(j++);
        ++invalidations_;
    }
}

void
FastInterp::invalidateCodeRange(Addr lo, Addr hi)
{
    if (hi <= Program::codeBase)
        return;
    const std::size_t first =
        lo <= Program::codeBase
            ? 0
            : static_cast<std::size_t>((lo - Program::codeBase) / 4);
    const std::size_t last =
        static_cast<std::size_t>((hi - Program::codeBase + 3) / 4);
    invalidateIndexRange(first, last);
}

void
FastInterp::flushDecodeCache()
{
    for (std::size_t i = 0; i < ops_.size(); ++i)
        resetOp(i);
    ++flushes_;
}

bool
FastInterp::isDecoded(int index) const
{
    return index >= 0 && static_cast<std::size_t>(index) < ops_.size() &&
           ops_[static_cast<std::size_t>(index)].blockStart >= 0;
}

void
FastInterp::corruptStale(Addr lo)
{
    int start = addrToIndex(lo);
    if (start < 0)
        start = 0;
    for (std::size_t i = static_cast<std::size_t>(start);
         i < ops_.size(); ++i) {
        if (ops_[i].blockStart >= 0 && ops_[i].handler != HNop) {
            ops_[i].handler = HStaleNop;
            return;
        }
    }
    // Nothing decoded there yet: stale the next block decoded instead,
    // so the seeded bug always lands somewhere observable.
    pendingStale_ = true;
}

// ---- fault events ------------------------------------------------------

void
FastInterp::fireDueFaults()
{
    const auto &events = config_.faults.events;
    while (nextFault_ < events.size() &&
           events[nextFault_].atRetire <= retired_) {
        raiseFault(events[nextFault_]);
        ++nextFault_;
    }
}

void
FastInterp::raiseFault(const FaultEvent &event)
{
    ++faultCounts_[static_cast<std::size_t>(event.kind)];

    switch (event.kind) {
      case FaultKind::Interrupt:
        // No translator to abort and no cycle clock to charge: an
        // interrupt is architecturally transparent here, exactly as
        // the transparency contract demands of the cycle model.
        return;

      case FaultKind::DcachePerturb:
        // Timing-only perturbation; the functional tier has no caches.
        return;

      case FaultKind::UcodeFlush:
        // Context switch: the cycle model drops every translation; the
        // functional tier drops every predecoded block.
        flushDecodeCache();
        return;

      case FaultKind::UcodeEvict: {
        const int index = event.addr != invalidAddr
                              ? addrToIndex(event.addr)
                              : lastCallTarget_;
        if (index >= 0)
            invalidateIndexRange(static_cast<std::size_t>(index),
                                 static_cast<std::size_t>(index) + 1);
        return;
      }

      case FaultKind::SmcStore: {
        Addr lo = event.addr;
        if (lo == invalidAddr) {
            if (lastCallTarget_ < 0) {
                flushDecodeCache();
                return;
            }
            lo = Program::instAddr(lastCallTarget_);
        }
        if (config_.sabotage == Sabotage::StaleDecodeAfterSmc) {
            // Sabotage: skip the invalidation and leave a stale entry
            // behind — the bug class the SMC hook exists to prevent.
            corruptStale(lo);
            return;
        }
        invalidateCodeRange(lo, lo + 4);
        return;
      }

      case FaultKind::NumKinds:
        break;
    }
    panic("bad fault kind");
}

// ---- handlers ----------------------------------------------------------

void
FastInterp::hNop(const FastOp &o)
{
    ++retired_;
    pc_ += o.pcBump;
}

void
FastInterp::hHalt(const FastOp &o)
{
    ++retired_;
    halted_ = true;
    pc_ += o.pcBump;
}

void
FastInterp::hStaleNop(const FastOp &o)
{
    // Sabotage only: the instruction retires but its effect is gone.
    ++retired_;
    pc_ += o.pcBump;
}

void
FastInterp::hMovImm(const FastOp &o)
{
    ++retired_;
    if (execCond(o))
        scalars_[o.dst] = static_cast<Word>(o.imm);
    pc_ += o.pcBump;
}

void
FastInterp::hMovReg(const FastOp &o)
{
    ++retired_;
    if (execCond(o))
        scalars_[o.dst] = scalars_[o.src1];
    pc_ += o.pcBump;
}

void
FastInterp::hCmpRR(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        const Word a = scalars_[o.src1];
        const Word b = scalars_[o.src2];
        const bool use_float = (o.flags & FastOp::flagFloat) != 0;
        cmp_ = config_.sabotage == Sabotage::WrongFlagUpdate
                   ? evalCompare(b, a, use_float)
                   : evalCompare(a, b, use_float);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hCmpRI(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        const Word a = scalars_[o.src1];
        const Word b = static_cast<Word>(o.imm);
        const bool use_float = (o.flags & FastOp::flagFloat) != 0;
        cmp_ = config_.sabotage == Sabotage::WrongFlagUpdate
                   ? evalCompare(b, a, use_float)
                   : evalCompare(a, b, use_float);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hBranch(const FastOp &o)
{
    ++retired_;
    if (execCond(o))
        pc_ = o.imm;
    else
        pc_ += o.pcBump;
}

void
FastInterp::hBl(const FastOp &o)
{
    // Like the cycle core, bl and ret ignore the condition field.
    ++retired_;
    ++calls_;
    ++callCounts_[o.memBase];
    lastCallTarget_ = o.imm;
    callStack_.push_back(pc_ + 1);
    pc_ = o.imm;
}

void
FastInterp::hRet(const FastOp &o)
{
    ++retired_;
    LIQUID_ASSERT(!callStack_.empty(), "ret with empty call stack");
    pc_ = callStack_.back();
    callStack_.pop_back();
    static_cast<void>(o);
}

void
FastInterp::hLoad(const FastOp &o)
{
    ++retired_;
    const Addr ea = memEA(o);
    // The cycle core reads memory regardless of the condition and
    // gates only the register write; mirror that exactly.
    const Word value =
        mem_.readElem(ea, o.esize, (o.flags & FastOp::flagSigned) != 0);
    if (execCond(o))
        scalars_[o.dst] = value;
    pc_ += o.pcBump;
}

void
FastInterp::hStore(const FastOp &o)
{
    ++retired_;
    const Addr ea = memEA(o);
    const Word value = scalars_[o.src1];
    ++storesSeen_;
    if (execCond(o) &&
        (config_.sabotage != Sabotage::SkippedStore ||
         storesSeen_ % 17 != 0))
        mem_.writeElem(ea, o.esize, value);
    pc_ += o.pcBump;
}

void
FastInterp::hDpRR(const FastOp &o)
{
    ++retired_;
    const Word value =
        evalScalarOp(o.op, scalars_[o.src1], scalars_[o.src2],
                     (o.flags & FastOp::flagFloat) != 0);
    if (execCond(o))
        scalars_[o.dst] = value;
    pc_ += o.pcBump;
}

void
FastInterp::hDpRI(const FastOp &o)
{
    ++retired_;
    const Word value =
        evalScalarOp(o.op, scalars_[o.src1], static_cast<Word>(o.imm),
                     (o.flags & FastOp::flagFloat) != 0);
    if (execCond(o))
        scalars_[o.dst] = value;
    pc_ += o.pcBump;
}

unsigned
FastInterp::vectorWidth(const FastOp &o) const
{
    if (config_.simdWidth == 0) {
        fatal("vector instruction '", o.inst->toString(),
              "' but no SIMD accelerator configured");
    }
    return config_.simdWidth;
}

void
FastInterp::hVLoad(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        const unsigned width = vectorWidth(o);
        const Addr ea = memEA(o);
        const bool sign = (o.flags & FastOp::flagSigned) != 0;
        VecValue value{};
        for (unsigned l = 0; l < width; ++l)
            value[l] = mem_.readElem(ea + l * o.esize, o.esize, sign);
        vectors_[o.dst] = value;
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVStore(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        const unsigned width = vectorWidth(o);
        const Addr ea = memEA(o);
        const VecValue &value = vectors_[o.src1];
        for (unsigned l = 0; l < width; ++l)
            mem_.writeElem(ea + l * o.esize, o.esize, value[l]);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVRed(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        scalars_[o.dst] = evalReduction(
            o.op, scalars_[o.src1], vectors_[o.src2], vectorWidth(o),
            (o.flags & FastOp::flagFloat) != 0);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVPerm(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        vectors_[o.dst] =
            evalPerm(vectors_[o.src1], o.inst->permKind,
                     o.inst->permBlock, vectorWidth(o));
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVMask(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        vectors_[o.dst] =
            evalMask(vectors_[o.src1], o.inst->maskBits,
                     o.inst->maskBlock, vectorWidth(o));
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVDpRR(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        vectors_[o.dst] = evalVectorOp(
            o.op, vectors_[o.src1], vectors_[o.src2], vectorWidth(o),
            (o.flags & FastOp::flagFloat) != 0);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVDpImm(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        VecValue imm{};
        imm.fill(static_cast<Word>(o.imm));
        vectors_[o.dst] = evalVectorOp(
            o.op, vectors_[o.src1], imm, vectorWidth(o),
            (o.flags & FastOp::flagFloat) != 0);
    }
    pc_ += o.pcBump;
}

void
FastInterp::hVDpCvec(const FastOp &o)
{
    ++retired_;
    if (execCond(o)) {
        vectors_[o.dst] = evalVectorConstOp(
            o.op, vectors_[o.src1], prog_.cvec(o.inst->cvec),
            vectorWidth(o), (o.flags & FastOp::flagFloat) != 0);
    }
    pc_ += o.pcBump;
}

// ---- dispatch ----------------------------------------------------------

void
FastInterp::execOne(const FastOp &o)
{
    switch (o.handler) {
      case HNop: hNop(o); return;
      case HHalt: hHalt(o); return;
      case HStaleNop: hStaleNop(o); return;
      case HMovImm: hMovImm(o); return;
      case HMovReg: hMovReg(o); return;
      case HCmpRR: hCmpRR(o); return;
      case HCmpRI: hCmpRI(o); return;
      case HBranch: hBranch(o); return;
      case HBl: hBl(o); return;
      case HRet: hRet(o); return;
      case HLoad: hLoad(o); return;
      case HStore: hStore(o); return;
      case HDpRR: hDpRR(o); return;
      case HDpRI: hDpRI(o); return;
      case HVLoad: hVLoad(o); return;
      case HVStore: hVStore(o); return;
      case HVRed: hVRed(o); return;
      case HVPerm: hVPerm(o); return;
      case HVMask: hVMask(o); return;
      case HVDpRR: hVDpRR(o); return;
      case HVDpImm: hVDpImm(o); return;
      case HVDpCvec: hVDpCvec(o); return;
      default:
        panic("fast: dispatch of undecoded handler ",
              static_cast<unsigned>(o.handler));
    }
}

void
FastInterp::dispatchSwitch(std::uint64_t stop)
{
    while (!halted_ && retired_ < stop) {
        LIQUID_ASSERT(pc_ >= 0 &&
                          static_cast<std::size_t>(pc_) < ops_.size(),
                      "pc out of range: ", pc_);
        const FastOp &o = ops_[static_cast<std::size_t>(pc_)];
        if (o.handler == HInvalid) {
            decodeBlock(pc_);
            continue;
        }
        execOne(o);
    }
}

// Computed-goto threaded dispatch (GNU labels-as-values): every handler
// site ends in its own indirect jump, so the branch predictor can learn
// per-opcode successor patterns — the point of threaded dispatch.
// NOLINTBEGIN(cppcoreguidelines-avoid-goto,hicpp-avoid-goto)
void
FastInterp::dispatchGoto(std::uint64_t stop)
{
#if defined(__GNUC__) || defined(__clang__)
    static const void *const table[] = {
        &&L_Invalid, &&L_Nop,    &&L_Halt,   &&L_StaleNop,
        &&L_MovImm,  &&L_MovReg, &&L_CmpRR,  &&L_CmpRI,
        &&L_Branch,  &&L_Bl,     &&L_Ret,    &&L_Load,
        &&L_Store,   &&L_DpRR,   &&L_DpRI,   &&L_VLoad,
        &&L_VStore,  &&L_VRed,   &&L_VPerm,  &&L_VMask,
        &&L_VDpRR,   &&L_VDpImm, &&L_VDpCvec,
    };
    LIQUID_ASSERT(sizeof(table) / sizeof(table[0]) == HNumHandlers,
                  "dispatch table out of sync with FastHandler");

#define LIQUID_FAST_NEXT()                                              \
    do {                                                                \
        if (halted_ || retired_ >= stop)                                \
            return;                                                     \
        LIQUID_ASSERT(pc_ >= 0 && static_cast<std::size_t>(pc_) <       \
                                      ops_.size(),                      \
                      "pc out of range: ", pc_);                        \
        goto *table[ops_[static_cast<std::size_t>(pc_)].handler];       \
    } while (0)

    LIQUID_FAST_NEXT();
L_Invalid:
    decodeBlock(pc_);
    LIQUID_FAST_NEXT();
L_Nop:
    hNop(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Halt:
    hHalt(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_StaleNop:
    hStaleNop(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_MovImm:
    hMovImm(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_MovReg:
    hMovReg(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_CmpRR:
    hCmpRR(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_CmpRI:
    hCmpRI(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Branch:
    hBranch(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Bl:
    hBl(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Ret:
    hRet(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Load:
    hLoad(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_Store:
    hStore(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_DpRR:
    hDpRR(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_DpRI:
    hDpRI(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VLoad:
    hVLoad(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VStore:
    hVStore(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VRed:
    hVRed(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VPerm:
    hVPerm(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VMask:
    hVMask(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VDpRR:
    hVDpRR(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VDpImm:
    hVDpImm(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();
L_VDpCvec:
    hVDpCvec(ops_[static_cast<std::size_t>(pc_)]);
    LIQUID_FAST_NEXT();

#undef LIQUID_FAST_NEXT
#else
    dispatchSwitch(stop);
#endif
}
// NOLINTEND(cppcoreguidelines-avoid-goto,hicpp-avoid-goto)

// ---- run loops ---------------------------------------------------------

bool
FastInterp::runUntil(std::uint64_t target)
{
    const auto &events = config_.faults.events;
    for (;;) {
        if (halted_ || retired_ >= target)
            break;
        if (retired_ >= config_.maxInsts) {
            panic("instruction watchdog exceeded (", config_.maxInsts,
                  ")");
        }
        fireDueFaults();
        std::uint64_t stop = std::min(target, config_.maxInsts);
        if (nextFault_ < events.size())
            stop = std::min(stop, events[nextFault_].atRetire);
        if (config_.switchDispatch)
            dispatchSwitch(stop);
        else
            dispatchGoto(stop);
    }
    return halted_;
}

void
FastInterp::run()
{
    runUntil(std::numeric_limits<std::uint64_t>::max());
}

bool
FastInterp::step()
{
    if (halted_)
        return false;
    if (retired_ >= config_.maxInsts)
        panic("instruction watchdog exceeded (", config_.maxInsts, ")");
    fireDueFaults();
    LIQUID_ASSERT(pc_ >= 0 &&
                      static_cast<std::size_t>(pc_) < ops_.size(),
                  "pc out of range: ", pc_);
    if (ops_[static_cast<std::size_t>(pc_)].handler == HInvalid)
        decodeBlock(pc_);
    execOne(ops_[static_cast<std::size_t>(pc_)]);
    return !halted_;
}

// ---- state import/export and stats -------------------------------------

void
FastInterp::exportRegs(RegFile &out) const
{
    for (unsigned i = 0; i < regsPerClass; ++i) {
        out.write(RegId(RegClass::Int, i), scalars_[i]);
        out.write(RegId(RegClass::Flt, i), scalars_[regsPerClass + i]);
        out.writeVec(RegId(RegClass::Vec, i), vectors_[i]);
        out.writeVec(RegId(RegClass::VFlt, i),
                     vectors_[regsPerClass + i]);
    }
    out.setCmpState(cmp_);
}

void
FastInterp::importRegs(const RegFile &in)
{
    for (unsigned i = 0; i < regsPerClass; ++i) {
        scalars_[i] = in.read(RegId(RegClass::Int, i));
        scalars_[regsPerClass + i] = in.read(RegId(RegClass::Flt, i));
        vectors_[i] = in.readVec(RegId(RegClass::Vec, i));
        vectors_[regsPerClass + i] =
            in.readVec(RegId(RegClass::VFlt, i));
    }
    cmp_ = in.cmpState();
}

StatGroup &
FastInterp::stats()
{
    stats_.set("insts", retired_);
    stats_.set("calls", calls_);
    stats_.set("blocksDecoded", blocksDecoded_);
    stats_.set("decodedInsts", decodedInsts_);
    stats_.set("decodeInvalidations", invalidations_);
    stats_.set("decodeFlushes", flushes_);
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(FaultKind::NumKinds); ++k) {
        if (faultCounts_[k]) {
            stats_.set(std::string("faults.") +
                           faultKindName(static_cast<FaultKind>(k)),
                       faultCounts_[k]);
        }
    }
    if (faultCounts_[static_cast<std::size_t>(FaultKind::Interrupt)]) {
        stats_.set("interrupts",
                   faultCounts_[static_cast<std::size_t>(
                       FaultKind::Interrupt)]);
    }
    return stats_;
}

} // namespace liquid::fast
