/**
 * @file
 * The functional execution tier: a threaded-dispatch interpreter that
 * retires the same architectural state as the cycle core (cpu/core.hh)
 * with no cycle clock, no caches, no translator and no microcode.
 *
 * Instructions are predecoded per straight-line block into a dispatch
 * cache of FastOp records — handler id plus pre-extracted operands —
 * and executed by computed-goto handler chaining (GNU labels-as-values,
 * libriscv-style) with a portable switch fallback. The dispatch cache
 * is invalidated on the same external events that invalidate the
 * microcode cache in the cycle model: UcodeFlush drops everything,
 * UcodeEvict drops one region's blocks, SmcStore drops the blocks
 * covering the stored-to code address. Those events never change
 * architectural results here (the model's programs never actually
 * rewrite code), so the invalidation machinery is exercised while the
 * lockstep contract stays exact.
 *
 * Fault semantics: retire-keyed one-shot events fire exactly as in the
 * cycle core — at the top of the step that would retire instruction
 * atRetire+1. The legacy cycle-periodic interrupt cannot fire without a
 * cycle clock and is rejected with a diagnostic at construction.
 *
 * The sabotage modes seed deliberate handler bugs for the lockstep
 * harness's self-test; each must be caught by per-retire comparison.
 */

#ifndef LIQUID_FAST_FAST_HH
#define LIQUID_FAST_FAST_HH

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "asm/program.hh"
#include "chaos/fault_schedule.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/regfile.hh"
#include "memory/main_memory.hh"

namespace liquid::fast
{

/**
 * Deliberately WRONG handler behaviour, used only by the lockstep
 * differential harness's self-test: every mode must surface as a
 * divergence, proving the compare actually bites.
 */
enum class Sabotage
{
    None,
    WrongFlagUpdate,      ///< cmp compares (b, a) instead of (a, b)
    SkippedStore,         ///< every 17th scalar store drops its write
    StaleDecodeAfterSmc,  ///< SMC events leave a stale dispatch entry
    OffByOneBlock,        ///< block terminators fall through off by one
};

/** Functional-tier configuration. */
struct FastConfig
{
    /** SIMD accelerator vector width in 32-bit lanes; 0 = none. */
    unsigned simdWidth = 0;

    /**
     * Retire-keyed fault events (see fault_schedule.hh). A nonzero
     * interruptPeriod is rejected with a diagnostic: the functional
     * tier has no cycle clock for it to key on.
     */
    FaultSchedule faults{};

    /** Watchdog: panic after this many retired instructions. */
    std::uint64_t maxInsts = 2'000'000'000ull;

    /** Force the portable switch dispatch loop (differential tests). */
    bool switchDispatch = false;

    Sabotage sabotage = Sabotage::None;
};

/** Predecoded-instruction handler ids (dispatch-table order). */
enum FastHandler : std::uint8_t
{
    HInvalid,   ///< not decoded yet: decode the block, then re-dispatch
    HNop,
    HHalt,
    HStaleNop,  ///< sabotage only: retires but drops the effect
    HMovImm,
    HMovReg,
    HCmpRR,
    HCmpRI,
    HBranch,
    HBl,
    HRet,
    HLoad,
    HStore,
    HDpRR,
    HDpRI,
    HVLoad,
    HVStore,
    HVRed,
    HVPerm,
    HVMask,
    HVDpRR,
    HVDpImm,
    HVDpCvec,
    HNumHandlers,
};

/**
 * One predecoded instruction: handler id plus operands pre-extracted
 * from the Inst so the hot loop touches no RegId/OpInfo machinery.
 * Register fields are flattened register-file indices (regfile.hh
 * layout: float classes at offset regsPerClass). Slow-path operands
 * (permutation kind, lane mask, constant-vector id) stay behind the
 * Inst pointer.
 */
struct FastOp
{
    static constexpr std::uint8_t noIndexReg = 0xFF;
    static constexpr std::uint8_t flagFloat = 1;   ///< float semantics
    static constexpr std::uint8_t flagSigned = 2;  ///< sign-extending load

    std::uint8_t handler = HInvalid;
    Cond cond = Cond::AL;
    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    std::uint8_t esize = 0;            ///< memory element size
    std::uint8_t flags = 0;
    std::uint8_t pcBump = 1;           ///< fall-through pc increment
    std::uint8_t memIndex = noIndexReg;
    Opcode op = Opcode::Nop;           ///< for the generic eval handlers
    std::int32_t imm = 0;              ///< immediate or branch target
    std::int32_t memDisp = 0;
    Addr memBase = 0;                  ///< also the Bl entry address
    std::int32_t blockStart = -1;      ///< block anchor; -1 = undecoded
    const Inst *inst = nullptr;
};

/** The functional interpreter. */
class FastInterp
{
  public:
    FastInterp(const FastConfig &config, const Program &prog,
               MainMemory &mem);

    /** Run from the program's "main" label (or index 0) until halt. */
    void run();

    /**
     * Run until @p target instructions have retired (or halt, or the
     * watchdog). Events with atRetire == target deliberately do NOT
     * fire — they belong to the step retiring target+1, which the
     * cycle core executes after a warmup handoff. Returns halted().
     */
    bool runUntil(std::uint64_t target);

    /** Retire a single instruction; returns false once halted. */
    bool step();

    bool halted() const { return halted_; }
    std::uint64_t retired() const { return retired_; }
    int pc() const { return pc_; }
    int cmpState() const { return cmp_; }
    const std::vector<int> &callStack() const { return callStack_; }
    /** Index of the first fault event not yet fired. */
    std::size_t nextFaultIndex() const { return nextFault_; }

    /** Flattened scalar registers (regfile.hh layout). */
    const std::array<Word, 2 * regsPerClass> &scalars() const
    {
        return scalars_;
    }
    /** Flattened vector registers (regfile.hh layout). */
    const std::array<VecValue, 2 * regsPerClass> &vectors() const
    {
        return vectors_;
    }

    /** Copy architectural register state out (warmup handoff). */
    void exportRegs(RegFile &out) const;
    /** Adopt register state (tests; the tier normally starts at reset). */
    void importRegs(const RegFile &in);

    /** Full (uncapped) bl target -> call count map. */
    const std::map<Addr, std::uint64_t> &callCounts() const
    {
        return callCounts_;
    }

    /** Counters, refreshed on access ("insts", "blocksDecoded", ...). */
    StatGroup &stats();

    const FastConfig &config() const { return config_; }

    // ---- dispatch-cache introspection (tests and fault events) ---------

    /** True if instruction @p index has a live dispatch-cache entry. */
    bool isDecoded(int index) const;
    /** Drop every block overlapping code addresses [lo, hi). */
    void invalidateCodeRange(Addr lo, Addr hi);
    /** Drop the whole dispatch cache (context-switch flush path). */
    void flushDecodeCache();
    std::uint64_t blocksDecoded() const { return blocksDecoded_; }
    std::uint64_t decodeInvalidations() const { return invalidations_; }
    std::uint64_t decodeFlushes() const { return flushes_; }

  private:
    bool execCond(const FastOp &o) const
    {
        if (o.cond == Cond::AL)
            return true;
        switch (o.cond) {
          case Cond::EQ: return cmp_ == 0;
          case Cond::NE: return cmp_ != 0;
          case Cond::LT: return cmp_ < 0;
          case Cond::LE: return cmp_ <= 0;
          case Cond::GT: return cmp_ > 0;
          case Cond::GE: return cmp_ >= 0;
          default: return true;
        }
    }

    Addr memEA(const FastOp &o) const
    {
        std::int64_t index = o.memDisp;
        if (o.memIndex != FastOp::noIndexReg)
            index += static_cast<SWord>(scalars_[o.memIndex]);
        return o.memBase + static_cast<Addr>(index * o.esize);
    }

    unsigned vectorWidth(const FastOp &o) const;

    // Handler bodies (shared by both dispatch loops and step()).
    void hNop(const FastOp &o);
    void hHalt(const FastOp &o);
    void hStaleNop(const FastOp &o);
    void hMovImm(const FastOp &o);
    void hMovReg(const FastOp &o);
    void hCmpRR(const FastOp &o);
    void hCmpRI(const FastOp &o);
    void hBranch(const FastOp &o);
    void hBl(const FastOp &o);
    void hRet(const FastOp &o);
    void hLoad(const FastOp &o);
    void hStore(const FastOp &o);
    void hDpRR(const FastOp &o);
    void hDpRI(const FastOp &o);
    void hVLoad(const FastOp &o);
    void hVStore(const FastOp &o);
    void hVRed(const FastOp &o);
    void hVPerm(const FastOp &o);
    void hVMask(const FastOp &o);
    void hVDpRR(const FastOp &o);
    void hVDpImm(const FastOp &o);
    void hVDpCvec(const FastOp &o);

    /** Execute the already-decoded op at pc_ (single-step slow path). */
    void execOne(const FastOp &o);

    // Dispatch loops: retire until @p stop retires, halt or an
    // undecoded block (HInvalid decodes in-loop and re-dispatches).
    void dispatchGoto(std::uint64_t stop);
    void dispatchSwitch(std::uint64_t stop);

    FastOp decodeOne(const Inst &inst) const;
    /** Predecode the straight-line block starting at @p start. */
    void decodeBlock(int start);
    void resetOp(std::size_t index) { ops_[index] = FastOp{}; }
    /** Drop whole blocks overlapping instruction indices [lo, hi). */
    void invalidateIndexRange(std::size_t lo, std::size_t hi);
    int addrToIndex(Addr addr) const;
    /** Sabotage: leave a stale (effect-dropping) entry at/after @p lo. */
    void corruptStale(Addr lo);

    /** Fire every due event (atRetire <= retired_). */
    void fireDueFaults();
    void raiseFault(const FaultEvent &event);

    FastConfig config_;
    const Program &prog_;
    MainMemory &mem_;

    // Architectural state, flattened for handler speed (regfile.hh
    // layout; RegFile's per-access asserts are always compiled in).
    std::array<Word, 2 * regsPerClass> scalars_{};
    std::array<VecValue, 2 * regsPerClass> vectors_{};
    int cmp_ = 0;

    int pc_ = 0;
    std::vector<int> callStack_;
    bool halted_ = false;
    std::uint64_t retired_ = 0;
    std::size_t nextFault_ = 0;
    int lastCallTarget_ = -1;  ///< default victim for addressless events

    std::vector<FastOp> ops_;  ///< the dispatch cache, one per inst

    std::map<Addr, std::uint64_t> callCounts_;
    std::uint64_t calls_ = 0;
    std::uint64_t storesSeen_ = 0;  ///< sabotage cadence
    std::uint64_t blocksDecoded_ = 0;
    std::uint64_t decodedInsts_ = 0;
    std::uint64_t invalidations_ = 0;
    std::uint64_t flushes_ = 0;
    std::array<std::uint64_t, static_cast<std::size_t>(
                                  FaultKind::NumKinds)>
        faultCounts_{};
    bool pendingStale_ = false;

    StatGroup stats_;
};

} // namespace liquid::fast

#endif // LIQUID_FAST_FAST_HH
