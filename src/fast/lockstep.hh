/**
 * @file
 * Lockstep differential harness: run the cycle core and the functional
 * interpreter over the same program, compare architectural state after
 * every retired instruction, and report the first divergences.
 *
 * This is the functional tier's correctness gate. Per-retire lockstep
 * requires the two retire streams to be identical instruction-for-
 * instruction, which holds for ScalarBaseline and NativeSimd execution;
 * Liquid mode interleaves dispatched microcode into the stream, so its
 * equivalence is covered by the chaos oracle's end-state contract
 * instead, and the harness rejects it.
 *
 * The per-retire compare covers pc, the full scalar and vector register
 * files, the compare flags and the halt state; the data-memory image is
 * compared periodically and in full at the end, together with the call
 * log shape and the total retire count.
 */

#ifndef LIQUID_FAST_LOCKSTEP_HH
#define LIQUID_FAST_LOCKSTEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "chaos/fault_schedule.hh"
#include "fast/fast.hh"
#include "sim/system.hh"

namespace liquid::fast
{

/** Lockstep-run parameters. */
struct LockstepOptions
{
    /** Retire-keyed fault events delivered to BOTH tiers. */
    FaultSchedule faults{};
    /** Drive the functional side through the switch fallback loop. */
    bool switchDispatch = false;
    /** Seed a deliberate functional-side bug (self-test). */
    Sabotage sabotage = Sabotage::None;
    /** Watchdog for both tiers. */
    std::uint64_t maxRetires = 50'000'000ull;
    /** Full data-image compare every N retires; 0 = only at the end. */
    std::uint64_t memCompareEvery = 4096;
    /** Cap on recorded divergence messages. */
    std::size_t maxDivergences = 8;
};

/** Outcome of one lockstep run. */
struct LockstepResult
{
    bool equal = true;
    std::uint64_t retires = 0;
    std::vector<std::string> divergences;  ///< empty when equal
};

/**
 * Run @p prog on both tiers under @p mode / @p width and compare
 * per-retire. fatal() on ExecMode::Liquid (see file header).
 */
LockstepResult runLockstep(const Program &prog, ExecMode mode,
                           unsigned width,
                           const LockstepOptions &opts = {});

} // namespace liquid::fast

#endif // LIQUID_FAST_LOCKSTEP_HH
