#include "fast/warmup.hh"

#include "cpu/core.hh"
#include "sim/system.hh"

namespace liquid::fast
{

WarmupResult
fastForward(System &sys, std::uint64_t checkpoint)
{
    const CoreConfig &core_config = sys.config().core;

    FastConfig config;
    config.simdWidth = core_config.simdWidth;
    config.faults = core_config.faults;
    config.maxInsts = core_config.maxInsts;

    // The functional prefix runs directly on the System's memory, so
    // every store is already in place when the cycle core takes over.
    FastInterp interp(config, sys.program(), sys.memory());
    interp.runUntil(checkpoint);

    RegFile regs;
    interp.exportRegs(regs);
    sys.core().adoptArchState(regs, interp.pc(), interp.halted(),
                              interp.callStack(), interp.retired(),
                              interp.nextFaultIndex(),
                              interp.callCounts());

    WarmupResult res;
    res.retired = interp.retired();
    res.halted = interp.halted();
    return res;
}

} // namespace liquid::fast
