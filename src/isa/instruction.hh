/**
 * @file
 * The instruction representation shared by the assembler, the pipeline
 * model, the dynamic translator and the scalarizer.
 *
 * Instructions are held decoded (gem5-style StaticInst flavour) rather
 * than as encoded words; each occupies 4 architectural bytes for code
 * size accounting, matching the paper's 32-bit instructions.
 */

#ifndef LIQUID_ISA_INSTRUCTION_HH
#define LIQUID_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"
#include "isa/opcodes.hh"
#include "isa/perm.hh"
#include "isa/registers.hh"

namespace liquid
{

/** Sentinel: instruction has no constant-vector operand. */
inline constexpr std::uint32_t noCvec = 0xFFFFFFFFu;

/**
 * Memory operand. Effective byte address is
 *   base + (disp + index) * elemSize(opcode)
 * i.e. index and displacement select *elements*, as in the paper's
 * examples where the loop induction variable picks a vector element.
 */
struct MemRef
{
    Addr base = 0;
    RegId index = RegId::invalid();
    std::int32_t disp = 0;
    std::string baseSym;  ///< symbolic base for disassembly only

    bool
    operator==(const MemRef &o) const
    {
        return base == o.base && index == o.index && disp == o.disp;
    }
};

/** One decoded instruction. */
struct Inst
{
    Opcode op = Opcode::Nop;
    Cond cond = Cond::AL;

    RegId dst;
    RegId src1;
    RegId src2;
    bool hasImm = false;
    std::int32_t imm = 0;     ///< src2 immediate when hasImm

    MemRef mem;               ///< loads/stores

    std::int32_t target = -1; ///< branches: resolved instruction index
    std::string targetSym;    ///< branches: label for disassembly
    bool hinted = false;      ///< Bl: marked as a translatable region
    /**
     * Bl: maximum vectorizable width the region was compiled/aligned
     * for (paper Section 3.1); 0 = unknown. Encoded in the dedicated
     * translatable branch-and-link the paper proposes (Section 3.5).
     */
    std::uint8_t blWidthHint = 0;

    PermKind permKind = PermKind::SwapHalves; ///< Vperm
    std::uint8_t permBlock = 0;               ///< Vperm block size

    std::uint32_t maskBits = 0;   ///< Vmask lane-keep pattern
    std::uint8_t maskBlock = 0;   ///< Vmask pattern period

    std::uint32_t cvec = noCvec;  ///< constant-vector pool id

    const OpInfo &info() const { return opInfo(op); }

    bool isLoad() const { return info().isLoad; }
    bool isStore() const { return info().isStore; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return info().isBranch; }
    bool isVector() const { return info().isVector; }
    bool isDataProc() const { return info().isDataProc; }
    unsigned elemSize() const { return info().memElemSize; }

    /** Semantic equality (symbols ignored). */
    bool operator==(const Inst &o) const;

    /** Disassemble in the paper's notation. */
    std::string toString() const;

    // ---- builders ------------------------------------------------------

    /** mov dst, #imm */
    static Inst movImm(RegId dst, std::int32_t imm, Cond cond = Cond::AL);
    /** mov dst, src */
    static Inst movReg(RegId dst, RegId src, Cond cond = Cond::AL);
    /** op dst, src1, src2 */
    static Inst dp(Opcode op, RegId dst, RegId src1, RegId src2);
    /** op dst, src1, #imm */
    static Inst dpImm(Opcode op, RegId dst, RegId src1, std::int32_t imm);
    /** vector op dst, src1, cvec#id */
    static Inst dpCvec(Opcode op, RegId dst, RegId src1,
                       std::uint32_t cvec_id);
    /** cmp src1, src2 */
    static Inst cmpReg(RegId src1, RegId src2);
    /** cmp src1, #imm */
    static Inst cmpImm(RegId src1, std::int32_t imm);
    /** load dst, [mem] */
    static Inst load(Opcode op, RegId dst, MemRef mem);
    /** store src, [mem] */
    static Inst store(Opcode op, RegId src, MemRef mem);
    /** b<cond> target */
    static Inst branch(Cond cond, std::int32_t target,
                       std::string sym = {});
    /** bl target */
    static Inst call(std::int32_t target, bool hinted,
                     std::string sym = {}, unsigned width_hint = 0);
    static Inst ret();
    static Inst halt();
    static Inst nop();
    /** vperm dst, src, kind/block */
    static Inst vperm(RegId dst, RegId src, PermKind kind, unsigned block);
    /** vmask dst, src, bits/block */
    static Inst vmask(RegId dst, RegId src, std::uint32_t bits,
                      unsigned block);
    /** vector reduction: dst(scalar) = red(dst, src2(vector)) */
    static Inst vred(Opcode op, RegId scalar_dst, RegId vec_src);
};

/**
 * A per-lane constant vector (paper Table 1 category 3 and lane masks).
 * `lanes.size()` is the pattern period; a width-W vector op applies
 * lanes[i % period] to lane i and requires period <= W.
 */
struct ConstVec
{
    std::vector<Word> lanes;

    bool operator==(const ConstVec &o) const { return lanes == o.lanes; }
};

} // namespace liquid

#endif // LIQUID_ISA_INSTRUCTION_HH
