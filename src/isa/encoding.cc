#include "isa/encoding.hh"

#include "common/bitfield.hh"

namespace liquid
{

namespace
{

// Memory-operand literal indices are 6 bits; dp/vmask indices are
// wider, but one shared bound keeps the pool model simple.
constexpr unsigned maxLiterals = 64;

unsigned
encodeReg(RegId reg)
{
    // Validity is derivable from the opcode and format flag, so the
    // full 6-bit space encodes real registers (vf15 is flat 63).
    return reg.isValid() ? reg.flat() : 0u;
}

RegId
decodeReg(unsigned field)
{
    return RegId::fromFlat(field);
}

bool
fitsSigned(std::int64_t value, unsigned bits)
{
    const std::int64_t lo = -(1ll << (bits - 1));
    const std::int64_t hi = (1ll << (bits - 1)) - 1;
    return value >= lo && value <= hi;
}

} // namespace

unsigned
LiteralPool::intern(Word value)
{
    for (unsigned i = 0; i < values_.size(); ++i) {
        if (values_[i] == value)
            return i;
    }
    if (values_.size() >= maxLiterals)
        fatal("literal pool overflow (", maxLiterals, " entries)");
    values_.push_back(value);
    return static_cast<unsigned>(values_.size()) - 1;
}

std::uint32_t
encodeInst(const Inst &inst, LiteralPool &pool)
{
    std::uint32_t w = 0;
    w = insertBits(w, 31, 26, static_cast<unsigned>(inst.op));
    w = insertBits(w, 25, 23, static_cast<unsigned>(inst.cond));

    const OpInfo &info = inst.info();

    if (inst.isBranch()) {
        if (inst.op != Opcode::Ret) {
            LIQUID_ASSERT(fitsSigned(inst.target, 16),
                          "branch target out of range");
            w = insertBits(w, 22, 7,
                           static_cast<std::uint32_t>(inst.target));
        }
        if (inst.op == Opcode::Bl) {
            w = insertBits(w, 6, 6, inst.hinted);
            if (inst.blWidthHint) {
                LIQUID_ASSERT(isPowerOf2(inst.blWidthHint));
                w = insertBits(w, 5, 3,
                               log2i(inst.blWidthHint) + 1);
            }
        }
        return w;
    }

    if (info.isLoad || info.isStore) {
        const RegId data = info.isLoad ? inst.dst : inst.src1;
        w = insertBits(w, 22, 17, encodeReg(data));
        w = insertBits(w, 16, 11, encodeReg(inst.mem.index));
        w = insertBits(w, 10, 5, pool.intern(inst.mem.base));
        w = insertBits(w, 4, 4, inst.mem.index.isValid());
        LIQUID_ASSERT(fitsSigned(inst.mem.disp, 4),
                      "memory displacement out of range");
        w = insertBits(w, 3, 0,
                       static_cast<std::uint32_t>(inst.mem.disp));
        return w;
    }

    if (inst.op == Opcode::Vperm) {
        w = insertBits(w, 22, 17, encodeReg(inst.dst));
        w = insertBits(w, 16, 11, encodeReg(inst.src1));
        w = insertBits(w, 10, 8,
                       static_cast<unsigned>(inst.permKind));
        w = insertBits(w, 7, 5, log2i(inst.permBlock));
        return w;
    }

    if (inst.op == Opcode::Vmask) {
        w = insertBits(w, 22, 17, encodeReg(inst.dst));
        w = insertBits(w, 16, 11, encodeReg(inst.src1));
        const Word packed = (inst.maskBits << 8) | inst.maskBlock;
        w = insertBits(w, 10, 4, pool.intern(packed));
        return w;
    }

    if (info.isDataProc || inst.op == Opcode::Cmp ||
        inst.op == Opcode::Mov) {
        // Layout shared by mov/cmp/dp: f, dst, src1, tail.
        unsigned f;
        std::uint32_t tail;
        if (inst.cvec != noCvec) {
            f = 3;
            LIQUID_ASSERT(inst.cvec < 512, "cvec id out of range");
            tail = inst.cvec;
        } else if (inst.hasImm) {
            if (fitsSigned(inst.imm, 9)) {
                f = 1;
                tail = static_cast<std::uint32_t>(inst.imm) & 0x1FF;
            } else {
                f = 2;
                tail = pool.intern(static_cast<Word>(inst.imm));
            }
        } else {
            f = 0;
            tail = encodeReg(inst.src2);
        }
        w = insertBits(w, 22, 21, f);
        w = insertBits(w, 20, 15, encodeReg(inst.dst));
        w = insertBits(w, 14, 9, encodeReg(inst.src1));
        w = insertBits(w, 8, 0, tail);
        return w;
        // (invalid dst for cmp and invalid src1 for mov-immediate
        // encode as 0; the decoder reconstructs them from the format)
    }

    // Nop / Halt: opcode + condition only.
    return w;
}

Inst
decodeInst(std::uint32_t w, const LiteralPool &pool)
{
    Inst inst;
    inst.op = static_cast<Opcode>(bits(w, 31, 26));
    LIQUID_ASSERT(inst.op < Opcode::NumOpcodes, "bad opcode field");
    inst.cond = static_cast<Cond>(bits(w, 25, 23));
    const OpInfo &info = inst.info();

    if (inst.isBranch()) {
        if (inst.op != Opcode::Ret)
            inst.target = sext(bits(w, 22, 7), 16);
        if (inst.op == Opcode::Bl) {
            inst.hinted = bits(w, 6, 6);
            const unsigned wfield = bits(w, 5, 3);
            if (wfield)
                inst.blWidthHint =
                    static_cast<std::uint8_t>(1u << (wfield - 1));
        }
        return inst;
    }

    if (info.isLoad || info.isStore) {
        const RegId data = decodeReg(bits(w, 22, 17));
        if (info.isLoad)
            inst.dst = data;
        else
            inst.src1 = data;
        if (bits(w, 4, 4))
            inst.mem.index = decodeReg(bits(w, 16, 11));
        inst.mem.base = pool.get(bits(w, 10, 5));
        inst.mem.disp = sext(bits(w, 3, 0), 4);
        return inst;
    }

    if (inst.op == Opcode::Vperm) {
        inst.dst = decodeReg(bits(w, 22, 17));
        inst.src1 = decodeReg(bits(w, 16, 11));
        inst.permKind = static_cast<PermKind>(bits(w, 10, 8));
        inst.permBlock =
            static_cast<std::uint8_t>(1u << bits(w, 7, 5));
        return inst;
    }

    if (inst.op == Opcode::Vmask) {
        inst.dst = decodeReg(bits(w, 22, 17));
        inst.src1 = decodeReg(bits(w, 16, 11));
        const Word packed = pool.get(bits(w, 10, 4));
        inst.maskBits = packed >> 8;
        inst.maskBlock = static_cast<std::uint8_t>(packed & 0xFF);
        return inst;
    }

    if (info.isDataProc || inst.op == Opcode::Cmp ||
        inst.op == Opcode::Mov) {
        const unsigned f = bits(w, 22, 21);
        if (inst.op != Opcode::Cmp)
            inst.dst = decodeReg(bits(w, 20, 15));
        const bool src1_valid =
            !(inst.op == Opcode::Mov && f != 0);
        if (src1_valid)
            inst.src1 = decodeReg(bits(w, 14, 9));
        const std::uint32_t tail = bits(w, 8, 0);
        switch (f) {
          case 0:
            if (inst.op != Opcode::Mov)
                inst.src2 = decodeReg(tail);
            break;
          case 1:
            inst.hasImm = true;
            inst.imm = sext(tail, 9);
            break;
          case 2:
            inst.hasImm = true;
            inst.imm = static_cast<std::int32_t>(pool.get(tail));
            break;
          case 3:
            inst.cvec = tail;
            break;
        }
        return inst;
    }

    return inst;  // Nop / Halt
}

EncodedProgram
encodeProgram(const std::vector<Inst> &code)
{
    EncodedProgram out;
    out.words.reserve(code.size());
    for (const Inst &inst : code)
        out.words.push_back(encodeInst(inst, out.literals));
    return out;
}

std::vector<Inst>
decodeProgram(const EncodedProgram &encoded)
{
    std::vector<Inst> out;
    out.reserve(encoded.words.size());
    for (const std::uint32_t w : encoded.words)
        out.push_back(decodeInst(w, encoded.literals));
    return out;
}

} // namespace liquid
