/**
 * @file
 * Register identifiers for the Liquid SIMD ISA.
 *
 * The scalar ISA (ARM-flavoured) has 16 integer registers r0..r15 and 16
 * float registers f0..f15, following the paper's examples which use both
 * classes (Figure 4). The vector ISA mirrors them with v0..v15 and
 * vf0..vf15; the dynamic translator maps r<n> -> v<n> and f<n> -> vf<n>
 * exactly as in the paper's Table 4 walkthrough.
 */

#ifndef LIQUID_ISA_REGISTERS_HH
#define LIQUID_ISA_REGISTERS_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace liquid
{

/** Architectural register class. */
enum class RegClass : std::uint8_t
{
    Int,    ///< scalar integer r0..r15
    Flt,    ///< scalar float f0..f15
    Vec,    ///< vector integer v0..v15
    VFlt,   ///< vector float vf0..vf15
};

/** Number of registers in each class. */
inline constexpr unsigned regsPerClass = 16;

/** A (class, index) register identifier. */
class RegId
{
  public:
    constexpr RegId() : valid_(false), cls_(RegClass::Int), idx_(0) {}

    constexpr RegId(RegClass cls, unsigned idx)
        : valid_(true), cls_(cls), idx_(static_cast<std::uint8_t>(idx))
    {
    }

    static constexpr RegId invalid() { return RegId(); }

    constexpr bool isValid() const { return valid_; }
    constexpr RegClass cls() const { return cls_; }
    constexpr unsigned idx() const { return idx_; }

    constexpr bool isScalar() const
    {
        return valid_ && (cls_ == RegClass::Int || cls_ == RegClass::Flt);
    }

    constexpr bool isVector() const
    {
        return valid_ && (cls_ == RegClass::Vec || cls_ == RegClass::VFlt);
    }

    constexpr bool isFloat() const
    {
        return valid_ && (cls_ == RegClass::Flt || cls_ == RegClass::VFlt);
    }

    /**
     * Flat register number, 0..63: class in the high two bits. Used to
     * index the translator's register-state table and the encoder.
     */
    constexpr unsigned
    flat() const
    {
        return (static_cast<unsigned>(cls_) << 4) | idx_;
    }

    static constexpr RegId
    fromFlat(unsigned flat)
    {
        return RegId(static_cast<RegClass>((flat >> 4) & 0x3), flat & 0xF);
    }

    /** The vector register this scalar register virtualizes (r->v, f->vf). */
    constexpr RegId
    toVector() const
    {
        LIQUID_ASSERT(isScalar());
        return RegId(cls_ == RegClass::Int ? RegClass::Vec : RegClass::VFlt,
                     idx_);
    }

    /** Inverse of toVector(). */
    constexpr RegId
    toScalar() const
    {
        LIQUID_ASSERT(isVector());
        return RegId(cls_ == RegClass::Vec ? RegClass::Int : RegClass::Flt,
                     idx_);
    }

    constexpr bool
    operator==(const RegId &other) const
    {
        if (valid_ != other.valid_)
            return false;
        if (!valid_)
            return true;
        return cls_ == other.cls_ && idx_ == other.idx_;
    }

    constexpr bool operator!=(const RegId &other) const
    {
        return !(*this == other);
    }

  private:
    bool valid_;
    RegClass cls_;
    std::uint8_t idx_;
};

/** Printable name, e.g. "r3", "vf0"; "--" if invalid. */
std::string regName(RegId reg);

/** Parse a register name; returns invalid() if unrecognized. */
RegId parseRegName(const std::string &name);

} // namespace liquid

#endif // LIQUID_ISA_REGISTERS_HH
