#include "isa/registers.hh"

#include <cctype>
#include <cstdlib>

namespace liquid
{

std::string
regName(RegId reg)
{
    if (!reg.isValid())
        return "--";
    static const char *prefixes[] = {"r", "f", "v", "vf"};
    return std::string(prefixes[static_cast<unsigned>(reg.cls())]) +
           std::to_string(reg.idx());
}

RegId
parseRegName(const std::string &name)
{
    if (name.size() < 2)
        return RegId::invalid();

    RegClass cls;
    std::size_t digits = 1;
    if (name[0] == 'v') {
        if (name[1] == 'f') {
            cls = RegClass::VFlt;
            digits = 2;
        } else {
            cls = RegClass::Vec;
        }
    } else if (name[0] == 'r') {
        cls = RegClass::Int;
    } else if (name[0] == 'f') {
        cls = RegClass::Flt;
    } else {
        return RegId::invalid();
    }

    if (digits >= name.size())
        return RegId::invalid();
    unsigned idx = 0;
    for (std::size_t i = digits; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i])))
            return RegId::invalid();
        idx = idx * 10 + static_cast<unsigned>(name[i] - '0');
    }
    if (idx >= regsPerClass)
        return RegId::invalid();
    return RegId(cls, idx);
}

} // namespace liquid
