#include "isa/perm.hh"

#include "common/bitfield.hh"
#include "common/logging.hh"

namespace liquid
{

const char *
permKindName(PermKind kind)
{
    switch (kind) {
      case PermKind::SwapHalves: return "bfly";
      case PermKind::SwapPairs: return "swp";
      case PermKind::Reverse: return "rev";
      case PermKind::RotUp: return "rotu";
      case PermKind::RotDown: return "rotd";
      case PermKind::NumKinds: break;
    }
    return "?";
}

unsigned
permSourceLane(PermKind kind, unsigned block, unsigned lane)
{
    LIQUID_ASSERT(isPowerOf2(block) && block >= 2);
    LIQUID_ASSERT(lane < block);
    switch (kind) {
      case PermKind::SwapHalves:
        return (lane + block / 2) % block;
      case PermKind::SwapPairs:
        return lane ^ 1u;
      case PermKind::Reverse:
        return block - 1 - lane;
      case PermKind::RotUp:
        return (lane + 1) % block;
      case PermKind::RotDown:
        return (lane + block - 1) % block;
      case PermKind::NumKinds:
        break;
    }
    panic("bad permutation kind");
}

std::vector<std::int32_t>
permOffsets(PermKind kind, unsigned block)
{
    std::vector<std::int32_t> offsets(block);
    for (unsigned i = 0; i < block; ++i) {
        offsets[i] = static_cast<std::int32_t>(
                         permSourceLane(kind, block, i)) -
                     static_cast<std::int32_t>(i);
    }
    return offsets;
}

std::optional<PermMatch>
permCamLookup(const std::vector<std::int32_t> &offsets, unsigned simd_width,
              PermRepertoire repertoire)
{
    if (offsets.empty())
        return std::nullopt;

    // Prefer the smallest block that explains the observation so the
    // translated permutation stays valid at every width >= block.
    for (unsigned block = 2; block <= simd_width; block *= 2) {
        if (offsets.size() % block != 0)
            continue;
        for (unsigned k = 0;
             k < static_cast<unsigned>(PermKind::NumKinds); ++k) {
            if (!((repertoire >> k) & 1u))
                continue;  // not in this accelerator's opcode set
            const auto kind = static_cast<PermKind>(k);
            const auto pattern = permOffsets(kind, block);
            bool match = true;
            for (std::size_t i = 0; i < offsets.size() && match; ++i)
                match = offsets[i] == pattern[i % block];
            if (match)
                return PermMatch{kind, block};
        }
    }
    return std::nullopt;
}

} // namespace liquid
